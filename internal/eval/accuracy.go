package eval

import (
	"fmt"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stats"
	"github.com/qoslab/amf/internal/stream"
)

// Fig10Options configures the prediction-error-distribution experiment
// (paper Fig. 10): UIPCC, PMF, and AMF at a fixed density, with signed
// errors histogrammed over [-Range, Range].
type Fig10Options struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64 // paper plots density 10%
	Slice   int
	Seed    int64
	Range   float64 // histogram half-width; paper uses 3
	Bins    int
}

func (o Fig10Options) withDefaults() Fig10Options {
	if o.Density == 0 {
		o.Density = 0.10
	}
	if o.Range == 0 {
		o.Range = 3
	}
	if o.Bins == 0 {
		o.Bins = 60
	}
	return o
}

// Fig10Result holds one error histogram per approach.
type Fig10Result struct {
	Attr       dataset.Attribute
	Histograms map[string]*stats.Histogram
	Order      []string
}

// RunFig10 trains UIPCC, PMF, and AMF on one split and histograms their
// signed prediction errors on the test set.
func RunFig10(opts Fig10Options) (*Fig10Result, error) {
	opts = opts.withDefaults()
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	sp, err := stream.SliceSplit(gen, opts.Attr, opts.Slice, opts.Density, opts.Seed)
	if err != nil {
		return nil, err
	}
	ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, opts.Seed)
	res := &Fig10Result{
		Attr:       opts.Attr,
		Histograms: make(map[string]*stats.Histogram),
	}
	for _, a := range []Approach{UIPCCApproach(), PMFApproach(), AMFApproach("AMF", AMFOverrides{})} {
		pred, err := a.Train(ctx)
		if err != nil {
			return nil, fmt.Errorf("eval: fig10 train %s: %w", a.Name, err)
		}
		h := stats.NewHistogram(-opts.Range, opts.Range, opts.Bins)
		h.ObserveAll(SignedErrors(pred, sp.Test))
		res.Histograms[a.Name] = h
		res.Order = append(res.Order, a.Name)
	}
	return res, nil
}

// CenterMass returns the share of an approach's errors inside [-w, +w]:
// the paper's Fig. 10 argument is that AMF's error distribution is denser
// around zero than UIPCC's and PMF's.
func (r *Fig10Result) CenterMass(approach string, w float64) float64 {
	h, ok := r.Histograms[approach]
	if !ok || h.Total() == 0 {
		return 0
	}
	var inside int
	for i, c := range h.Counts {
		center := h.BinCenter(i)
		if center >= -w && center <= w {
			inside += c
		}
	}
	return float64(inside) / float64(h.Total())
}

// Fig11Options configures the data-transformation-impact experiment
// (paper Fig. 11): MRE of PMF, AMF(α=1), and AMF across densities.
type Fig11Options struct {
	Dataset   dataset.Config
	Attr      dataset.Attribute
	Densities []float64
	Rounds    int
	Slice     int
	Seed      int64
}

func (o Fig11Options) withDefaults() Fig11Options {
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	return o
}

// RunFig11 reuses the Table-I runner with the transformation-ablation
// approach set.
func RunFig11(opts Fig11Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	one := 1.0
	return RunTable1(Table1Options{
		Dataset:   opts.Dataset,
		Attr:      opts.Attr,
		Densities: opts.Densities,
		Rounds:    opts.Rounds,
		Slice:     opts.Slice,
		Seed:      opts.Seed,
		Approaches: []Approach{
			PMFApproach(),
			AMFApproach("AMF(a=1)", AMFOverrides{Alpha: &one}),
			AMFApproach("AMF", AMFOverrides{}),
		},
	})
}

// Fig12Options configures the matrix-density sweep (paper Fig. 12):
// AMF alone, densities 5%..50% step 5%, all three metrics.
type Fig12Options struct {
	Dataset   dataset.Config
	Attr      dataset.Attribute
	Densities []float64
	Rounds    int
	Slice     int
	Seed      int64
}

func (o Fig12Options) withDefaults() Fig12Options {
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
	}
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	return o
}

// RunFig12 runs the density sweep for AMF.
func RunFig12(opts Fig12Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	return RunTable1(Table1Options{
		Dataset:    opts.Dataset,
		Attr:       opts.Attr,
		Densities:  opts.Densities,
		Rounds:     opts.Rounds,
		Slice:      opts.Slice,
		Seed:       opts.Seed,
		Approaches: []Approach{AMFApproach("AMF", AMFOverrides{})},
	})
}
