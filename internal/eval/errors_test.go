package eval

import (
	"testing"

	"github.com/qoslab/amf/internal/dataset"
)

// badDataset returns a config every runner must reject.
func badDataset() dataset.Config {
	c := tinyDataset()
	c.Slices = 0
	return c
}

func TestRunnersRejectInvalidDataset(t *testing.T) {
	bad := badDataset()
	if _, err := RunFig10(Fig10Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("fig10 should reject invalid dataset")
	}
	if _, err := RunFig11(Fig11Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("fig11 should reject invalid dataset")
	}
	if _, err := RunFig12(Fig12Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("fig12 should reject invalid dataset")
	}
	if _, err := RunFig13(Fig13Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("fig13 should reject invalid dataset")
	}
	if _, err := RunFig14(Fig14Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("fig14 should reject invalid dataset")
	}
	if _, err := RunParamSweep(ParamSweepOptions{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("param sweep should reject invalid dataset")
	}
	if _, err := RunSliceSeries(SliceSeriesOptions{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("slice series should reject invalid dataset")
	}
	if _, err := RunFloor(FloorOptions{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Error("floor should reject invalid dataset")
	}
}

func TestTable1RowLookupMisses(t *testing.T) {
	res := &Table1Result{Attr: dataset.ResponseTime}
	if res.Row("AMF", 0.1) != nil {
		t.Error("empty result should have no rows")
	}
	res.Cells = append(res.Cells, Table1Cell{Approach: "AMF", Density: 0.1})
	if res.Row("AMF", 0.2) != nil {
		t.Error("unknown density should miss")
	}
	if res.Row("UPCC", 0.1) != nil {
		t.Error("unknown approach should miss")
	}
	// Rendering a single-approach result must not emit an improvement row
	// comparison against nothing.
	if out := res.String(); out == "" {
		t.Error("rendering failed")
	}
}

func TestFloorGapZeroOracle(t *testing.T) {
	r := &FloorResult{}
	if r.GapMRE() != 0 {
		t.Error("zero oracle MRE should yield zero gap")
	}
}

func TestFig13SpeedupDegenerate(t *testing.T) {
	r := &Fig13Result{Seconds: map[string][]float64{"AMF": {1}}}
	if got := r.SpeedupAfterWarmup(); len(got) != 0 {
		t.Errorf("single-slice speedup should be empty, got %v", got)
	}
	r2 := &Fig13Result{Seconds: map[string][]float64{"AMF": {1, 0}, "PMF": {1, 1}}}
	if got := r2.SpeedupAfterWarmup(); len(got) != 0 {
		t.Errorf("zero AMF time should yield empty map, got %v", got)
	}
}

func TestFig14ConvergenceNoPoints(t *testing.T) {
	r := &Fig14Result{}
	first, last, drift := r.NewcomerConvergence()
	if first != 0 || last != 0 || drift != 0 {
		t.Error("empty result should yield zeros")
	}
}

func TestAMFOverridesApplyAll(t *testing.T) {
	alpha, eta, reg, beta := 0.5, 0.4, 0.01, 0.7
	rank := 5
	off := false
	ov := AMFOverrides{
		Alpha: &alpha, Rank: &rank, LearnRate: &eta, Reg: &reg, Beta: &beta,
		AdaptiveWeights: &off, RelativeLoss: &off,
	}
	cfg := ov.apply(amfConfig(dataset.ResponseTime, 1, AMFOverrides{}))
	if cfg.Alpha != alpha || cfg.Rank != rank || cfg.LearnRate != eta ||
		cfg.RegUser != reg || cfg.RegService != reg || cfg.Beta != beta ||
		cfg.AdaptiveWeights || cfg.RelativeLoss {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}
