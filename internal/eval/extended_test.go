package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

func TestMeanApproachesTrainAndPredict(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	sp, err := stream.SliceSplit(g, dataset.ResponseTime, 0, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewTrainContext(dataset.ResponseTime, g.Config().Users, g.Config().Services, sp, 1)
	for _, a := range []Approach{UMEANApproach(), IMEANApproach()} {
		pred, err := a.Train(ctx)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		m := Compute(pred, sp.Test)
		if m.N == 0 {
			t.Fatalf("%s made no predictions", a.Name)
		}
		if m.MRE <= 0 || m.MRE > 5 {
			t.Fatalf("%s MRE = %g implausible", a.Name, m.MRE)
		}
	}
}

func TestAMFAutoAlphaCompetitive(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	sp, err := stream.SliceSplit(g, dataset.ResponseTime, 0, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewTrainContext(dataset.ResponseTime, g.Config().Users, g.Config().Services, sp, 2)

	autoPred, err := AMFAutoAlphaApproach().Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	handPred, err := AMFApproach("AMF", AMFOverrides{}).Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	auto := Compute(autoPred, sp.Test)
	hand := Compute(handPred, sp.Test)
	// The estimated alpha must be in the same league as the hand-tuned
	// one (within 25% on MRE) — the point of the extension.
	if auto.MRE > hand.MRE*1.25 {
		t.Fatalf("auto-alpha MRE %.3f much worse than hand-tuned %.3f", auto.MRE, hand.MRE)
	}
}

func TestExtendedApproachesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range ExtendedApproaches() {
		names[a.Name] = true
	}
	for _, want := range []string{"UMEAN", "IMEAN", "UPCC", "IPCC", "UIPCC", "PMF", "BiasedMF", "NIMF", "AMF(auto)", "AMF"} {
		if !names[want] {
			t.Errorf("missing approach %s", want)
		}
	}
}

func TestTable1CSV(t *testing.T) {
	res, err := RunTable1(Table1Options{
		Dataset:    tinyDataset(),
		Attr:       dataset.ResponseTime,
		Densities:  []float64{0.3},
		Rounds:     1,
		Seed:       1,
		Approaches: []Approach{UMEANApproach(), AMFApproach("AMF", AMFOverrides{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 approaches
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "attr,approach,density") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(out, "UMEAN") || !strings.Contains(out, "AMF") {
		t.Fatalf("csv missing approaches:\n%s", out)
	}
}

func TestFig13And14AndParamsCSV(t *testing.T) {
	ds := tinyDataset()
	f13, err := RunFig13(Fig13Options{Dataset: ds, Attr: dataset.ResponseTime, Slices: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f13.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 3 {
		t.Fatalf("fig13 csv lines = %d", got)
	}

	f14, err := RunFig14(Fig14Options{
		Dataset: ds, Attr: dataset.ResponseTime, Seed: 1,
		PointsBefore: 2, PointsAfter: 2, StepsPerPoint: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f14.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2+1+2 { // header + before + immediate + after
		t.Fatalf("fig14 csv lines = %d:\n%s", len(lines), buf.String())
	}
	// Pre-join rows must have an empty newMRE column.
	if !strings.HasSuffix(lines[1], ",") {
		t.Fatalf("pre-join row should end with empty newMRE: %q", lines[1])
	}

	sweep, err := RunParamSweep(ParamSweepOptions{
		Dataset: ds, Attr: dataset.ResponseTime, Rounds: 1, Seed: 1,
		Ranks: []int{5}, Regs: []float64{0.001}, LearnRates: []float64{0.8}, Betas: []float64{0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := sweep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 5 {
		t.Fatalf("sweep csv lines = %d", got)
	}
}

func TestBiasedMFAndNIMFApproachesTrain(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	sp, err := stream.SliceSplit(g, dataset.ResponseTime, 0, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewTrainContext(dataset.ResponseTime, g.Config().Users, g.Config().Services, sp, 3)
	for _, a := range []Approach{BiasedMFApproach(), NIMFApproach()} {
		pred, err := a.Train(ctx)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		m := Compute(pred, sp.Test)
		if m.N == 0 {
			t.Fatalf("%s made no predictions", a.Name)
		}
		// Both extension baselines must beat the user-mean floor on MAE.
		floorPred, err := UMEANApproach().Train(ctx)
		if err != nil {
			t.Fatal(err)
		}
		floor := Compute(floorPred, sp.Test)
		if m.MAE > floor.MAE*1.3 {
			t.Errorf("%s MAE %.3f implausibly worse than UMEAN %.3f", a.Name, m.MAE, floor.MAE)
		}
	}
}
