package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a Table1Result (also used by the Fig. 11/12
// runners) as CSV with columns approach, density, mae, mre, npre, n,
// missing — the machine-readable companion of the rendered tables, for
// plotting the figures externally.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attr", "approach", "density", "mae", "mre", "npre", "n", "missing"}); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for _, c := range r.Cells {
		rec := []string{
			r.Attr.String(),
			c.Approach,
			strconv.FormatFloat(c.Density, 'g', -1, 64),
			strconv.FormatFloat(c.Metrics.MAE, 'g', -1, 64),
			strconv.FormatFloat(c.Metrics.MRE, 'g', -1, 64),
			strconv.FormatFloat(c.Metrics.NPRE, 'g', -1, 64),
			strconv.Itoa(c.Metrics.N),
			strconv.Itoa(c.Metrics.Missing),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush csv: %w", err)
	}
	return nil
}

// WriteCSV serializes the churn trajectory (Fig. 14) as CSV.
func (r *Fig14Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attr", "steps", "seconds", "afterJoin", "existingMRE", "newMRE"}); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for _, p := range r.Points {
		newMRE := ""
		if p.AfterJoin {
			newMRE = strconv.FormatFloat(p.NewMRE, 'g', -1, 64)
		}
		rec := []string{
			r.Attr.String(),
			strconv.Itoa(p.Steps),
			strconv.FormatFloat(p.Seconds, 'g', -1, 64),
			strconv.FormatBool(p.AfterJoin),
			strconv.FormatFloat(p.ExistingMRE, 'g', -1, 64),
			newMRE,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush csv: %w", err)
	}
	return nil
}

// WriteCSV serializes per-slice convergence times (Fig. 13) as CSV.
func (r *Fig13Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"attr", "slice"}, r.Order...)
	header = append(header, "amfEpochs")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for t := 0; t < r.Slices; t++ {
		rec := []string{r.Attr.String(), strconv.Itoa(t)}
		for _, name := range r.Order {
			rec = append(rec, strconv.FormatFloat(r.Seconds[name][t], 'g', -1, 64))
		}
		rec = append(rec, strconv.Itoa(r.AMFEpochs[t]))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush csv: %w", err)
	}
	return nil
}

// WriteCSV serializes parameter sweeps as CSV.
func (r *ParamSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attr", "param", "value", "mae", "mre", "npre"}); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for _, p := range r.Points {
		rec := []string{
			r.Attr.String(),
			p.Param,
			strconv.FormatFloat(p.Value, 'g', -1, 64),
			strconv.FormatFloat(p.Metrics.MAE, 'g', -1, 64),
			strconv.FormatFloat(p.Metrics.MRE, 'g', -1, 64),
			strconv.FormatFloat(p.Metrics.NPRE, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: flush csv: %w", err)
	}
	return nil
}
