package eval

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/baseline"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stream"
)

// TrainContext is everything an approach may train from under the paper's
// protocol: the retained (training) entries both as a frozen sparse matrix
// (the batch view the offline baselines need) and as the randomized sample
// stream AMF consumes, plus shape and attribute metadata.
type TrainContext struct {
	Attr     dataset.Attribute
	Users    int
	Services int
	Matrix   *matrix.Sparse
	Samples  []stream.Sample
	Seed     int64
}

// NewTrainContext assembles a TrainContext from a density split.
func NewTrainContext(attr dataset.Attribute, users, services int, sp stream.Split, seed int64) TrainContext {
	m := matrix.NewSparse(users, services)
	for _, s := range sp.Train {
		m.Append(s.User, s.Service, s.Value)
	}
	m.Freeze()
	return TrainContext{
		Attr:     attr,
		Users:    users,
		Services: services,
		Matrix:   m,
		Samples:  sp.Train,
		Seed:     seed,
	}
}

// Approach is one trainable predictor in the comparison.
type Approach struct {
	Name  string
	Train func(ctx TrainContext) (PredictFunc, error)
}

// AMFOverrides adjusts the AMF configuration used by the harness, for the
// ablation variants (e.g. AMF(α=1)) and parameter sweeps.
type AMFOverrides struct {
	Alpha           *float64
	Rank            *int
	LearnRate       *float64
	Reg             *float64
	Beta            *float64
	AdaptiveWeights *bool
	RelativeLoss    *bool
}

func (o AMFOverrides) apply(cfg core.Config) core.Config {
	if o.Alpha != nil {
		cfg.Alpha = *o.Alpha
	}
	if o.Rank != nil {
		cfg.Rank = *o.Rank
	}
	if o.LearnRate != nil {
		cfg.LearnRate = *o.LearnRate
	}
	if o.Reg != nil {
		cfg.RegUser = *o.Reg
		cfg.RegService = *o.Reg
	}
	if o.Beta != nil {
		cfg.Beta = *o.Beta
	}
	if o.AdaptiveWeights != nil {
		cfg.AdaptiveWeights = *o.AdaptiveWeights
	}
	if o.RelativeLoss != nil {
		cfg.RelativeLoss = *o.RelativeLoss
	}
	return cfg
}

// amfConfig builds the paper's AMF configuration for an attribute
// (Sec. V-C: d=10, η=0.8, λ=0.001, β=0.3, attribute-specific α and range).
func amfConfig(attr dataset.Attribute, seed int64, ov AMFOverrides) core.Config {
	rmin, rmax := attr.Range()
	cfg := core.DefaultConfig(attr.DefaultAlpha(), rmin, rmax)
	cfg.Seed = seed
	// Table-I training happens within one slice, so expiry must span the
	// whole training pass; the online experiments override the clock
	// explicitly instead.
	cfg.Expiry = 0
	return ov.apply(cfg)
}

// warmFitOptions is the incremental convergence budget used when a model
// carries its factors into a new time slice (the online regime of
// Fig. 13): few epochs suffice.
var warmFitOptions = core.FitOptions{MaxEpochs: 60, Tol: 1e-3, MinEpochs: 2}

// ConvergeAMF trains a freshly-seeded AMF model to convergence with a
// two-stage learning-rate schedule: the paper's η=0.8 covers the distance
// from random initialization quickly, then η=0.3 shrinks SGD's stationary
// variance so the factors settle onto the loss minimum (the accuracy
// regime of Table I). The model is left at the annealed rate, which is
// what subsequent incremental slices should use.
func ConvergeAMF(m *core.Model) core.FitResult {
	first := m.Fit(core.FitOptions{MaxEpochs: 20, Tol: 1e-3, MinEpochs: 2})
	m.SetLearnRate(0.3)
	second := m.Fit(core.FitOptions{MaxEpochs: 80, Tol: 2e-4, MinEpochs: 30})
	return core.FitResult{
		Epochs:     first.Epochs + second.Epochs,
		Steps:      first.Steps + second.Steps,
		FinalError: second.FinalError,
		Converged:  second.Converged,
	}
}

// AMFApproach returns the AMF entry, optionally with overrides. The
// display name can carry the variant (e.g. "AMF(a=1)").
func AMFApproach(name string, ov AMFOverrides) Approach {
	return Approach{
		Name: name,
		Train: func(ctx TrainContext) (PredictFunc, error) {
			m, err := core.New(amfConfig(ctx.Attr, ctx.Seed, ov))
			if err != nil {
				return nil, fmt.Errorf("eval: AMF: %w", err)
			}
			m.ObserveAll(ctx.Samples)
			ConvergeAMF(m)
			return func(u, s int) (float64, bool) {
				v, err := m.Predict(u, s)
				return v, err == nil
			}, nil
		},
	}
}

// pccConfig is the neighborhood setting used for the PCC family. TopK=10
// with significance weighting follows the WSRec evaluation.
func pccConfig() baseline.PCCConfig {
	return baseline.PCCConfig{TopK: 10, MinCommon: 2, Significance: true}
}

// UPCCApproach returns the user-based CF entry of Table I.
func UPCCApproach() Approach {
	return Approach{
		Name: "UPCC",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			p := baseline.TrainUPCC(ctx.Matrix, pccConfig())
			return p.Predict, nil
		},
	}
}

// IPCCApproach returns the item-based CF entry of Table I.
func IPCCApproach() Approach {
	return Approach{
		Name: "IPCC",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			p := baseline.TrainIPCC(ctx.Matrix, pccConfig())
			return p.Predict, nil
		},
	}
}

// UIPCCApproach returns the hybrid CF entry of Table I.
func UIPCCApproach() Approach {
	return Approach{
		Name: "UIPCC",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			p := baseline.TrainUIPCC(ctx.Matrix, baseline.UIPCCConfig{
				User:   pccConfig(),
				Item:   pccConfig(),
				Lambda: 0.1,
			})
			return p.Predict, nil
		},
	}
}

// PMFApproach returns the matrix-factorization entry of Table I.
func PMFApproach() Approach {
	return Approach{
		Name: "PMF",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			_, rmax := ctx.Attr.Range()
			p, err := baseline.TrainPMF(ctx.Matrix, baseline.PMFConfig{
				Rank: 10,
				RMax: rmax,
				Seed: ctx.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: PMF: %w", err)
			}
			return p.Predict, nil
		},
	}
}

// StandardApproaches returns Table I's comparison set in the paper's
// order: UPCC, IPCC, UIPCC, PMF, AMF.
func StandardApproaches() []Approach {
	return []Approach{
		UPCCApproach(),
		IPCCApproach(),
		UIPCCApproach(),
		PMFApproach(),
		AMFApproach("AMF", AMFOverrides{}),
	}
}

// TimedTrain trains an approach and reports the training (convergence)
// wall time, the quantity plotted in the paper's Fig. 13.
func TimedTrain(a Approach, ctx TrainContext) (PredictFunc, time.Duration, error) {
	start := time.Now()
	pred, err := a.Train(ctx)
	return pred, time.Since(start), err
}
