package eval

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// Fig13Options configures the efficiency experiment (paper Fig. 13):
// per-time-slice convergence time of UIPCC and PMF (which retrain from
// scratch every slice) versus AMF (which updates incrementally).
type Fig13Options struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64 // paper: 30%
	Slices  int     // number of consecutive slices to replay (0 = all)
	Seed    int64
}

func (o Fig13Options) withDefaults(ds dataset.Config) Fig13Options {
	if o.Density == 0 {
		o.Density = 0.30
	}
	if o.Slices <= 0 || o.Slices > ds.Slices {
		o.Slices = ds.Slices
	}
	return o
}

// Fig13Result holds per-slice training times in seconds, per approach.
type Fig13Result struct {
	Attr   dataset.Attribute
	Slices int
	// Seconds[name][t] is the convergence time at slice t.
	Seconds map[string][]float64
	Order   []string
	// AMFEpochs[t] is the number of replay epochs AMF needed to converge
	// at slice t; after warmup this collapses because the model carries
	// its factors across slices.
	AMFEpochs []int
}

// RunFig13 replays consecutive time slices. UIPCC and PMF retrain on each
// slice's matrix; a single AMF model observes each slice's stream and
// refits incrementally, with its clock advanced so the previous slice's
// samples expire (Algorithm 1's expiration step).
func RunFig13(opts Fig13Options) (*Fig13Result, error) {
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(opts.Dataset)
	res := &Fig13Result{
		Attr:    opts.Attr,
		Slices:  opts.Slices,
		Seconds: map[string][]float64{},
		Order:   []string{"UIPCC", "PMF", "AMF"},
	}

	// Persistent AMF model with the paper's 15-minute expiry.
	rmin, rmax := opts.Attr.Range()
	amfCfg := core.DefaultConfig(opts.Attr.DefaultAlpha(), rmin, rmax)
	amfCfg.Seed = opts.Seed
	amfCfg.Expiry = opts.Dataset.Interval
	amf, err := core.New(amfCfg)
	if err != nil {
		return nil, err
	}

	uipcc := UIPCCApproach()
	pmf := PMFApproach()
	for t := 0; t < opts.Slices; t++ {
		seed := opts.Seed + int64(t)*104729
		sp, err := stream.SliceSplit(gen, opts.Attr, t, opts.Density, seed)
		if err != nil {
			return nil, err
		}
		ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, seed)

		for _, a := range []Approach{uipcc, pmf} {
			_, elapsed, err := TimedTrain(a, ctx)
			if err != nil {
				return nil, fmt.Errorf("eval: fig13 %s slice %d: %w", a.Name, t, err)
			}
			res.Seconds[a.Name] = append(res.Seconds[a.Name], elapsed.Seconds())
		}

		start := time.Now()
		amf.AdvanceTo(gen.SliceTime(t))
		amf.ObserveAll(sp.Train)
		var fit core.FitResult
		if t == 0 {
			// Cold start: the full annealed convergence pass (this is the
			// expensive first point of the paper's Fig. 13 AMF curve).
			fit = ConvergeAMF(amf)
		} else {
			// Warm: factors carry over; incremental refitting suffices.
			fit = amf.Fit(warmFitOptions)
		}
		res.Seconds["AMF"] = append(res.Seconds["AMF"], time.Since(start).Seconds())
		res.AMFEpochs = append(res.AMFEpochs, fit.Epochs)
	}
	return res, nil
}

// SpeedupAfterWarmup returns the mean per-slice time of each baseline
// divided by AMF's, computed over slices after the first (where AMF's
// incremental advantage shows; the paper notes AMF's slice-0 cost is
// comparable to a full training pass).
func (r *Fig13Result) SpeedupAfterWarmup() map[string]float64 {
	amf := r.Seconds["AMF"]
	out := map[string]float64{}
	if len(amf) < 2 {
		return out
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	amfMean := mean(amf[1:])
	if amfMean == 0 {
		return out
	}
	for name, secs := range r.Seconds {
		if name == "AMF" || len(secs) < 2 {
			continue
		}
		out[name] = mean(secs[1:]) / amfMean
	}
	return out
}
