package eval

import (
	"math"
	"sort"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stats"
	"github.com/qoslab/amf/internal/transform"
)

// Fig2a returns the response-time series of one (user, service) pair over
// all time slices — the paper's Fig. 2(a), showing fluctuation around a
// stable average.
func Fig2a(g *dataset.Generator, user, service int) []float64 {
	cfg := g.Config()
	out := make([]float64, cfg.Slices)
	for t := 0; t < cfg.Slices; t++ {
		out[t] = g.Value(dataset.ResponseTime, user, service, t)
	}
	return out
}

// Fig2b returns the ascending-sorted response times perceived by `count`
// users of one service at one slice — the paper's Fig. 2(b), showing that
// QoS is user-specific.
func Fig2b(g *dataset.Generator, service, slice, count int) []float64 {
	cfg := g.Config()
	if count <= 0 || count > cfg.Users {
		count = cfg.Users
	}
	out := make([]float64, count)
	for i := 0; i < count; i++ {
		out[i] = g.Value(dataset.ResponseTime, i, service, slice)
	}
	sort.Float64s(out)
	return out
}

// Fig7 builds the raw data-distribution histograms of the paper's Fig. 7:
// response time cut at 10 s and throughput cut at 150 kbps.
func Fig7(g *dataset.Generator, bins, sampleSlices, sampleCells int) (rt, tp *stats.Histogram) {
	rt = g.AttributeHistogram(dataset.ResponseTime, 10, bins, sampleSlices, sampleCells)
	tp = g.AttributeHistogram(dataset.Throughput, 150, bins, sampleSlices, sampleCells)
	return rt, tp
}

// Fig8 builds the transformed data distributions of the paper's Fig. 8:
// the Box-Cox + normalization pipeline applied with the paper's tuned
// alphas, yielding far more symmetric distributions on [0, 1].
func Fig8(g *dataset.Generator, bins, sampleSlices, sampleCells int) (rt, tp *stats.Histogram, err error) {
	build := func(attr dataset.Attribute) (*stats.Histogram, error) {
		rmin, rmax := attr.Range()
		tr, err := transform.New(attr.DefaultAlpha(), rmin, rmax)
		if err != nil {
			return nil, err
		}
		h := stats.NewHistogram(0, 1.0000001, bins)
		cfg := g.Config()
		n := sampleSlices
		if n <= 0 || n > cfg.Slices {
			n = cfg.Slices
		}
		for k := 0; k < n; k++ {
			t := k * cfg.Slices / n
			cells := sampleCells
			if cells <= 0 {
				cells = cfg.Users * cfg.Services
			}
			for c := 0; c < cells; c++ {
				var i, j int
				if sampleCells <= 0 {
					i, j = c/cfg.Services, c%cfg.Services
				} else {
					i = (c*7907 + k*17) % cfg.Users
					j = (c*104729 + k*29) % cfg.Services
				}
				h.Observe(tr.Forward(g.Value(attr, i, j, t)))
			}
		}
		return h, nil
	}
	rt, err = build(dataset.ResponseTime)
	if err != nil {
		return nil, nil, err
	}
	tp, err = build(dataset.Throughput)
	if err != nil {
		return nil, nil, err
	}
	return rt, tp, nil
}

// Fig9 computes the sorted, normalized singular values of the slice-0
// user-service matrices for both attributes (the paper's Fig. 9 low-rank
// evidence). topN truncates the returned series (<=0 returns all).
func Fig9(g *dataset.Generator, topN int) (rt, tp []float64, err error) {
	compute := func(attr dataset.Attribute) ([]float64, error) {
		m := g.SliceMatrix(attr, 0)
		sv, err := matrix.SingularValues(m, matrix.JacobiOptions{})
		if err != nil {
			return nil, err
		}
		norm := matrix.NormalizeDescending(sv)
		if topN > 0 && len(norm) > topN {
			norm = norm[:topN]
		}
		return norm, nil
	}
	if rt, err = compute(dataset.ResponseTime); err != nil {
		return nil, nil, err
	}
	if tp, err = compute(dataset.Throughput); err != nil {
		return nil, nil, err
	}
	return rt, tp, nil
}

// SkewReduction quantifies Fig. 7 → Fig. 8: the absolute skewness of an
// attribute's marginal before and after the data transformation, sampled
// over one slice. The transformation should shrink it substantially.
func SkewReduction(g *dataset.Generator, attr dataset.Attribute, sampleCells int) (before, after float64, err error) {
	rmin, rmax := attr.Range()
	tr, err := transform.New(attr.DefaultAlpha(), rmin, rmax)
	if err != nil {
		return 0, 0, err
	}
	cfg := g.Config()
	n := sampleCells
	if n <= 0 {
		n = cfg.Users * cfg.Services
	}
	raw := make([]float64, 0, n)
	cooked := make([]float64, 0, n)
	for c := 0; c < n; c++ {
		var i, j int
		if sampleCells <= 0 {
			i, j = c/cfg.Services, c%cfg.Services
		} else {
			i = (c * 7907) % cfg.Users
			j = (c * 104729) % cfg.Services
		}
		v := g.Value(attr, i, j, 0)
		raw = append(raw, v)
		cooked = append(cooked, tr.Forward(v))
	}
	return math.Abs(stats.Skewness(raw)), math.Abs(stats.Skewness(cooked)), nil
}
