package eval

import (
	"fmt"

	"github.com/qoslab/amf/internal/baseline"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/transform"
)

// UMEANApproach returns the user-mean sanity-floor baseline.
func UMEANApproach() Approach {
	return Approach{
		Name: "UMEAN",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			p := baseline.TrainUMEAN(ctx.Matrix)
			return p.Predict, nil
		},
	}
}

// IMEANApproach returns the service-mean sanity-floor baseline.
func IMEANApproach() Approach {
	return Approach{
		Name: "IMEAN",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			p := baseline.TrainIMEAN(ctx.Matrix)
			return p.Predict, nil
		},
	}
}

// BiasedMFApproach returns the bias-augmented MF extension baseline
// (Koren-style biases on top of PMF; not in the paper's Table I but the
// natural stronger offline competitor).
func BiasedMFApproach() Approach {
	return Approach{
		Name: "BiasedMF",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			_, rmax := ctx.Attr.Range()
			p, err := baseline.TrainBiasedMF(ctx.Matrix, baseline.BiasedMFConfig{
				Rank: 10,
				RMax: rmax,
				Seed: ctx.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: BiasedMF: %w", err)
			}
			return p.Predict, nil
		},
	}
}

// NIMFApproach returns neighborhood-integrated MF (Zheng et al., TSC
// 2013 — the paper's reference [23]), the strongest published offline
// competitor at the time.
func NIMFApproach() Approach {
	return Approach{
		Name: "NIMF",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			_, rmax := ctx.Attr.Range()
			p, err := baseline.TrainNIMF(ctx.Matrix, baseline.NIMFConfig{
				Rank: 10,
				RMax: rmax,
				Seed: ctx.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: NIMF: %w", err)
			}
			return p.Predict, nil
		},
	}
}

// AMFAutoAlphaApproach is an extension beyond the paper: instead of the
// hand-tuned Box-Cox alpha (−0.007 for RT, −0.05 for TP), alpha is
// estimated from the training values by maximizing the Box-Cox profile
// log-likelihood. It demonstrates that the transformation can be tuned
// online from data, removing the one manually-set parameter AMF has.
func AMFAutoAlphaApproach() Approach {
	return Approach{
		Name: "AMF(auto)",
		Train: func(ctx TrainContext) (PredictFunc, error) {
			values := make([]float64, 0, len(ctx.Samples))
			for _, s := range ctx.Samples {
				values = append(values, s.Value)
			}
			alpha, err := transform.EstimateAlpha(values, -1, 1)
			if err != nil {
				return nil, fmt.Errorf("eval: estimate alpha: %w", err)
			}
			cfg := amfConfig(ctx.Attr, ctx.Seed, AMFOverrides{})
			cfg.Alpha = alpha
			m, err := core.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: AMF(auto): %w", err)
			}
			m.ObserveAll(ctx.Samples)
			ConvergeAMF(m)
			return func(u, s int) (float64, bool) {
				v, err := m.Predict(u, s)
				return v, err == nil
			}, nil
		},
	}
}

// ExtendedApproaches returns the full comparison set: the two mean
// floors, the paper's four baselines, AMF, and the auto-alpha extension.
func ExtendedApproaches() []Approach {
	return []Approach{
		UMEANApproach(),
		IMEANApproach(),
		UPCCApproach(),
		IPCCApproach(),
		UIPCCApproach(),
		PMFApproach(),
		BiasedMFApproach(),
		NIMFApproach(),
		AMFAutoAlphaApproach(),
		AMFApproach("AMF", AMFOverrides{}),
	}
}
