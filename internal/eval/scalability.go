package eval

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// Fig14Options configures the scalability/churn experiment (paper
// Fig. 14): AMF is trained to convergence on a random 80% of users and
// services, then the remaining 20% join mid-run. The paper reports MRE
// over wall-clock time for (a) the incumbents and (b) the newcomers; the
// adaptive weights should let newcomers converge quickly while incumbents
// stay stable.
type Fig14Options struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64 // observation density for both phases
	// ExistingFrac is the fraction of users/services present initially.
	// Zero means the paper's 0.8.
	ExistingFrac float64
	Slice        int
	Seed         int64
	// PointsBefore/PointsAfter are the number of measurement points in
	// each phase; StepsPerPoint replay updates run between measurements.
	PointsBefore  int
	PointsAfter   int
	StepsPerPoint int
}

func (o Fig14Options) withDefaults() Fig14Options {
	if o.Density == 0 {
		o.Density = 0.30
	}
	if o.ExistingFrac == 0 {
		o.ExistingFrac = 0.8
	}
	if o.PointsBefore == 0 {
		o.PointsBefore = 10
	}
	if o.PointsAfter == 0 {
		o.PointsAfter = 10
	}
	if o.StepsPerPoint == 0 {
		o.StepsPerPoint = 5000
	}
	return o
}

// Fig14Point is one measurement of the churn experiment.
type Fig14Point struct {
	Steps       int     // cumulative replay steps at measurement time
	Seconds     float64 // wall-clock seconds since experiment start
	AfterJoin   bool    // whether the newcomers have joined yet
	ExistingMRE float64
	// NewMRE is the newcomers' MRE; valid only when AfterJoin is true.
	NewMRE float64
}

// Fig14Result is the full churn trajectory.
type Fig14Result struct {
	Attr     dataset.Attribute
	Points   []Fig14Point
	JoinStep int // cumulative step count at which the newcomers joined
}

// RunFig14 executes the churn experiment with the paper's adaptive
// weights enabled.
func RunFig14(opts Fig14Options) (*Fig14Result, error) {
	return runFig14Variant(opts, true)
}

// runFig14Variant is RunFig14 with the adaptive weights toggled — the
// churn-ablation hook (see RunChurnAblation).
func runFig14Variant(opts Fig14Options, adaptiveWeights bool) (*Fig14Result, error) {
	opts = opts.withDefaults()
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	cfg := opts.Dataset

	// Deterministic 80/20 partition of users and services.
	rng := rand.New(rand.NewSource(opts.Seed))
	users := rng.Perm(cfg.Users)
	services := rng.Perm(cfg.Services)
	ucut := int(float64(cfg.Users) * opts.ExistingFrac)
	scut := int(float64(cfg.Services) * opts.ExistingFrac)
	if ucut < 1 || ucut >= cfg.Users || scut < 1 || scut >= cfg.Services {
		return nil, fmt.Errorf("eval: fig14: ExistingFrac %g leaves an empty partition", opts.ExistingFrac)
	}
	exUsers, newUsers := users[:ucut], users[ucut:]
	exSvcs, newSvcs := services[:scut], services[scut:]

	existing, err := stream.SubsetSplit(gen, opts.Attr, opts.Slice, exUsers, exSvcs, opts.Density, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	newcomers, err := newcomerSplit(gen, opts, exUsers, newUsers, exSvcs, newSvcs)
	if err != nil {
		return nil, err
	}

	rmin, rmax := opts.Attr.Range()
	amfCfg := core.DefaultConfig(opts.Attr.DefaultAlpha(), rmin, rmax)
	amfCfg.Seed = opts.Seed
	amfCfg.Expiry = 0 // single-slice experiment: nothing should expire
	amfCfg.AdaptiveWeights = adaptiveWeights
	model, err := core.New(amfCfg)
	if err != nil {
		return nil, err
	}

	res := &Fig14Result{Attr: opts.Attr}
	start := time.Now()
	steps := 0
	measure := func(afterJoin bool) {
		pred := func(u, s int) (float64, bool) {
			v, err := model.Predict(u, s)
			return v, err == nil
		}
		p := Fig14Point{
			Steps:       steps,
			Seconds:     time.Since(start).Seconds(),
			AfterJoin:   afterJoin,
			ExistingMRE: Compute(pred, existing.Test).MRE,
		}
		if afterJoin {
			p.NewMRE = Compute(pred, newcomers.Test).MRE
		}
		res.Points = append(res.Points, p)
	}

	model.ObserveAll(existing.Train)
	steps += len(existing.Train)
	for i := 0; i < opts.PointsBefore; i++ {
		for k := 0; k < opts.StepsPerPoint; k++ {
			if !model.ReplayStep() {
				break
			}
			steps++
		}
		measure(false)
	}

	// Churn injection: the 20% newcomers join (Algorithm 1 lines 5-7
	// register them with error trackers seeded at 1). Measure once
	// immediately so the trajectory starts at the newcomers' worst point.
	model.ObserveAll(newcomers.Train)
	steps += len(newcomers.Train)
	res.JoinStep = steps
	measure(true)
	for i := 0; i < opts.PointsAfter; i++ {
		for k := 0; k < opts.StepsPerPoint; k++ {
			if !model.ReplayStep() {
				break
			}
			steps++
		}
		measure(true)
	}
	return res, nil
}

// newcomerSplit samples the pairs that involve at least one newcomer
// (new user x any service, or existing user x new service) at the
// experiment density.
func newcomerSplit(gen *dataset.Generator, opts Fig14Options, exUsers, newUsers, exSvcs, newSvcs []int) (stream.Split, error) {
	allSvcs := append(append([]int{}, exSvcs...), newSvcs...)
	a, err := stream.SubsetSplit(gen, opts.Attr, opts.Slice, newUsers, allSvcs, opts.Density, opts.Seed+2)
	if err != nil {
		return stream.Split{}, err
	}
	b, err := stream.SubsetSplit(gen, opts.Attr, opts.Slice, exUsers, newSvcs, opts.Density, opts.Seed+3)
	if err != nil {
		return stream.Split{}, err
	}
	return stream.Split{
		Train: append(a.Train, b.Train...),
		Test:  append(a.Test, b.Test...),
	}, nil
}

// NewcomerConvergence summarizes the Fig. 14 claim: the newcomers' first
// and last post-join MRE, and the incumbents' worst post-join MRE drift
// relative to their last pre-join MRE. A successful run has firstNew >>
// lastNew and small drift.
func (r *Fig14Result) NewcomerConvergence() (firstNew, lastNew, incumbentDrift float64) {
	var preJoin float64
	havePre := false
	first := true
	for _, p := range r.Points {
		if !p.AfterJoin {
			preJoin = p.ExistingMRE
			havePre = true
			continue
		}
		if first {
			firstNew = p.NewMRE
			first = false
		}
		lastNew = p.NewMRE
		if havePre && preJoin > 0 {
			drift := (p.ExistingMRE - preJoin) / preJoin
			if drift > incumbentDrift {
				incumbentDrift = drift
			}
		}
	}
	return firstNew, lastNew, incumbentDrift
}
