package eval

import "github.com/qoslab/amf/internal/dataset"

// ChurnAblationResult compares the Fig. 14 churn experiment with adaptive
// weights enabled (the paper's AMF) against the same run with plain
// unweighted online updates (Eq. 8-9). The adaptive weights are the
// paper's scalability mechanism: they shield converged incumbents from
// noisy newcomers, so the unweighted variant should show larger incumbent
// drift after the join.
type ChurnAblationResult struct {
	Attr     dataset.Attribute
	Adaptive *Fig14Result
	Fixed    *Fig14Result
}

// RunChurnAblation runs Fig. 14 twice, toggling the adaptive weights.
func RunChurnAblation(opts Fig14Options) (*ChurnAblationResult, error) {
	adaptive, err := RunFig14(opts)
	if err != nil {
		return nil, err
	}
	fixed, err := runFig14Variant(opts, false)
	if err != nil {
		return nil, err
	}
	return &ChurnAblationResult{Attr: opts.Attr, Adaptive: adaptive, Fixed: fixed}, nil
}

// Drifts returns the incumbents' worst post-join MRE drift under each
// variant.
func (r *ChurnAblationResult) Drifts() (adaptive, fixed float64) {
	_, _, adaptive = r.Adaptive.NewcomerConvergence()
	_, _, fixed = r.Fixed.NewcomerConvergence()
	return adaptive, fixed
}
