package eval

import (
	"fmt"
	"strings"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// ParamSweepOptions configures the one-at-a-time hyperparameter sweeps of
// the paper's "impact of parameters" analysis (detailed in its
// supplementary report): rank d, regularization λ, learning rate η, and
// EMA factor β, each varied with the others held at the paper's values.
type ParamSweepOptions struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64
	Rounds  int
	Slice   int
	Seed    int64

	Ranks      []int
	Regs       []float64
	LearnRates []float64
	Betas      []float64
}

func (o ParamSweepOptions) withDefaults() ParamSweepOptions {
	if o.Density == 0 {
		o.Density = 0.30
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{2, 5, 10, 20, 40}
	}
	if len(o.Regs) == 0 {
		o.Regs = []float64{0, 0.0001, 0.001, 0.01, 0.1}
	}
	if len(o.LearnRates) == 0 {
		o.LearnRates = []float64{0.1, 0.2, 0.4, 0.8, 1.6}
	}
	if len(o.Betas) == 0 {
		o.Betas = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	return o
}

// ParamPoint is one sweep measurement.
type ParamPoint struct {
	Param   string
	Value   float64
	Metrics Metrics
}

// ParamSweepResult groups sweep points by parameter name.
type ParamSweepResult struct {
	Attr   dataset.Attribute
	Points []ParamPoint
}

// RunParamSweep evaluates AMF's accuracy as each hyperparameter varies.
func RunParamSweep(opts ParamSweepOptions) (*ParamSweepResult, error) {
	opts = opts.withDefaults()
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	res := &ParamSweepResult{Attr: opts.Attr}

	evalOverride := func(name string, value float64, ov AMFOverrides) error {
		var ms []Metrics
		for round := 0; round < opts.Rounds; round++ {
			seed := opts.Seed + int64(round)*7919
			sp, err := stream.SliceSplit(gen, opts.Attr, opts.Slice, opts.Density, seed)
			if err != nil {
				return err
			}
			ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, seed)
			pred, err := AMFApproach("AMF", ov).Train(ctx)
			if err != nil {
				return fmt.Errorf("eval: sweep %s=%g: %w", name, value, err)
			}
			ms = append(ms, Compute(pred, sp.Test))
		}
		res.Points = append(res.Points, ParamPoint{Param: name, Value: value, Metrics: Average(ms)})
		return nil
	}

	for _, d := range opts.Ranks {
		d := d
		if err := evalOverride("rank", float64(d), AMFOverrides{Rank: &d}); err != nil {
			return nil, err
		}
	}
	for _, reg := range opts.Regs {
		reg := reg
		if err := evalOverride("lambda", reg, AMFOverrides{Reg: &reg}); err != nil {
			return nil, err
		}
	}
	for _, eta := range opts.LearnRates {
		eta := eta
		if err := evalOverride("eta", eta, AMFOverrides{LearnRate: &eta}); err != nil {
			return nil, err
		}
	}
	for _, beta := range opts.Betas {
		beta := beta
		if err := evalOverride("beta", beta, AMFOverrides{Beta: &beta}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ByParam returns the points for one parameter, in sweep order.
func (r *ParamSweepResult) ByParam(name string) []ParamPoint {
	var out []ParamPoint
	for _, p := range r.Points {
		if p.Param == name {
			out = append(out, p)
		}
	}
	return out
}

// String renders the sweeps as per-parameter MRE tables.
func (r *ParamSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s parameter sweeps (MRE per value)\n", r.Attr)
	for _, name := range []string{"rank", "lambda", "eta", "beta"} {
		pts := r.ByParam(name)
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s", name)
		for _, p := range pts {
			fmt.Fprintf(&b, " %8g", p.Value)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-8s", "MRE")
		for _, p := range pts {
			fmt.Fprintf(&b, " %8.3f", p.Metrics.MRE)
		}
		b.WriteString("\n")
	}
	return b.String()
}
