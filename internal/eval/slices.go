package eval

import (
	"fmt"
	"strings"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// SliceSeriesOptions configures the supplementary all-slices experiment:
// the paper reports Table I on time slice 1 and defers the full 64-slice
// results to its supplementary report; this runner produces that series,
// evaluating each approach independently on every slice.
type SliceSeriesOptions struct {
	Dataset    dataset.Config
	Attr       dataset.Attribute
	Density    float64 // default 0.10, the paper's headline sparsity
	Slices     int     // number of consecutive slices (0 = all)
	Seed       int64
	Approaches []Approach // nil means UIPCC, PMF, AMF (the Fig. 10 trio)
}

func (o SliceSeriesOptions) withDefaults() SliceSeriesOptions {
	if o.Density == 0 {
		o.Density = 0.10
	}
	if o.Slices <= 0 || o.Slices > o.Dataset.Slices {
		o.Slices = o.Dataset.Slices
	}
	if o.Approaches == nil {
		o.Approaches = []Approach{UIPCCApproach(), PMFApproach(), AMFApproach("AMF", AMFOverrides{})}
	}
	return o
}

// SliceSeriesResult holds per-slice metrics per approach.
type SliceSeriesResult struct {
	Attr    dataset.Attribute
	Density float64
	Slices  int
	// Series[name][t] is the metrics of approach name on slice t.
	Series map[string][]Metrics
	Order  []string
}

// RunSliceSeries evaluates every approach on every slice.
func RunSliceSeries(opts SliceSeriesOptions) (*SliceSeriesResult, error) {
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	res := &SliceSeriesResult{
		Attr:    opts.Attr,
		Density: opts.Density,
		Slices:  opts.Slices,
		Series:  map[string][]Metrics{},
	}
	for _, a := range opts.Approaches {
		res.Order = append(res.Order, a.Name)
	}
	for t := 0; t < opts.Slices; t++ {
		seed := opts.Seed + int64(t)*6007
		sp, err := stream.SliceSplit(gen, opts.Attr, t, opts.Density, seed)
		if err != nil {
			return nil, err
		}
		ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, seed)
		for _, a := range opts.Approaches {
			pred, err := a.Train(ctx)
			if err != nil {
				return nil, fmt.Errorf("eval: slice %d train %s: %w", t, a.Name, err)
			}
			res.Series[a.Name] = append(res.Series[a.Name], Compute(pred, sp.Test))
		}
	}
	return res, nil
}

// MeanMRE returns the across-slice mean MRE of an approach, or 0 when
// unknown.
func (r *SliceSeriesResult) MeanMRE(approach string) float64 {
	series, ok := r.Series[approach]
	if !ok || len(series) == 0 {
		return 0
	}
	var sum float64
	for _, m := range series {
		sum += m.MRE
	}
	return sum / float64(len(series))
}

// String renders the per-slice MRE table.
func (r *SliceSeriesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s per-slice MRE at density %.0f%% (supplementary: all time slices)\n", r.Attr, r.Density*100)
	fmt.Fprintf(&b, "%6s", "slice")
	for _, name := range r.Order {
		fmt.Fprintf(&b, " %9s", name)
	}
	b.WriteString("\n")
	for t := 0; t < r.Slices; t++ {
		fmt.Fprintf(&b, "%6d", t)
		for _, name := range r.Order {
			fmt.Fprintf(&b, " %9.3f", r.Series[name][t].MRE)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%6s", "mean")
	for _, name := range r.Order {
		fmt.Fprintf(&b, " %9.3f", r.MeanMRE(name))
	}
	b.WriteString("\n")
	return b.String()
}
