package eval

import (
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// FloorOptions configures the noise-floor measurement: the accuracy of an
// oracle that knows every pair's true long-run mean QoS (the generator's
// PairMean). No predictor can beat it on average, because the residual is
// the dataset's irreducible temporal noise — so it calibrates how much of
// AMF's remaining error is model error versus noise. Only possible on the
// synthetic dataset (the real WS-DREAM trace has no known ground truth),
// which makes it an extension this reproduction can offer beyond the
// paper.
type FloorOptions struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64 // split density; only the test half is evaluated
	Slice   int
	Seed    int64
}

// FloorResult pairs the oracle's metrics with AMF's on the same split.
type FloorResult struct {
	Attr   dataset.Attribute
	Oracle Metrics
	AMF    Metrics
}

// RunFloor measures the oracle and AMF on an identical split.
func RunFloor(opts FloorOptions) (*FloorResult, error) {
	if opts.Density == 0 {
		opts.Density = 0.30
	}
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	sp, err := stream.SliceSplit(gen, opts.Attr, opts.Slice, opts.Density, opts.Seed)
	if err != nil {
		return nil, err
	}
	oracle := func(u, s int) (float64, bool) {
		return gen.PairMean(opts.Attr, u, s), true
	}
	ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, opts.Seed)
	amfPred, err := AMFApproach("AMF", AMFOverrides{}).Train(ctx)
	if err != nil {
		return nil, err
	}
	return &FloorResult{
		Attr:   opts.Attr,
		Oracle: Compute(oracle, sp.Test),
		AMF:    Compute(amfPred, sp.Test),
	}, nil
}

// GapMRE returns AMF's MRE divided by the oracle's: 1.0 means AMF has
// reached the irreducible noise floor.
func (r *FloorResult) GapMRE() float64 {
	if r.Oracle.MRE == 0 {
		return 0
	}
	return r.AMF.MRE / r.Oracle.MRE
}
