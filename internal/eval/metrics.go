// Package eval contains the evaluation harness of the reproduction: the
// paper's accuracy metrics (MAE, MRE, NPRE), the approach registry that
// trains each compared predictor under the paper's protocol, and one
// runner per table/figure of the evaluation section (see DESIGN.md's
// experiment index).
package eval

import (
	"fmt"
	"math"
	"sort"

	"github.com/qoslab/amf/internal/stats"
	"github.com/qoslab/amf/internal/stream"
)

// PredictFunc is the uniform prediction interface the harness evaluates:
// it returns the estimated QoS value for (user, service) and whether an
// estimate exists.
type PredictFunc func(user, service int) (float64, bool)

// Metrics bundles the paper's three accuracy metrics (Sec. V-B):
//
//	MAE  — mean absolute error            Σ|R̂−R| / N
//	MRE  — median relative error          median |R̂−R| / R
//	NPRE — 90th-percentile relative error p90    |R̂−R| / R
//
// The paper optimizes and argues for the relative metrics; MAE is kept
// for comparability with prior work.
type Metrics struct {
	MAE  float64
	MRE  float64
	NPRE float64
	// N counts evaluated test samples; Missing counts test samples the
	// predictor declined (no estimate possible).
	N       int
	Missing int
}

// Compute evaluates a predictor on held-out test samples. Samples with
// non-positive ground truth are skipped for the relative metrics (the QoS
// generator never produces them, but arbitrary data might).
func Compute(pred PredictFunc, test []stream.Sample) Metrics {
	var m Metrics
	absErrs := make([]float64, 0, len(test))
	relErrs := make([]float64, 0, len(test))
	for _, s := range test {
		got, ok := pred(s.User, s.Service)
		if !ok {
			m.Missing++
			continue
		}
		abs := math.Abs(got - s.Value)
		absErrs = append(absErrs, abs)
		if s.Value > 0 {
			relErrs = append(relErrs, abs/s.Value)
		}
	}
	m.N = len(absErrs)
	if m.N == 0 {
		return m
	}
	m.MAE = stats.Mean(absErrs)
	sort.Float64s(relErrs)
	m.MRE = stats.PercentileSorted(relErrs, 50)
	m.NPRE = stats.PercentileSorted(relErrs, 90)
	return m
}

// SignedErrors returns the signed prediction errors R̂−R on the test set,
// the raw material of the paper's Fig. 10 error-distribution plot.
func SignedErrors(pred PredictFunc, test []stream.Sample) []float64 {
	out := make([]float64, 0, len(test))
	for _, s := range test {
		if got, ok := pred(s.User, s.Service); ok {
			out = append(out, got-s.Value)
		}
	}
	return out
}

// Average returns the element-wise mean of several metric sets (the paper
// averages 20 rounds per configuration). Missing and N are summed.
func Average(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.MAE += m.MAE
		out.MRE += m.MRE
		out.NPRE += m.NPRE
		out.N += m.N
		out.Missing += m.Missing
	}
	k := float64(len(ms))
	out.MAE /= k
	out.MRE /= k
	out.NPRE /= k
	return out
}

// Improvement returns the paper's improvement row: how much (fractionally)
// `ours` beats the best competitor on each metric. Positive means better
// (smaller error); the paper reports this as a percentage.
func Improvement(ours Metrics, competitors []Metrics) (mae, mre, npre float64) {
	best := func(sel func(Metrics) float64) float64 {
		b := math.Inf(1)
		for _, c := range competitors {
			if v := sel(c); v < b {
				b = v
			}
		}
		return b
	}
	frac := func(our, best float64) float64 {
		if best == 0 {
			return 0
		}
		return (best - our) / best
	}
	return frac(ours.MAE, best(func(m Metrics) float64 { return m.MAE })),
		frac(ours.MRE, best(func(m Metrics) float64 { return m.MRE })),
		frac(ours.NPRE, best(func(m Metrics) float64 { return m.NPRE }))
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("MAE=%.3f MRE=%.3f NPRE=%.3f (n=%d, missing=%d)", m.MAE, m.MRE, m.NPRE, m.N, m.Missing)
}
