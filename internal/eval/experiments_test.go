package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// tinyDataset keeps the experiment tests fast while preserving structure.
func tinyDataset() dataset.Config {
	return dataset.Config{Users: 25, Services: 80, Slices: 4, Interval: 15 * time.Minute, Rank: 5, Seed: 2014}
}

func TestRunTable1ShapeAndOrdering(t *testing.T) {
	res, err := RunTable1(Table1Options{
		Dataset:   tinyDataset(),
		Attr:      dataset.ResponseTime,
		Densities: []float64{0.2, 0.4},
		Rounds:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cells); got != 2*5 {
		t.Fatalf("cells = %d, want 10", got)
	}
	if names := res.Approaches(); len(names) != 5 || names[4] != "AMF" {
		t.Fatalf("approaches = %v", names)
	}
	if ds := res.Densities(); len(ds) != 2 || ds[0] != 0.2 {
		t.Fatalf("densities = %v", ds)
	}
	// The paper's headline: AMF beats every baseline on MRE and NPRE.
	for _, d := range res.Densities() {
		amf := res.Row("AMF", d)
		for _, name := range []string{"UPCC", "IPCC", "UIPCC", "PMF"} {
			c := res.Row(name, d)
			if c == nil || amf == nil {
				t.Fatalf("missing row %s@%g", name, d)
			}
			if amf.Metrics.MRE >= c.Metrics.MRE {
				t.Errorf("density %.0f%%: AMF MRE %.3f not better than %s %.3f",
					d*100, amf.Metrics.MRE, name, c.Metrics.MRE)
			}
			if amf.Metrics.NPRE >= c.Metrics.NPRE {
				t.Errorf("density %.0f%%: AMF NPRE %.3f not better than %s %.3f",
					d*100, amf.Metrics.NPRE, name, c.Metrics.NPRE)
			}
		}
	}
	text := res.String()
	for _, want := range []string{"UPCC", "AMF", "Improve.", "density=20%"} {
		if !strings.Contains(text, want) {
			t.Errorf("table rendering missing %q", want)
		}
	}
}

func TestRunTable1RejectsBadDataset(t *testing.T) {
	bad := tinyDataset()
	bad.Users = 0
	if _, err := RunTable1(Table1Options{Dataset: bad, Attr: dataset.ResponseTime}); err == nil {
		t.Fatal("expected dataset validation error")
	}
}

func TestAccuracyImprovesWithDensity(t *testing.T) {
	// Fig. 12's shape: AMF error decreases as the matrix densifies.
	res, err := RunFig12(Fig12Options{
		Dataset:   tinyDataset(),
		Attr:      dataset.ResponseTime,
		Densities: []float64{0.05, 0.5},
		Rounds:    3,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sparse := res.Row("AMF", 0.05)
	denseC := res.Row("AMF", 0.5)
	if sparse == nil || denseC == nil {
		t.Fatal("missing cells")
	}
	if denseC.Metrics.MRE >= sparse.Metrics.MRE {
		t.Errorf("MRE should fall with density: 5%%=%.3f 50%%=%.3f",
			sparse.Metrics.MRE, denseC.Metrics.MRE)
	}
}

func TestRunFig11TransformationHelps(t *testing.T) {
	// Fig. 11's shape: AMF <= AMF(α=1) <= PMF on MRE (allowing slack on
	// the middle inequality at tiny scale, but the ends must hold).
	res, err := RunFig11(Fig11Options{
		Dataset:   tinyDataset(),
		Attr:      dataset.ResponseTime,
		Densities: []float64{0.3},
		Rounds:    3,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pmf := res.Row("PMF", 0.3)
	linear := res.Row("AMF(a=1)", 0.3)
	amf := res.Row("AMF", 0.3)
	if pmf == nil || linear == nil || amf == nil {
		t.Fatal("missing rows")
	}
	if amf.Metrics.MRE >= pmf.Metrics.MRE {
		t.Errorf("AMF MRE %.3f should beat PMF %.3f", amf.Metrics.MRE, pmf.Metrics.MRE)
	}
	if amf.Metrics.MRE > linear.Metrics.MRE*1.05 {
		t.Errorf("tuned alpha %.3f should not lose to alpha=1 %.3f", amf.Metrics.MRE, linear.Metrics.MRE)
	}
}

func TestRunFig10AMFDensestAroundZero(t *testing.T) {
	res, err := RunFig10(Fig10Options{
		Dataset: tinyDataset(),
		Attr:    dataset.ResponseTime,
		Density: 0.2,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 3 {
		t.Fatalf("order = %v", res.Order)
	}
	amf := res.CenterMass("AMF", 0.5)
	uipcc := res.CenterMass("UIPCC", 0.5)
	pmf := res.CenterMass("PMF", 0.5)
	if amf <= uipcc || amf <= pmf {
		t.Errorf("AMF center mass %.3f should exceed UIPCC %.3f and PMF %.3f", amf, uipcc, pmf)
	}
	if res.CenterMass("nope", 1) != 0 {
		t.Error("unknown approach should have zero center mass")
	}
}

func TestRunFig13AMFFasterAfterWarmup(t *testing.T) {
	res, err := RunFig13(Fig13Options{
		Dataset: tinyDataset(),
		Attr:    dataset.ResponseTime,
		Density: 0.3,
		Slices:  3,
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Order {
		if len(res.Seconds[name]) != 3 {
			t.Fatalf("%s has %d slice timings, want 3", name, len(res.Seconds[name]))
		}
	}
	// The paper's qualitative claim: after slice 0, AMF converges almost
	// immediately because it carries its factors across slices. The full
	// wall-clock comparison against UIPCC/PMF only bites at realistic
	// scale and is exercised by cmd/amfbench and the benchmarks; at this
	// tiny scale we assert the structural warm-start collapse instead.
	if len(res.AMFEpochs) != 3 {
		t.Fatalf("AMF epochs = %v", res.AMFEpochs)
	}
	cold := res.AMFEpochs[0]
	for t2 := 1; t2 < len(res.AMFEpochs); t2++ {
		if res.AMFEpochs[t2] > cold {
			t.Errorf("warm slice %d needed %d epochs > cold %d", t2, res.AMFEpochs[t2], cold)
		}
	}
	// Wall-clock ratios at this tiny scale are noisy under parallel test
	// load, so only sanity-check that they exist; the realistic-scale
	// comparison lives in BenchmarkFig13Efficiency and cmd/amfbench.
	speedups := res.SpeedupAfterWarmup()
	if speedups["PMF"] <= 0 || speedups["UIPCC"] <= 0 {
		t.Errorf("speedups should be positive: %v", speedups)
	}
}

func TestRunFig14NewcomersConvergeIncumbentsStable(t *testing.T) {
	res, err := RunFig14(Fig14Options{
		Dataset:       tinyDataset(),
		Attr:          dataset.ResponseTime,
		Density:       0.4,
		Slice:         0,
		Seed:          13,
		PointsBefore:  4,
		PointsAfter:   6,
		StepsPerPoint: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// PointsBefore + 1 (immediate post-join) + PointsAfter.
	if len(res.Points) != 11 {
		t.Fatalf("points = %d, want 11", len(res.Points))
	}
	firstNew, lastNew, drift := res.NewcomerConvergence()
	if lastNew >= firstNew {
		t.Errorf("newcomer MRE should fall: first=%.3f last=%.3f", firstNew, lastNew)
	}
	// Incumbents must stay roughly stable (paper: "keep stable").
	if drift > 0.35 {
		t.Errorf("incumbent MRE drifted %.0f%% after churn", drift*100)
	}
}

func TestRunFig14RejectsDegeneratePartition(t *testing.T) {
	opts := Fig14Options{
		Dataset:      tinyDataset(),
		Attr:         dataset.ResponseTime,
		ExistingFrac: 0.001,
		Seed:         1,
	}
	if _, err := RunFig14(opts); err == nil {
		t.Fatal("expected partition error")
	}
}

func TestFigureSeriesHelpers(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	a := Fig2a(g, 0, 0)
	if len(a) != 4 {
		t.Fatalf("fig2a length %d", len(a))
	}
	b := Fig2b(g, 0, 0, 10)
	if len(b) != 10 {
		t.Fatalf("fig2b length %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("fig2b must be ascending")
		}
	}
	if got := Fig2b(g, 0, 0, 0); len(got) != g.Config().Users {
		t.Fatalf("count<=0 should use all users, got %d", len(got))
	}
}

func TestFig7And8Histograms(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	rt, tp := Fig7(g, 20, 2, 500)
	if rt.Total() == 0 || tp.Total() == 0 {
		t.Fatal("fig7 histograms empty")
	}
	rt8, tp8, err := Fig8(g, 20, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rt8.Total() == 0 || tp8.Total() == 0 {
		t.Fatal("fig8 histograms empty")
	}
	if rt8.Under != 0 || rt8.Over != 0 {
		t.Fatalf("transformed values must stay in [0,1]: under=%d over=%d", rt8.Under, rt8.Over)
	}
}

func TestSkewReduction(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	for _, attr := range []dataset.Attribute{dataset.ResponseTime, dataset.Throughput} {
		before, after, err := SkewReduction(g, attr, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if after >= before {
			t.Errorf("%v: transformation should reduce |skewness|: %.2f -> %.2f", attr, before, after)
		}
	}
}

func TestFig9LowRankSeries(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	rt, tp, err := Fig9(g, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != 20 || len(tp) != 20 {
		t.Fatalf("fig9 lengths: %d/%d", len(rt), len(tp))
	}
	if rt[0] != 1 || tp[0] != 1 {
		t.Fatal("normalized leading singular value must be 1")
	}
	if rt[15] > 0.25 || tp[15] > 0.25 {
		t.Errorf("tail singular values should be small: rt[15]=%.3f tp[15]=%.3f", rt[15], tp[15])
	}
}

func TestRunParamSweep(t *testing.T) {
	res, err := RunParamSweep(ParamSweepOptions{
		Dataset:    tinyDataset(),
		Attr:       dataset.ResponseTime,
		Density:    0.3,
		Rounds:     1,
		Seed:       17,
		Ranks:      []int{2, 10},
		Regs:       []float64{0.001},
		LearnRates: []float64{0.8},
		Betas:      []float64{0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByParam("rank")) != 2 || len(res.ByParam("lambda")) != 1 {
		t.Fatalf("sweep points: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.Metrics.N == 0 || math.IsNaN(p.Metrics.MRE) {
			t.Fatalf("bad sweep point %+v", p)
		}
	}
	if !strings.Contains(res.String(), "rank") {
		t.Fatal("sweep rendering")
	}
}

func TestTimedTrainReportsDuration(t *testing.T) {
	g := dataset.MustNew(tinyDataset())
	sp, err := splitForTest(g, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewTrainContext(dataset.ResponseTime, g.Config().Users, g.Config().Services, sp, 1)
	_, elapsed, err := TimedTrain(UPCCApproach(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

// splitForTest is a small helper wrapping stream.SliceSplit for slice 0.
func splitForTest(g *dataset.Generator, density float64, seed int64) (stream.Split, error) {
	return stream.SliceSplit(g, dataset.ResponseTime, 0, density, seed)
}

func TestRunSliceSeriesAMFWinsEverySlice(t *testing.T) {
	res, err := RunSliceSeries(SliceSeriesOptions{
		Dataset: tinyDataset(),
		Attr:    dataset.ResponseTime,
		Density: 0.2,
		Slices:  3,
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 3 {
		t.Fatalf("order = %v", res.Order)
	}
	for _, name := range res.Order {
		if len(res.Series[name]) != 3 {
			t.Fatalf("%s has %d slices", name, len(res.Series[name]))
		}
	}
	// The supplementary's claim: AMF's advantage holds on every slice,
	// not just slice 1.
	for tSlice := 0; tSlice < 3; tSlice++ {
		amf := res.Series["AMF"][tSlice].MRE
		for _, name := range []string{"UIPCC", "PMF"} {
			if amf >= res.Series[name][tSlice].MRE {
				t.Errorf("slice %d: AMF MRE %.3f not better than %s %.3f",
					tSlice, amf, name, res.Series[name][tSlice].MRE)
			}
		}
	}
	if res.MeanMRE("AMF") <= 0 {
		t.Fatal("mean MRE should be positive")
	}
	if res.MeanMRE("nope") != 0 {
		t.Fatal("unknown approach mean should be 0")
	}
	if !strings.Contains(res.String(), "mean") {
		t.Fatal("rendering should include the mean row")
	}
}

func TestRunFloorOracleBoundsAMF(t *testing.T) {
	res, err := RunFloor(FloorOptions{
		Dataset: tinyDataset(),
		Attr:    dataset.ResponseTime,
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Oracle.N == 0 || res.AMF.N == 0 {
		t.Fatal("floor metrics empty")
	}
	// The oracle knows the true pair means: no predictor should beat it
	// by a meaningful margin on MRE.
	if res.AMF.MRE < res.Oracle.MRE*0.9 {
		t.Fatalf("AMF MRE %.3f implausibly beats the oracle %.3f", res.AMF.MRE, res.Oracle.MRE)
	}
	// And a converged AMF should be within a small factor of the floor.
	if gap := res.GapMRE(); gap > 2.0 {
		t.Fatalf("AMF is %.2fx off the noise floor — model error dominates", gap)
	}
}

func TestChurnAblationWeightsProtectIncumbents(t *testing.T) {
	res, err := RunChurnAblation(Fig14Options{
		Dataset:       tinyDataset(),
		Attr:          dataset.ResponseTime,
		Density:       0.4,
		Seed:          2,
		PointsBefore:  3,
		PointsAfter:   5,
		StepsPerPoint: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, fixed := res.Drifts()
	// The paper's scalability mechanism: adaptive weights shield
	// converged incumbents from the newcomers' noisy gradients.
	if adaptive > fixed+0.02 {
		t.Fatalf("adaptive drift %.3f should not exceed fixed drift %.3f", adaptive, fixed)
	}
}

func TestRunPrequentialOnlineAccuracy(t *testing.T) {
	res, err := RunPrequential(PrequentialOptions{
		Dataset: tinyDataset(),
		Attr:    dataset.ResponseTime,
		Density: 0.3,
		Seed:    41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// tinyDataset has 4 slices; slice 0 is training-only.
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Metrics.N == 0 {
			t.Fatalf("slice %d evaluated nothing", p.Slice)
		}
		// Blind next-slice predictions carry temporal noise on top of
		// model error, but must stay far better than chance (UIPCC's
		// offline MRE at this scale is ~0.7).
		if p.Metrics.MRE > 0.65 {
			t.Errorf("slice %d blind MRE %.3f implausibly high", p.Slice, p.Metrics.MRE)
		}
	}
	if res.MeanMRE() <= 0 {
		t.Fatal("mean MRE should be positive")
	}
	if !strings.Contains(res.String(), "prequential") {
		t.Fatal("rendering")
	}
}
