package eval

import (
	"fmt"
	"strings"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// Table1Options configures the accuracy-comparison experiment (paper
// Table I): every approach is trained at several matrix densities and
// evaluated on the removed entries, averaged over Rounds random splits.
type Table1Options struct {
	Dataset    dataset.Config
	Attr       dataset.Attribute
	Densities  []float64 // paper: 0.10 … 0.50 step 0.10
	Rounds     int       // paper: 20
	Slice      int       // paper reports slice 1 (index 0)
	Seed       int64
	Approaches []Approach // nil means StandardApproaches()
}

func (o Table1Options) withDefaults() Table1Options {
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	}
	if o.Rounds == 0 {
		o.Rounds = 20
	}
	if o.Approaches == nil {
		o.Approaches = StandardApproaches()
	}
	return o
}

// Table1Cell is the averaged result of one approach at one density.
type Table1Cell struct {
	Approach string
	Density  float64
	Metrics  Metrics
}

// Table1Result is the full accuracy comparison for one attribute.
type Table1Result struct {
	Attr  dataset.Attribute
	Cells []Table1Cell
}

// RunTable1 executes the accuracy comparison. The final approach in the
// list is treated as "ours" when computing improvement rows (as the paper
// computes AMF's improvement over the most competitive baseline).
func RunTable1(opts Table1Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Attr: opts.Attr}
	for _, density := range opts.Densities {
		perApproach := make([][]Metrics, len(opts.Approaches))
		for round := 0; round < opts.Rounds; round++ {
			seed := opts.Seed + int64(round)*7919
			sp, err := stream.SliceSplit(gen, opts.Attr, opts.Slice, density, seed)
			if err != nil {
				return nil, err
			}
			ctx := NewTrainContext(opts.Attr, opts.Dataset.Users, opts.Dataset.Services, sp, seed)
			for ai, a := range opts.Approaches {
				pred, err := a.Train(ctx)
				if err != nil {
					return nil, fmt.Errorf("eval: train %s at density %.2f: %w", a.Name, density, err)
				}
				perApproach[ai] = append(perApproach[ai], Compute(pred, sp.Test))
			}
		}
		for ai, a := range opts.Approaches {
			res.Cells = append(res.Cells, Table1Cell{
				Approach: a.Name,
				Density:  density,
				Metrics:  Average(perApproach[ai]),
			})
		}
	}
	return res, nil
}

// Row returns the cell for (approach, density), or nil.
func (r *Table1Result) Row(approach string, density float64) *Table1Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Approach == approach && c.Density == density {
			return c
		}
	}
	return nil
}

// Densities returns the distinct densities in first-seen order.
func (r *Table1Result) Densities() []float64 {
	var out []float64
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.Density] {
			seen[c.Density] = true
			out = append(out, c.Density)
		}
	}
	return out
}

// Approaches returns the distinct approach names in first-seen order.
func (r *Table1Result) Approaches() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Approach] {
			seen[c.Approach] = true
			out = append(out, c.Approach)
		}
	}
	return out
}

// String renders the result as the paper's Table I layout: one row per
// approach, MAE/MRE/NPRE columns per density, plus the improvement row of
// the last approach over the best competitor.
func (r *Table1Result) String() string {
	var b strings.Builder
	densities := r.Densities()
	approaches := r.Approaches()
	fmt.Fprintf(&b, "%s accuracy comparison (smaller is better)\n", r.Attr)
	fmt.Fprintf(&b, "%-10s", "Approach")
	for _, d := range densities {
		fmt.Fprintf(&b, " | %-23s", fmt.Sprintf("density=%.0f%%", d*100))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "")
	for range densities {
		fmt.Fprintf(&b, " | %7s %7s %7s", "MAE", "MRE", "NPRE")
	}
	b.WriteString("\n")
	for _, a := range approaches {
		fmt.Fprintf(&b, "%-10s", a)
		for _, d := range densities {
			c := r.Row(a, d)
			if c == nil {
				fmt.Fprintf(&b, " | %7s %7s %7s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " | %7.3f %7.3f %7.3f", c.Metrics.MAE, c.Metrics.MRE, c.Metrics.NPRE)
		}
		b.WriteString("\n")
	}
	if len(approaches) >= 2 {
		ours := approaches[len(approaches)-1]
		fmt.Fprintf(&b, "%-10s", "Improve.")
		for _, d := range densities {
			our := r.Row(ours, d)
			var comp []Metrics
			for _, a := range approaches[:len(approaches)-1] {
				if c := r.Row(a, d); c != nil {
					comp = append(comp, c.Metrics)
				}
			}
			if our == nil || len(comp) == 0 {
				fmt.Fprintf(&b, " | %7s %7s %7s", "-", "-", "-")
				continue
			}
			mae, mre, npre := Improvement(our.Metrics, comp)
			fmt.Fprintf(&b, " | %6.1f%% %6.1f%% %6.1f%%", mae*100, mre*100, npre*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
