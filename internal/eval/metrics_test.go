package eval

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/stream"
)

func constPred(v float64) PredictFunc {
	return func(int, int) (float64, bool) { return v, true }
}

func TestComputeExactValues(t *testing.T) {
	test := []stream.Sample{
		{User: 0, Service: 0, Value: 1}, // pred 2: abs 1, rel 1.0
		{User: 0, Service: 1, Value: 2}, // pred 2: abs 0, rel 0.0
		{User: 0, Service: 2, Value: 4}, // pred 2: abs 2, rel 0.5
	}
	m := Compute(constPred(2), test)
	if m.N != 3 || m.Missing != 0 {
		t.Fatalf("N=%d missing=%d", m.N, m.Missing)
	}
	if m.MAE != 1 {
		t.Fatalf("MAE = %g, want 1", m.MAE)
	}
	if m.MRE != 0.5 {
		t.Fatalf("MRE = %g, want 0.5", m.MRE)
	}
	// NPRE = p90 of [0, 0.5, 1.0] = 0.9 by linear interpolation.
	if math.Abs(m.NPRE-0.9) > 1e-12 {
		t.Fatalf("NPRE = %g, want 0.9", m.NPRE)
	}
}

func TestComputeMissingPredictions(t *testing.T) {
	pred := func(u, s int) (float64, bool) {
		return 1, s != 1
	}
	test := []stream.Sample{
		{Service: 0, Value: 1},
		{Service: 1, Value: 1},
		{Service: 2, Value: 1},
	}
	m := Compute(pred, test)
	if m.N != 2 || m.Missing != 1 {
		t.Fatalf("N=%d missing=%d, want 2/1", m.N, m.Missing)
	}
}

func TestComputeEmpty(t *testing.T) {
	m := Compute(constPred(1), nil)
	if m.N != 0 || m.MAE != 0 || m.MRE != 0 || m.NPRE != 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
}

func TestComputeSkipsNonPositiveTruthForRelative(t *testing.T) {
	test := []stream.Sample{
		{Value: 0}, // contributes to MAE only
		{Value: 2}, // abs 0
	}
	m := Compute(constPred(2), test)
	if m.N != 2 {
		t.Fatalf("N = %d", m.N)
	}
	if m.MAE != 1 {
		t.Fatalf("MAE = %g, want 1", m.MAE)
	}
	if m.MRE != 0 {
		t.Fatalf("MRE = %g, want 0 (only the positive-truth sample counts)", m.MRE)
	}
}

func TestSignedErrors(t *testing.T) {
	test := []stream.Sample{{Value: 1}, {Value: 3}}
	errs := SignedErrors(constPred(2), test)
	if len(errs) != 2 || errs[0] != 1 || errs[1] != -1 {
		t.Fatalf("signed errors = %v", errs)
	}
	none := func(int, int) (float64, bool) { return 0, false }
	if got := SignedErrors(none, test); len(got) != 0 {
		t.Fatalf("no-prediction errors = %v", got)
	}
}

func TestAverage(t *testing.T) {
	avg := Average([]Metrics{
		{MAE: 1, MRE: 0.2, NPRE: 2, N: 10, Missing: 1},
		{MAE: 3, MRE: 0.4, NPRE: 4, N: 20, Missing: 2},
	})
	if avg.MAE != 2 || math.Abs(avg.MRE-0.3) > 1e-12 || avg.NPRE != 3 {
		t.Fatalf("average = %+v", avg)
	}
	if avg.N != 30 || avg.Missing != 3 {
		t.Fatalf("counts should sum: %+v", avg)
	}
	if z := Average(nil); z.N != 0 {
		t.Fatalf("empty average = %+v", z)
	}
}

func TestImprovement(t *testing.T) {
	ours := Metrics{MAE: 1, MRE: 0.3, NPRE: 1}
	comp := []Metrics{
		{MAE: 2, MRE: 0.6, NPRE: 4},
		{MAE: 1.5, MRE: 0.5, NPRE: 2},
	}
	mae, mre, npre := Improvement(ours, comp)
	// Best competitor: MAE 1.5, MRE 0.5, NPRE 2.
	if math.Abs(mae-(0.5/1.5)) > 1e-12 {
		t.Fatalf("mae improvement = %g", mae)
	}
	if math.Abs(mre-0.4) > 1e-12 {
		t.Fatalf("mre improvement = %g", mre)
	}
	if math.Abs(npre-0.5) > 1e-12 {
		t.Fatalf("npre improvement = %g", npre)
	}
}

func TestImprovementNegativeWhenWorse(t *testing.T) {
	ours := Metrics{MAE: 2, MRE: 1, NPRE: 1}
	comp := []Metrics{{MAE: 1, MRE: 0.5, NPRE: 0.5}}
	mae, _, _ := Improvement(ours, comp)
	if mae >= 0 {
		t.Fatalf("worse result should give negative improvement, got %g", mae)
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{MAE: 1, MRE: 0.5, NPRE: 2, N: 3}.String()
	if s == "" {
		t.Fatal("String should render")
	}
}
