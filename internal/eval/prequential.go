package eval

import (
	"strings"

	"fmt"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// PrequentialOptions configures the test-then-train evaluation, the
// natural protocol for an *online* predictor (and an extension over the
// paper's per-slice offline protocol): at each time slice the model must
// predict the slice's held-out entries *before* it observes any of the
// slice's data, using only what it learned from earlier slices. This
// measures exactly what runtime adaptation cares about — the quality of
// predictions about the near future.
type PrequentialOptions struct {
	Dataset dataset.Config
	Attr    dataset.Attribute
	Density float64 // observed fraction per slice (default 0.10)
	Slices  int     // number of consecutive slices (0 = all)
	Seed    int64
}

func (o PrequentialOptions) withDefaults() PrequentialOptions {
	if o.Density == 0 {
		o.Density = 0.10
	}
	if o.Slices <= 0 || o.Slices > o.Dataset.Slices {
		o.Slices = o.Dataset.Slices
	}
	return o
}

// PrequentialPoint is the model's blind accuracy on one slice, measured
// before that slice's observations were folded in. Slice 0 has no prior
// data and is skipped.
type PrequentialPoint struct {
	Slice   int
	Metrics Metrics
}

// PrequentialResult is the trajectory of blind per-slice accuracy.
type PrequentialResult struct {
	Attr   dataset.Attribute
	Points []PrequentialPoint
}

// RunPrequential executes test-then-train over consecutive slices with a
// single continuously-updated AMF model (expiry = one slice interval, as
// in the paper's Algorithm 1).
func RunPrequential(opts PrequentialOptions) (*PrequentialResult, error) {
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	rmin, rmax := opts.Attr.Range()
	cfg := core.DefaultConfig(opts.Attr.DefaultAlpha(), rmin, rmax)
	cfg.Seed = opts.Seed
	cfg.Expiry = opts.Dataset.Interval
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	res := &PrequentialResult{Attr: opts.Attr}
	pred := func(u, s int) (float64, bool) {
		v, err := model.Predict(u, s)
		return v, err == nil
	}
	for t := 0; t < opts.Slices; t++ {
		sp, err := stream.SliceSplit(gen, opts.Attr, t, opts.Density, opts.Seed+int64(t)*911)
		if err != nil {
			return nil, err
		}
		if t > 0 {
			// Test first: predictions about slice t from slices < t only.
			res.Points = append(res.Points, PrequentialPoint{
				Slice:   t,
				Metrics: Compute(pred, sp.Test),
			})
		}
		// Then train on the slice's observed entries.
		model.AdvanceTo(gen.SliceTime(t))
		model.ObserveAll(sp.Train)
		if t == 0 {
			ConvergeAMF(model)
		} else {
			model.Fit(warmFitOptions)
		}
	}
	return res, nil
}

// MeanMRE returns the across-slice mean of the blind MRE.
func (r *PrequentialResult) MeanMRE() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.Points {
		sum += p.Metrics.MRE
	}
	return sum / float64(len(r.Points))
}

// String renders the trajectory.
func (r *PrequentialResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s prequential (test-then-train) accuracy per slice\n", r.Attr)
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "slice", "MAE", "MRE", "NPRE")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %8.3f %8.3f %8.3f\n", p.Slice, p.Metrics.MAE, p.Metrics.MRE, p.Metrics.NPRE)
	}
	fmt.Fprintf(&b, "%6s %8s %8.3f %8s\n", "mean", "", r.MeanMRE(), "")
	return b.String()
}
