package stream

import (
	"math/rand"
	"time"
)

// Pool is the replay buffer behind Algorithm 1's "randomly pick an
// existing data sample" step (lines 11-15): it retains recent samples,
// serves uniformly random picks for continued SGD between arrivals, and
// expires samples older than a configurable interval (the paper expires
// at the 15-minute slice interval).
type Pool struct {
	expiry  time.Duration
	rng     *rand.Rand
	samples []Sample
	// latest tracks the newest sample per (user, service) pair so that an
	// updated pair keeps only its most recent observation alive.
	latest map[[2]int]time.Duration
	now    time.Duration
}

// NewPool creates a replay pool. expiry <= 0 disables expiration.
func NewPool(expiry time.Duration, seed int64) *Pool {
	return &Pool{
		expiry: expiry,
		rng:    rand.New(rand.NewSource(seed)),
		latest: make(map[[2]int]time.Duration),
	}
}

// Add inserts a newly observed sample and advances the pool clock to the
// sample's time if it is newer.
func (p *Pool) Add(s Sample) {
	p.samples = append(p.samples, s)
	key := [2]int{s.User, s.Service}
	if prev, ok := p.latest[key]; !ok || s.Time > prev {
		p.latest[key] = s.Time
	}
	if s.Time > p.now {
		p.now = s.Time
	}
}

// AdvanceTo moves the pool clock forward (it never moves backward).
func (p *Pool) AdvanceTo(t time.Duration) {
	if t > p.now {
		p.now = t
	}
}

// Now returns the pool clock: the latest sample or advance time seen.
func (p *Pool) Now() time.Duration { return p.now }

// Len returns the number of retained samples, including any not yet
// garbage-collected duplicates for a pair.
func (p *Pool) Len() int { return len(p.samples) }

// Pick returns a uniformly random live sample, lazily evicting expired or
// superseded ones it encounters. It returns (Sample{}, false) when the
// pool has no live samples - the "wait until observing new QoS data" state
// of Algorithm 1.
func (p *Pool) Pick() (Sample, bool) {
	for len(p.samples) > 0 {
		i := p.rng.Intn(len(p.samples))
		s := p.samples[i]
		if p.live(s) {
			return s, true
		}
		// Swap-remove the dead sample and retry.
		last := len(p.samples) - 1
		p.samples[i] = p.samples[last]
		p.samples = p.samples[:last]
	}
	return Sample{}, false
}

// live reports whether a sample is current: not expired (tij newer than
// now − expiry, Algorithm 1 line 12) and not superseded by a newer
// observation of the same pair.
func (p *Pool) live(s Sample) bool {
	if p.expiry > 0 && p.now-s.Time >= p.expiry {
		return false
	}
	return p.latest[[2]int{s.User, s.Service}] == s.Time
}

// Each calls f for every retained sample. Call Compact first to restrict
// the visit to live samples.
func (p *Pool) Each(f func(Sample)) {
	for _, s := range p.samples {
		f(s)
	}
}

// Compact eagerly drops every dead sample, reclaiming memory after bulk
// expiry. It preserves no particular order.
func (p *Pool) Compact() {
	kept := p.samples[:0]
	for _, s := range p.samples {
		if p.live(s) {
			kept = append(kept, s)
		}
	}
	p.samples = kept
	for key, ts := range p.latest {
		if p.expiry > 0 && p.now-ts >= p.expiry {
			delete(p.latest, key)
		}
	}
}
