package stream

import (
	"testing"
	"time"
)

func TestPoolAddAndPick(t *testing.T) {
	p := NewPool(0, 1)
	p.Add(Sample{Time: 1, User: 1, Service: 2, Value: 3})
	s, ok := p.Pick()
	if !ok || s.User != 1 || s.Service != 2 {
		t.Fatalf("pick = %+v, %v", s, ok)
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPoolEmptyPick(t *testing.T) {
	p := NewPool(time.Minute, 1)
	if _, ok := p.Pick(); ok {
		t.Fatal("empty pool should report no sample")
	}
}

func TestPoolExpiry(t *testing.T) {
	p := NewPool(15*time.Minute, 1)
	p.Add(Sample{Time: 0, User: 0, Service: 0, Value: 1})
	if _, ok := p.Pick(); !ok {
		t.Fatal("fresh sample should be live")
	}
	p.AdvanceTo(15 * time.Minute)
	if _, ok := p.Pick(); ok {
		t.Fatal("sample at exactly expiry age should be dead (Algorithm 1 line 12)")
	}
	if p.Len() != 0 {
		t.Fatalf("dead sample should have been evicted on pick, len=%d", p.Len())
	}
}

func TestPoolNoExpiryWhenDisabled(t *testing.T) {
	p := NewPool(0, 1)
	p.Add(Sample{Time: 0, User: 0, Service: 0})
	p.AdvanceTo(time.Hour * 1000)
	if _, ok := p.Pick(); !ok {
		t.Fatal("expiry disabled: sample must stay live")
	}
}

func TestPoolSupersededSampleDies(t *testing.T) {
	p := NewPool(0, 1)
	p.Add(Sample{Time: 1, User: 3, Service: 4, Value: 10})
	p.Add(Sample{Time: 2, User: 3, Service: 4, Value: 20})
	// Only the newer observation of the pair should ever be picked.
	for i := 0; i < 20; i++ {
		s, ok := p.Pick()
		if !ok {
			t.Fatal("pool should have a live sample")
		}
		if s.Value != 20 {
			t.Fatalf("picked superseded sample %+v", s)
		}
	}
	if p.Len() != 1 {
		t.Fatalf("superseded sample should be lazily evicted, len=%d", p.Len())
	}
}

func TestPoolClockMonotone(t *testing.T) {
	p := NewPool(time.Minute, 1)
	p.Add(Sample{Time: 10 * time.Second})
	p.AdvanceTo(5 * time.Second) // must not move backward
	if p.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", p.Now())
	}
	p.Add(Sample{Time: 2 * time.Second, User: 1}) // old sample must not rewind
	if p.Now() != 10*time.Second {
		t.Fatalf("clock = %v after old add", p.Now())
	}
}

func TestPoolCompact(t *testing.T) {
	p := NewPool(time.Minute, 1)
	for i := 0; i < 10; i++ {
		p.Add(Sample{Time: time.Duration(i) * time.Second, User: i, Service: 0})
	}
	p.Add(Sample{Time: 5 * time.Minute, User: 99, Service: 0})
	p.Compact()
	if p.Len() != 1 {
		t.Fatalf("compact kept %d samples, want 1", p.Len())
	}
	s, ok := p.Pick()
	if !ok || s.User != 99 {
		t.Fatalf("survivor = %+v, %v", s, ok)
	}
}

func TestPoolPickEventuallyCoversAllLive(t *testing.T) {
	p := NewPool(0, 3)
	for i := 0; i < 5; i++ {
		p.Add(Sample{Time: 1, User: i, Service: 0})
	}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		s, ok := p.Pick()
		if !ok {
			t.Fatal("pool should stay live")
		}
		seen[s.User] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random pick covered %d of 5 live samples", len(seen))
	}
}
