// Package stream models the sequentially observed QoS data that drives
// AMF's online learning: individual (time, user, service, value) samples,
// the paper's matrix-density train/test split protocol (Sec. V-C), and
// replay utilities that feed samples to models in randomized or
// time-ordered fashion.
package stream

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/qoslab/amf/internal/dataset"
)

// Sample is one observed QoS data sample (t_ij, u_i, s_j, R_ij) as in
// Algorithm 1 of the paper.
type Sample struct {
	Time    time.Duration // observation time, offset from dataset start
	User    int
	Service int
	Value   float64
}

// Split is the outcome of the paper's evaluation protocol for one time
// slice: entries are randomly removed from the full matrix so that the
// retained density matches the target; retained entries become the
// training stream and removed entries the test set.
type Split struct {
	Train []Sample
	Test  []Sample
}

// SliceSplit builds a Split for one time slice of the generator at the
// given matrix density in (0, 1). Each cell is retained independently with
// probability density (so each user invokes ≈ density of the services and
// each service is invoked by ≈ density of the users, as in the paper).
// Training samples are shuffled into a random stream order; each sample's
// Time is the slice start plus a uniform offset inside the slice.
// Deterministic in seed.
func SliceSplit(g *dataset.Generator, attr dataset.Attribute, slice int, density float64, seed int64) (Split, error) {
	if density <= 0 || density >= 1 {
		return Split{}, fmt.Errorf("stream: density %g out of (0,1)", density)
	}
	cfg := g.Config()
	if slice < 0 || slice >= cfg.Slices {
		return Split{}, fmt.Errorf("stream: slice %d out of range [0,%d)", slice, cfg.Slices)
	}
	rng := rand.New(rand.NewSource(seed))
	base := g.SliceTime(slice)
	var sp Split
	for i := 0; i < cfg.Users; i++ {
		for j := 0; j < cfg.Services; j++ {
			s := Sample{
				Time:    base + time.Duration(rng.Int63n(int64(cfg.Interval))),
				User:    i,
				Service: j,
				Value:   g.Value(attr, i, j, slice),
			}
			if rng.Float64() < density {
				sp.Train = append(sp.Train, s)
			} else {
				sp.Test = append(sp.Test, s)
			}
		}
	}
	rng.Shuffle(len(sp.Train), func(a, b int) {
		sp.Train[a], sp.Train[b] = sp.Train[b], sp.Train[a]
	})
	return sp, nil
}

// SubsetSplit is SliceSplit restricted to the given users and services
// (identified by their generator indices). It is used by the scalability
// experiment (Fig. 14), which first trains on 80% of users/services and
// later injects the rest.
func SubsetSplit(g *dataset.Generator, attr dataset.Attribute, slice int, users, services []int, density float64, seed int64) (Split, error) {
	if density <= 0 || density >= 1 {
		return Split{}, fmt.Errorf("stream: density %g out of (0,1)", density)
	}
	cfg := g.Config()
	if slice < 0 || slice >= cfg.Slices {
		return Split{}, fmt.Errorf("stream: slice %d out of range [0,%d)", slice, cfg.Slices)
	}
	rng := rand.New(rand.NewSource(seed))
	base := g.SliceTime(slice)
	var sp Split
	for _, i := range users {
		for _, j := range services {
			s := Sample{
				Time:    base + time.Duration(rng.Int63n(int64(cfg.Interval))),
				User:    i,
				Service: j,
				Value:   g.Value(attr, i, j, slice),
			}
			if rng.Float64() < density {
				sp.Train = append(sp.Train, s)
			} else {
				sp.Test = append(sp.Test, s)
			}
		}
	}
	rng.Shuffle(len(sp.Train), func(a, b int) {
		sp.Train[a], sp.Train[b] = sp.Train[b], sp.Train[a]
	})
	return sp, nil
}

// Shuffle returns a copy of samples in a seeded random order.
func Shuffle(samples []Sample, seed int64) []Sample {
	out := make([]Sample, len(samples))
	copy(out, samples)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// TripletsToSamples converts serialized dataset triplets into stream
// samples, stamping each with the start time of its slice.
func TripletsToSamples(ts []dataset.Triplet, interval time.Duration) []Sample {
	out := make([]Sample, len(ts))
	for i, t := range ts {
		out[i] = Sample{
			Time:    time.Duration(t.Slice) * interval,
			User:    t.User,
			Service: t.Service,
			Value:   t.Value,
		}
	}
	return out
}

// SamplesToTriplets converts samples back to dataset triplets by
// truncating each timestamp to its slice index.
func SamplesToTriplets(samples []Sample, interval time.Duration) []dataset.Triplet {
	out := make([]dataset.Triplet, len(samples))
	for i, s := range samples {
		out[i] = dataset.Triplet{
			User:    s.User,
			Service: s.Service,
			Slice:   int(s.Time / interval),
			Value:   s.Value,
		}
	}
	return out
}
