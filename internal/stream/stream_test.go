package stream

import (
	"math"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/dataset"
)

func testGen(t *testing.T) *dataset.Generator {
	t.Helper()
	return dataset.MustNew(dataset.SmallConfig())
}

func TestSliceSplitPartition(t *testing.T) {
	g := testGen(t)
	cfg := g.Config()
	sp, err := SliceSplit(g, dataset.ResponseTime, 0, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Users * cfg.Services
	if len(sp.Train)+len(sp.Test) != total {
		t.Fatalf("train+test = %d, want %d", len(sp.Train)+len(sp.Test), total)
	}
	// No overlap: every (user, service) appears exactly once.
	seen := make(map[[2]int]bool, total)
	for _, s := range append(append([]Sample{}, sp.Train...), sp.Test...) {
		key := [2]int{s.User, s.Service}
		if seen[key] {
			t.Fatalf("pair %v appears twice", key)
		}
		seen[key] = true
	}
}

func TestSliceSplitDensity(t *testing.T) {
	g := testGen(t)
	cfg := g.Config()
	for _, density := range []float64{0.1, 0.3, 0.5} {
		sp, err := SliceSplit(g, dataset.ResponseTime, 0, density, 42)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(sp.Train)) / float64(cfg.Users*cfg.Services)
		if math.Abs(got-density) > 0.03 {
			t.Errorf("density %.2f: retained %.3f", density, got)
		}
	}
}

func TestSliceSplitDeterministic(t *testing.T) {
	g := testGen(t)
	a, _ := SliceSplit(g, dataset.Throughput, 1, 0.2, 9)
	b, _ := SliceSplit(g, dataset.Throughput, 1, 0.2, 9)
	if len(a.Train) != len(b.Train) {
		t.Fatal("same seed must give same split size")
	}
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("same seed must give identical stream order")
		}
	}
	c, _ := SliceSplit(g, dataset.Throughput, 1, 0.2, 10)
	if len(a.Train) == len(c.Train) {
		identical := true
		for i := range a.Train {
			if a.Train[i] != c.Train[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds must differ")
		}
	}
}

func TestSliceSplitTimesWithinSlice(t *testing.T) {
	g := testGen(t)
	cfg := g.Config()
	sp, _ := SliceSplit(g, dataset.ResponseTime, 2, 0.3, 3)
	lo := g.SliceTime(2)
	hi := lo + cfg.Interval
	for _, s := range sp.Train {
		if s.Time < lo || s.Time >= hi {
			t.Fatalf("sample time %v outside slice window [%v, %v)", s.Time, lo, hi)
		}
	}
}

func TestSliceSplitValuesMatchGenerator(t *testing.T) {
	g := testGen(t)
	sp, _ := SliceSplit(g, dataset.ResponseTime, 0, 0.5, 8)
	for _, s := range sp.Test[:50] {
		if want := g.Value(dataset.ResponseTime, s.User, s.Service, 0); s.Value != want {
			t.Fatalf("sample (%d,%d) value %g, want %g", s.User, s.Service, s.Value, want)
		}
	}
}

func TestSliceSplitErrors(t *testing.T) {
	g := testGen(t)
	if _, err := SliceSplit(g, dataset.ResponseTime, 0, 0, 1); err == nil {
		t.Error("density 0 should error")
	}
	if _, err := SliceSplit(g, dataset.ResponseTime, 0, 1, 1); err == nil {
		t.Error("density 1 should error")
	}
	if _, err := SliceSplit(g, dataset.ResponseTime, -1, 0.3, 1); err == nil {
		t.Error("negative slice should error")
	}
	if _, err := SliceSplit(g, dataset.ResponseTime, 999, 0.3, 1); err == nil {
		t.Error("out-of-range slice should error")
	}
}

func TestSubsetSplit(t *testing.T) {
	g := testGen(t)
	users := []int{0, 2, 4}
	services := []int{1, 3, 5, 7}
	sp, err := SubsetSplit(g, dataset.ResponseTime, 0, users, services, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train)+len(sp.Test) != len(users)*len(services) {
		t.Fatalf("subset split covers %d pairs, want %d", len(sp.Train)+len(sp.Test), len(users)*len(services))
	}
	inUsers := map[int]bool{0: true, 2: true, 4: true}
	inSvcs := map[int]bool{1: true, 3: true, 5: true, 7: true}
	for _, s := range append(append([]Sample{}, sp.Train...), sp.Test...) {
		if !inUsers[s.User] || !inSvcs[s.Service] {
			t.Fatalf("sample (%d,%d) outside subset", s.User, s.Service)
		}
	}
}

func TestSubsetSplitErrors(t *testing.T) {
	g := testGen(t)
	if _, err := SubsetSplit(g, dataset.ResponseTime, 0, []int{0}, []int{0}, 2, 1); err == nil {
		t.Error("bad density should error")
	}
	if _, err := SubsetSplit(g, dataset.ResponseTime, 99, []int{0}, []int{0}, 0.5, 1); err == nil {
		t.Error("bad slice should error")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	in := []Sample{{User: 1}, {User: 2}, {User: 3}, {User: 4}, {User: 5}}
	out := Shuffle(in, 7)
	if len(out) != len(in) {
		t.Fatal("length changed")
	}
	count := map[int]int{}
	for _, s := range out {
		count[s.User]++
	}
	for _, s := range in {
		if count[s.User] != 1 {
			t.Fatalf("shuffle lost or duplicated %d", s.User)
		}
	}
	// Input untouched.
	for i, s := range in {
		if s.User != i+1 {
			t.Fatal("Shuffle mutated its input")
		}
	}
}

func TestTripletSampleConversion(t *testing.T) {
	interval := 15 * time.Minute
	ts := []dataset.Triplet{
		{User: 1, Service: 2, Slice: 0, Value: 1.5},
		{User: 3, Service: 4, Slice: 5, Value: 0.2},
	}
	samples := TripletsToSamples(ts, interval)
	if samples[1].Time != 5*interval {
		t.Fatalf("sample time %v, want %v", samples[1].Time, 5*interval)
	}
	back := SamplesToTriplets(samples, interval)
	for i := range ts {
		if back[i] != ts[i] {
			t.Fatalf("roundtrip %d: %+v != %+v", i, back[i], ts[i])
		}
	}
}
