package dataset

import (
	"fmt"
	"strings"
	"time"

	"github.com/qoslab/amf/internal/stats"
)

// Statistics mirrors the paper's data-statistics table (Fig. 6): counts,
// interval, and per-attribute range and average.
type Statistics struct {
	Users    int
	Services int
	Slices   int
	Interval time.Duration

	RT stats.Summary
	TP stats.Summary
}

// SampleStatistics estimates dataset statistics from a random subsample of
// sampleSlices slices and sampleCells cells per slice (sampling keeps the
// full 142x4500x64 tensor out of memory). Passing sampleCells <= 0 scans
// every cell of the selected slices. Deterministic in the generator seed.
func (g *Generator) SampleStatistics(sampleSlices, sampleCells int) Statistics {
	cfg := g.cfg
	if sampleSlices <= 0 || sampleSlices > cfg.Slices {
		sampleSlices = cfg.Slices
	}
	var rtVals, tpVals []float64
	for k := 0; k < sampleSlices; k++ {
		// Spread selected slices evenly across the trace.
		t := k * cfg.Slices / sampleSlices
		n := sampleCells
		if n <= 0 {
			n = cfg.Users * cfg.Services
		}
		for c := 0; c < n; c++ {
			var i, j int
			if sampleCells <= 0 {
				i, j = c/cfg.Services, c%cfg.Services
			} else {
				h := mix(uint64(cfg.Seed), 0x57a7, uint64(t), uint64(c))
				i = int(h % uint64(cfg.Users))
				j = int(splitmix64(h) % uint64(cfg.Services))
			}
			rtVals = append(rtVals, g.Value(ResponseTime, i, j, t))
			tpVals = append(tpVals, g.Value(Throughput, i, j, t))
		}
	}
	return Statistics{
		Users:    cfg.Users,
		Services: cfg.Services,
		Slices:   cfg.Slices,
		Interval: cfg.Interval,
		RT:       stats.Summarize(rtVals),
		TP:       stats.Summarize(tpVals),
	}
}

// String renders the statistics as the paper's Fig. 6 table.
func (s Statistics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %v\n", "#Users", s.Users)
	fmt.Fprintf(&b, "%-14s %v\n", "#Services", s.Services)
	fmt.Fprintf(&b, "%-14s %v\n", "#Time slices", s.Slices)
	fmt.Fprintf(&b, "%-14s %v\n", "#Time interval", s.Interval)
	fmt.Fprintf(&b, "%-14s %.3g ~ %.3g s\n", "RT range", s.RT.Min, s.RT.Max)
	fmt.Fprintf(&b, "%-14s %.3g s\n", "RT average", s.RT.Mean)
	fmt.Fprintf(&b, "%-14s %.3g ~ %.4g kbps\n", "TP range", s.TP.Min, s.TP.Max)
	fmt.Fprintf(&b, "%-14s %.4g kbps\n", "TP average", s.TP.Mean)
	return b.String()
}

// AttributeHistogram builds the marginal distribution of one attribute
// over a subsample (paper Fig. 7; cut at `hi`, e.g. 10 s for RT or
// 150 kbps for TP, with the tail counted as over-range).
func (g *Generator) AttributeHistogram(attr Attribute, hi float64, bins, sampleSlices, sampleCells int) *stats.Histogram {
	h := stats.NewHistogram(0, hi, bins)
	cfg := g.cfg
	if sampleSlices <= 0 || sampleSlices > cfg.Slices {
		sampleSlices = cfg.Slices
	}
	for k := 0; k < sampleSlices; k++ {
		t := k * cfg.Slices / sampleSlices
		n := sampleCells
		if n <= 0 {
			n = cfg.Users * cfg.Services
		}
		for c := 0; c < n; c++ {
			var i, j int
			if sampleCells <= 0 {
				i, j = c/cfg.Services, c%cfg.Services
			} else {
				hh := mix(uint64(cfg.Seed), 0xb157, uint64(attr), uint64(t), uint64(c))
				i = int(hh % uint64(cfg.Users))
				j = int(splitmix64(hh) % uint64(cfg.Services))
			}
			h.Observe(g.Value(attr, i, j, t))
		}
	}
	return h
}
