package dataset

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"users":    func(c *Config) { c.Users = 0 },
		"services": func(c *Config) { c.Services = -1 },
		"slices":   func(c *Config) { c.Slices = 0 },
		"rank":     func(c *Config) { c.Rank = 0 },
		"interval": func(c *Config) { c.Interval = 0 },
	}
	for name, breakIt := range cases {
		c := DefaultConfig()
		breakIt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New should refuse invalid config", name)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Users != 142 || c.Services != 4500 || c.Slices != 64 || c.Interval != 15*time.Minute {
		t.Fatalf("default config %+v does not match paper Fig. 6", c)
	}
}

func TestValueDeterministic(t *testing.T) {
	g1 := MustNew(SmallConfig())
	g2 := MustNew(SmallConfig())
	for _, attr := range []Attribute{ResponseTime, Throughput} {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if v1, v2 := g1.Value(attr, i, j, 3), g2.Value(attr, i, j, 3); v1 != v2 {
					t.Fatalf("%v (%d,%d): %g != %g across identically-seeded generators", attr, i, j, v1, v2)
				}
			}
		}
	}
}

func TestValueSeedSensitivity(t *testing.T) {
	cfg := SmallConfig()
	g1 := MustNew(cfg)
	cfg.Seed++
	g2 := MustNew(cfg)
	same := 0
	for i := 0; i < 10; i++ {
		if g1.Value(ResponseTime, i, 0, 0) == g2.Value(ResponseTime, i, 0, 0) {
			same++
		}
	}
	if same == 10 {
		t.Fatal("different seeds must produce different datasets")
	}
}

func TestValueInRange(t *testing.T) {
	g := MustNew(SmallConfig())
	for _, attr := range []Attribute{ResponseTime, Throughput} {
		_, max := attr.Range()
		for i := 0; i < g.Config().Users; i++ {
			for j := 0; j < 20; j++ {
				for s := 0; s < g.Config().Slices; s++ {
					v := g.Value(attr, i, j, s)
					if v <= 0 || v > max || math.IsNaN(v) {
						t.Fatalf("%v value %g out of (0, %g]", attr, v, max)
					}
				}
			}
		}
	}
}

func TestValuePanicsOutOfRangeIndex(t *testing.T) {
	g := MustNew(SmallConfig())
	for name, f := range map[string]func(){
		"user":    func() { g.Value(ResponseTime, g.Config().Users, 0, 0) },
		"service": func() { g.Value(ResponseTime, 0, -1, 0) },
		"slice":   func() { g.Value(ResponseTime, 0, 0, g.Config().Slices) },
		"attr":    func() { g.Value(Attribute(99), 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// The marginal distribution must be highly right-skewed with the paper's
// approximate mean: RT mean ≈ 1.33 s, clearly above the median (Fig. 6-7).
func TestRTMarginalShape(t *testing.T) {
	g := MustNew(Config{Users: 60, Services: 300, Slices: 4, Interval: time.Minute, Rank: 8, Seed: 2014})
	var vals []float64
	for i := 0; i < 60; i++ {
		for j := 0; j < 300; j++ {
			vals = append(vals, g.Value(ResponseTime, i, j, 0))
		}
	}
	sum := stats.Summarize(vals)
	if sum.Mean < 0.8 || sum.Mean > 2.2 {
		t.Errorf("RT mean = %.3f, want ≈ 1.33 (within [0.8, 2.2])", sum.Mean)
	}
	if sum.Median >= sum.Mean {
		t.Errorf("RT should be right-skewed: median %.3f >= mean %.3f", sum.Median, sum.Mean)
	}
	if sk := stats.Skewness(vals); sk < 1 {
		t.Errorf("RT skewness = %.2f, want strongly positive (paper Fig. 7)", sk)
	}
	if sum.Max > 20 {
		t.Errorf("RT max = %.3f exceeds paper range 20", sum.Max)
	}
}

func TestTPMarginalShape(t *testing.T) {
	g := MustNew(Config{Users: 60, Services: 300, Slices: 4, Interval: time.Minute, Rank: 8, Seed: 2014})
	var vals []float64
	for i := 0; i < 60; i++ {
		for j := 0; j < 300; j++ {
			vals = append(vals, g.Value(Throughput, i, j, 0))
		}
	}
	sum := stats.Summarize(vals)
	if sum.Mean < 5 || sum.Mean > 25 {
		t.Errorf("TP mean = %.3f, want ≈ 11.35 (within [5, 25])", sum.Mean)
	}
	if sk := stats.Skewness(vals); sk < 2 {
		t.Errorf("TP skewness = %.2f, want very heavy right tail", sk)
	}
	if sum.Max > 7000 {
		t.Errorf("TP max = %.3f exceeds paper range 7000", sum.Max)
	}
}

// Per-pair time series must fluctuate around a stable level (Fig. 2a):
// the per-pair mean over time should explain most cross-pair variance.
func TestTemporalStability(t *testing.T) {
	g := MustNew(SmallConfig())
	cfg := g.Config()
	var withinVar, betweenVar []float64
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			series := make([]float64, cfg.Slices)
			for s := range series {
				series[s] = math.Log(g.Value(ResponseTime, i, j, s))
			}
			withinVar = append(withinVar, stats.Variance(series))
			betweenVar = append(betweenVar, stats.Mean(series))
		}
	}
	within := stats.Mean(withinVar)
	between := stats.Variance(betweenVar)
	if between <= within {
		t.Errorf("pair identity should dominate temporal noise: between=%.3f within=%.3f", between, within)
	}
}

// Users of the same service must see widely different QoS (Fig. 2b).
func TestUserSpecificity(t *testing.T) {
	g := MustNew(SmallConfig())
	perUser := make([]float64, g.Config().Users)
	for i := range perUser {
		perUser[i] = g.Value(ResponseTime, i, 0, 0)
	}
	sum := stats.Summarize(perUser)
	if sum.Max/sum.Min < 3 {
		t.Errorf("user-perceived RT spread %.2fx too small; want >3x variation across users", sum.Max/sum.Min)
	}
}

// The QoS matrix must be approximately low-rank after log transform
// (Fig. 9): normalized singular values decay fast.
func TestApproximateLowRank(t *testing.T) {
	g := MustNew(Config{Users: 40, Services: 200, Slices: 2, Interval: time.Minute, Rank: 6, Seed: 5})
	// As in the paper, the SVD is taken on the raw QoS matrix.
	m := g.SliceMatrix(ResponseTime, 0)
	sv, err := matrix.SingularValues(m, matrix.JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	norm := matrix.NormalizeDescending(sv)
	// After the first few, singular values should be near zero relative
	// to the leading one (paper: "most of them are close to 0").
	if norm[15] > 0.1 {
		t.Errorf("normalized sv[15] = %.3f, want < 0.1 (approx low rank)", norm[15])
	}
	// Only a handful of strong components should remain at the 0.2 level.
	if rank := matrix.EffectiveRank(sv, 0.2); rank > 8 {
		t.Errorf("effective rank %d too high for a rank-6 ground truth", rank)
	}
}

func TestPairMeanConsistency(t *testing.T) {
	g := MustNew(SmallConfig())
	cfg := g.Config()
	// Empirical mean over slices should approach PairMean.
	for _, pair := range [][2]int{{0, 0}, {3, 7}, {9, 50}} {
		i, j := pair[0], pair[1]
		var sum float64
		for s := 0; s < cfg.Slices; s++ {
			sum += g.Value(ResponseTime, i, j, s)
		}
		emp := sum / float64(cfg.Slices)
		want := g.PairMean(ResponseTime, i, j)
		// Noisy small-sample estimate: allow a generous factor.
		if emp < want/4 || emp > want*4 {
			t.Errorf("pair (%d,%d): empirical mean %.3f vs model mean %.3f", i, j, emp, want)
		}
	}
}

func TestSliceMatrixMatchesValue(t *testing.T) {
	g := MustNew(SmallConfig())
	m := g.SliceMatrix(Throughput, 1)
	if m.Rows() != g.Config().Users || m.Cols() != g.Config().Services {
		t.Fatalf("slice matrix shape %dx%d", m.Rows(), m.Cols())
	}
	for _, pair := range [][2]int{{0, 0}, {5, 17}, {29, 119}} {
		if got, want := m.At(pair[0], pair[1]), g.Value(Throughput, pair[0], pair[1], 1); got != want {
			t.Fatalf("slice matrix (%d,%d) = %g, want %g", pair[0], pair[1], got, want)
		}
	}
}

func TestSliceTime(t *testing.T) {
	g := MustNew(DefaultConfig())
	if got := g.SliceTime(4); got != time.Hour {
		t.Fatalf("slice 4 at 15-minute interval = %v, want 1h", got)
	}
}

func TestAttributeHelpers(t *testing.T) {
	if ResponseTime.String() != "RT" || Throughput.String() != "TP" {
		t.Fatal("attribute names")
	}
	if Attribute(9).String() == "" {
		t.Fatal("unknown attribute should still render")
	}
	if !ResponseTime.Valid() || Attribute(0).Valid() {
		t.Fatal("validity")
	}
	if lo, hi := ResponseTime.Range(); lo != 0 || hi != 20 {
		t.Fatal("RT range")
	}
	if lo, hi := Throughput.Range(); lo != 0 || hi != 7000 {
		t.Fatal("TP range")
	}
	if ResponseTime.DefaultAlpha() != -0.007 || Throughput.DefaultAlpha() != -0.05 {
		t.Fatal("paper alphas")
	}
}

func TestAttributeRangePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Attribute(0).Range()
}

// Property: hash-derived uniforms are in (0,1) and normals are finite.
func TestHashRandomnessProperty(t *testing.T) {
	f := func(x uint64) bool {
		u := hashUniform(splitmix64(x))
		n := hashNormal(splitmix64(x ^ 0xabcdef))
		return u > 0 && u < 1 && !math.IsNaN(n) && !math.IsInf(n, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashNormalMoments(t *testing.T) {
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = hashNormal(mix(123, uint64(i)))
	}
	if m := stats.Mean(vals); math.Abs(m) > 0.03 {
		t.Errorf("hashNormal mean = %g, want ≈ 0", m)
	}
	if sd := stats.StdDev(vals); math.Abs(sd-1) > 0.03 {
		t.Errorf("hashNormal stddev = %g, want ≈ 1", sd)
	}
}
