// Package dataset provides a synthetic stand-in for the WS-DREAM QoS
// dataset used in the paper's evaluation: 142 users x 4,500 web services
// observed over 64 consecutive 15-minute time slices, with response-time
// (RT) and throughput (TP) attributes.
//
// The real dataset is a network-measurement artifact we cannot ship, so the
// generator reproduces its *published structure* instead (see DESIGN.md,
// "Substitutions"): QoS values follow a ground-truth latent-factor model in
// the log domain (low effective rank, paper Fig. 9), have highly skewed
// marginals (Fig. 7, Fig. 6 statistics), fluctuate over time around stable
// per-pair means (Fig. 2a), and vary strongly across users of the same
// service (Fig. 2b). Values are a pure function of (seed, user, service,
// slice), so the full 142x4500x64 tensor never needs to be materialized.
package dataset

import "fmt"

// Attribute identifies a QoS attribute of the dataset.
type Attribute int

const (
	// ResponseTime is the time between sending a request and receiving
	// the response, in seconds. Lower is better. Paper range: 0-20 s.
	ResponseTime Attribute = iota + 1
	// Throughput is the data transmission rate of an invocation, in
	// kbps. Higher is better. Paper range: 0-7000 kbps.
	Throughput
)

// String implements fmt.Stringer.
func (a Attribute) String() string {
	switch a {
	case ResponseTime:
		return "RT"
	case Throughput:
		return "TP"
	default:
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
}

// Valid reports whether a is a known attribute.
func (a Attribute) Valid() bool { return a == ResponseTime || a == Throughput }

// Range returns the paper's value range [min, max] for the attribute.
func (a Attribute) Range() (min, max float64) {
	switch a {
	case ResponseTime:
		return 0, 20
	case Throughput:
		return 0, 7000
	default:
		panic(fmt.Sprintf("dataset: Range on invalid attribute %d", int(a)))
	}
}

// DefaultAlpha returns the Box-Cox alpha the paper tunes for the attribute
// (Sec. V-C): -0.007 for response time and -0.05 for throughput.
func (a Attribute) DefaultAlpha() float64 {
	switch a {
	case ResponseTime:
		return -0.007
	case Throughput:
		return -0.05
	default:
		panic(fmt.Sprintf("dataset: DefaultAlpha on invalid attribute %d", int(a)))
	}
}
