package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTriplets() []Triplet {
	return []Triplet{
		{User: 0, Service: 0, Slice: 0, Value: 1.4},
		{User: 1, Service: 3, Slice: 2, Value: 0.7},
		{User: 2, Service: 1, Slice: 7, Value: 0.0001},
	}
}

func TestTripletsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleTriplets()
	if err := WriteTriplets(&buf, ResponseTime, 3, 4, 8, in); err != nil {
		t.Fatal(err)
	}
	attr, users, services, slices, out, err := ReadTriplets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if attr != ResponseTime || users != 3 || services != 4 || slices != 8 {
		t.Fatalf("shape mismatch: %v %d %d %d", attr, users, services, slices)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d triplets, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("triplet %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestTripletsRoundTripThroughput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTriplets(&buf, Throughput, 2, 2, 2, []Triplet{{Value: 6999.5}}); err != nil {
		t.Fatal(err)
	}
	attr, _, _, _, out, err := ReadTriplets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if attr != Throughput || out[0].Value != 6999.5 {
		t.Fatalf("got %v %v", attr, out)
	}
}

func TestReadTripletsSkipsCommentsAndBlanks(t *testing.T) {
	text := "# amf-qos-triplets v1\nattr=RT users=2 services=2 slices=2\n\n# comment\n0 1 1 2.5\n"
	_, _, _, _, out, err := ReadTriplets(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value != 2.5 {
		t.Fatalf("got %+v", out)
	}
}

func TestReadTripletsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "nope\n",
		"missing shape":    "# amf-qos-triplets v1\n",
		"bad shape field":  "# amf-qos-triplets v1\nattr=RT users\n",
		"unknown attr":     "# amf-qos-triplets v1\nattr=XX users=1 services=1 slices=1\n",
		"bad count":        "# amf-qos-triplets v1\nattr=RT users=x services=1 slices=1\n",
		"negative count":   "# amf-qos-triplets v1\nattr=RT users=-1 services=1 slices=1\n",
		"unknown field":    "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1 bogus=2\n",
		"incomplete shape": "# amf-qos-triplets v1\nattr=RT users=1 services=1\n",
		"short line":       "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n0 0 0\n",
		"bad user":         "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\nx 0 0 1\n",
		"bad service":      "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n0 x 0 1\n",
		"bad slice":        "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n0 0 x 1\n",
		"bad value":        "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n0 0 0 x\n",
		"index out of rng": "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n1 0 0 1\n",
		"slice out of rng": "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n0 0 5 1\n",
		"negative indices": "# amf-qos-triplets v1\nattr=RT users=1 services=1 slices=1\n-1 0 0 1\n",
	}
	for name, text := range cases {
		if _, _, _, _, _, err := ReadTriplets(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteTripletsGeneratorIntegration(t *testing.T) {
	g := MustNew(SmallConfig())
	cfg := g.Config()
	var ts []Triplet
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			ts = append(ts, Triplet{User: i, Service: j, Slice: 0, Value: g.Value(ResponseTime, i, j, 0)})
		}
	}
	var buf bytes.Buffer
	if err := WriteTriplets(&buf, ResponseTime, cfg.Users, cfg.Services, cfg.Slices, ts); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, out, err := ReadTriplets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if out[i].Value != ts[i].Value {
			t.Fatalf("value drift at %d: %g vs %g", i, out[i].Value, ts[i].Value)
		}
	}
}

func TestStatisticsString(t *testing.T) {
	g := MustNew(SmallConfig())
	s := g.SampleStatistics(2, 500)
	text := s.String()
	for _, want := range []string{"#Users", "RT average", "TP range"} {
		if !strings.Contains(text, want) {
			t.Errorf("statistics table missing %q:\n%s", want, text)
		}
	}
	if s.RT.Count == 0 || s.TP.Count == 0 {
		t.Fatal("sampling produced no values")
	}
}

func TestSampleStatisticsFullScan(t *testing.T) {
	cfg := Config{Users: 5, Services: 6, Slices: 2, Interval: SmallConfig().Interval, Rank: 3, Seed: 1}
	g := MustNew(cfg)
	s := g.SampleStatistics(1, 0) // full scan of one slice
	if s.RT.Count != 30 {
		t.Fatalf("full scan count = %d, want 30", s.RT.Count)
	}
}

func TestAttributeHistogram(t *testing.T) {
	g := MustNew(SmallConfig())
	h := g.AttributeHistogram(ResponseTime, 10, 20, 2, 1000)
	if h.Total() != 2000 {
		t.Fatalf("histogram total = %d, want 2000", h.Total())
	}
	// RT mass concentrates at small values (right-skewed, Fig. 7):
	// the first quarter of bins should hold most in-range observations.
	firstQuarter, rest := 0, 0
	for i, c := range h.Counts {
		if i < len(h.Counts)/4 {
			firstQuarter += c
		} else {
			rest += c
		}
	}
	if firstQuarter <= rest {
		t.Errorf("RT histogram not right-skewed: head=%d tail=%d", firstQuarter, rest)
	}
}
