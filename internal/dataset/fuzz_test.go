package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTriplets asserts the triplet parser never panics and that any
// input it accepts round-trips through WriteTriplets.
func FuzzReadTriplets(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteTriplets(&seed, ResponseTime, 3, 4, 8, sampleTriplets()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("# amf-qos-triplets v1\nattr=RT users=2 services=2 slices=2\n0 1 1 2.5\n")
	f.Add("# amf-qos-triplets v1\nattr=TP users=1 services=1 slices=1\n0 0 0 1e300\n")
	f.Add("# amf-qos-triplets v1\nattr=RT users=1 services=1\n")
	f.Add("garbage")

	f.Fuzz(func(t *testing.T, input string) {
		attr, users, services, slices, ts, err := ReadTriplets(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Accepted data must satisfy the documented invariants...
		if !attr.Valid() || users <= 0 || services <= 0 || slices <= 0 {
			t.Fatalf("accepted invalid shape: %v %d %d %d", attr, users, services, slices)
		}
		for _, tr := range ts {
			if tr.User < 0 || tr.User >= users || tr.Service < 0 || tr.Service >= services || tr.Slice < 0 || tr.Slice >= slices {
				t.Fatalf("accepted out-of-shape triplet %+v", tr)
			}
		}
		// ...and round-trip losslessly.
		var buf bytes.Buffer
		if err := WriteTriplets(&buf, attr, users, services, slices, ts); err != nil {
			t.Fatal(err)
		}
		attr2, u2, s2, sl2, ts2, err := ReadTriplets(&buf)
		if err != nil {
			t.Fatalf("re-read of accepted data failed: %v", err)
		}
		if attr2 != attr || u2 != users || s2 != services || sl2 != slices || len(ts2) != len(ts) {
			t.Fatal("round-trip changed shape")
		}
		for i := range ts {
			if ts[i] != ts2[i] {
				t.Fatalf("round-trip changed triplet %d: %+v vs %+v", i, ts[i], ts2[i])
			}
		}
	})
}
