package dataset

import "math"

// splitmix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit
// mixing function. It lets the generator derive an independent,
// reproducible random stream for every (seed, user, service, slice, salt)
// tuple without storing any per-cell state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix hashes a sequence of 64-bit words into one, chaining splitmix64.
func mix(words ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return h
}

// hashUniform maps a hash to a uniform float64 in (0, 1). The +1/2^54
// offset keeps the result strictly positive so it is safe inside log().
func hashUniform(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// hashNormal returns a standard normal deviate derived deterministically
// from the hash via the Box-Muller transform on two decorrelated uniforms.
func hashNormal(h uint64) float64 {
	u1 := hashUniform(h)
	u2 := hashUniform(splitmix64(h ^ 0xda3e39cb94b95bdb))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
