package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Triplet is one serialized observation: user i invoked service j during
// time slice t and measured QoS value v. This is the on-disk exchange
// format written by cmd/qosgen and consumed by the examples.
type Triplet struct {
	User    int
	Service int
	Slice   int
	Value   float64
}

// header identifies the triplet file format.
const header = "# amf-qos-triplets v1"

// WriteTriplets serializes triplets for one attribute, preceded by a
// header and a shape line. Format (whitespace-separated):
//
//	# amf-qos-triplets v1
//	attr=RT users=142 services=4500 slices=64
//	<user> <service> <slice> <value>
//	...
func WriteTriplets(w io.Writer, attr Attribute, users, services, slices int, ts []Triplet) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\nattr=%s users=%d services=%d slices=%d\n",
		header, attr, users, services, slices); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "%d %d %d %s\n",
			t.User, t.Service, t.Slice, strconv.FormatFloat(t.Value, 'g', -1, 64)); err != nil {
			return fmt.Errorf("dataset: write triplet: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// ReadTriplets parses the format written by WriteTriplets. It returns the
// attribute, the declared shape, and the triplets, validating that every
// index is inside the declared shape.
func ReadTriplets(r io.Reader) (attr Attribute, users, services, slices int, ts []Triplet, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		return 0, 0, 0, 0, nil, fmt.Errorf("dataset: empty input: %w", io.ErrUnexpectedEOF)
	}
	if got := strings.TrimSpace(sc.Text()); got != header {
		return 0, 0, 0, 0, nil, fmt.Errorf("dataset: bad header %q", got)
	}
	if !sc.Scan() {
		return 0, 0, 0, 0, nil, fmt.Errorf("dataset: missing shape line: %w", io.ErrUnexpectedEOF)
	}
	for _, field := range strings.Fields(sc.Text()) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: bad shape field %q", field)
		}
		switch k {
		case "attr":
			switch v {
			case "RT":
				attr = ResponseTime
			case "TP":
				attr = Throughput
			default:
				return 0, 0, 0, 0, nil, fmt.Errorf("dataset: unknown attribute %q", v)
			}
		case "users", "services", "slices":
			n, convErr := strconv.Atoi(v)
			if convErr != nil || n <= 0 {
				return 0, 0, 0, 0, nil, fmt.Errorf("dataset: bad %s=%q", k, v)
			}
			switch k {
			case "users":
				users = n
			case "services":
				services = n
			case "slices":
				slices = n
			}
		default:
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: unknown shape field %q", k)
		}
	}
	if !attr.Valid() || users == 0 || services == 0 || slices == 0 {
		return 0, 0, 0, 0, nil, fmt.Errorf("dataset: incomplete shape line")
	}

	lineNo := 2
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var t Triplet
		var convErr error
		if t.User, convErr = strconv.Atoi(fields[0]); convErr != nil {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: bad user: %w", lineNo, convErr)
		}
		if t.Service, convErr = strconv.Atoi(fields[1]); convErr != nil {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: bad service: %w", lineNo, convErr)
		}
		if t.Slice, convErr = strconv.Atoi(fields[2]); convErr != nil {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: bad slice: %w", lineNo, convErr)
		}
		if t.Value, convErr = strconv.ParseFloat(fields[3], 64); convErr != nil {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: bad value: %w", lineNo, convErr)
		}
		if t.User < 0 || t.User >= users || t.Service < 0 || t.Service >= services || t.Slice < 0 || t.Slice >= slices {
			return 0, 0, 0, 0, nil, fmt.Errorf("dataset: line %d: triplet (%d,%d,%d) outside shape %dx%dx%d",
				lineNo, t.User, t.Service, t.Slice, users, services, slices)
		}
		ts = append(ts, t)
	}
	if scanErr := sc.Err(); scanErr != nil {
		return 0, 0, 0, 0, nil, fmt.Errorf("dataset: scan: %w", scanErr)
	}
	return attr, users, services, slices, ts, nil
}
