package dataset

import (
	"fmt"
	"math"
	"time"

	"github.com/qoslab/amf/internal/matrix"
)

// Config describes the shape of a synthetic QoS dataset. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	Users    int           // number of service users (PlanetLab nodes in the paper)
	Services int           // number of web services
	Slices   int           // number of consecutive time slices
	Interval time.Duration // wall-clock length of one slice (15 min in the paper)
	Rank     int           // true latent dimensionality of the ground-truth model
	Seed     int64         // master seed; same seed ⇒ identical dataset
}

// DefaultConfig returns the paper's dataset shape: 142 users, 4,500
// services, 64 slices at 15-minute intervals (paper Fig. 6).
func DefaultConfig() Config {
	return Config{
		Users:    142,
		Services: 4500,
		Slices:   64,
		Interval: 15 * time.Minute,
		Rank:     8,
		Seed:     2014,
	}
}

// SmallConfig returns a reduced shape for unit tests and quick examples.
func SmallConfig() Config {
	return Config{Users: 30, Services: 120, Slices: 8, Interval: 15 * time.Minute, Rank: 6, Seed: 7}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("dataset: Users must be positive, got %d", c.Users)
	case c.Services <= 0:
		return fmt.Errorf("dataset: Services must be positive, got %d", c.Services)
	case c.Slices <= 0:
		return fmt.Errorf("dataset: Slices must be positive, got %d", c.Slices)
	case c.Rank <= 0:
		return fmt.Errorf("dataset: Rank must be positive, got %d", c.Rank)
	case c.Interval <= 0:
		return fmt.Errorf("dataset: Interval must be positive, got %v", c.Interval)
	}
	return nil
}

// attrModel holds the log-domain calibration of one QoS attribute. A QoS
// value is
//
//	Q(i,j,t) = clamp( exp( mu + a_i + b_j + u_i·v_j + x_i(t) + y_j(t) + ε ) · spike ,  [0, max] )
//
// where a/b are static user/service biases, u·v is the ground-truth
// low-rank term, x/y are AR(1) temporal states of the user's network and
// the service's load, ε is per-(pair,slice) noise, and spike is an
// occasional multiplicative outage factor. All variances below are in the
// log domain; their sum sets the marginal's log-variance.
type attrModel struct {
	mu        float64 // log-domain location
	biasUser  float64 // stddev of a_i
	biasSvc   float64 // stddev of b_j
	latent    float64 // per-coordinate stddev of u and v
	tempUser  float64 // stationary stddev of x_i(t)
	tempSvc   float64 // stationary stddev of y_j(t)
	noise     float64 // stddev of ε
	rho       float64 // AR(1) coefficient of the temporal states
	spikeProb float64 // probability of a spike per (pair, slice)
	spikeLo   float64 // spike multiplier lower bound
	spikeHi   float64 // spike multiplier upper bound
	max       float64 // clamp ceiling (paper range)
	salt      uint64  // hash-domain separator between attributes
}

// Calibration targets (paper Fig. 6): RT mean ≈ 1.33 s in [0, 20];
// TP mean ≈ 11.35 kbps in [0, 7000] with a much heavier tail.
func rtModel(rank int) attrModel {
	// Total log-variance ≈ 1.0 ⇒ lognormal mean = exp(mu + 0.5).
	m := attrModel{
		mu:       math.Log(1.33) - 0.5,
		biasUser: math.Sqrt(0.15),
		biasSvc:  math.Sqrt(0.25),
		tempUser: math.Sqrt(0.05),
		tempSvc:  math.Sqrt(0.10),
		noise:    math.Sqrt(0.15),
		rho:      0.85,

		spikeProb: 0.015,
		spikeLo:   3,
		spikeHi:   8,
		max:       20,
		salt:      0x52545f5254, // "RT_RT"
	}
	m.latent = math.Pow(0.30/float64(rank), 0.25) // rank·latent⁴ = 0.30
	return m
}

func tpModel(rank int) attrModel {
	// Total log-variance ≈ 1.6 ⇒ heavy right tail, median ≈ 5 kbps,
	// with spikes carrying the marginal out toward the 7000 kbps cap.
	// Most of the variance is static (user/service identity and latent
	// structure): throughput is dominated by link capacity and service
	// provisioning, which collaborative filtering can learn, with a
	// smaller temporal/noise component than response time.
	m := attrModel{
		mu:       math.Log(11.35) - 0.8,
		biasUser: math.Sqrt(0.25),
		biasSvc:  math.Sqrt(0.55),
		tempUser: math.Sqrt(0.06),
		tempSvc:  math.Sqrt(0.10),
		noise:    math.Sqrt(0.12),
		rho:      0.85,

		spikeProb: 0.01,
		spikeLo:   4,
		spikeHi:   12,
		max:       7000,
		salt:      0x54505f5450, // "TP_TP"
	}
	m.latent = math.Pow(0.52/float64(rank), 0.25) // rank·latent⁴ = 0.52
	return m
}

// Generator produces deterministic synthetic QoS observations. It is safe
// for concurrent use after construction: Value is a pure function of its
// arguments plus precomputed immutable state.
type Generator struct {
	cfg Config
	rt  attrModel
	tp  attrModel

	// Ground-truth static structure, per attribute index (0=RT, 1=TP).
	userBias [2][]float64
	svcBias  [2][]float64
	userLat  [2][][]float64
	svcLat   [2][][]float64
	// Temporal AR(1) trajectories: [attr][entity][slice].
	userTemp [2][][]float64
	svcTemp  [2][][]float64
}

// New builds a Generator for the configuration. The ground-truth state is
// O((Users+Services)·(Rank+Slices)) in memory; the QoS tensor itself is
// never stored.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rt: rtModel(cfg.Rank), tp: tpModel(cfg.Rank)}
	for ai, m := range []attrModel{g.rt, g.tp} {
		seed := mix(uint64(cfg.Seed), m.salt)
		g.userBias[ai] = staticNormals(seed, 'u', cfg.Users, m.biasUser)
		g.svcBias[ai] = staticNormals(seed, 's', cfg.Services, m.biasSvc)
		g.userLat[ai] = latentVectors(seed, 'U', cfg.Users, cfg.Rank, m.latent)
		g.svcLat[ai] = latentVectors(seed, 'S', cfg.Services, cfg.Rank, m.latent)
		g.userTemp[ai] = ar1Paths(seed, 'x', cfg.Users, cfg.Slices, m.rho, m.tempUser)
		g.svcTemp[ai] = ar1Paths(seed, 'y', cfg.Services, cfg.Slices, m.rho, m.tempSvc)
	}
	return g, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func staticNormals(seed uint64, tag byte, n int, sd float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = sd * hashNormal(mix(seed, uint64(tag), uint64(i)))
	}
	return out
}

func latentVectors(seed uint64, tag byte, n, rank int, sd float64) [][]float64 {
	out := make([][]float64, n)
	flat := make([]float64, n*rank)
	for i := range out {
		v := flat[i*rank : (i+1)*rank : (i+1)*rank]
		for k := range v {
			v[k] = sd * hashNormal(mix(seed, uint64(tag), uint64(i), uint64(k)))
		}
		out[i] = v
	}
	return out
}

// ar1Paths precomputes stationary AR(1) trajectories:
// x(0) ~ N(0, sd²);  x(t) = rho·x(t−1) + sqrt(1−rho²)·sd·ε(t).
func ar1Paths(seed uint64, tag byte, n, slices int, rho, sd float64) [][]float64 {
	innov := sd * math.Sqrt(1-rho*rho)
	out := make([][]float64, n)
	flat := make([]float64, n*slices)
	for i := range out {
		p := flat[i*slices : (i+1)*slices : (i+1)*slices]
		p[0] = sd * hashNormal(mix(seed, uint64(tag), uint64(i), 0))
		for t := 1; t < slices; t++ {
			p[t] = rho*p[t-1] + innov*hashNormal(mix(seed, uint64(tag), uint64(i), uint64(t)))
		}
		out[i] = p
	}
	return out
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

func (g *Generator) model(a Attribute) (attrModel, int) {
	switch a {
	case ResponseTime:
		return g.rt, 0
	case Throughput:
		return g.tp, 1
	default:
		panic(fmt.Sprintf("dataset: invalid attribute %d", int(a)))
	}
}

func (g *Generator) checkIndex(user, service, slice int) {
	if user < 0 || user >= g.cfg.Users || service < 0 || service >= g.cfg.Services || slice < 0 || slice >= g.cfg.Slices {
		panic(fmt.Sprintf("dataset: index (user=%d, service=%d, slice=%d) out of range for %dx%dx%d",
			user, service, slice, g.cfg.Users, g.cfg.Services, g.cfg.Slices))
	}
}

// Value returns the QoS value observed by user on service during slice.
// It is deterministic in (Config.Seed, attr, user, service, slice) and
// always lies within the attribute's paper range.
func (g *Generator) Value(attr Attribute, user, service, slice int) float64 {
	g.checkIndex(user, service, slice)
	m, ai := g.model(attr)

	logQ := m.mu +
		g.userBias[ai][user] + g.svcBias[ai][service] +
		matrix.Dot(g.userLat[ai][user], g.svcLat[ai][service]) +
		g.userTemp[ai][user][slice] + g.svcTemp[ai][service][slice]

	h := mix(uint64(g.cfg.Seed), m.salt, 0xce11, uint64(user), uint64(service), uint64(slice))
	logQ += m.noise * hashNormal(h)

	q := math.Exp(logQ)
	// Occasional spike: a transient outage/congestion multiplier, giving
	// the marginal its far tail (Fig. 7's cut-off region).
	hs := splitmix64(h ^ 0x51c3b5a7d2e9f041)
	if hashUniform(hs) < m.spikeProb {
		q *= m.spikeLo + (m.spikeHi-m.spikeLo)*hashUniform(splitmix64(hs))
	}
	if q > m.max {
		q = m.max
	}
	return q
}

// PairMean returns the stationary per-pair mean QoS in the log model
// (exp of the static part plus half the temporal+noise variance). Fig. 2a
// shows observed values fluctuating around this level; the adaptation
// simulator uses it as the "true" quality of a binding.
func (g *Generator) PairMean(attr Attribute, user, service int) float64 {
	g.checkIndex(user, service, 0)
	m, ai := g.model(attr)
	static := m.mu + g.userBias[ai][user] + g.svcBias[ai][service] +
		matrix.Dot(g.userLat[ai][user], g.svcLat[ai][service])
	varDyn := m.tempUser*m.tempUser + m.tempSvc*m.tempSvc + m.noise*m.noise
	q := math.Exp(static + varDyn/2)
	if q > m.max {
		q = m.max
	}
	return q
}

// SliceMatrix materializes the full Users x Services matrix for one slice.
func (g *Generator) SliceMatrix(attr Attribute, slice int) *matrix.Dense {
	g.checkIndex(0, 0, slice)
	d := matrix.NewDense(g.cfg.Users, g.cfg.Services)
	for i := 0; i < g.cfg.Users; i++ {
		row := d.Row(i)
		for j := 0; j < g.cfg.Services; j++ {
			row[j] = g.Value(attr, i, j, slice)
		}
	}
	return d
}

// SliceTime returns the wall-clock offset of the start of a slice from the
// start of the dataset.
func (g *Generator) SliceTime(slice int) time.Duration {
	return time.Duration(slice) * g.cfg.Interval
}
