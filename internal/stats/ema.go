package stats

import "fmt"

// EMA is an exponential moving average with a fixed smoothing factor:
//
//	value ← β·x + (1−β)·value
//
// AMF's adaptive weights use a *variant* of this with a per-update
// effective factor β·w (paper Eq. 13-14); that variant is UpdateWeighted.
type EMA struct {
	beta  float64
	value float64
	init  bool
}

// NewEMA creates an EMA with smoothing factor beta in (0, 1].
// It panics for beta outside that range.
func NewEMA(beta float64) *EMA {
	if beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("stats: EMA beta %g out of (0,1]", beta))
	}
	return &EMA{beta: beta}
}

// NewEMAInit creates an EMA seeded with an initial value, as AMF seeds new
// users and services with error 1 (Algorithm 1 line 7).
func NewEMAInit(beta, initial float64) *EMA {
	e := NewEMA(beta)
	e.value = initial
	e.init = true
	return e
}

// Update folds x in with the fixed factor beta. The first update of an
// unseeded EMA adopts x directly.
func (e *EMA) Update(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.beta*x + (1-e.beta)*e.value
}

// UpdateWeighted folds x in with an effective factor beta*w, exactly the
// form of the paper's Eq. 13-14 where w is the adaptive weight of the user
// or service for the current sample:
//
//	e ← (β·w)·x + (1 − β·w)·e
func (e *EMA) UpdateWeighted(w, x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	bw := e.beta * w
	e.value = bw*x + (1-bw)*e.value
}

// Value returns the current average (0 before any update or seed).
func (e *EMA) Value() float64 { return e.value }

// Initialized reports whether the EMA has been seeded or updated.
func (e *EMA) Initialized() bool { return e.init }
