package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEMAFirstUpdateAdopts(t *testing.T) {
	e := NewEMA(0.3)
	if e.Initialized() {
		t.Fatal("fresh EMA should be uninitialized")
	}
	e.Update(5)
	if e.Value() != 5 {
		t.Fatalf("first update = %g, want 5", e.Value())
	}
	if !e.Initialized() {
		t.Fatal("EMA should report initialized after update")
	}
}

func TestEMAUpdateFormula(t *testing.T) {
	e := NewEMAInit(0.3, 1)
	e.Update(0)
	if got, want := e.Value(), 0.7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("value = %g, want %g", got, want)
	}
}

func TestEMAWeightedFormula(t *testing.T) {
	// Eq. 13: e ← βw·x + (1−βw)·e with β=0.3, w=0.5, e=1, x=0 → 0.85.
	e := NewEMAInit(0.3, 1)
	e.UpdateWeighted(0.5, 0)
	if got, want := e.Value(), 0.85; math.Abs(got-want) > 1e-12 {
		t.Fatalf("value = %g, want %g", got, want)
	}
}

func TestEMAWeightedFirstUpdateAdopts(t *testing.T) {
	e := NewEMA(0.5)
	e.UpdateWeighted(0.1, 3)
	if e.Value() != 3 {
		t.Fatalf("first weighted update = %g, want 3", e.Value())
	}
}

func TestEMAInitSeed(t *testing.T) {
	e := NewEMAInit(0.2, 1)
	if !e.Initialized() || e.Value() != 1 {
		t.Fatal("seeded EMA should start at its seed")
	}
}

func TestEMAPanicsOnBadBeta(t *testing.T) {
	for _, beta := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("beta=%g: expected panic", beta)
				}
			}()
			NewEMA(beta)
		}()
	}
}

func TestEMABetaOneTracksExactly(t *testing.T) {
	e := NewEMA(1)
	for _, x := range []float64{3, 7, 2} {
		e.Update(x)
		if e.Value() != x {
			t.Fatalf("beta=1 EMA should track input exactly, got %g want %g", e.Value(), x)
		}
	}
}

func TestEMAConvergesToConstant(t *testing.T) {
	e := NewEMAInit(0.3, 10)
	for i := 0; i < 200; i++ {
		e.Update(2)
	}
	if math.Abs(e.Value()-2) > 1e-9 {
		t.Fatalf("EMA should converge to the constant input, got %g", e.Value())
	}
}

// Property: the EMA value always stays within the convex hull of its seed
// and all observed inputs, for any weights in (0,1].
func TestEMABoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		beta := 0.05 + 0.9*rng.Float64()
		e := NewEMAInit(beta, rng.Float64())
		lo, hi := e.Value(), e.Value()
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 10
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if rng.Intn(2) == 0 {
				e.Update(x)
			} else {
				e.UpdateWeighted(rng.Float64(), x)
			}
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
