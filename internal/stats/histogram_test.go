package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.ObserveAll([]float64{0, 1.9, 2, 5.5, 9.99})
	want := []int{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d, want 5", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Observe(-1)
	h.Observe(10) // hi is exclusive
	h.Observe(25)
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d, want 1/2", h.Under, h.Over)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
}

func TestHistogramDensitySums(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.ObserveAll([]float64{0.5, 1.5, 2.5, 3.5, 99}) // one over-range
	var sum float64
	for _, d := range h.Density() {
		sum += d
	}
	if math.Abs(sum-0.8) > 1e-12 {
		t.Fatalf("in-range density = %g, want 0.8", sum)
	}
}

func TestHistogramDensityEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, d := range h.Density() {
		if d != 0 {
			t.Fatal("empty histogram density should be all zeros")
		}
	}
}

func TestHistogramBinGeometry(t *testing.T) {
	h := NewHistogram(2, 12, 5)
	if h.BinWidth() != 2 {
		t.Fatalf("bin width = %g, want 2", h.BinWidth())
	}
	if h.BinCenter(0) != 3 || h.BinCenter(4) != 11 {
		t.Fatalf("bin centers = %g, %g", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.ObserveAll([]float64{0.5, 1.5, 1.5, 2.5})
	if h.Mode() != 1 {
		t.Fatalf("mode = %d, want 1", h.Mode())
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":  func() { NewHistogram(0, 1, 0) },
		"hi <= lo":   func() { NewHistogram(5, 5, 3) },
		"hi flipped": func() { NewHistogram(5, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.ObserveAll([]float64{0.5, 0.5, 1.5, 3})
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatal("render should draw bars")
	}
	if !strings.Contains(out, "over-range: 1") {
		t.Fatalf("render should report out-of-range counts, got:\n%s", out)
	}
	if got := h.Render(0); !strings.Contains(got, "#") {
		t.Fatal("non-positive width should fall back to a default")
	}
}

func TestHistogramBoundaryRounding(t *testing.T) {
	// A value infinitesimally below Hi must land in the last bin, not
	// panic or spill over due to float rounding in the index computation.
	h := NewHistogram(0, 1, 10)
	h.Observe(math.Nextafter(1, 0))
	if h.Counts[9] != 1 {
		t.Fatalf("value just below Hi should land in last bin: %v", h.Counts)
	}
}
