package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside
// the range are counted in Under/Over rather than dropped, mirroring how
// the paper "cuts off" response times beyond 10s in Fig. 7 while still
// accounting for them.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram needs bins > 0, got %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram needs hi > lo, got [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe adds one value.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against float round-up at Hi-ε
			i--
		}
		h.Counts[i]++
	}
}

// ObserveAll adds every value in xs.
func (h *Histogram) ObserveAll(xs []float64) {
	for _, x := range xs {
		h.Observe(x)
	}
}

// Total returns the number of observed values, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns each bin's share of the total count (summing to <= 1;
// out-of-range observations take the rest). This is the y-axis of the
// paper's distribution figures.
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.total)
	}
	return d
}

// Mode returns the index of the fullest bin (first on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Render draws a textual bar chart with the given maximum bar width,
// used by the experiment CLI to display the distribution figures.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	dens := h.Density()
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%10.3f | %-*s %6.4f\n", h.BinCenter(i), width, strings.Repeat("#", bar), dens[i])
	}
	if h.Under > 0 || h.Over > 0 {
		fmt.Fprintf(&b, "(under-range: %d, over-range: %d of %d)\n", h.Under, h.Over, h.total)
	}
	return b.String()
}
