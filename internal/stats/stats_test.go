package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %g, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("single sample variance should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("stddev = %g, want 2", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %g, want 2.5", got)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g, want 1", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("p100 = %g, want 10", got)
	}
	if got := Percentile(xs, 90); !almostEq(got, 9.1, 1e-12) {
		t.Fatalf("p90 = %g, want 9.1", got)
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileSingleValue(t *testing.T) {
	if got := Percentile([]float64{7}, 33); got != 7 {
		t.Fatalf("single-sample percentile = %g, want 7", got)
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > 100")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2}
	sorted := []float64{1, 2, 3, 5, 8, 9}
	for _, p := range []float64{0, 10, 50, 90, 100} {
		if a, b := Percentile(xs, p), PercentileSorted(sorted, p); a != b {
			t.Fatalf("p%g: %g vs %g", p, a, b)
		}
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should return infinities")
	}
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %g/%g", Min(xs), Max(xs))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric data: ~0 skewness.
	if got := Skewness([]float64{1, 2, 3, 4, 5}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("symmetric skewness = %g, want 0", got)
	}
	// Right-skewed data: positive skewness. This is the shape of the
	// paper's QoS marginals (Fig. 7).
	right := []float64{1, 1, 1, 1, 2, 2, 3, 10, 50}
	if got := Skewness(right); got <= 0 {
		t.Fatalf("right-skewed data gave skewness %g", got)
	}
	if Skewness([]float64{1, 2}) != 0 {
		t.Fatal("too-few samples should give 0")
	}
	if Skewness([]float64{2, 2, 2, 2}) != 0 {
		t.Fatal("zero-variance data should give 0")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			if v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
