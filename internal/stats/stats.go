// Package stats provides the descriptive statistics used across the AMF
// reproduction: means, medians, percentiles (the paper's MRE/NPRE metrics
// are a median and a 90th percentile of relative errors), histograms for
// the distribution figures, and the exponential moving average that drives
// AMF's adaptive weights (paper Eq. 13-14).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks, without modifying xs. It returns 0
// for an empty slice and panics for p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but assumes xs is already sorted
// ascending, avoiding the copy. It panics for p outside [0, 100].
func PercentileSorted(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	return percentileSorted(xs, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the descriptive statistics reported in the paper's data
// statistics table (Fig. 6).
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		Median: percentileSorted(sorted, 50),
		StdDev: StdDev(xs),
		P90:    percentileSorted(sorted, 90),
		P99:    percentileSorted(sorted, 99),
	}
}

// Skewness returns the sample skewness (Fisher-Pearson) of xs, or 0 for
// fewer than three samples or zero variance. The paper's QoS marginals are
// "highly skewed" (Fig. 7); the dataset generator tests assert this.
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}
