package workload_test

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/workload"
)

// A merged invocation trace for ten users with heterogeneous rates and a
// flash crowd between minutes 20 and 30 — the kind of arrival process the
// adaptation simulator and the stream-ingest example replay.
func ExampleTrace() {
	events, err := workload.Trace(workload.TraceOptions{
		Users:       10,
		Horizon:     time.Hour,
		MeanRate:    60, // ~60 invocations per user per hour
		RateSigma:   0.8,
		FlashStart:  20 * time.Minute,
		FlashEnd:    30 * time.Minute,
		FlashFactor: 5,
		Seed:        1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	quiet := workload.CountInWindow(events, 0, 10*time.Minute)
	surge := workload.CountInWindow(events, 20*time.Minute, 30*time.Minute)
	fmt.Printf("events are time-ordered: %v\n", sorted(events))
	fmt.Printf("flash window busier than a quiet window: %v\n", surge > 2*quiet)
	// Output:
	// events are time-ordered: true
	// flash window busier than a quiet window: true
}

func sorted(events []workload.Event) bool {
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			return false
		}
	}
	return true
}
