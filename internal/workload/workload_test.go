package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestArrivalsCountMatchesRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rate = 50.0
	var total int
	const trials = 40
	for i := 0; i < trials; i++ {
		total += len(Arrivals(rng, rate, time.Hour))
	}
	mean := float64(total) / trials
	// Poisson(50): mean 50, sd ~7.1; the trial mean has sd ~1.1.
	if math.Abs(mean-rate) > 5 {
		t.Fatalf("mean arrivals %.1f, want ≈ %.0f", mean, rate)
	}
}

func TestArrivalsSortedWithinHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	times := Arrivals(rng, 20, time.Minute)
	for i, ts := range times {
		if ts < 0 || ts >= time.Minute {
			t.Fatalf("event %d at %v outside horizon", i, ts)
		}
		if i > 0 && ts < times[i-1] {
			t.Fatal("arrivals must be non-decreasing")
		}
	}
}

func TestArrivalsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := Arrivals(rng, 0, time.Hour); got != nil {
		t.Fatal("zero rate should yield no events")
	}
	if got := Arrivals(rng, 5, 0); got != nil {
		t.Fatal("zero horizon should yield no events")
	}
}

func TestPoissonCountMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const mean = 3.5
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		k := float64(PoissonCount(rng, mean))
		sum += k
		sumSq += k * k
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mean) > 0.1 {
		t.Fatalf("mean = %.3f, want ≈ %.1f", m, mean)
	}
	// Poisson variance equals the mean.
	if math.Abs(v-mean) > 0.2 {
		t.Fatalf("variance = %.3f, want ≈ %.1f", v, mean)
	}
	if PoissonCount(rng, 0) != 0 {
		t.Fatal("zero mean should give zero count")
	}
}

func TestTraceValidation(t *testing.T) {
	cases := map[string]TraceOptions{
		"users":   {Horizon: time.Hour, MeanRate: 1},
		"horizon": {Users: 2, MeanRate: 1},
		"rate":    {Users: 2, Horizon: time.Hour},
		"sigma":   {Users: 2, Horizon: time.Hour, MeanRate: 1, RateSigma: -1},
	}
	for name, opts := range cases {
		if _, err := Trace(opts); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestTraceMergedAndOrdered(t *testing.T) {
	events, err := Trace(TraceOptions{Users: 10, Horizon: time.Hour, MeanRate: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	usersSeen := map[int]bool{}
	for i, e := range events {
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatal("events must be time-ordered")
		}
		if e.User < 0 || e.User >= 10 {
			t.Fatalf("event user %d out of range", e.User)
		}
		usersSeen[e.User] = true
	}
	if len(usersSeen) < 8 {
		t.Fatalf("only %d of 10 users produced events at rate 30", len(usersSeen))
	}
}

func TestTraceHeterogeneousRatesSpread(t *testing.T) {
	events, err := Trace(TraceOptions{Users: 30, Horizon: time.Hour, MeanRate: 40, RateSigma: 1.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[int]int{}
	for _, e := range events {
		perUser[e.User]++
	}
	min, max := math.MaxInt, 0
	for u := 0; u < 30; u++ {
		c := perUser[u]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// With sigma 1.2 the busiest user should far outpace the quietest.
	if max < 3*(min+1) {
		t.Fatalf("heterogeneity too weak: min=%d max=%d", min, max)
	}
}

func TestTraceFlashCrowd(t *testing.T) {
	base := TraceOptions{Users: 20, Horizon: time.Hour, MeanRate: 30, Seed: 7}
	flash := base
	flash.FlashStart = 20 * time.Minute
	flash.FlashEnd = 30 * time.Minute
	flash.FlashFactor = 6

	quiet, err := Trace(base)
	if err != nil {
		t.Fatal(err)
	}
	surged, err := Trace(flash)
	if err != nil {
		t.Fatal(err)
	}
	quietWindow := CountInWindow(quiet, 20*time.Minute, 30*time.Minute)
	surgeWindow := CountInWindow(surged, 20*time.Minute, 30*time.Minute)
	if surgeWindow < 2*quietWindow {
		t.Fatalf("flash crowd too weak: %d vs %d baseline", surgeWindow, quietWindow)
	}
	// Outside the window the two traces should have similar volume.
	quietOut := len(quiet) - quietWindow
	surgeOut := CountInWindow(surged, 0, 20*time.Minute) + CountInWindow(surged, 30*time.Minute, time.Hour)
	if surgeOut < quietOut/2 || surgeOut > quietOut*2 {
		t.Fatalf("off-window volume distorted: %d vs %d", surgeOut, quietOut)
	}
}

func TestTraceDeterministic(t *testing.T) {
	opts := TraceOptions{Users: 5, Horizon: time.Minute, MeanRate: 10, Seed: 9}
	a, _ := Trace(opts)
	b, _ := Trace(opts)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different events")
		}
	}
}
