// Package workload generates invocation arrival processes for the
// adaptation and prediction-service simulations: Poisson arrivals with
// per-user heterogeneous rates, merged multi-user traces, and flash-crowd
// rate surges. The paper's framework consumes "sequentially observed QoS
// data" (Algorithm 1); this package supplies realistic sequences.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Arrivals returns the event times of a homogeneous Poisson process with
// the given rate (events per unit interval) over [0, horizon), via
// exponential inter-arrival gaps. A non-positive rate yields no events.
func Arrivals(rng *rand.Rand, rate float64, horizon time.Duration) []time.Duration {
	if rate <= 0 || horizon <= 0 {
		return nil
	}
	var out []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(horizon))
		// Guard against zero-duration gaps from extreme draws.
		if gap <= 0 {
			gap = 1
		}
		t += gap
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// PoissonCount draws a Poisson-distributed count with the given mean
// (Knuth's algorithm; fine for the small means used in simulations).
func PoissonCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Event is one invocation arrival of a trace.
type Event struct {
	Time time.Duration
	User int
}

// TraceOptions shapes a multi-user invocation trace.
type TraceOptions struct {
	Users   int
	Horizon time.Duration
	// MeanRate is the average per-user event rate per horizon. Each
	// user's own rate is MeanRate scaled by a log-normal factor with
	// the given RateSigma (0 = homogeneous users).
	MeanRate  float64
	RateSigma float64
	// FlashStart/FlashEnd bound an optional surge window during which
	// every rate is multiplied by FlashFactor (ignored unless
	// FlashFactor > 1 and the window is non-empty).
	FlashStart, FlashEnd time.Duration
	FlashFactor          float64
	Seed                 int64
}

// Validate reports the first problem with the options.
func (o TraceOptions) Validate() error {
	switch {
	case o.Users <= 0:
		return fmt.Errorf("workload: Users must be positive, got %d", o.Users)
	case o.Horizon <= 0:
		return fmt.Errorf("workload: Horizon must be positive, got %v", o.Horizon)
	case o.MeanRate <= 0:
		return fmt.Errorf("workload: MeanRate must be positive, got %g", o.MeanRate)
	case o.RateSigma < 0:
		return fmt.Errorf("workload: RateSigma must be non-negative, got %g", o.RateSigma)
	}
	return nil
}

// Trace generates the merged, time-ordered invocation trace.
func Trace(opts TraceOptions) ([]Event, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	flash := opts.FlashFactor > 1 && opts.FlashEnd > opts.FlashStart
	var out []Event
	for u := 0; u < opts.Users; u++ {
		rate := opts.MeanRate
		if opts.RateSigma > 0 {
			// Log-normal heterogeneity, mean-normalized.
			rate *= math.Exp(opts.RateSigma*rng.NormFloat64() - opts.RateSigma*opts.RateSigma/2)
		}
		times := Arrivals(rng, rate, opts.Horizon)
		if flash {
			// Thin a boosted process: draw extra events inside the
			// window at rate·(factor−1), scaled to the window share.
			windowShare := float64(opts.FlashEnd-opts.FlashStart) / float64(opts.Horizon)
			extra := Arrivals(rng, rate*(opts.FlashFactor-1)*windowShare, opts.Horizon)
			for _, t := range extra {
				// Map extra events uniformly into the surge window.
				frac := float64(t) / float64(opts.Horizon)
				times = append(times, opts.FlashStart+time.Duration(frac*float64(opts.FlashEnd-opts.FlashStart)))
			}
		}
		for _, t := range times {
			out = append(out, Event{Time: t, User: u})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].User < out[j].User
	})
	return out, nil
}

// CountInWindow returns how many events fall in [from, to).
func CountInWindow(events []Event, from, to time.Duration) int {
	n := 0
	for _, e := range events {
		if e.Time >= from && e.Time < to {
			n++
		}
	}
	return n
}
