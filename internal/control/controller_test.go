package control

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/obs"
)

// synthetic drives the controller with a scripted rejection-rate curve:
// each call to step(rate) adds one epoch's worth of arrivals and sheds
// at that rate, then runs the epoch.
type synthetic struct {
	arrived, shed int64
	queueWait     float64
}

func (s *synthetic) signals() Signals {
	return Signals{
		Arrived:      func() int64 { return s.arrived },
		Shed:         func() int64 { return s.shed },
		QueueWaitP99: func() float64 { return s.queueWait },
		InFlight:     func() float64 { return 4 },
		Staleness:    func() time.Duration { return 80 * time.Millisecond },
	}
}

func (s *synthetic) step(c *Controller, rate float64) {
	const perEpoch = 10000
	s.arrived += perEpoch
	s.shed += int64(rate * perEpoch)
	c.RunEpoch()
}

// TestControllerConvergence is the satellite convergence test: a
// rejection rate above 10% must widen shedding (publish interval grows,
// batch cap grows, sheddable watermark drops), a rate below 1% must
// relax every tunable back to its baseline, and no move may ever leave
// the declared bounds.
func TestControllerConvergence(t *testing.T) {
	reg := NewRegistry()
	pub := reg.Duration("engine.publish_interval", "h", 50*time.Millisecond, time.Millisecond, 2*time.Second, SourceDefault)
	batch := reg.Int("engine.ingest_batch_cap", "h", 256, 64, 16384, SourceDefault)
	wm := reg.Float("engine.admit_sheddable_watermark", "h", 0.9, 0.05, 1.0, SourceDefault)

	c := NewController(ControllerConfig{
		Epoch:         time.Second, // irrelevant: epochs driven manually
		QueueWaitHigh: -1,          // isolate the rejection-rate law
		Signals:       Signals{},   // replaced below
		Rules: []Rule{
			{Tunable: pub, WidenFactor: 1.6, RelaxRate: 0.5},
			{Tunable: batch, WidenFactor: 2.0, RelaxRate: 0.5},
			{Tunable: wm, WidenFactor: 0.6, RelaxRate: 0.5},
		},
	})
	syn := &synthetic{}
	c.cfg.Signals = syn.signals()

	inBounds := func(context string) {
		t.Helper()
		for _, tn := range reg.List() {
			v := tn.Float()
			lo, hi := tn.Bounds()
			if v < lo || v > hi {
				t.Fatalf("%s: %s = %g outside [%g, %g]", context, tn.Name(), v, lo, hi)
			}
		}
	}

	// Phase 1: sustained 25% rejection → every rule widens monotonically
	// until clamped at its bound.
	prevPub, prevWM, prevBatch := pub.Load(), wm.Load(), batch.Load()
	for i := 0; i < 12; i++ {
		syn.step(c, 0.25)
		inBounds("overload epoch")
		if pub.Load() < prevPub || batch.Load() < prevBatch || wm.Load() > prevWM {
			t.Fatalf("epoch %d moved against the overload direction: pub %v batch %d wm %g",
				i, pub.Load(), batch.Load(), wm.Load())
		}
		prevPub, prevWM, prevBatch = pub.Load(), wm.Load(), batch.Load()
	}
	if pub.Load() != 2*time.Second {
		t.Fatalf("publish interval should rail at max: %v", pub.Load())
	}
	if batch.Load() != 16384 {
		t.Fatalf("batch cap should rail at max: %d", batch.Load())
	}
	if wm.Load() != 0.05 {
		t.Fatalf("sheddable watermark should rail at min: %g", wm.Load())
	}
	if c.RejectionRate() != 0.25 {
		t.Fatalf("last epoch rate: %g", c.RejectionRate())
	}
	if c.lastState.Load() != stateOverloaded {
		t.Fatalf("state: %d", c.lastState.Load())
	}

	// Phase 2: steady zone (between thresholds) → hold.
	adjBefore := c.Adjustments()
	syn.step(c, 0.05)
	if c.Adjustments() != adjBefore {
		t.Fatal("steady epoch must not move tunables")
	}
	if c.lastState.Load() != stateSteady {
		t.Fatalf("state after steady epoch: %d", c.lastState.Load())
	}

	// Phase 3: calm (<1%) → geometric relaxation back to baseline.
	for i := 0; i < 40 && (pub.Load() != 50*time.Millisecond ||
		batch.Load() != 256 || wm.Load() != 0.9); i++ {
		syn.step(c, 0.0)
		inBounds("calm epoch")
	}
	if pub.Load() != 50*time.Millisecond || batch.Load() != 256 || wm.Load() != 0.9 {
		t.Fatalf("did not relax to baseline: pub %v batch %d wm %g",
			pub.Load(), batch.Load(), wm.Load())
	}
	if c.lastState.Load() != stateCalm {
		t.Fatalf("state after calm epoch: %d", c.lastState.Load())
	}
	// Relaxation terminates: one more calm epoch makes no further moves.
	adjBefore = c.Adjustments()
	syn.step(c, 0.0)
	if c.Adjustments() != adjBefore {
		t.Fatal("relaxation did not terminate at baseline")
	}
}

// TestControllerSkipsOverridden: an API override pins a tunable; the
// controller must not move it in either direction.
func TestControllerSkipsOverridden(t *testing.T) {
	reg := NewRegistry()
	pub := reg.Duration("engine.publish_interval", "h", 50*time.Millisecond, time.Millisecond, 2*time.Second, SourceDefault)
	pinned := reg.Int("engine.ingest_batch_cap", "h", 256, 64, 16384, SourceDefault)
	if err := pinned.SetString("512", SourceOverride); err != nil {
		t.Fatal(err)
	}

	c := NewController(ControllerConfig{
		QueueWaitHigh: -1,
		Rules: []Rule{
			{Tunable: pub, WidenFactor: 1.6, RelaxRate: 0.5},
			{Tunable: pinned, WidenFactor: 2.0, RelaxRate: 0.5},
		},
	})
	syn := &synthetic{}
	c.cfg.Signals = syn.signals()

	syn.step(c, 0.5) // overload
	if pinned.Load() != 512 {
		t.Fatalf("override moved under overload: %d", pinned.Load())
	}
	if pub.Load() == 50*time.Millisecond {
		t.Fatal("unpinned tunable should have widened")
	}
	syn.step(c, 0.0) // calm
	if pinned.Load() != 512 {
		t.Fatalf("override moved during relaxation: %d", pinned.Load())
	}
}

// TestControllerQueueWaitTrigger: a saturated queue marks the epoch
// overloaded even when the rejection rate is still low — the controller
// widens before shedding starts.
func TestControllerQueueWaitTrigger(t *testing.T) {
	reg := NewRegistry()
	pub := reg.Duration("engine.publish_interval", "h", 50*time.Millisecond, time.Millisecond, 2*time.Second, SourceDefault)
	c := NewController(ControllerConfig{
		QueueWaitHigh: 0.25,
		Rules:         []Rule{{Tunable: pub, WidenFactor: 1.6, RelaxRate: 0.5}},
	})
	syn := &synthetic{queueWait: 0.5}
	c.cfg.Signals = syn.signals()
	syn.step(c, 0.0)
	if pub.Load() <= 50*time.Millisecond {
		t.Fatalf("queue-wait overload should widen: %v", pub.Load())
	}
	if c.lastState.Load() != stateOverloaded {
		t.Fatalf("state: %d", c.lastState.Load())
	}
}

// TestControllerMetrics: Register exposes the amf_control_* families
// and they move with epochs.
func TestControllerMetrics(t *testing.T) {
	reg := NewRegistry()
	pub := reg.Duration("engine.publish_interval", "h", 50*time.Millisecond, time.Millisecond, 2*time.Second, SourceDefault)
	c := NewController(ControllerConfig{
		QueueWaitHigh: -1,
		Rules:         []Rule{{Tunable: pub, WidenFactor: 1.6, RelaxRate: 0.5}},
	})
	or := obs.NewRegistry()
	c.Register(or)
	syn := &synthetic{}
	c.cfg.Signals = syn.signals()
	syn.step(c, 0.5)

	var buf bytes.Buffer
	if err := or.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"amf_control_epochs_total 1",
		`amf_control_epoch_adjustments_total{tunable="engine.publish_interval"} 1`,
		`amf_control_tunable{name="engine.publish_interval"} 0.08`,
		"amf_control_epoch_rejection_rate 0.5",
		"amf_control_epoch_state 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if _, err := obs.ParseMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}

// TestControllerStartStop: the ticker loop runs epochs and Stop halts it.
func TestControllerStartStop(t *testing.T) {
	reg := NewRegistry()
	pub := reg.Duration("engine.publish_interval", "h", 50*time.Millisecond, time.Millisecond, 2*time.Second, SourceDefault)
	syn := &synthetic{}
	c := NewController(ControllerConfig{
		Epoch:         2 * time.Millisecond,
		QueueWaitHigh: -1,
		Signals:       syn.signals(),
		Rules:         []Rule{{Tunable: pub, WidenFactor: 1.6, RelaxRate: 0.5}},
	})
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for c.Epochs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Epochs() == 0 {
		t.Fatal("no epochs ran")
	}
	n := c.Epochs()
	time.Sleep(10 * time.Millisecond)
	if c.Epochs() != n {
		t.Fatal("epochs kept running after Stop")
	}
}
