// Package control is the runtime control plane: typed tunables with
// declared bounds that hot paths read through a single atomic load, a
// registry that makes every tunable discoverable (GET /api/v1/config,
// docs lints), and an epoch controller (controller.go) that adapts
// registered tunables from free observability signals.
//
// The design inverts the repo's original configuration flow. Before,
// every knob (-publish-interval, batch caps, queue watermarks) was
// frozen into a struct field at construction; changing one meant a
// restart. Now construction seeds a *baseline* into the registry and
// the serving layers load the live value on each use. Three writers may
// move a tunable after construction — operator flags (at startup), the
// epoch controller (within bounds), and explicit API overrides (which
// pin the value so the controller leaves it alone) — and every write is
// clamped to the bounds declared at registration.
//
// The package also owns the SLO class vocabulary (critical / standard /
// sheddable) carried end to end in the X-Amf-Slo-Class header, because
// engine, server, and cluster all need it and control sits below all
// three in the import graph.
package control

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a request's SLO class. Classes order from most to least
// important: admission never sheds Critical, Standard is shed only
// when its latency budget is blown, and Sheddable is the first tier
// sacrificed under overload (the engine's async ingest queue is
// treated as sheddable-class work).
type Class uint8

const (
	Critical Class = iota
	Standard
	Sheddable
	// NumClasses sizes per-class arrays indexed by Class.
	NumClasses = 3
)

// ClassHeader is the HTTP header carrying the SLO class end to end
// (client → gateway → server).
const ClassHeader = "X-Amf-Slo-Class"

func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Sheddable:
		return "sheddable"
	default:
		return "standard"
	}
}

// Classes lists every SLO class, most important first.
func Classes() []Class { return []Class{Critical, Standard, Sheddable} }

// ParseClass maps the wire form to a Class. Unknown or empty strings
// report ok=false; callers default to Standard.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "critical":
		return Critical, true
	case "standard":
		return Standard, true
	case "sheddable":
		return Sheddable, true
	}
	return Standard, false
}

// ClassFromHeader reads the request's SLO class, defaulting to
// Standard when the header is absent or unrecognised.
func ClassFromHeader(h http.Header) Class {
	c, _ := ParseClass(h.Get(ClassHeader))
	return c
}

// classKey is an unexported context key for the request's SLO class.
type classKey struct{}

// NewContext stamps the SLO class on a context so downstream proxy
// hops (the gateway's fan-out helpers) can recover it without
// re-parsing headers.
func NewContext(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// FromContext recovers the class stamped by NewContext, defaulting to
// Standard.
func FromContext(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return Standard
}

// Source records where a tunable's current value came from.
type Source int32

const (
	// SourceDefault: the package default seeded at registration.
	SourceDefault Source = iota
	// SourceFlag: an operator flag supplied the baseline.
	SourceFlag
	// SourceAdapted: the epoch controller moved the value.
	SourceAdapted
	// SourceOverride: an explicit API override. Overridden tunables
	// are pinned — the controller skips them until the override is
	// cleared by another Set.
	SourceOverride
)

func (s Source) String() string {
	switch s {
	case SourceFlag:
		return "flag"
	case SourceAdapted:
		return "adapted"
	case SourceOverride:
		return "override"
	default:
		return "default"
	}
}

// Tunable is the uniform view of a registered knob, used by the config
// API, the docs lint, and the epoch controller. The typed accessors
// (Int.Load, Duration.Load, Float.Load) are what hot paths call.
type Tunable interface {
	Name() string
	Help() string
	Kind() string
	Source() Source

	// String forms for the config API and docs.
	Value() string
	Baseline() string
	MinString() string
	MaxString() string

	// SetString parses and applies v with the given source. Values
	// outside the declared bounds are an error (the API is strict);
	// the controller's float path clamps instead.
	SetString(v string, src Source) error

	// Float view for the controller: current value, baseline, and
	// bounds mapped to float64 (durations in seconds).
	Float() float64
	BaselineFloat() float64
	Bounds() (min, max float64)
	// SetFloat clamps v to bounds, applies it, and returns the value
	// actually stored.
	SetFloat(v float64, src Source) float64
}

// meta is the shared identity + source tracking for all tunable kinds.
type meta struct {
	name string
	help string
	src  atomic.Int32
}

func (m *meta) Name() string   { return m.name }
func (m *meta) Help() string   { return m.help }
func (m *meta) Source() Source { return Source(m.src.Load()) }

// Int is an integer tunable. Load is one atomic load.
type Int struct {
	meta
	v        atomic.Int64
	baseline int64
	min, max int64
}

func (t *Int) Load() int    { return int(t.v.Load()) }
func (t *Int) Kind() string { return "int" }
func (t *Int) Value() string {
	return strconv.FormatInt(t.v.Load(), 10)
}
func (t *Int) Baseline() string  { return strconv.FormatInt(t.baseline, 10) }
func (t *Int) MinString() string { return strconv.FormatInt(t.min, 10) }
func (t *Int) MaxString() string { return strconv.FormatInt(t.max, 10) }

// Set clamps v to bounds, stores it, and returns the stored value.
func (t *Int) Set(v int, src Source) int {
	c := clampI(int64(v), t.min, t.max)
	t.v.Store(c)
	t.src.Store(int32(src))
	return int(c)
}

func (t *Int) SetString(v string, src Source) error {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return fmt.Errorf("%s: not an integer: %q", t.name, v)
	}
	if n < t.min || n > t.max {
		return fmt.Errorf("%s: %d out of bounds [%d, %d]", t.name, n, t.min, t.max)
	}
	t.v.Store(n)
	t.src.Store(int32(src))
	return nil
}

func (t *Int) Float() float64         { return float64(t.v.Load()) }
func (t *Int) BaselineFloat() float64 { return float64(t.baseline) }
func (t *Int) Bounds() (float64, float64) {
	return float64(t.min), float64(t.max)
}
func (t *Int) SetFloat(v float64, src Source) float64 {
	return float64(t.Set(int(math.Round(v)), src))
}

// Duration is a time.Duration tunable stored as nanoseconds.
type Duration struct {
	meta
	v        atomic.Int64
	baseline time.Duration
	min, max time.Duration
}

func (t *Duration) Load() time.Duration { return time.Duration(t.v.Load()) }
func (t *Duration) Kind() string        { return "duration" }
func (t *Duration) Value() string       { return time.Duration(t.v.Load()).String() }
func (t *Duration) Baseline() string    { return t.baseline.String() }
func (t *Duration) MinString() string   { return t.min.String() }
func (t *Duration) MaxString() string   { return t.max.String() }

func (t *Duration) Set(v time.Duration, src Source) time.Duration {
	c := time.Duration(clampI(int64(v), int64(t.min), int64(t.max)))
	t.v.Store(int64(c))
	t.src.Store(int32(src))
	return c
}

func (t *Duration) SetString(v string, src Source) error {
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("%s: not a duration: %q", t.name, v)
	}
	if d < t.min || d > t.max {
		return fmt.Errorf("%s: %s out of bounds [%s, %s]", t.name, d, t.min, t.max)
	}
	t.v.Store(int64(d))
	t.src.Store(int32(src))
	return nil
}

func (t *Duration) Float() float64         { return time.Duration(t.v.Load()).Seconds() }
func (t *Duration) BaselineFloat() float64 { return t.baseline.Seconds() }
func (t *Duration) Bounds() (float64, float64) {
	return t.min.Seconds(), t.max.Seconds()
}
func (t *Duration) SetFloat(v float64, src Source) float64 {
	return t.Set(time.Duration(v*float64(time.Second)), src).Seconds()
}

// Float is a float64 tunable stored as IEEE-754 bits.
type Float struct {
	meta
	bits     atomic.Uint64
	baseline float64
	min, max float64
}

func (t *Float) Load() float64 { return math.Float64frombits(t.bits.Load()) }
func (t *Float) Kind() string  { return "float" }
func (t *Float) Value() string {
	return strconv.FormatFloat(t.Load(), 'g', -1, 64)
}
func (t *Float) Baseline() string {
	return strconv.FormatFloat(t.baseline, 'g', -1, 64)
}
func (t *Float) MinString() string { return strconv.FormatFloat(t.min, 'g', -1, 64) }
func (t *Float) MaxString() string { return strconv.FormatFloat(t.max, 'g', -1, 64) }

func (t *Float) Set(v float64, src Source) float64 {
	c := clampF(v, t.min, t.max)
	t.bits.Store(math.Float64bits(c))
	t.src.Store(int32(src))
	return c
}

func (t *Float) SetString(v string, src Source) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("%s: not a float: %q", t.name, v)
	}
	if f < t.min || f > t.max {
		return fmt.Errorf("%s: %g out of bounds [%g, %g]", t.name, f, t.min, t.max)
	}
	t.bits.Store(math.Float64bits(f))
	t.src.Store(int32(src))
	return nil
}

func (t *Float) Float() float64             { return t.Load() }
func (t *Float) BaselineFloat() float64     { return t.baseline }
func (t *Float) Bounds() (float64, float64) { return t.min, t.max }
func (t *Float) SetFloat(v float64, src Source) float64 {
	return t.Set(v, src)
}

// Registry holds every tunable a process has declared. Registration
// happens at construction time (engine.New, Server.EnableAdmission);
// lookups after that are read-only and lock-free for hot paths (the
// mutex only guards the name map during registration and List).
type Registry struct {
	mu     sync.Mutex
	byName map[string]Tunable
	order  []Tunable
}

func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Tunable)}
}

// Int registers an integer tunable. baseline is the value after flags
// are applied — it is both the initial value and the target the epoch
// controller relaxes back to when load subsides. Registration panics on
// duplicate names or a baseline outside [min, max]: both are programmer
// errors caught by any test that constructs the component.
func (r *Registry) Int(name, help string, baseline, min, max int, src Source) *Int {
	if baseline < min || baseline > max {
		panic(fmt.Sprintf("control: tunable %s baseline %d outside [%d, %d]", name, baseline, min, max))
	}
	t := &Int{baseline: int64(baseline), min: int64(min), max: int64(max)}
	t.name, t.help = name, help
	t.v.Store(int64(baseline))
	t.src.Store(int32(src))
	r.add(t)
	return t
}

// Duration registers a duration tunable (see Int for semantics).
func (r *Registry) Duration(name, help string, baseline, min, max time.Duration, src Source) *Duration {
	if baseline < min || baseline > max {
		panic(fmt.Sprintf("control: tunable %s baseline %s outside [%s, %s]", name, baseline, min, max))
	}
	t := &Duration{baseline: baseline, min: min, max: max}
	t.name, t.help = name, help
	t.v.Store(int64(baseline))
	t.src.Store(int32(src))
	r.add(t)
	return t
}

// Float registers a float tunable (see Int for semantics).
func (r *Registry) Float(name, help string, baseline, min, max float64, src Source) *Float {
	if baseline < min || baseline > max || min > max {
		panic(fmt.Sprintf("control: tunable %s baseline %g outside [%g, %g]", name, baseline, min, max))
	}
	t := &Float{baseline: baseline, min: min, max: max}
	t.name, t.help = name, help
	t.bits.Store(math.Float64bits(baseline))
	t.src.Store(int32(src))
	r.add(t)
	return t
}

func (r *Registry) add(t Tunable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[t.Name()]; dup {
		panic("control: duplicate tunable " + t.Name())
	}
	r.byName[t.Name()] = t
	r.order = append(r.order, t)
}

// Lookup finds a tunable by name.
func (r *Registry) Lookup(name string) (Tunable, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byName[name]
	return t, ok
}

// List returns every registered tunable sorted by name.
func (r *Registry) List() []Tunable {
	r.mu.Lock()
	out := make([]Tunable, len(r.order))
	copy(out, r.order)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// FlagSource maps "was this flag explicitly set" to the matching
// source, for cmds seeding baselines from their flag sets.
func FlagSource(explicit bool) Source {
	if explicit {
		return SourceFlag
	}
	return SourceDefault
}

func clampI(v, min, max int64) int64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

func clampF(v, min, max float64) float64 {
	if v < min || math.IsNaN(v) {
		return min
	}
	if v > max {
		return max
	}
	return v
}
