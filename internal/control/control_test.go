package control

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"critical", Critical, true},
		{"standard", Standard, true},
		{"sheddable", Sheddable, true},
		{"", Standard, false},
		{"CRITICAL", Standard, false},
		{"bulk", Standard, false},
	}
	for _, c := range cases {
		got, ok := ParseClass(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	h := http.Header{}
	if got := ClassFromHeader(h); got != Standard {
		t.Errorf("missing header: got %v, want standard", got)
	}
	h.Set(ClassHeader, "sheddable")
	if got := ClassFromHeader(h); got != Sheddable {
		t.Errorf("sheddable header: got %v", got)
	}
	for _, c := range Classes() {
		rt, ok := ParseClass(c.String())
		if !ok || rt != c {
			t.Errorf("round trip %v failed: %v %v", c, rt, ok)
		}
	}
}

func TestClassContext(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != Standard {
		t.Fatalf("empty context: got %v", got)
	}
	ctx = NewContext(ctx, Critical)
	if got := FromContext(ctx); got != Critical {
		t.Fatalf("stamped context: got %v", got)
	}
}

func TestTunableBoundsAndSources(t *testing.T) {
	r := NewRegistry()
	ti := r.Int("t.int", "help", 100, 10, 1000, SourceDefault)
	td := r.Duration("t.dur", "help", 50*time.Millisecond, time.Millisecond, 5*time.Second, SourceFlag)
	tf := r.Float("t.float", "help", 0.9, 0.05, 1.0, SourceDefault)

	if ti.Load() != 100 || td.Load() != 50*time.Millisecond || tf.Load() != 0.9 {
		t.Fatal("baselines not seeded")
	}
	if td.Source() != SourceFlag {
		t.Fatalf("flag source lost: %v", td.Source())
	}

	// Typed Set clamps.
	if got := ti.Set(5000, SourceAdapted); got != 1000 {
		t.Fatalf("Set clamp high: got %d", got)
	}
	if got := ti.Set(1, SourceAdapted); got != 10 {
		t.Fatalf("Set clamp low: got %d", got)
	}
	if ti.Source() != SourceAdapted {
		t.Fatalf("source not updated: %v", ti.Source())
	}

	// SetFloat clamps too (durations move in seconds).
	if got := td.SetFloat(100, SourceAdapted); got != 5.0 {
		t.Fatalf("duration SetFloat clamp: got %g", got)
	}
	if td.Load() != 5*time.Second {
		t.Fatalf("duration store: got %v", td.Load())
	}

	// SetString is strict: out-of-bounds is an error, value untouched.
	if err := tf.SetString("2.0", SourceOverride); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if tf.Load() != 0.9 {
		t.Fatalf("failed SetString must not move value: %g", tf.Load())
	}
	if err := tf.SetString("0.5", SourceOverride); err != nil {
		t.Fatalf("SetString: %v", err)
	}
	if tf.Load() != 0.5 || tf.Source() != SourceOverride {
		t.Fatalf("override not applied: %g %v", tf.Load(), tf.Source())
	}
	if err := ti.SetString("abc", SourceOverride); err == nil {
		t.Fatal("expected parse error")
	}

	// Registry views.
	if _, ok := r.Lookup("t.dur"); !ok {
		t.Fatal("Lookup miss")
	}
	list := r.List()
	if len(list) != 3 || list[0].Name() != "t.dur" && list[0].Name() != "t.float" && list[0].Name() != "t.int" {
		t.Fatalf("List: %d entries", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name() >= list[i].Name() {
			t.Fatal("List not sorted by name")
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Int("dup", "h", 1, 0, 10, SourceDefault)
	mustPanic(t, "duplicate name", func() { r.Float("dup", "h", 0.5, 0, 1, SourceDefault) })
	mustPanic(t, "baseline out of bounds", func() { r.Int("oob", "h", 100, 0, 10, SourceDefault) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestFlagSource(t *testing.T) {
	if FlagSource(true) != SourceFlag || FlagSource(false) != SourceDefault {
		t.Fatal("FlagSource mapping wrong")
	}
}
