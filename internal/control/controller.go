// The epoch controller: once per epoch it reads free signals the
// system already computes (shed/rejection counts, queue-wait p99,
// in-flight gauges, engine staleness), classifies the epoch as
// overloaded / calm / steady, and nudges registered tunables within
// their declared bounds. The adaptation law follows the rejection-rate
// playbook: the rejection rate over the last epoch is a free, online
// congestion signal — ~0% means headroom, above HighThreshold means
// the system is refusing work and should trade freshness/granularity
// for throughput, below LowThreshold means it can relax back toward
// the operator's baseline.

package control

import (
	"io"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/obs/trace"
)

// Signals are the controller's inputs, sampled once per epoch. All are
// optional (nil funcs read as zero); Arrived/Shed are cumulative
// counters — the controller differences consecutive epochs itself.
type Signals struct {
	// Arrived is the cumulative count of admission-considered work
	// (gate-evaluated requests plus engine enqueue attempts).
	Arrived func() int64
	// Shed is the cumulative count of refused work (gate sheds,
	// engine queue sheds, and drop-oldest victims).
	Shed func() int64
	// QueueWaitP99 is the engine ingest queue-wait p99 in seconds.
	QueueWaitP99 func() float64
	// InFlight is the number of requests currently being served.
	InFlight func() float64
	// Staleness is the age of the engine's published prediction view.
	Staleness func() time.Duration
}

// Rule binds one tunable to the adaptation law. Under overload the
// controller multiplies the current value by WidenFactor each epoch
// (factors > 1 grow toward max, < 1 shrink toward min — "widen" always
// means "respond to overload"); in calm epochs it recovers RelaxRate
// of the remaining gap back to the tunable's baseline. All moves are
// clamped to the tunable's bounds, and tunables pinned by an API
// override (SourceOverride) are skipped entirely.
type Rule struct {
	Tunable     Tunable
	WidenFactor float64
	RelaxRate   float64
}

// ControllerConfig configures an epoch controller.
type ControllerConfig struct {
	// Epoch is the adaptation period. Default 2s.
	Epoch time.Duration
	// HighThreshold: rejection rate above this marks the epoch
	// overloaded. Default 0.10.
	HighThreshold float64
	// LowThreshold: rejection rate below this (with queue wait also
	// calm) marks the epoch calm. Default 0.01.
	LowThreshold float64
	// QueueWaitHigh: a queue-wait p99 at or above this (seconds) also
	// marks the epoch overloaded, even with a low rejection rate.
	// Default 0.25s; set negative to disable.
	QueueWaitHigh float64

	Signals Signals
	Rules   []Rule

	// Tracer, when set, records one span per epoch that changed at
	// least one tunable, annotated with the epoch's signal readings.
	Tracer *trace.Recorder
	Logger *slog.Logger
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Epoch <= 0 {
		c.Epoch = 2 * time.Second
	}
	if c.HighThreshold <= 0 {
		c.HighThreshold = 0.10
	}
	if c.LowThreshold <= 0 {
		c.LowThreshold = 0.01
	}
	if c.QueueWaitHigh == 0 {
		c.QueueWaitHigh = 0.25
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Controller runs the epoch loop. Construct with NewController, attach
// metrics with Register, then Start/Stop. RunEpoch is exported for
// tests and amfbench to drive epochs deterministically.
type Controller struct {
	cfg ControllerConfig

	lastArrived int64
	lastShed    int64

	epochs      atomic.Int64
	adjustments map[string]*obs.Counter // by tunable name; nil until Register
	adjTotal    atomic.Int64
	lastRate    atomic.Uint64 // float64 bits
	lastState   atomic.Int32  // 0 steady, 1 overloaded, 2 calm

	mu      sync.Mutex // guards lastArrived/lastShed and Stop vs RunEpoch
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewController builds a controller; it does not start the loop.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Epoch reports the configured adaptation period.
func (c *Controller) Epoch() time.Duration { return c.cfg.Epoch }

// Register exposes the controller's metric families on r:
// amf_control_epochs_total, amf_control_epoch_adjustments_total{tunable},
// amf_control_epoch_rejection_rate, amf_control_epoch_state, and one
// amf_control_tunable{name} series per ruled tunable. Call once,
// before Start.
func (c *Controller) Register(r *obs.Registry) {
	r.CounterFunc("amf_control_epochs_total",
		"Adaptation epochs evaluated by the control-plane epoch controller.",
		c.epochs.Load)
	adj := r.NewCounterVec("amf_control_epoch_adjustments_total",
		"Tunable adjustments applied by the epoch controller, by tunable name.",
		"tunable")
	c.adjustments = make(map[string]*obs.Counter, len(c.cfg.Rules))
	tun := r.NewGaugeFuncVec("amf_control_tunable",
		"Live value of each controller-ruled tunable (durations in seconds).",
		"name")
	for _, rule := range c.cfg.Rules {
		t := rule.Tunable
		c.adjustments[t.Name()] = adj.With(t.Name())
		tun.With(t.Name(), t.Float)
	}
	r.GaugeFunc("amf_control_epoch_rejection_rate",
		"Rejection rate observed over the last completed adaptation epoch.",
		c.RejectionRate)
	r.GaugeFunc("amf_control_epoch_state",
		"Last epoch verdict: 0 steady, 1 overloaded, 2 calm.",
		func() float64 { return float64(c.lastState.Load()) })
}

// RejectionRate reports the shed fraction measured over the last
// completed epoch.
func (c *Controller) RejectionRate() float64 {
	return math.Float64frombits(c.lastRate.Load())
}

// Epochs reports how many epochs have been evaluated.
func (c *Controller) Epochs() int64 { return c.epochs.Load() }

// Adjustments reports how many tunable moves the controller has made.
func (c *Controller) Adjustments() int64 { return c.adjTotal.Load() }

// Start launches the epoch loop. Idempotent; Stop ends it.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	// Seed the deltas so the first epoch measures only its own window.
	c.lastArrived = c.read(c.cfg.Signals.Arrived)
	c.lastShed = c.read(c.cfg.Signals.Shed)
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Epoch)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.RunEpoch()
			}
		}
	}()
}

// Stop halts the epoch loop and waits for it to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

func (c *Controller) read(fn func() int64) int64 {
	if fn == nil {
		return 0
	}
	return fn()
}

func (c *Controller) readF(fn func() float64) float64 {
	if fn == nil {
		return 0
	}
	return fn()
}

// Epoch states, exposed via amf_control_epoch_state.
const (
	stateSteady int32 = iota
	stateOverloaded
	stateCalm
)

// RunEpoch evaluates one adaptation epoch: difference the cumulative
// arrival/shed counters, classify, and move ruled tunables. Safe to
// call concurrently with the ticker loop (it locks), but meant either
// driven by Start or called directly in tests.
func (c *Controller) RunEpoch() {
	c.mu.Lock()
	arrived := c.read(c.cfg.Signals.Arrived)
	shed := c.read(c.cfg.Signals.Shed)
	dArr := arrived - c.lastArrived
	dShed := shed - c.lastShed
	c.lastArrived = arrived
	c.lastShed = shed
	c.mu.Unlock()

	rate := 0.0
	if dArr > 0 {
		rate = float64(dShed) / float64(dArr)
	}
	c.lastRate.Store(math.Float64bits(rate))

	qwait := c.readF(c.cfg.Signals.QueueWaitP99)
	inflight := c.readF(c.cfg.Signals.InFlight)
	var stale time.Duration
	if c.cfg.Signals.Staleness != nil {
		stale = c.cfg.Signals.Staleness()
	}

	overloaded := rate > c.cfg.HighThreshold ||
		(c.cfg.QueueWaitHigh > 0 && qwait >= c.cfg.QueueWaitHigh)
	calm := !overloaded && rate < c.cfg.LowThreshold

	state := stateSteady
	moved := 0
	switch {
	case overloaded:
		state = stateOverloaded
		for _, rule := range c.cfg.Rules {
			moved += c.widen(rule)
		}
	case calm:
		state = stateCalm
		for _, rule := range c.cfg.Rules {
			moved += c.relax(rule)
		}
	}
	c.lastState.Store(state)
	c.epochs.Add(1)

	if moved > 0 {
		c.cfg.Logger.Debug("control epoch adjusted tunables",
			"rate", rate, "queue_wait_p99", qwait, "state", state, "moved", moved)
		if c.cfg.Tracer != nil {
			sp := c.cfg.Tracer.Start(trace.NewID(), 0, "control-epoch")
			sp.Annotate("rejection-rate", time.Duration(rate*float64(time.Second)))
			sp.Annotate("queue-wait-p99", time.Duration(qwait*float64(time.Second)))
			sp.Annotate("in-flight", time.Duration(inflight))
			sp.Annotate("staleness", stale)
			sp.Annotate("adjustments", time.Duration(moved))
			sp.FinishNow()
		}
	}
}

// widen moves one rule's tunable in its overload direction. Returns 1
// if the stored value changed.
func (c *Controller) widen(rule Rule) int {
	t := rule.Tunable
	if t.Source() == SourceOverride || rule.WidenFactor == 1 || rule.WidenFactor <= 0 {
		return 0
	}
	cur := t.Float()
	next := cur * rule.WidenFactor
	if cur == 0 { // escape a zero floor for growing rules
		min, _ := t.Bounds()
		next = math.Max(min, math.SmallestNonzeroFloat64)
	}
	return c.apply(t, next)
}

// relax recovers part of the gap back to the baseline. Returns 1 if
// the stored value changed.
func (c *Controller) relax(rule Rule) int {
	t := rule.Tunable
	if t.Source() == SourceOverride {
		return 0
	}
	cur, base := t.Float(), t.BaselineFloat()
	if cur == base {
		return 0
	}
	r := rule.RelaxRate
	if r <= 0 || r > 1 {
		r = 0.5
	}
	next := cur + (base-cur)*r
	// Snap when within 1% of baseline so relaxation terminates.
	if math.Abs(next-base) <= 0.01*math.Max(math.Abs(base), math.SmallestNonzeroFloat64) {
		next = base
	}
	return c.apply(t, next)
}

func (c *Controller) apply(t Tunable, next float64) int {
	before := t.Float()
	after := t.SetFloat(next, SourceAdapted)
	if after == before {
		return 0
	}
	c.adjTotal.Add(1)
	if ctr := c.adjustments[t.Name()]; ctr != nil {
		ctr.Inc()
	}
	return 1
}
