package ingest

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Writer is the client side of the stream-ingest protocol: a buffered
// line writer an execution middleware uses to push its QoS observations.
// Not safe for concurrent use; give each goroutine its own Writer.
type Writer struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// Dial connects to an ingest listener.
func Dial(addr string, timeout time.Duration) (*Writer, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial: %w", err)
	}
	return NewWriter(conn), nil
}

// NewWriter wraps an existing connection (useful with net.Pipe in tests).
func NewWriter(conn net.Conn) *Writer {
	return &Writer{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// Send buffers one observation line. timestampMs <= 0 omits the field
// (the server stamps on arrival).
func (w *Writer) Send(user, service string, value float64, timestampMs int64) error {
	if strings.ContainsAny(user, " \t\n") || strings.ContainsAny(service, " \t\n") {
		return fmt.Errorf("ingest: names must not contain whitespace: %q %q", user, service)
	}
	if user == "" || service == "" {
		return fmt.Errorf("ingest: user and service are required")
	}
	w.bw.WriteString(user)
	w.bw.WriteByte(' ')
	w.bw.WriteString(service)
	w.bw.WriteByte(' ')
	w.bw.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	if timestampMs > 0 {
		w.bw.WriteByte(' ')
		w.bw.WriteString(strconv.FormatInt(timestampMs, 10))
	}
	return w.bw.WriteByte('\n')
}

// Flush pushes buffered lines to the socket.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("ingest: flush: %w", err)
	}
	return nil
}

// Ping flushes and round-trips a PING/PONG, confirming the server has
// consumed everything sent before it.
func (w *Writer) Ping(timeout time.Duration) error {
	if _, err := w.bw.WriteString("PING\n"); err != nil {
		return fmt.Errorf("ingest: ping: %w", err)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if timeout > 0 {
		if err := w.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("ingest: ping deadline: %w", err)
		}
	}
	line, err := w.br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("ingest: ping read: %w", err)
	}
	if strings.TrimSpace(line) != "PONG" {
		return fmt.Errorf("ingest: unexpected ping reply %q", line)
	}
	return nil
}

// Close flushes and closes the connection.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	closeErr := w.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
