package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recordingSink captures ingested observations.
type recordingSink struct {
	mu  sync.Mutex
	got []string
	err error
}

func (r *recordingSink) Ingest(user, service string, value float64, ts int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.got = append(r.got, fmt.Sprintf("%s|%s|%g|%d", user, service, value, ts))
	return nil
}

func (r *recordingSink) lines() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.got))
	copy(out, r.got)
	return out
}

// startListener spins up a listener on a free port and returns it with a
// cancel function.
func startListener(t *testing.T, sink Sink) (*Listener, context.CancelFunc) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := l.Serve(ctx); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("listener did not stop")
		}
	})
	return l, cancel
}

func TestListenRejectsNilSink(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil sink should error")
	}
}

func TestStreamIngestEndToEnd(t *testing.T) {
	sink := &recordingSink{}
	l, _ := startListener(t, sink)

	w, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Send("app-1", "ws-a", 1.5, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Send("app-2", "ws-b", 0.25, 1234); err != nil {
		t.Fatal(err)
	}
	if err := w.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.lines()
	if len(got) != 2 {
		t.Fatalf("sink got %v", got)
	}
	if got[0] != "app-1|ws-a|1.5|0" || got[1] != "app-2|ws-b|0.25|1234" {
		t.Fatalf("sink got %v", got)
	}
	accepted, lines, rejected := l.Stats()
	if accepted != 1 || lines != 2 || rejected != 0 {
		t.Fatalf("stats = %d/%d/%d", accepted, lines, rejected)
	}
}

func TestStreamIngestRejectsMalformedLines(t *testing.T) {
	sink := &recordingSink{}
	l, _ := startListener(t, sink)
	w, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Raw writes bypass the Writer's validation.
	for _, raw := range []string{
		"only two\n",
		"a b notanumber\n",
		"a b -1\n",
		"a b NaN\n",
		"a b 1 notatimestamp\n",
		"a b 1 -5\n",
		"a b 1 2 3\n",
	} {
		if _, err := w.bw.WriteString(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Send("ok", "fine", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sink.lines(); len(got) != 1 || got[0] != "ok|fine|2|0" {
		t.Fatalf("sink got %v", got)
	}
	_, lines, rejected := l.Stats()
	if lines != 1 || rejected != 7 {
		t.Fatalf("lines=%d rejected=%d", lines, rejected)
	}
}

func TestStreamIngestSinkErrorsCountAsRejected(t *testing.T) {
	sink := &recordingSink{err: errors.New("downstream full")}
	l, _ := startListener(t, sink)
	w, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Send("u", "s", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, lines, rejected := l.Stats(); lines != 0 || rejected != 1 {
		t.Fatalf("lines=%d rejected=%d", lines, rejected)
	}
}

func TestStreamIngestManyConcurrentWriters(t *testing.T) {
	sink := &recordingSink{}
	l, _ := startListener(t, sink)
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := Dial(l.Addr().String(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer w.Close()
			for j := 0; j < per; j++ {
				if err := w.Send(fmt.Sprintf("u%d", i), fmt.Sprintf("s%d", j), 1, 0); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
			if err := w.Ping(5 * time.Second); err != nil {
				t.Errorf("ping: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(sink.lines()); got != writers*per {
		t.Fatalf("sink got %d lines, want %d", got, writers*per)
	}
}

func TestWriterValidation(t *testing.T) {
	sink := &recordingSink{}
	l, _ := startListener(t, sink)
	w, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Send("has space", "svc", 1, 0); err == nil {
		t.Error("whitespace in user should error")
	}
	if err := w.Send("u", "has\ttab", 1, 0); err == nil {
		t.Error("whitespace in service should error")
	}
	if err := w.Send("", "svc", 1, 0); err == nil {
		t.Error("empty user should error")
	}
}

func TestListenerCloseStopsServe(t *testing.T) {
	sink := &recordingSink{}
	l, err := Listen("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Serve(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not stop after Close")
	}
}

func TestSinkFuncAdapter(t *testing.T) {
	called := false
	f := SinkFunc(func(u, s string, v float64, ts int64) error {
		called = true
		return nil
	})
	if err := f.Ingest("a", "b", 1, 2); err != nil || !called {
		t.Fatal("adapter")
	}
}
