// Package ingest implements the stream-input side of the paper's QoS
// prediction service (Fig. 3, "Input Handling: the observed QoS data are
// collected and processed as formatted stream data"): a line-oriented TCP
// listener that execution middlewares write observations to, far cheaper
// per sample than HTTP for high-frequency monitoring feeds.
//
// Wire format, one observation per line:
//
//	<user> <service> <value> [timestampMs]
//
// e.g. "app-7 ws-weather 1.42 1718000000000". Responses are not sent per
// line; a client can send "PING\n" and read "PONG\n" to checkpoint.
package ingest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives parsed observations; the prediction server implements it.
type Sink interface {
	// Ingest handles one observation. name-based, as on the wire.
	Ingest(user, service string, value float64, timestampMs int64) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(user, service string, value float64, timestampMs int64) error

// Ingest implements Sink.
func (f SinkFunc) Ingest(user, service string, value float64, timestampMs int64) error {
	return f(user, service, value, timestampMs)
}

// Listener accepts TCP connections and feeds their observation lines to a
// Sink. Construct with Listen, stop with Close or by cancelling the
// context passed to Serve.
type Listener struct {
	ln   net.Listener
	sink Sink

	// MaxLineBytes bounds a single line (default 4096).
	MaxLineBytes int
	// IdleTimeout disconnects silent clients (default 5 minutes).
	IdleTimeout time.Duration

	accepted atomic.Int64
	lines    atomic.Int64
	rejected atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Listen binds a TCP address ("127.0.0.1:0" picks a free port).
func Listen(addr string, sink Sink) (*Listener, error) {
	if sink == nil {
		return nil, errors.New("ingest: nil sink")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen: %w", err)
	}
	return &Listener{
		ln:           ln,
		sink:         sink,
		MaxLineBytes: 4096,
		IdleTimeout:  5 * time.Minute,
		conns:        make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Stats returns (connections accepted, lines ingested, lines rejected).
func (l *Listener) Stats() (accepted, lines, rejected int64) {
	return l.accepted.Load(), l.lines.Load(), l.rejected.Load()
}

// Serve accepts connections until ctx is cancelled or the listener is
// closed. Each connection is handled on its own goroutine; Serve returns
// after the accept loop stops (it does not wait for in-flight
// connections, which are closed by Close/ctx).
func (l *Listener) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer func() {
		close(done)
		wg.Wait()
	}()
	go func() {
		select {
		case <-ctx.Done():
			l.ln.Close()
			l.closeConns()
		case <-done:
		}
	}()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ingest: accept: %w", err)
		}
		l.accepted.Add(1)
		l.track(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer l.track(conn, false)
			defer conn.Close()
			l.handle(conn)
		}()
	}
}

func (l *Listener) track(c net.Conn, add bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if add {
		l.conns[c] = struct{}{}
	} else {
		delete(l.conns, c)
	}
}

func (l *Listener) closeConns() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for c := range l.conns {
		c.Close()
	}
}

// Close stops accepting and disconnects all clients.
func (l *Listener) Close() error {
	err := l.ln.Close()
	l.closeConns()
	return err
}

func (l *Listener) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1024), l.MaxLineBytes)
	for {
		if l.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(l.IdleTimeout))
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "PING":
			if _, err := fmt.Fprintln(conn, "PONG"); err != nil {
				return
			}
			continue
		}
		if err := l.ingestLine(line); err != nil {
			l.rejected.Add(1)
			continue
		}
		l.lines.Add(1)
	}
}

// ingestLine parses "<user> <service> <value> [timestampMs]".
func (l *Listener) ingestLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 && len(fields) != 4 {
		return fmt.Errorf("ingest: want 3 or 4 fields, got %d", len(fields))
	}
	value, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return fmt.Errorf("ingest: bad value: %w", err)
	}
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("ingest: invalid QoS value %q", fields[2])
	}
	var ts int64
	if len(fields) == 4 {
		ts, err = strconv.ParseInt(fields[3], 10, 64)
		if err != nil || ts < 0 {
			return fmt.Errorf("ingest: bad timestamp %q", fields[3])
		}
	}
	return l.sink.Ingest(fields[0], fields[1], value, ts)
}
