package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/qoslab/amf/internal/matrix"
)

// BiasedMFConfig tunes the bias-augmented matrix factorization extension.
type BiasedMFConfig struct {
	// Rank is the latent dimensionality. Zero means 10.
	Rank int
	// LearnRate is the per-sample SGD step. Zero means 0.05.
	LearnRate float64
	// Reg is the shared regularization. Zero means 0.002; negative is
	// rejected.
	Reg float64
	// MaxEpochs bounds training. Zero means 300.
	MaxEpochs int
	// Tol declares convergence on relative RMSE improvement. Zero means
	// 1e-4.
	Tol float64
	// RMax normalizes values into [0,1]; must be positive.
	RMax float64
	// Seed fixes initialization and the epoch shuffles.
	Seed int64
}

func (c BiasedMFConfig) withDefaults() BiasedMFConfig {
	if c.Rank == 0 {
		c.Rank = 10
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.002
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 300
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// BiasedMF is the classic bias-augmented factorization (Koren et al.):
//
//	r̂_ij = μ + b_i + b_j + U_iᵀS_j
//
// trained by SGD on squared error. It is not part of the paper's Table I
// but is the natural "stronger PMF" an adopter would reach for, so the
// reproduction ships it as an extension baseline; AMF should still win
// the relative-error metrics against it (see the extended comparison).
type BiasedMF struct {
	cfg      BiasedMFConfig
	mu       float64
	userBias []float64
	itemBias []float64
	users    *matrix.Dense
	items    *matrix.Dense
	epochs   int
	rmse     float64
}

// TrainBiasedMF factorizes a frozen sparse QoS matrix.
func TrainBiasedMF(m *matrix.Sparse, cfg BiasedMFConfig) (*BiasedMF, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Rank < 0:
		return nil, fmt.Errorf("baseline: BiasedMF rank must be positive, got %d", cfg.Rank)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baseline: BiasedMF reg must be non-negative, got %g", cfg.Reg)
	case cfg.LearnRate < 0:
		return nil, fmt.Errorf("baseline: BiasedMF learn rate must be positive, got %g", cfg.LearnRate)
	case cfg.RMax <= 0:
		return nil, fmt.Errorf("baseline: BiasedMF RMax must be positive, got %g", cfg.RMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, cols, d := m.Rows(), m.Cols(), cfg.Rank
	b := &BiasedMF{
		cfg:      cfg,
		userBias: make([]float64, n),
		itemBias: make([]float64, cols),
		users:    matrix.NewDense(n, d),
		items:    matrix.NewDense(cols, d),
	}
	scale := 0.05
	b.users.Apply(func(float64) float64 { return rng.NormFloat64() * scale })
	b.items.Apply(func(float64) float64 { return rng.NormFloat64() * scale })

	entries := m.Entries()
	if len(entries) == 0 {
		return b, nil
	}
	var sum float64
	for _, e := range entries {
		sum += e.Val / cfg.RMax
	}
	b.mu = sum / float64(len(entries))

	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	prev := math.Inf(1)
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(a, c int) { order[a], order[c] = order[c], order[a] })
		var sqErr float64
		for _, idx := range order {
			e := entries[idx]
			r := e.Val / cfg.RMax
			ui := b.users.Row(e.Row)
			sj := b.items.Row(e.Col)
			pred := b.mu + b.userBias[e.Row] + b.itemBias[e.Col] + matrix.Dot(ui, sj)
			diff := pred - r
			sqErr += diff * diff
			b.userBias[e.Row] -= cfg.LearnRate * (diff + cfg.Reg*b.userBias[e.Row])
			b.itemBias[e.Col] -= cfg.LearnRate * (diff + cfg.Reg*b.itemBias[e.Col])
			for k := 0; k < d; k++ {
				uk, sk := ui[k], sj[k]
				ui[k] = uk - cfg.LearnRate*(diff*sk+cfg.Reg*uk)
				sj[k] = sk - cfg.LearnRate*(diff*uk+cfg.Reg*sk)
			}
		}
		b.epochs = epoch + 1
		b.rmse = math.Sqrt(sqErr / float64(len(entries)))
		if prev < math.Inf(1) && prev > 0 && math.Abs(prev-b.rmse)/prev < cfg.Tol {
			break
		}
		prev = b.rmse
	}
	return b, nil
}

// Name implements Predictor.
func (b *BiasedMF) Name() string { return "BiasedMF" }

// Predict returns μ + b_i + b_j + U_iᵀS_j in QoS units, capped at RMax
// (raw on the low side, as with the PMF baseline).
func (b *BiasedMF) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= b.users.Rows() || service < 0 || service >= b.items.Rows() {
		return 0, false
	}
	v := (b.mu + b.userBias[user] + b.itemBias[service] +
		matrix.Dot(b.users.Row(user), b.items.Row(service))) * b.cfg.RMax
	if v > b.cfg.RMax {
		v = b.cfg.RMax
	}
	return v, true
}

// Epochs returns the training epochs performed.
func (b *BiasedMF) Epochs() int { return b.epochs }

// TrainRMSE returns the final training RMSE in normalized units.
func (b *BiasedMF) TrainRMSE() float64 { return b.rmse }
