package baseline

import (
	"math"
	"sort"

	"github.com/qoslab/amf/internal/matrix"
)

// PCCConfig tunes the neighborhood-based approaches (UPCC, IPCC).
type PCCConfig struct {
	// TopK bounds the neighborhood size. Zero means the default of 10,
	// negative means unbounded (all positive-similarity neighbors).
	TopK int
	// MinCommon is the minimum number of co-invoked services (or common
	// users) required before a similarity is trusted. Zero means the
	// default of 2 (a single common observation always yields |PCC| = 1,
	// which is noise).
	MinCommon int
	// Significance enables the similarity-weight dampening
	// sim' = 2|J| / (|I_a|+|I_b|) · sim from the WSRec paper, which
	// shrinks similarities estimated from few common observations.
	Significance bool
}

func (c PCCConfig) withDefaults() PCCConfig {
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.MinCommon == 0 {
		c.MinCommon = 2
	}
	return c
}

// neighbor is one entry of a similarity list.
type neighbor struct {
	id  int
	sim float64
}

// pcc computes the Pearson correlation coefficient between two sparse
// vectors given as parallel (sorted-by-key) key/value slices, over their
// common keys only, with means taken over the common subset (as in the
// WSRec formulation). It returns (0, count) when undefined.
func pcc(keysA []int, valsA []float64, keysB []int, valsB []float64, minCommon int) (float64, int) {
	var common int
	var sumA, sumB float64
	ia, ib := 0, 0
	// First pass: common count and means over the intersection.
	for ia < len(keysA) && ib < len(keysB) {
		switch {
		case keysA[ia] < keysB[ib]:
			ia++
		case keysA[ia] > keysB[ib]:
			ib++
		default:
			sumA += valsA[ia]
			sumB += valsB[ib]
			common++
			ia++
			ib++
		}
	}
	if common < minCommon {
		return 0, common
	}
	meanA := sumA / float64(common)
	meanB := sumB / float64(common)
	var num, denA, denB float64
	ia, ib = 0, 0
	for ia < len(keysA) && ib < len(keysB) {
		switch {
		case keysA[ia] < keysB[ib]:
			ia++
		case keysA[ia] > keysB[ib]:
			ib++
		default:
			da := valsA[ia] - meanA
			db := valsB[ib] - meanB
			num += da * db
			denA += da * da
			denB += db * db
			ia++
			ib++
		}
	}
	if denA == 0 || denB == 0 {
		return 0, common
	}
	return num / math.Sqrt(denA*denB), common
}

// rowVectors extracts each row of a frozen sparse matrix as parallel
// sorted key/value slices.
func rowVectors(m *matrix.Sparse) (keys [][]int, vals [][]float64) {
	keys = make([][]int, m.Rows())
	vals = make([][]float64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		k := make([]int, 0, m.RowNNZ(i))
		v := make([]float64, 0, m.RowNNZ(i))
		m.RowEntries(i, func(col int, val float64) {
			k = append(k, col)
			v = append(v, val)
		})
		keys[i] = k
		vals[i] = v
	}
	return keys, vals
}

// colVectors extracts each column of a frozen sparse matrix as parallel
// sorted key/value slices.
func colVectors(m *matrix.Sparse) (keys [][]int, vals [][]float64) {
	keys = make([][]int, m.Cols())
	vals = make([][]float64, m.Cols())
	for j := 0; j < m.Cols(); j++ {
		k := make([]int, 0, m.ColNNZ(j))
		v := make([]float64, 0, m.ColNNZ(j))
		m.ColEntries(j, func(row int, val float64) {
			k = append(k, row)
			v = append(v, val)
		})
		// ColEntries visits in CSR (row-sorted) order already, but sort
		// defensively in case the underlying iteration order changes.
		if !sort.IntsAreSorted(k) {
			idx := make([]int, len(k))
			for x := range idx {
				idx[x] = x
			}
			sort.Slice(idx, func(a, b int) bool { return k[idx[a]] < k[idx[b]] })
			ks := make([]int, len(k))
			vs := make([]float64, len(v))
			for x, y := range idx {
				ks[x], vs[x] = k[y], v[y]
			}
			k, v = ks, vs
		}
		keys[j] = k
		vals[j] = v
	}
	return keys, vals
}

// topNeighbors computes, for every entity (row of keys/vals), its top-K
// positive-similarity neighbors among all other entities. Neighborhoods
// are maintained as bounded insertion lists so memory stays O(n·K) even
// at the paper's 4,500-service scale, where the pairwise candidate count
// is ~10 million.
func topNeighbors(keys [][]int, vals [][]float64, cfg PCCConfig) [][]neighbor {
	n := len(keys)
	sims := make([][]neighbor, n)
	push := func(list []neighbor, nb neighbor) []neighbor {
		if cfg.TopK <= 0 || len(list) < cfg.TopK {
			return append(list, nb)
		}
		// Replace the current minimum if the candidate beats it.
		minIdx := 0
		for i := 1; i < len(list); i++ {
			if list[i].sim < list[minIdx].sim {
				minIdx = i
			}
		}
		if nb.sim > list[minIdx].sim {
			list[minIdx] = nb
		}
		return list
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s, common := pcc(keys[a], vals[a], keys[b], vals[b], cfg.MinCommon)
			if s <= 0 {
				continue
			}
			if cfg.Significance {
				s *= 2 * float64(common) / float64(len(keys[a])+len(keys[b]))
			}
			sims[a] = push(sims[a], neighbor{id: b, sim: s})
			sims[b] = push(sims[b], neighbor{id: a, sim: s})
		}
	}
	for a := 0; a < n; a++ {
		sort.Slice(sims[a], func(i, j int) bool { return sims[a][i].sim > sims[a][j].sim })
	}
	return sims
}
