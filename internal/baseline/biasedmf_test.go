package baseline

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/matrix"
)

func TestBiasedMFRecoversStructure(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {6, 1}: true, {0, 5}: true}
	m, truth := structuredMatrix(10, 8, hold)
	b, err := TrainBiasedMF(m, BiasedMFConfig{Rank: 4, RMax: 10, Seed: 3, MaxEpochs: 2000, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for cell := range hold {
		got, ok := b.Predict(cell[0], cell[1])
		if !ok {
			t.Fatalf("no prediction for %v", cell)
		}
		want := truth(cell[0], cell[1])
		if math.Abs(got-want)/want > 0.3 {
			t.Errorf("BiasedMF(%v) = %.3f, truth %.3f", cell, got, want)
		}
	}
	if b.Name() != "BiasedMF" {
		t.Fatal("name")
	}
	if b.Epochs() == 0 || b.TrainRMSE() <= 0 {
		t.Fatalf("training stats: %d epochs, rmse %g", b.Epochs(), b.TrainRMSE())
	}
}

func TestBiasedMFBeatsPlainPMFOnBiasedData(t *testing.T) {
	// Data with strong additive user/service offsets: value = a_i + b_j.
	// The bias terms should capture this better than pure inner products
	// at the same rank.
	rows, cols := 12, 15
	m := matrix.NewSparse(rows, cols)
	truth := func(i, j int) float64 { return 1 + 0.5*float64(i) + 0.3*float64(j) }
	hold := [][2]int{{3, 4}, {8, 11}, {1, 13}}
	holdSet := map[[2]int]bool{}
	for _, h := range hold {
		holdSet[h] = true
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !holdSet[[2]int{i, j}] {
				m.Append(i, j, truth(i, j))
			}
		}
	}
	m.Freeze()

	biased, err := TrainBiasedMF(m, BiasedMFConfig{Rank: 2, RMax: 15, Seed: 1, MaxEpochs: 1500, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TrainPMF(m, PMFConfig{Rank: 2, RMax: 15, Seed: 1, MaxEpochs: 1500, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	var biasedErr, plainErr float64
	for _, h := range hold {
		want := truth(h[0], h[1])
		bv, _ := biased.Predict(h[0], h[1])
		pv, _ := plain.Predict(h[0], h[1])
		biasedErr += math.Abs(bv - want)
		plainErr += math.Abs(pv - want)
	}
	if biasedErr >= plainErr {
		t.Fatalf("BiasedMF (%.4f) should beat PMF (%.4f) on additive data", biasedErr, plainErr)
	}
}

func TestBiasedMFValidation(t *testing.T) {
	m, _ := structuredMatrix(3, 3, nil)
	cases := map[string]BiasedMFConfig{
		"rmax":  {},
		"rank":  {RMax: 10, Rank: -1},
		"reg":   {RMax: 10, Reg: -1},
		"lrate": {RMax: 10, LearnRate: -1},
	}
	for name, cfg := range cases {
		if _, err := TrainBiasedMF(m, cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBiasedMFEmptyAndBounds(t *testing.T) {
	m := matrix.NewSparse(3, 3)
	m.Freeze()
	b, err := TrainBiasedMF(m, BiasedMFConfig{RMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Predict(0, 0); !ok || v > 10 {
		t.Fatalf("untrained prediction = %g, %v", v, ok)
	}
	if _, ok := b.Predict(-1, 0); ok {
		t.Fatal("out of range user")
	}
	if _, ok := b.Predict(0, 3); ok {
		t.Fatal("out of range service")
	}
}

var _ Predictor = (*BiasedMF)(nil)
