// Package baseline implements the four QoS-prediction approaches the paper
// compares AMF against in Table I:
//
//   - UPCC: user-based collaborative filtering with Pearson correlation
//     (Zheng et al., "QoS-aware web service recommendation by
//     collaborative filtering", IEEE TSC 2011),
//   - IPCC: the item(service)-based counterpart,
//   - UIPCC: the confidence-weighted hybrid of the two,
//   - PMF: batch probabilistic matrix factorization (Salakhutdinov &
//     Mnih, NIPS 2007) minimizing squared error by gradient descent.
//
// All four train offline on a sparse user-service QoS matrix of one time
// slice; none of them can incorporate a new sample without retraining,
// which is exactly the limitation AMF removes (paper Sec. IV-B).
package baseline

// Predictor is the common prediction interface of all baselines. Predict
// returns the estimated QoS value for (user, service) and whether a
// prediction could be produced at all (a cold user and service with no
// usable fallback yields false).
type Predictor interface {
	Predict(user, service int) (float64, bool)
	Name() string
}

// clampMin keeps predictions physically meaningful: QoS values such as
// response time and throughput cannot be negative, but PCC extrapolation
// and MF inner products can be. All baselines clamp through this helper.
func clampMin(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
