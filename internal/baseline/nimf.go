package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/qoslab/amf/internal/matrix"
)

// NIMFConfig tunes neighborhood-integrated matrix factorization.
type NIMFConfig struct {
	// Rank is the latent dimensionality. Zero means 10.
	Rank int
	// LearnRate is the per-sample SGD step. Zero means 0.05.
	LearnRate float64
	// Reg is the regularization strength. Zero means 0.001; negative is
	// rejected.
	Reg float64
	// Alpha in [0,1] balances the user's own factors against the
	// neighborhood consensus (1 = pure MF). Zero means the NIMF paper's
	// 0.4; pass a negative value to force exactly 0.
	Alpha float64
	// TopK bounds each user's neighborhood. Zero means 10.
	TopK int
	// MaxEpochs bounds training. Zero means 300.
	MaxEpochs int
	// Tol declares convergence on relative RMSE improvement. Zero means
	// 1e-4.
	Tol float64
	// RMax normalizes values into [0,1]; must be positive.
	RMax float64
	// Seed fixes initialization and shuffles.
	Seed int64
}

func (c NIMFConfig) withDefaults() NIMFConfig {
	if c.Rank == 0 {
		c.Rank = 10
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.001
	}
	if c.Alpha == 0 {
		c.Alpha = 0.4
	}
	if c.Alpha < 0 {
		c.Alpha = 0
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 300
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// NIMF is neighborhood-integrated matrix factorization (Zheng, Ma, Lyu,
// King — IEEE TSC 2013, the paper's reference [23]): each user's
// prediction blends their own latent factors with their PCC
// neighborhood's,
//
//	r̂_ij = α·U_iᵀS_j + (1−α)·Σ_{k∈T(i)} w_ik·U_kᵀS_j
//
// where T(i) is the user's top-K positive-similarity neighborhood and
// w_ik the normalized similarities. Like PMF it trains offline by SGD on
// squared error, so it shares the retraining limitation AMF removes.
type NIMF struct {
	cfg       NIMFConfig
	users     *matrix.Dense
	items     *matrix.Dense
	neighbors [][]neighbor // normalized, per user
	epochs    int
	rmse      float64
}

// TrainNIMF factorizes a frozen sparse QoS matrix with neighborhood
// integration.
func TrainNIMF(m *matrix.Sparse, cfg NIMFConfig) (*NIMF, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Rank < 0:
		return nil, fmt.Errorf("baseline: NIMF rank must be positive, got %d", cfg.Rank)
	case cfg.Reg < 0:
		return nil, fmt.Errorf("baseline: NIMF reg must be non-negative, got %g", cfg.Reg)
	case cfg.LearnRate < 0:
		return nil, fmt.Errorf("baseline: NIMF learn rate must be positive, got %g", cfg.LearnRate)
	case cfg.RMax <= 0:
		return nil, fmt.Errorf("baseline: NIMF RMax must be positive, got %g", cfg.RMax)
	case cfg.Alpha > 1:
		return nil, fmt.Errorf("baseline: NIMF alpha must be in [0,1], got %g", cfg.Alpha)
	}

	// Top-K user neighborhoods with similarities normalized to sum 1.
	keys, vals := rowVectors(m)
	raw := topNeighbors(keys, vals, PCCConfig{TopK: cfg.TopK, MinCommon: 2, Significance: true})
	for _, ns := range raw {
		var sum float64
		for _, nb := range ns {
			sum += nb.sim
		}
		if sum > 0 {
			for i := range ns {
				ns[i].sim /= sum
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	n, cols, d := m.Rows(), m.Cols(), cfg.Rank
	model := &NIMF{
		cfg:       cfg,
		users:     matrix.NewDense(n, d),
		items:     matrix.NewDense(cols, d),
		neighbors: raw,
	}
	scale := 0.1
	model.users.Apply(func(float64) float64 { return rng.NormFloat64() * scale })
	model.items.Apply(func(float64) float64 { return rng.NormFloat64() * scale })

	entries := m.Entries()
	if len(entries) == 0 {
		return model, nil
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	blend := make([]float64, d)
	prev := math.Inf(1)
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		var sqErr float64
		for _, idx := range order {
			e := entries[idx]
			r := e.Val / cfg.RMax
			ui := model.users.Row(e.Row)
			sj := model.items.Row(e.Col)
			// blend = α·U_i + (1−α)·Σ w_ik U_k — the effective user vector.
			for k := 0; k < d; k++ {
				blend[k] = cfg.Alpha * ui[k]
			}
			for _, nb := range model.neighbors[e.Row] {
				uk := model.users.Row(nb.id)
				w := (1 - cfg.Alpha) * nb.sim
				for k := 0; k < d; k++ {
					blend[k] += w * uk[k]
				}
			}
			diff := matrix.Dot(blend, sj) - r
			sqErr += diff * diff

			// Gradient steps: own factors, item factors, then neighbors.
			for k := 0; k < d; k++ {
				uk, sk, bk := ui[k], sj[k], blend[k]
				ui[k] = uk - cfg.LearnRate*(cfg.Alpha*diff*sk+cfg.Reg*uk)
				sj[k] = sk - cfg.LearnRate*(diff*bk+cfg.Reg*sk)
			}
			for _, nb := range model.neighbors[e.Row] {
				uk := model.users.Row(nb.id)
				w := (1 - cfg.Alpha) * nb.sim
				for k := 0; k < d; k++ {
					uk[k] -= cfg.LearnRate * w * diff * sj[k]
				}
			}
		}
		model.epochs = epoch + 1
		model.rmse = math.Sqrt(sqErr / float64(len(entries)))
		if prev < math.Inf(1) && prev > 0 && math.Abs(prev-model.rmse)/prev < cfg.Tol {
			break
		}
		prev = model.rmse
	}
	return model, nil
}

// Name implements Predictor.
func (p *NIMF) Name() string { return "NIMF" }

// Predict returns the blended estimate in QoS units, capped at RMax (raw
// on the low side, as with PMF).
func (p *NIMF) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= p.users.Rows() || service < 0 || service >= p.items.Rows() {
		return 0, false
	}
	sj := p.items.Row(service)
	v := p.cfg.Alpha * matrix.Dot(p.users.Row(user), sj)
	for _, nb := range p.neighbors[user] {
		v += (1 - p.cfg.Alpha) * nb.sim * matrix.Dot(p.users.Row(nb.id), sj)
	}
	v *= p.cfg.RMax
	if v > p.cfg.RMax {
		v = p.cfg.RMax
	}
	return v, true
}

// Epochs returns the training epochs performed.
func (p *NIMF) Epochs() int { return p.epochs }

// TrainRMSE returns the final training RMSE in normalized units.
func (p *NIMF) TrainRMSE() float64 { return p.rmse }
