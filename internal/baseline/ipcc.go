package baseline

import (
	"math"

	"github.com/qoslab/amf/internal/matrix"
)

// IPCC is the item(service)-based collaborative filtering predictor:
// services similar to the target service (by Pearson correlation over
// common users) vote on the unknown QoS value.
type IPCC struct {
	m         *matrix.Sparse
	svcMeans  []float64
	hasMean   []bool
	neighbors [][]neighbor
	global    float64
	hasGlobal bool
}

// TrainIPCC builds an IPCC predictor from a frozen sparse QoS matrix.
// Note that for m services this computes O(m²) candidate similarities;
// at the paper's full scale (4,500 services) this is the dominant cost of
// the UIPCC family and part of why they cannot be retrained online
// (paper Fig. 13).
func TrainIPCC(m *matrix.Sparse, cfg PCCConfig) *IPCC {
	cfg = cfg.withDefaults()
	keys, vals := colVectors(m)
	p := &IPCC{
		m:         m,
		svcMeans:  make([]float64, m.Cols()),
		hasMean:   make([]bool, m.Cols()),
		neighbors: topNeighbors(keys, vals, cfg),
	}
	var sum float64
	var n int
	for j := 0; j < m.Cols(); j++ {
		if mean, ok := m.ColMean(j); ok {
			p.svcMeans[j] = mean
			p.hasMean[j] = true
			sum += mean
			n++
		}
	}
	if n > 0 {
		p.global = sum / float64(n)
		p.hasGlobal = true
	}
	return p
}

// Name implements Predictor.
func (p *IPCC) Name() string { return "IPCC" }

// Predict estimates R(user, service) as
//
//	r̄_j + Σ_k sim(j,k)·(R_ik − r̄_k) / Σ_k |sim(j,k)|
//
// over top-K similar services k the user has invoked, falling back to the
// service mean, then the global mean.
func (p *IPCC) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= p.m.Rows() || service < 0 || service >= p.m.Cols() {
		return 0, false
	}
	if v, ok := p.predictCF(user, service); ok {
		return clampMin(v), true
	}
	if p.hasMean[service] {
		return clampMin(p.svcMeans[service]), true
	}
	if p.hasGlobal {
		return clampMin(p.global), true
	}
	return 0, false
}

func (p *IPCC) predictCF(user, service int) (float64, bool) {
	if !p.hasMean[service] {
		return 0, false
	}
	var num, den float64
	for _, nb := range p.neighbors[service] {
		val, ok := p.m.At(user, nb.id)
		if !ok || !p.hasMean[nb.id] {
			continue
		}
		num += nb.sim * (val - p.svcMeans[nb.id])
		den += math.Abs(nb.sim)
	}
	if den == 0 {
		return 0, false
	}
	return p.svcMeans[service] + num/den, true
}

// PredictWithConfidence returns the CF estimate and the confidence weight
// con_i of the contributing neighborhood, for the UIPCC hybrid.
func (p *IPCC) PredictWithConfidence(user, service int) (value, confidence float64, ok bool) {
	if user < 0 || user >= p.m.Rows() || service < 0 || service >= p.m.Cols() || !p.hasMean[service] {
		return 0, 0, false
	}
	var num, den, simSum, conNum float64
	for _, nb := range p.neighbors[service] {
		val, okAt := p.m.At(user, nb.id)
		if !okAt || !p.hasMean[nb.id] {
			continue
		}
		num += nb.sim * (val - p.svcMeans[nb.id])
		den += math.Abs(nb.sim)
		simSum += nb.sim
		conNum += nb.sim * nb.sim
	}
	if den == 0 {
		return 0, 0, false
	}
	confidence = 0
	if simSum > 0 {
		confidence = conNum / simSum
	}
	return clampMin(p.svcMeans[service] + num/den), confidence, true
}

// ServiceMean returns the service's observed mean QoS, if any.
func (p *IPCC) ServiceMean(service int) (float64, bool) {
	if service < 0 || service >= len(p.svcMeans) || !p.hasMean[service] {
		return 0, false
	}
	return p.svcMeans[service], true
}
