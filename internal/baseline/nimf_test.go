package baseline

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/matrix"
)

func TestNIMFRecoversStructure(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {6, 1}: true, {0, 5}: true}
	m, truth := structuredMatrix(10, 8, hold)
	p, err := TrainNIMF(m, NIMFConfig{Rank: 4, RMax: 10, Seed: 3, MaxEpochs: 2000, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for cell := range hold {
		got, ok := p.Predict(cell[0], cell[1])
		if !ok {
			t.Fatalf("no prediction for %v", cell)
		}
		want := truth(cell[0], cell[1])
		if math.Abs(got-want)/want > 0.35 {
			t.Errorf("NIMF(%v) = %.3f, truth %.3f", cell, got, want)
		}
	}
	if p.Name() != "NIMF" {
		t.Fatal("name")
	}
	if p.Epochs() == 0 || p.TrainRMSE() <= 0 {
		t.Fatalf("training stats: %d epochs, rmse %g", p.Epochs(), p.TrainRMSE())
	}
}

func TestNIMFAlphaOneEquivalentToPMFShape(t *testing.T) {
	// With alpha forced to 1 the neighborhood term vanishes; the model
	// should behave like plain MF and still fit the data.
	m, truth := structuredMatrix(8, 6, nil)
	p, err := TrainNIMF(m, NIMFConfig{Rank: 3, RMax: 10, Seed: 1, Alpha: 1, MaxEpochs: 1000, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			got, _ := p.Predict(i, j)
			rel := math.Abs(got-truth(i, j)) / truth(i, j)
			if rel > worst {
				worst = rel
			}
		}
	}
	if worst > 0.25 {
		t.Fatalf("alpha=1 NIMF fits training data poorly: worst rel err %.3f", worst)
	}
}

func TestNIMFNeighborhoodHelpsSparseUsers(t *testing.T) {
	// User 0 has very few observations but perfectly correlated
	// neighbors; the neighborhood blend should place its predictions in
	// a sane range anyway.
	rows, cols := 6, 10
	m := matrix.NewSparse(rows, cols)
	truth := func(i, j int) float64 { return (1 + 0.2*float64(i)) * (0.5 + 0.3*float64(j)) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i == 0 && j > 2 {
				continue // user 0 observed only services 0-2
			}
			m.Append(i, j, truth(i, j))
		}
	}
	m.Freeze()
	p, err := TrainNIMF(m, NIMFConfig{Rank: 3, RMax: 10, Seed: 2, MaxEpochs: 1500, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for j := 3; j < cols; j++ {
		got, ok := p.Predict(0, j)
		if !ok {
			t.Fatalf("no prediction for held-out (0,%d)", j)
		}
		want := truth(0, j)
		if math.Abs(got-want)/want > 0.6 {
			t.Errorf("NIMF(0,%d) = %.3f, truth %.3f", j, got, want)
		}
	}
}

func TestNIMFValidation(t *testing.T) {
	m, _ := structuredMatrix(3, 3, nil)
	cases := map[string]NIMFConfig{
		"rmax":     {},
		"rank":     {RMax: 10, Rank: -1},
		"reg":      {RMax: 10, Reg: -1},
		"lrate":    {RMax: 10, LearnRate: -1},
		"alpha hi": {RMax: 10, Alpha: 1.5},
	}
	for name, cfg := range cases {
		if _, err := TrainNIMF(m, cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNIMFEmptyAndBounds(t *testing.T) {
	m := matrix.NewSparse(3, 3)
	m.Freeze()
	p, err := TrainNIMF(m, NIMFConfig{RMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Predict(0, 0); !ok || v > 10 {
		t.Fatalf("untrained prediction = %g, %v", v, ok)
	}
	if _, ok := p.Predict(-1, 0); ok {
		t.Fatal("out of range user")
	}
	if _, ok := p.Predict(0, 9); ok {
		t.Fatal("out of range service")
	}
}

var _ Predictor = (*NIMF)(nil)
