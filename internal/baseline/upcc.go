package baseline

import (
	"math"

	"github.com/qoslab/amf/internal/matrix"
)

// UPCC is the user-based collaborative filtering predictor: users similar
// to the active user (by Pearson correlation over co-invoked services)
// vote on the unknown QoS value through their deviations from their own
// means.
type UPCC struct {
	m         *matrix.Sparse
	userMeans []float64
	hasMean   []bool
	neighbors [][]neighbor
	global    float64
	hasGlobal bool
}

// TrainUPCC builds a UPCC predictor from a frozen sparse QoS matrix.
func TrainUPCC(m *matrix.Sparse, cfg PCCConfig) *UPCC {
	cfg = cfg.withDefaults()
	keys, vals := rowVectors(m)
	u := &UPCC{
		m:         m,
		userMeans: make([]float64, m.Rows()),
		hasMean:   make([]bool, m.Rows()),
		neighbors: topNeighbors(keys, vals, cfg),
	}
	var sum float64
	var n int
	for i := 0; i < m.Rows(); i++ {
		if mean, ok := m.RowMean(i); ok {
			u.userMeans[i] = mean
			u.hasMean[i] = true
			sum += mean
			n++
		}
	}
	if n > 0 {
		u.global = sum / float64(n)
		u.hasGlobal = true
	}
	return u
}

// Name implements Predictor.
func (u *UPCC) Name() string { return "UPCC" }

// Predict estimates R(user, service) as
//
//	r̄_u + Σ_k sim(u,k)·(R_kj − r̄_k) / Σ_k |sim(u,k)|
//
// over top-K similar users k that invoked the service. It falls back to
// the user mean, then the global mean; (0, false) if even that is missing.
func (u *UPCC) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= u.m.Rows() || service < 0 || service >= u.m.Cols() {
		return 0, false
	}
	// Confidence-free fast path: the weighted vote.
	if v, ok := u.predictCF(user, service); ok {
		return clampMin(v), true
	}
	if u.hasMean[user] {
		return clampMin(u.userMeans[user]), true
	}
	if u.hasGlobal {
		return clampMin(u.global), true
	}
	return 0, false
}

// predictCF returns the pure collaborative-filtering estimate, without
// fallbacks. Exposed through PredictWithConfidence for the UIPCC hybrid.
func (u *UPCC) predictCF(user, service int) (float64, bool) {
	if !u.hasMean[user] {
		return 0, false
	}
	var num, den float64
	for _, nb := range u.neighbors[user] {
		val, ok := u.m.At(nb.id, service)
		if !ok || !u.hasMean[nb.id] {
			continue
		}
		num += nb.sim * (val - u.userMeans[nb.id])
		den += math.Abs(nb.sim)
	}
	if den == 0 {
		return 0, false
	}
	return u.userMeans[user] + num/den, true
}

// PredictWithConfidence returns the CF estimate together with the WSRec
// confidence weight con_u = Σ_k (sim_k/Σsim)·sim_k of the neighbors that
// actually contributed. ok is false when no neighbor vote exists.
func (u *UPCC) PredictWithConfidence(user, service int) (value, confidence float64, ok bool) {
	if user < 0 || user >= u.m.Rows() || service < 0 || service >= u.m.Cols() || !u.hasMean[user] {
		return 0, 0, false
	}
	var num, den, simSum, conNum float64
	for _, nb := range u.neighbors[user] {
		val, okAt := u.m.At(nb.id, service)
		if !okAt || !u.hasMean[nb.id] {
			continue
		}
		num += nb.sim * (val - u.userMeans[nb.id])
		den += math.Abs(nb.sim)
		simSum += nb.sim
		conNum += nb.sim * nb.sim
	}
	if den == 0 {
		return 0, 0, false
	}
	confidence = 0
	if simSum > 0 {
		confidence = conNum / simSum
	}
	return clampMin(u.userMeans[user] + num/den), confidence, true
}

// UserMean returns the user's observed mean QoS, if any.
func (u *UPCC) UserMean(user int) (float64, bool) {
	if user < 0 || user >= len(u.userMeans) || !u.hasMean[user] {
		return 0, false
	}
	return u.userMeans[user], true
}
