package baseline

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/matrix"
)

// structuredMatrix builds a QoS matrix with multiplicative structure
// value(i,j) = a_i·b_j and holds out the given cells.
func structuredMatrix(rows, cols int, holdOut map[[2]int]bool) (*matrix.Sparse, func(i, j int) float64) {
	a := make([]float64, rows)
	b := make([]float64, cols)
	for i := range a {
		a[i] = 1 + 0.3*float64(i)
	}
	for j := range b {
		b[j] = 0.5 + 0.2*float64(j)
	}
	truth := func(i, j int) float64 { return a[i] * b[j] }
	m := matrix.NewSparse(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !holdOut[[2]int{i, j}] {
				m.Append(i, j, truth(i, j))
			}
		}
	}
	m.Freeze()
	return m, truth
}

func TestUPCCPredictsHeldOut(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {5, 1}: true}
	m, truth := structuredMatrix(8, 6, hold)
	u := TrainUPCC(m, PCCConfig{TopK: -1})
	for cell := range hold {
		got, ok := u.Predict(cell[0], cell[1])
		if !ok {
			t.Fatalf("no prediction for %v", cell)
		}
		want := truth(cell[0], cell[1])
		if math.Abs(got-want)/want > 0.5 {
			t.Errorf("UPCC(%v) = %.3f, truth %.3f", cell, got, want)
		}
	}
	if u.Name() != "UPCC" {
		t.Fatal("name")
	}
}

func TestIPCCPredictsHeldOut(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {5, 1}: true}
	m, truth := structuredMatrix(8, 6, hold)
	p := TrainIPCC(m, PCCConfig{TopK: -1})
	for cell := range hold {
		got, ok := p.Predict(cell[0], cell[1])
		if !ok {
			t.Fatalf("no prediction for %v", cell)
		}
		want := truth(cell[0], cell[1])
		if math.Abs(got-want)/want > 0.5 {
			t.Errorf("IPCC(%v) = %.3f, truth %.3f", cell, got, want)
		}
	}
	if p.Name() != "IPCC" {
		t.Fatal("name")
	}
}

func TestUPCCFallbacks(t *testing.T) {
	// User 2 has observations but no correlated neighbors for service 3:
	// prediction falls back to the user mean.
	m := matrix.NewSparse(3, 4)
	m.Append(0, 0, 1)
	m.Append(0, 1, 2)
	m.Append(1, 0, 5)
	m.Append(1, 1, 5.5)
	m.Append(2, 2, 9)
	m.Freeze()
	u := TrainUPCC(m, PCCConfig{})
	got, ok := u.Predict(2, 3)
	if !ok || got != 9 {
		t.Fatalf("fallback to user mean: got %g, %v; want 9", got, ok)
	}
	if mean, ok := u.UserMean(2); !ok || mean != 9 {
		t.Fatalf("UserMean = %g, %v", mean, ok)
	}
	if _, ok := u.UserMean(99); ok {
		t.Fatal("out-of-range user mean")
	}
}

func TestUPCCGlobalFallbackForColdUser(t *testing.T) {
	m := matrix.NewSparse(3, 2)
	m.Append(0, 0, 2)
	m.Append(1, 0, 4)
	m.Freeze()
	u := TrainUPCC(m, PCCConfig{})
	// User 2 never invoked anything: global mean of user means = 3.
	got, ok := u.Predict(2, 1)
	if !ok || got != 3 {
		t.Fatalf("global fallback: got %g, %v; want 3", got, ok)
	}
}

func TestUPCCEmptyMatrixNoPrediction(t *testing.T) {
	m := matrix.NewSparse(2, 2)
	m.Freeze()
	u := TrainUPCC(m, PCCConfig{})
	if _, ok := u.Predict(0, 0); ok {
		t.Fatal("empty training data must yield no prediction")
	}
}

func TestPredictOutOfRangeIndices(t *testing.T) {
	m := matrix.NewSparse(2, 2)
	m.Append(0, 0, 1)
	m.Freeze()
	u := TrainUPCC(m, PCCConfig{})
	p := TrainIPCC(m, PCCConfig{})
	for _, cell := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if _, ok := u.Predict(cell[0], cell[1]); ok {
			t.Errorf("UPCC accepted out-of-range %v", cell)
		}
		if _, ok := p.Predict(cell[0], cell[1]); ok {
			t.Errorf("IPCC accepted out-of-range %v", cell)
		}
	}
}

func TestIPCCFallbackToServiceMean(t *testing.T) {
	m := matrix.NewSparse(3, 3)
	m.Append(0, 0, 2)
	m.Append(1, 0, 4)
	m.Append(0, 1, 7)
	m.Freeze()
	p := TrainIPCC(m, PCCConfig{})
	// User 2 invoked nothing; service 0's mean is 3.
	got, ok := p.Predict(2, 0)
	if !ok || got != 3 {
		t.Fatalf("service-mean fallback: got %g, %v; want 3", got, ok)
	}
	if mean, ok := p.ServiceMean(1); !ok || mean != 7 {
		t.Fatalf("ServiceMean = %g, %v", mean, ok)
	}
}

func TestUIPCCBlendsBothViews(t *testing.T) {
	hold := map[[2]int]bool{{3, 2}: true}
	m, truth := structuredMatrix(8, 6, hold)
	h := TrainUIPCC(m, UIPCCConfig{Lambda: 0.5, User: PCCConfig{TopK: -1}, Item: PCCConfig{TopK: -1}})
	got, ok := h.Predict(3, 2)
	if !ok {
		t.Fatal("no hybrid prediction")
	}
	want := truth(3, 2)
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("UIPCC = %.3f, truth %.3f", got, want)
	}
	if h.Name() != "UIPCC" {
		t.Fatal("name")
	}
	u, i := h.Components()
	if u == nil || i == nil {
		t.Fatal("components")
	}
}

func TestUIPCCLambdaExtremes(t *testing.T) {
	hold := map[[2]int]bool{{3, 2}: true}
	m, _ := structuredMatrix(8, 6, hold)
	onlyU := TrainUIPCC(m, UIPCCConfig{Lambda: 5, User: PCCConfig{TopK: -1}, Item: PCCConfig{TopK: -1}})  // clamps to 1
	onlyI := TrainUIPCC(m, UIPCCConfig{Lambda: -1, User: PCCConfig{TopK: -1}, Item: PCCConfig{TopK: -1}}) // clamps to 0
	u, _ := onlyU.Components()
	i2 := TrainIPCC(m, PCCConfig{TopK: -1})
	uv, _, _ := u.PredictWithConfidence(3, 2)
	iv, _, _ := i2.PredictWithConfidence(3, 2)
	gu, _ := onlyU.Predict(3, 2)
	gi, _ := onlyI.Predict(3, 2)
	if math.Abs(gu-uv) > 1e-9 {
		t.Errorf("lambda=1 should equal UPCC: %g vs %g", gu, uv)
	}
	if math.Abs(gi-iv) > 1e-9 {
		t.Errorf("lambda=0 should equal IPCC: %g vs %g", gi, iv)
	}
}

func TestUIPCCFallsBackWhenNoNeighbors(t *testing.T) {
	m := matrix.NewSparse(2, 2)
	m.Append(0, 0, 3)
	m.Freeze()
	h := TrainUIPCC(m, UIPCCConfig{Lambda: 0.1})
	got, ok := h.Predict(1, 1)
	if !ok || got != 3 {
		t.Fatalf("UIPCC fallback: got %g, %v; want 3 (global mean)", got, ok)
	}
}

func TestPMFRecoversStructure(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {6, 1}: true, {0, 5}: true}
	m, truth := structuredMatrix(10, 8, hold)
	p, err := TrainPMF(m, PMFConfig{Rank: 4, RMax: 10, Seed: 3, MaxEpochs: 2000, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for cell := range hold {
		got, ok := p.Predict(cell[0], cell[1])
		if !ok {
			t.Fatalf("no PMF prediction for %v", cell)
		}
		want := truth(cell[0], cell[1])
		if math.Abs(got-want)/want > 0.3 {
			t.Errorf("PMF(%v) = %.3f, truth %.3f", cell, got, want)
		}
	}
	if p.Name() != "PMF" {
		t.Fatal("name")
	}
	if p.Epochs() == 0 || p.TrainRMSE() <= 0 {
		t.Fatalf("training stats: epochs=%d rmse=%g", p.Epochs(), p.TrainRMSE())
	}
}

func TestPMFTrainingErrorDecreases(t *testing.T) {
	m, _ := structuredMatrix(10, 8, nil)
	short, err := TrainPMF(m, PMFConfig{Rank: 4, RMax: 10, Seed: 3, MaxEpochs: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	long, err := TrainPMF(m, PMFConfig{Rank: 4, RMax: 10, Seed: 3, MaxEpochs: 500, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if long.TrainRMSE() >= short.TrainRMSE() {
		t.Fatalf("more epochs should not increase RMSE: %g vs %g", long.TrainRMSE(), short.TrainRMSE())
	}
}

func TestPMFValidation(t *testing.T) {
	m, _ := structuredMatrix(3, 3, nil)
	if _, err := TrainPMF(m, PMFConfig{RMax: 0}); err == nil {
		t.Error("RMax=0 should error")
	}
	if _, err := TrainPMF(m, PMFConfig{RMax: 10, Rank: -1}); err == nil {
		t.Error("negative rank should error")
	}
	if _, err := TrainPMF(m, PMFConfig{RMax: 10, Reg: -0.1}); err == nil {
		t.Error("negative reg should error")
	}
	if _, err := TrainPMF(m, PMFConfig{RMax: 10, LearnRate: -1}); err == nil {
		t.Error("negative learn rate should error")
	}
}

func TestPMFEmptyMatrix(t *testing.T) {
	m := matrix.NewSparse(3, 3)
	m.Freeze()
	p, err := TrainPMF(m, PMFConfig{RMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Predict(0, 0); !ok || v < 0 || v > 10 {
		t.Fatalf("untrained prediction = %g, %v", v, ok)
	}
}

func TestPMFPredictionClamped(t *testing.T) {
	m, _ := structuredMatrix(6, 6, nil)
	p, err := TrainPMF(m, PMFConfig{Rank: 3, RMax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			v, ok := p.Predict(i, j)
			if !ok || v < 0 || v > 10 {
				t.Fatalf("PMF prediction %g out of [0,10]", v)
			}
		}
	}
	if _, ok := p.Predict(-1, 0); ok {
		t.Fatal("out-of-range index must not predict")
	}
	if _, ok := p.Predict(0, 99); ok {
		t.Fatal("out-of-range service must not predict")
	}
}

// All baselines satisfy the Predictor interface.
var (
	_ Predictor = (*UPCC)(nil)
	_ Predictor = (*IPCC)(nil)
	_ Predictor = (*UIPCC)(nil)
	_ Predictor = (*PMF)(nil)
)
