package baseline_test

import (
	"fmt"

	"github.com/qoslab/amf/internal/baseline"
	"github.com/qoslab/amf/internal/matrix"
)

// UPCC predicts an unknown QoS value from similar users' observations:
// users 0 and 1 are perfectly correlated, so user 1's missing value for
// service 2 is user 1's mean (3) plus user 0's deviation on that service
// (3 − 2 = 1).
func ExampleTrainUPCC() {
	m := matrix.NewSparse(2, 3)
	m.Append(0, 0, 1)
	m.Append(0, 1, 2)
	m.Append(0, 2, 3)
	m.Append(1, 0, 2)
	m.Append(1, 1, 4)
	// (1, 2) is unobserved.
	m.Freeze()

	upcc := baseline.TrainUPCC(m, baseline.PCCConfig{TopK: -1})
	v, ok := upcc.Predict(1, 2)
	fmt.Printf("predicted=%v value=%.0f\n", ok, v)
	// Output:
	// predicted=true value=4
}

// PMF factorizes the observed matrix and reconstructs a held-out cell of
// a rank-1 matrix almost exactly.
func ExampleTrainPMF() {
	m := matrix.NewSparse(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == 2 && j == 2 {
				continue // held out
			}
			m.Append(i, j, float64((i+1)*(j+1)))
		}
	}
	m.Freeze()

	pmf, err := baseline.TrainPMF(m, baseline.PMFConfig{
		Rank: 2, RMax: 10, Seed: 1, MaxEpochs: 3000, Tol: 1e-9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	v, _ := pmf.Predict(2, 2)
	fmt.Printf("truth 9, predicted within 1.5: %v\n", v > 7.5 && v < 10.5)
	// Output:
	// truth 9, predicted within 1.5: true
}
