package baseline

import (
	"testing"

	"github.com/qoslab/amf/internal/matrix"
)

func meansMatrix(t *testing.T) *matrix.Sparse {
	t.Helper()
	m := matrix.NewSparse(3, 3)
	m.Append(0, 0, 2)
	m.Append(0, 1, 4)
	m.Append(1, 0, 6)
	m.Freeze()
	return m
}

func TestUMEANPredict(t *testing.T) {
	u := TrainUMEAN(meansMatrix(t))
	if u.Name() != "UMEAN" {
		t.Fatal("name")
	}
	if got, ok := u.Predict(0, 2); !ok || got != 3 {
		t.Fatalf("user 0 mean = %g, %v; want 3", got, ok)
	}
	if got, ok := u.Predict(1, 2); !ok || got != 6 {
		t.Fatalf("user 1 mean = %g, %v; want 6", got, ok)
	}
	// User 2 has no observations: global mean of user means = 4.5.
	if got, ok := u.Predict(2, 0); !ok || got != 4.5 {
		t.Fatalf("global fallback = %g, %v; want 4.5", got, ok)
	}
	if _, ok := u.Predict(-1, 0); ok {
		t.Fatal("out-of-range user")
	}
	if _, ok := u.Predict(0, 5); ok {
		t.Fatal("out-of-range service")
	}
}

func TestIMEANPredict(t *testing.T) {
	p := TrainIMEAN(meansMatrix(t))
	if p.Name() != "IMEAN" {
		t.Fatal("name")
	}
	if got, ok := p.Predict(2, 0); !ok || got != 4 {
		t.Fatalf("service 0 mean = %g, %v; want 4", got, ok)
	}
	if got, ok := p.Predict(2, 1); !ok || got != 4 {
		t.Fatalf("service 1 mean = %g, %v; want 4", got, ok)
	}
	// Service 2 unobserved: global mean of service means = 4.
	if got, ok := p.Predict(0, 2); !ok || got != 4 {
		t.Fatalf("global fallback = %g, %v; want 4", got, ok)
	}
	if _, ok := p.Predict(5, 0); ok {
		t.Fatal("out-of-range user")
	}
}

func TestMeansEmptyMatrix(t *testing.T) {
	m := matrix.NewSparse(2, 2)
	m.Freeze()
	if _, ok := TrainUMEAN(m).Predict(0, 0); ok {
		t.Fatal("empty UMEAN should not predict")
	}
	if _, ok := TrainIMEAN(m).Predict(0, 0); ok {
		t.Fatal("empty IMEAN should not predict")
	}
}

// CF approaches must beat the mean baselines on structured data — the
// sanity-floor property.
func TestCFBeatsMeansOnStructuredData(t *testing.T) {
	hold := map[[2]int]bool{{2, 3}: true, {5, 1}: true, {7, 4}: true}
	m, truth := structuredMatrix(10, 8, hold)
	umean := TrainUMEAN(m)
	upcc := TrainUPCC(m, PCCConfig{TopK: -1})
	var umeanErr, upccErr float64
	for cell := range hold {
		want := truth(cell[0], cell[1])
		if v, ok := umean.Predict(cell[0], cell[1]); ok {
			umeanErr += abs(v-want) / want
		}
		if v, ok := upcc.Predict(cell[0], cell[1]); ok {
			upccErr += abs(v-want) / want
		}
	}
	if upccErr >= umeanErr {
		t.Fatalf("UPCC (%.3f) should beat UMEAN (%.3f) on structured data", upccErr, umeanErr)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var (
	_ Predictor = (*UMEAN)(nil)
	_ Predictor = (*IMEAN)(nil)
)
