package baseline

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/matrix"
)

func TestPCCPerfectPositiveCorrelation(t *testing.T) {
	keys := []int{0, 1, 2, 3}
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	s, common := pcc(keys, a, keys, b, 2)
	if common != 4 {
		t.Fatalf("common = %d, want 4", common)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("pcc = %g, want 1", s)
	}
}

func TestPCCPerfectNegativeCorrelation(t *testing.T) {
	keys := []int{0, 1, 2}
	a := []float64{1, 2, 3}
	b := []float64{3, 2, 1}
	s, _ := pcc(keys, a, keys, b, 2)
	if math.Abs(s+1) > 1e-12 {
		t.Fatalf("pcc = %g, want -1", s)
	}
}

func TestPCCPartialOverlap(t *testing.T) {
	// Only keys 2 and 5 are common.
	keysA := []int{0, 2, 5, 9}
	valsA := []float64{7, 1, 2, 9}
	keysB := []int{1, 2, 5, 8}
	valsB := []float64{4, 10, 20, 3}
	s, common := pcc(keysA, valsA, keysB, valsB, 2)
	if common != 2 {
		t.Fatalf("common = %d, want 2", common)
	}
	// Two points are always perfectly correlated (positively here).
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("pcc = %g, want 1", s)
	}
}

func TestPCCMinCommonGate(t *testing.T) {
	keys := []int{0, 1}
	a := []float64{1, 2}
	b := []float64{2, 4}
	if s, _ := pcc(keys, a, keys, b, 3); s != 0 {
		t.Fatalf("pcc below MinCommon should be 0, got %g", s)
	}
}

func TestPCCZeroVariance(t *testing.T) {
	keys := []int{0, 1, 2}
	flat := []float64{5, 5, 5}
	vary := []float64{1, 2, 3}
	if s, _ := pcc(keys, flat, keys, vary, 2); s != 0 {
		t.Fatalf("zero-variance pcc should be 0, got %g", s)
	}
}

func TestPCCNoOverlap(t *testing.T) {
	if s, common := pcc([]int{0, 1}, []float64{1, 2}, []int{2, 3}, []float64{1, 2}, 1); s != 0 || common != 0 {
		t.Fatalf("disjoint vectors: s=%g common=%d", s, common)
	}
}

func buildMatrix(t *testing.T, rows, cols int, cells map[[2]int]float64) *matrix.Sparse {
	t.Helper()
	m := matrix.NewSparse(rows, cols)
	for k, v := range cells {
		m.Append(k[0], k[1], v)
	}
	m.Freeze()
	return m
}

func TestTopNeighborsOrderingAndK(t *testing.T) {
	// Three users: 0 and 1 perfectly correlated, 2 anti-correlated with
	// both (anti-correlation is dropped: only positive sims survive).
	m := buildMatrix(t, 3, 4, map[[2]int]float64{
		{0, 0}: 1, {0, 1}: 2, {0, 2}: 3, {0, 3}: 4,
		{1, 0}: 2, {1, 1}: 4, {1, 2}: 6, {1, 3}: 8,
		{2, 0}: 4, {2, 1}: 3, {2, 2}: 2, {2, 3}: 1,
	})
	keys, vals := rowVectors(m)
	nbs := topNeighbors(keys, vals, PCCConfig{TopK: 5, MinCommon: 2})
	if len(nbs[0]) != 1 || nbs[0][0].id != 1 {
		t.Fatalf("user 0 neighbors = %+v, want just user 1", nbs[0])
	}
	if len(nbs[2]) != 0 {
		t.Fatalf("user 2 should have no positive-similarity neighbors, got %+v", nbs[2])
	}
}

func TestTopNeighborsTopKTruncation(t *testing.T) {
	// Four mutually correlated users; TopK=2 must keep only two each.
	cells := map[[2]int]float64{}
	for u := 0; u < 4; u++ {
		for j := 0; j < 4; j++ {
			cells[[2]int{u, j}] = float64(j+1) * (1 + 0.1*float64(u))
		}
	}
	m := buildMatrix(t, 4, 4, cells)
	keys, vals := rowVectors(m)
	nbs := topNeighbors(keys, vals, PCCConfig{TopK: 2, MinCommon: 2})
	for u, ns := range nbs {
		if len(ns) > 2 {
			t.Fatalf("user %d has %d neighbors, want <= 2", u, len(ns))
		}
		for i := 1; i < len(ns); i++ {
			if ns[i].sim > ns[i-1].sim {
				t.Fatalf("neighbors not sorted by similarity: %+v", ns)
			}
		}
	}
}

func TestSignificanceWeightingShrinks(t *testing.T) {
	// Users share only 2 of their many observations; significance
	// weighting must shrink the similarity below the raw PCC.
	cells := map[[2]int]float64{}
	for j := 0; j < 10; j++ {
		cells[[2]int{0, j}] = float64(j + 1)
	}
	cells[[2]int{1, 0}] = 2
	cells[[2]int{1, 1}] = 4
	m := buildMatrix(t, 2, 10, cells)
	keys, vals := rowVectors(m)

	raw := topNeighbors(keys, vals, PCCConfig{TopK: -1, MinCommon: 2})
	weighted := topNeighbors(keys, vals, PCCConfig{TopK: -1, MinCommon: 2, Significance: true})
	if len(raw[0]) != 1 || len(weighted[0]) != 1 {
		t.Fatalf("expected one neighbor: raw=%v weighted=%v", raw[0], weighted[0])
	}
	if weighted[0][0].sim >= raw[0][0].sim {
		t.Fatalf("significance weighting should shrink: %g >= %g", weighted[0][0].sim, raw[0][0].sim)
	}
	// 2 common of (10+2) observations: factor 2·2/12 = 1/3.
	if want := raw[0][0].sim / 3; math.Abs(weighted[0][0].sim-want) > 1e-12 {
		t.Fatalf("weighted sim = %g, want %g", weighted[0][0].sim, want)
	}
}

func TestColVectorsSorted(t *testing.T) {
	m := buildMatrix(t, 4, 3, map[[2]int]float64{
		{3, 1}: 1, {0, 1}: 2, {2, 1}: 3, {1, 0}: 4,
	})
	keys, vals := colVectors(m)
	if len(keys[1]) != 3 {
		t.Fatalf("col 1 has %d entries", len(keys[1]))
	}
	for i := 1; i < len(keys[1]); i++ {
		if keys[1][i] <= keys[1][i-1] {
			t.Fatalf("col keys not sorted: %v", keys[1])
		}
	}
	_ = vals
}

func TestClampMin(t *testing.T) {
	if clampMin(-1) != 0 || clampMin(2) != 2 {
		t.Fatal("clampMin")
	}
}
