package baseline

import "github.com/qoslab/amf/internal/matrix"

// UIPCC hybridizes UPCC and IPCC with confidence weighting (Zheng et al.,
// IEEE TSC 2011): the two CF estimates are blended by weights derived from
// each neighborhood's confidence and a user-tunable parameter λ
// controlling the a-priori trust in the user-based view.
type UIPCC struct {
	u      *UPCC
	i      *IPCC
	lambda float64
}

// UIPCCConfig configures the hybrid.
type UIPCCConfig struct {
	User PCCConfig
	Item PCCConfig
	// Lambda in [0,1] is the a-priori weight of the user-based estimate.
	// The WSRec default of 0.1 reflects that service-side similarity is
	// usually more informative for QoS. Values outside [0,1] are clamped.
	Lambda float64
}

// TrainUIPCC builds the hybrid from a frozen sparse QoS matrix.
func TrainUIPCC(m *matrix.Sparse, cfg UIPCCConfig) *UIPCC {
	lambda := cfg.Lambda
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	return &UIPCC{
		u:      TrainUPCC(m, cfg.User),
		i:      TrainIPCC(m, cfg.Item),
		lambda: lambda,
	}
}

// Name implements Predictor.
func (h *UIPCC) Name() string { return "UIPCC" }

// Predict blends the two CF estimates:
//
//	w_u = λ·con_u / (λ·con_u + (1−λ)·con_i),  w_i = 1 − w_u
//	r̂ = w_u·r̂_UPCC + w_i·r̂_IPCC
//
// degrading gracefully to whichever single estimate exists, then to the
// component fallbacks.
func (h *UIPCC) Predict(user, service int) (float64, bool) {
	uv, ucon, uok := h.u.PredictWithConfidence(user, service)
	iv, icon, iok := h.i.PredictWithConfidence(user, service)
	switch {
	case uok && iok:
		wu := h.lambda * ucon
		wi := (1 - h.lambda) * icon
		if wu+wi == 0 {
			// Both neighborhoods exist but carry zero confidence; fall
			// back to the a-priori blend.
			wu, wi = h.lambda, 1-h.lambda
		}
		return clampMin((wu*uv + wi*iv) / (wu + wi)), true
	case uok:
		return clampMin(uv), true
	case iok:
		return clampMin(iv), true
	default:
		// Neither CF estimate exists: delegate to UPCC's fallback chain
		// (user mean → global), then IPCC's (service mean → global).
		if v, ok := h.u.Predict(user, service); ok {
			return v, true
		}
		return h.i.Predict(user, service)
	}
}

// Components exposes the trained UPCC and IPCC parts (for experiments
// that report them separately, as Table I does).
func (h *UIPCC) Components() (*UPCC, *IPCC) { return h.u, h.i }
