package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/qoslab/amf/internal/matrix"
)

// PMFConfig tunes the probabilistic-matrix-factorization baseline.
type PMFConfig struct {
	// Rank is the latent dimensionality d. Zero means the default of 10
	// (matching the paper's AMF setting for a fair comparison).
	Rank int
	// LearnRate is the per-sample SGD step size. Zero means 0.05.
	LearnRate float64
	// Reg is the shared regularization λ. Zero means 0.001; negative is
	// rejected.
	Reg float64
	// MaxEpochs bounds training. Zero means 300.
	MaxEpochs int
	// Tol declares convergence when the relative improvement of the
	// training RMSE falls below it. Zero means 1e-4.
	Tol float64
	// RMax normalizes QoS values to [0,1] before factorization. It must
	// be positive (use the attribute's range maximum).
	RMax float64
	// ClampNonNegative floors predictions at 0. The paper's comparison
	// uses the raw inner product (negative predictions count against
	// PMF's relative errors), so the default is false; production users
	// may prefer physically meaningful non-negative estimates.
	ClampNonNegative bool
	// Seed fixes the latent initialization.
	Seed int64
}

func (c PMFConfig) withDefaults() PMFConfig {
	if c.Rank == 0 {
		c.Rank = 10
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.001
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 300
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

func (c PMFConfig) validate() error {
	switch {
	case c.Rank < 0:
		return fmt.Errorf("baseline: PMF rank must be positive, got %d", c.Rank)
	case c.LearnRate < 0:
		return fmt.Errorf("baseline: PMF learn rate must be positive, got %g", c.LearnRate)
	case c.Reg < 0:
		return fmt.Errorf("baseline: PMF reg must be non-negative, got %g", c.Reg)
	case c.RMax <= 0:
		return fmt.Errorf("baseline: PMF RMax must be positive, got %g", c.RMax)
	}
	return nil
}

// PMF is a trained probabilistic matrix factorization model. It minimizes
//
//	Σ_(i,j) I_ij (r_ij − U_iᵀS_j)² + λ(‖U‖²_F + ‖S‖²_F)
//
// by stochastic gradient descent over shuffled observed entries, on QoS
// values linearly normalized to [0,1] — i.e. it optimizes the *absolute*
// error that the paper argues is the wrong objective for QoS adaptation
// (Sec. IV-C.1).
type PMF struct {
	cfg    PMFConfig
	users  *matrix.Dense // n x d
	items  *matrix.Dense // m x d
	epochs int
	rmse   float64
}

// TrainPMF factorizes a frozen sparse QoS matrix.
func TrainPMF(m *matrix.Sparse, cfg PMFConfig) (*PMF, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, cols, d := m.Rows(), m.Cols(), cfg.Rank
	p := &PMF{
		cfg:   cfg,
		users: matrix.NewDense(n, d),
		items: matrix.NewDense(cols, d),
	}
	scale := 0.1
	p.users.Apply(func(float64) float64 { return rng.NormFloat64() * scale })
	p.items.Apply(func(float64) float64 { return rng.NormFloat64() * scale })

	entries := m.Entries()
	if len(entries) == 0 {
		return p, nil
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}

	prevRMSE := math.Inf(1)
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		var sqErr float64
		for _, idx := range order {
			e := entries[idx]
			r := e.Val / cfg.RMax
			ui := p.users.Row(e.Row)
			sj := p.items.Row(e.Col)
			diff := matrix.Dot(ui, sj) - r
			sqErr += diff * diff
			for k := 0; k < d; k++ {
				uk, sk := ui[k], sj[k]
				ui[k] = uk - cfg.LearnRate*(diff*sk+cfg.Reg*uk)
				sj[k] = sk - cfg.LearnRate*(diff*uk+cfg.Reg*sk)
			}
		}

		p.epochs = epoch + 1
		p.rmse = math.Sqrt(sqErr / float64(len(entries)))
		if prevRMSE < math.Inf(1) && prevRMSE > 0 {
			if math.Abs(prevRMSE-p.rmse)/prevRMSE < cfg.Tol {
				break
			}
		}
		prevRMSE = p.rmse
	}
	return p, nil
}

// Name implements Predictor.
func (p *PMF) Name() string { return "PMF" }

// Predict returns U_iᵀS_j denormalized to QoS units, capped at RMax and
// floored at 0 only when ClampNonNegative is set.
func (p *PMF) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= p.users.Rows() || service < 0 || service >= p.items.Rows() {
		return 0, false
	}
	v := matrix.Dot(p.users.Row(user), p.items.Row(service)) * p.cfg.RMax
	if p.cfg.ClampNonNegative && v < 0 {
		v = 0
	}
	if v > p.cfg.RMax {
		v = p.cfg.RMax
	}
	return v, true
}

// Epochs returns the number of training epochs performed.
func (p *PMF) Epochs() int { return p.epochs }

// TrainRMSE returns the final training RMSE in normalized units.
func (p *PMF) TrainRMSE() float64 { return p.rmse }
