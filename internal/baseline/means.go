package baseline

import "github.com/qoslab/amf/internal/matrix"

// UMEAN predicts every unknown value as the active user's observed mean.
// IMEAN predicts the target service's observed mean. They are the
// standard lower-bound baselines of the WSRec literature (Zheng et al.,
// TSC 2011) and useful sanity floors: any collaborative approach should
// beat them.
type UMEAN struct {
	means     []float64
	hasMean   []bool
	global    float64
	hasGlobal bool
	cols      int
}

// TrainUMEAN builds the user-mean predictor from a frozen sparse matrix.
func TrainUMEAN(m *matrix.Sparse) *UMEAN {
	u := &UMEAN{
		means:   make([]float64, m.Rows()),
		hasMean: make([]bool, m.Rows()),
		cols:    m.Cols(),
	}
	var sum float64
	var n int
	for i := 0; i < m.Rows(); i++ {
		if mean, ok := m.RowMean(i); ok {
			u.means[i] = mean
			u.hasMean[i] = true
			sum += mean
			n++
		}
	}
	if n > 0 {
		u.global = sum / float64(n)
		u.hasGlobal = true
	}
	return u
}

// Name implements Predictor.
func (u *UMEAN) Name() string { return "UMEAN" }

// Predict returns the user's mean, falling back to the global mean.
func (u *UMEAN) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= len(u.means) || service < 0 || service >= u.cols {
		return 0, false
	}
	if u.hasMean[user] {
		return clampMin(u.means[user]), true
	}
	if u.hasGlobal {
		return clampMin(u.global), true
	}
	return 0, false
}

// IMEAN is the service-mean counterpart of UMEAN.
type IMEAN struct {
	means     []float64
	hasMean   []bool
	global    float64
	hasGlobal bool
	rows      int
}

// TrainIMEAN builds the service-mean predictor from a frozen sparse
// matrix.
func TrainIMEAN(m *matrix.Sparse) *IMEAN {
	p := &IMEAN{
		means:   make([]float64, m.Cols()),
		hasMean: make([]bool, m.Cols()),
		rows:    m.Rows(),
	}
	var sum float64
	var n int
	for j := 0; j < m.Cols(); j++ {
		if mean, ok := m.ColMean(j); ok {
			p.means[j] = mean
			p.hasMean[j] = true
			sum += mean
			n++
		}
	}
	if n > 0 {
		p.global = sum / float64(n)
		p.hasGlobal = true
	}
	return p
}

// Name implements Predictor.
func (p *IMEAN) Name() string { return "IMEAN" }

// Predict returns the service's mean, falling back to the global mean.
func (p *IMEAN) Predict(user, service int) (float64, bool) {
	if user < 0 || user >= p.rows || service < 0 || service >= len(p.means) {
		return 0, false
	}
	if p.hasMean[service] {
		return clampMin(p.means[service]), true
	}
	if p.hasGlobal {
		return clampMin(p.global), true
	}
	return 0, false
}
