// Package engine is the serving engine of the QoS prediction service: it
// makes the prediction hot path lock-free and the update path
// asynchronous.
//
// The paper's whole point is *online* prediction that scales to runtime
// adaptation traffic (Sec. III framework, Fig. 13/14); at serving scale
// the prediction-time cost dominates (cf. FES, Chattopadhyay et al.), so
// predictions must never block on SGD updates. The engine achieves that
// with two mechanisms:
//
//   - RCU-style published views. The engine holds an immutable
//     core.PredictView in an atomic pointer. Every read — Predict,
//     PredictWithConfidence, Rank, Snapshot, error reports — loads the
//     pointer and works on the frozen view: zero locks, zero contention,
//     wait-free. Readers holding an old view keep it alive (GC is our
//     grace period); they simply observe slightly stale factors, bounded
//     by the publish policy below.
//
//   - A single-coordinator update loop with sharded ingest. Observations
//     enter bounded per-shard channels (drop-oldest under overload, with
//     accounting), are drained in batches by one writer goroutine that
//     applies them to the model, interleaves ReplayStep work
//     (Algorithm 1 lines 11-15), and republishes a fresh view every
//     PublishEvery updates or PublishInterval, whichever comes first.
//     Republication is incremental: only the view shards touched since
//     the last publish are recloned (see core.Model.RefreshView).
//
//     With Config.TrainWorkers > 1 the writer goroutine stops applying
//     updates itself and becomes the coordinator of a core.Trainer:
//     drained batches are partitioned by ingest shard (shard si feeds
//     worker si&(W−1), so per-user ordering survives) and fanned out
//     across W user-partitioned SGD workers with striped service-vector
//     locks. Fan-outs are fork-join, so views still publish only while
//     the model is quiescent; TrainWorkers=1 (the default) is bit-for-bit
//     the old serial writer.
//
// Two write paths exist on purpose. Enqueue is fire-and-forget with
// backpressure accounting — the high-frequency stream-ingest path.
// ObserveAll is synchronous: it hands the batch to the writer and waits
// until the batch is applied AND a fresh view is published, giving HTTP
// clients read-your-writes semantics. Control operations (Restore,
// RemoveUser, ReplaySteps, ...) serialize with the writer on a mutex that
// the read path never touches.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/stream"
)

// Config tunes the serving engine. The zero value gets sensible defaults.
type Config struct {
	// QueueSize bounds each ingest shard's channel. When a shard is
	// full, Enqueue drops the oldest queued sample to admit the new one
	// (freshest-data-wins, matching the model's own expiry semantics).
	// Default 4096.
	QueueSize int
	// IngestShards is the number of ingest channels; producers are
	// sharded by user ID to spread channel-lock contention. Rounded up
	// to a power of two. Default 8.
	IngestShards int
	// PublishEvery republishes the read view after this many model
	// updates (K). Default 256.
	PublishEvery int
	// PublishInterval republishes at least this often while updates are
	// pending (T); the worst-case staleness of the published view is
	// ~2·T. Also the writer's housekeeping tick. Default 50ms.
	PublishInterval time.Duration
	// ReplayPerBatch interleaves up to this many ReplayStep updates
	// (Algorithm 1's "randomly pick an existing sample") after each
	// drained ingest batch, keeping the model converging between
	// arrivals without a separate replay loop. Default 0 (replay is
	// driven externally via ReplaySteps / server.RunReplay).
	ReplayPerBatch int
	// TrainWorkers is the number of parallel training workers W. With
	// the default of 1 the engine keeps the exact single-writer serial
	// behavior it has always had (bit-for-bit deterministic for a fixed
	// seed). With W > 1 the writer becomes a coordinator: drained
	// batches fan out across a core.Trainer's user-partitioned workers
	// (ingest shard si feeds worker si&(W−1), preserving per-user
	// ordering), service vectors are guarded by striped locks, and view
	// publication still happens only between fan-outs. Rounded down to a
	// power of two and clamped to [1, core.MaxTrainWorkers]; values > 1
	// also raise IngestShards to at least W so the shard→worker mapping
	// stays exact.
	TrainWorkers int
	// TrainUnsync enables Hogwild-style unsynchronized service updates
	// in the parallel trainer (benchmarking only — see
	// core.TrainerConfig.Unsynchronized). Ignored when TrainWorkers <= 1.
	TrainUnsync bool
	// Control, when non-nil, is the runtime-tunable registry the engine
	// declares its adaptive knobs on (publish interval/quantum, ingest
	// batch cap, replay per batch, per-class admission watermarks). The
	// Config fields above seed the *baselines*; after construction the
	// writer loop reads the live values through the registry, so an
	// epoch controller or the config API can move them within bounds at
	// runtime. Nil gets a private registry — the engine then behaves
	// exactly like the frozen-Config engine it replaced.
	Control *control.Registry
	// ArenaFloat32 publishes read views with float32 factor arenas:
	// half the bytes per row on the rank scan's memory stream, at a
	// one-time rounding of the published factors (training stays
	// float64 — see core.Model.SetArenaFloat32). Measured accuracy cost
	// on the seed dataset: |MRE delta| ≈ 5e-9 (internal/core
	// TestFloat32ArenaPrecision). Applies to every view the engine
	// publishes, including after Restore.
	ArenaFloat32 bool
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.IngestShards <= 0 {
		c.IngestShards = 8
	}
	// Round shards up to a power of two so sharding is a mask.
	n := 1
	for n < c.IngestShards {
		n <<= 1
	}
	c.IngestShards = n
	if c.PublishEvery <= 0 {
		c.PublishEvery = 256
	}
	if c.PublishInterval <= 0 {
		c.PublishInterval = 50 * time.Millisecond
	}
	if c.ReplayPerBatch < 0 {
		c.ReplayPerBatch = 0
	}
	if c.TrainWorkers <= 0 {
		c.TrainWorkers = 1
	}
	// Mirror the trainer's rounding (power of two, ≤ MaxTrainWorkers) so
	// the shard floor below uses the effective worker count.
	p := 1
	for p*2 <= c.TrainWorkers && p*2 <= core.MaxTrainWorkers {
		p *= 2
	}
	c.TrainWorkers = p
	if c.IngestShards < c.TrainWorkers {
		// Shard→worker affinity needs at least one shard per worker so
		// user&(shards−1) determines user&(W−1).
		c.IngestShards = c.TrainWorkers
	}
	return c
}

// Stats is a point-in-time accounting snapshot of the engine.
type Stats struct {
	Enqueued      int64  // samples accepted into the ingest queue
	Dropped       int64  // samples dropped under overload (DroppedNew + DroppedOldest)
	DroppedNew    int64  // incoming samples shed after the drop-oldest spin gave up
	DroppedOldest int64  // queued samples evicted to admit fresher ones
	ShedStandard  int64  // standard-class samples refused at the admission watermark
	ShedSheddable int64  // sheddable-class samples refused at the admission watermark
	Applied       int64  // samples applied to the model (ingest + sync batches)
	Replayed      int64  // replay updates performed by/through the engine
	Published     int64  // views published
	QueueLen      int    // samples currently queued across all shards
	QueueCap      int    // total queue capacity across all shards
	Version       uint64 // current view version
	Updates       int64  // current view's model update count
	TrainWorkers  int    // parallel training workers (1 = serial writer)
	JournalErrors int64  // WAL appends that failed (model kept learning)
}

type syncBatch struct {
	samples []stream.Sample
	done    chan struct{}
	// timing, when non-nil, receives the per-stage breakdown of this
	// batch (traced observes only); enq is its enqueue time.
	timing *ObserveTiming
	enq    time.Time
}

// ObserveTiming is the per-stage breakdown of one synchronous observe
// batch, filled by ObserveAllTraced for trace annotation.
type ObserveTiming struct {
	QueueWait  time.Duration // enqueue → writer starts applying the batch
	Journal    time.Duration // WAL append (zero without a journal)
	Apply      time.Duration // model update
	Publish    time.Duration // view rebuild + RCU publish
	CommitWait time.Duration // group-commit fsync wait (zero unless pipelined)
}

// queued is one ingest-queue entry: the sample plus its enqueue time
// (UnixNano), so the writer can attribute queue-wait latency on drain.
type queued struct {
	s   stream.Sample
	enq int64
}

// Metrics is the engine's latency instrumentation: three lock-free
// log-bucketed histograms (see internal/obs) that the engine always
// maintains — recording costs a few atomic adds, so there is no off
// switch. The server registers them for /metrics exposition; embedders
// can read quantiles directly.
type Metrics struct {
	// QueueWait is the time samples spent in the ingest queue between
	// Enqueue and the writer picking them up (seconds).
	QueueWait *obs.Histogram
	// Apply is the per-update model apply latency (seconds). Batches are
	// timed once and the mean is attributed to each update in the batch
	// (obs.Histogram.ObserveN), so the writer does not pay two clock
	// reads per SGD update.
	Apply *obs.Histogram
	// Publish is the view refresh+publish latency (seconds): the cost of
	// recloning dirty shards and swinging the RCU pointer.
	Publish *obs.Histogram
}

func newMetrics() *Metrics {
	return &Metrics{
		QueueWait: obs.NewHistogram(1e-9, 60, 8),
		Apply:     obs.NewHistogram(1e-9, 60, 8),
		Publish:   obs.NewHistogram(1e-9, 60, 8),
	}
}

// Engine serves a continuously trained AMF model: lock-free reads from a
// published view, asynchronous single-writer updates. Construct with New,
// stop with Close.
type Engine struct {
	cfg Config

	// view is the RCU-published read state. Readers only ever Load.
	view atomic.Pointer[core.PredictView]

	// mu serializes ALL model mutation: the writer loop's batch applies
	// and every control operation. The read path never acquires it.
	mu    sync.Mutex
	model *core.Model

	// trainer is the parallel training path (nil when TrainWorkers <= 1
	// and after Close). All trainer calls happen under mu: the writer
	// loop is the coordinator that fans batches out to the trainer's
	// workers and joins them before publishing, so view publication
	// never overlaps an update. parts is the coordinator's reusable
	// per-worker partition scratch.
	trainer *core.Trainer
	parts   [][]stream.Sample
	// trainMetrics is the trainer's instrumentation, held separately so
	// it survives trainer rebuilds (Restore) and stays readable lock-free
	// after Close. Nil when TrainWorkers <= 1.
	trainMetrics *core.TrainerMetrics

	// journal is the optional write-ahead log (see Journal, SetJournal),
	// guarded by mu like all mutation state. drainBuf is the writer
	// loop's reusable scratch for collecting a drained batch so it can be
	// journaled as one record before it is applied; unused (and unsized)
	// when no journal is attached. journalErrs counts appends that
	// failed — the engine keeps serving, the store's fail-fast makes the
	// gap visible.
	journal     Journal
	drainBuf    []stream.Sample
	journalErrs atomic.Int64

	// durJournal is non-nil when the attached journal group-commits
	// (see DurableJournal): the writer then hands each journaled sync
	// batch to the ack completer instead of closing done inline, so it
	// keeps draining/applying while the covering fsync is in flight.
	// acks is the completer's queue; both are guarded by mu (the writer
	// reads them under mu per batch).
	durJournal DurableJournal
	acks       chan ackEntry

	// timing, when non-nil, receives per-stage durations for the sync
	// batch currently being applied. Guarded by mu: set only inside the
	// traced sync-batch critical section, nil everywhere else, so the
	// untraced paths pay a single nil check.
	timing *ObserveTiming

	// publish bookkeeping, guarded by mu.
	sincePublish int       // model updates since the last publish
	lastPublish  time.Time // wall time of the last publish

	shards []chan queued
	syncCh chan syncBatch
	wake   chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	enqueued      atomic.Int64
	droppedNew    atomic.Int64
	droppedOldest atomic.Int64
	shedStandard  atomic.Int64
	shedSheddable atomic.Int64
	applied       atomic.Int64
	replayed      atomic.Int64
	published     atomic.Int64

	// Control-plane tunables (see Config.Control). The writer loop and
	// admission checks read these with one atomic load each; the Config
	// fields they were seeded from are never consulted again after New.
	ctl                *control.Registry
	tunPublishInterval *control.Duration
	tunPublishEvery    *control.Int
	tunBatchCap        *control.Int
	tunReplayPerBatch  *control.Int
	tunAdmitStandard   *control.Float
	tunAdmitSheddable  *control.Float

	// Observability (read by scrapers without any lock): latency
	// histograms plus atomic mirrors of the mu-guarded publish
	// bookkeeping so Staleness never contends with the writer.
	metrics         *Metrics
	pending         atomic.Int64 // updates since the last publish (mirror of sincePublish)
	lastPublishNano atomic.Int64 // UnixNano of the last publish
}

// New wraps a model in a serving engine and starts its writer goroutine.
// The caller must not use the model directly afterwards. Close releases
// the writer.
func New(model *core.Model, cfg Config) *Engine {
	raw := cfg // pre-default values: distinguishes flag-set from defaulted baselines
	cfg = cfg.withDefaults()
	model.SetArenaFloat32(cfg.ArenaFloat32)
	e := &Engine{
		cfg:     cfg,
		model:   model,
		shards:  make([]chan queued, cfg.IngestShards),
		syncCh:  make(chan syncBatch),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		metrics: newMetrics(),
	}
	e.registerTunables(raw)
	for i := range e.shards {
		e.shards[i] = make(chan queued, cfg.QueueSize)
	}
	if cfg.TrainWorkers > 1 {
		e.trainer = core.NewTrainer(model, core.TrainerConfig{
			Workers:        cfg.TrainWorkers,
			Unsynchronized: cfg.TrainUnsync,
		})
		e.parts = make([][]stream.Sample, e.trainer.Workers())
		e.trainMetrics = e.trainer.Metrics()
	}
	e.view.Store(model.BuildView())
	e.lastPublish = time.Now()
	e.lastPublishNano.Store(e.lastPublish.UnixNano())
	e.wg.Add(1)
	go e.loop()
	return e
}

// registerTunables declares the engine's adaptive knobs on the control
// registry (cfg.Control, or a private one). Bounds scale with the
// operator's baseline — a controller may trade freshness for throughput
// by up to 64× in either direction, but never invert the operator's
// intent by orders of magnitude. raw is the pre-default Config, used
// only to attribute each baseline to a flag or a package default.
func (e *Engine) registerTunables(raw Config) {
	ctl := e.cfg.Control
	if ctl == nil {
		ctl = control.NewRegistry()
	}
	e.ctl = ctl
	ivl := e.cfg.PublishInterval
	e.tunPublishInterval = ctl.Duration("engine.publish_interval",
		"View republish deadline T; the epoch controller widens it under overload to spend less writer time recloning views.",
		ivl, ivl/64, ivl*64, control.FlagSource(raw.PublishInterval > 0))
	every := e.cfg.PublishEvery
	minEvery := every / 64
	if minEvery < 1 {
		minEvery = 1
	}
	e.tunPublishEvery = ctl.Int("engine.publish_every",
		"View republish quantum K (updates between republishes).",
		every, minEvery, every*64, control.FlagSource(raw.PublishEvery > 0))
	batch := every
	if batch < 64 {
		batch = 64
	}
	e.tunBatchCap = ctl.Int("engine.ingest_batch_cap",
		"Max queued samples drained per writer pass; the epoch controller raises it under overload to amortize per-batch costs.",
		batch, 64, batch*64, control.FlagSource(raw.PublishEvery > 0))
	replay := e.cfg.ReplayPerBatch
	maxReplay := replay * 64
	if maxReplay < 1024 {
		maxReplay = 1024
	}
	e.tunReplayPerBatch = ctl.Int("engine.replay_per_batch",
		"Replay updates interleaved after each drained ingest batch; shed first under overload (replay is optional work).",
		replay, 0, maxReplay, control.FlagSource(raw.ReplayPerBatch > 0))
	e.tunAdmitStandard = ctl.Float("engine.admit_standard_watermark",
		"Ingest-shard occupancy above which standard-class enqueues are refused.",
		0.95, 0.05, 1.0, control.SourceDefault)
	e.tunAdmitSheddable = ctl.Float("engine.admit_sheddable_watermark",
		"Ingest-shard occupancy above which sheddable-class enqueues are refused; the epoch controller lowers it to widen shedding.",
		0.90, 0.05, 1.0, control.SourceDefault)
}

// Control returns the engine's runtime-tunable registry (the one passed
// in Config.Control, or the private default). The server hangs its own
// admission tunables, the config API, and the epoch controller off it.
func (e *Engine) Control() *control.Registry { return e.ctl }

// Closed reports whether Close has begun. Ingest producers use it to
// distinguish "engine shutting down" (fall back to inline Observe) from
// "admission refused" (shed the sample).
func (e *Engine) Closed() bool { return e.closed.Load() }

// Close stops the writer goroutine after a final drain-and-publish, so
// samples accepted before Close are reflected in the last published view.
// The engine remains readable after Close; ObserveAll and control
// operations fall back to applying inline.
// (Parallel trainers are released too: after Close the inline fallback
// paths run the exact serial model code, so a closed engine never fans
// out. Replay samples held by worker-local pools are dropped with the
// trainer — the model's own pool keeps serving post-Close replay.)
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		close(e.stop)
	}
	e.wg.Wait()
	e.mu.Lock()
	if e.trainer != nil {
		e.trainer.Close()
		e.trainer = nil
	}
	e.mu.Unlock()
}

// View returns the current published view. The returned view is immutable
// and safe to use for any number of reads; load it once per request (or
// per ranking) for internally consistent results.
func (e *Engine) View() *core.PredictView { return e.view.Load() }

// ---------------------------------------------------------------------------
// Ingest (async) and observe (sync) write paths.

func (e *Engine) shardFor(user int) chan queued {
	return e.shards[user&(len(e.shards)-1)]
}

// Enqueue admits one observation into the bounded ingest queue without
// waiting for it to be applied — the high-frequency streaming path. Under
// overload the oldest queued sample in the shard is dropped to admit the
// new one (the model prefers fresh data anyway; its replay pool expires
// old samples). It reports whether the new sample was admitted; drops of
// either kind are counted in Stats.Dropped.
func (e *Engine) Enqueue(s stream.Sample) bool {
	return e.EnqueueClass(s, control.Critical)
}

// EnqueueClass is Enqueue with bounded-queue admission by SLO class:
// critical samples are always admitted (up to drop-oldest, exactly the
// old Enqueue semantics), standard and sheddable samples are refused —
// not enqueued, counted in Stats.ShedStandard/ShedSheddable — once
// their shard's occupancy crosses the class watermark tunable. Refusing
// at a watermark below 100% keeps headroom for more important classes
// and sheds *new* low-value work instead of churning the queue with
// drop-oldest evictions.
func (e *Engine) EnqueueClass(s stream.Sample, class control.Class) bool {
	if e.closed.Load() {
		return false
	}
	ch := e.shardFor(s.User)
	if !e.admitOn(ch, class) {
		return false
	}
	if !e.enqueueOn(ch, queued{s: s, enq: time.Now().UnixNano()}) {
		return false
	}
	e.signal()
	return true
}

// admitOn checks one shard's occupancy against the class watermark,
// counting refused samples per class.
func (e *Engine) admitOn(ch chan queued, class control.Class) bool {
	var wm float64
	switch class {
	case control.Critical:
		return true
	case control.Standard:
		wm = e.tunAdmitStandard.Load()
	default:
		wm = e.tunAdmitSheddable.Load()
	}
	if float64(len(ch)) < wm*float64(cap(ch)) {
		return true
	}
	if class == control.Standard {
		e.shedStandard.Add(1)
	} else {
		e.shedSheddable.Add(1)
	}
	return false
}

// enqueueOn admits one entry into a shard channel with drop-oldest
// semantics, without signaling the writer. Drops are split by reason:
// droppedOldest counts queued samples evicted to admit fresher ones,
// droppedNew counts incoming samples shed after the eviction spin gave up.
func (e *Engine) enqueueOn(ch chan queued, q queued) bool {
	for tries := 0; ; tries++ {
		select {
		case ch <- q:
			e.enqueued.Add(1)
			return true
		default:
		}
		if tries >= 4 {
			// Contended producers kept refilling the slot we freed;
			// shed the new sample instead of spinning.
			e.droppedNew.Add(1)
			return false
		}
		// Drop the oldest queued sample to make room.
		select {
		case <-ch:
			e.droppedOldest.Add(1)
		default:
		}
	}
}

// EnqueueAll admits a batch and returns how many samples were admitted.
// Unlike a loop over Enqueue it groups the batch by ingest shard first —
// one timestamp read, one pass per shard's contiguous run, and a single
// writer wakeup for the whole batch instead of one per sample — so bulk
// producers (TCP ingest framing, replayed WALs) do not hammer the wake
// channel. Per-user ordering is preserved: a user maps to exactly one
// shard and the per-shard groups keep arrival order.
func (e *Engine) EnqueueAll(ss []stream.Sample) int {
	return e.EnqueueAllClass(ss, control.Critical)
}

// EnqueueAllClass is EnqueueAll with per-class admission (see
// EnqueueClass). Replication apply and WAL replay go through EnqueueAll
// — already-acknowledged samples are critical by definition; only new
// ingest traffic is classed lower.
func (e *Engine) EnqueueAllClass(ss []stream.Sample, class control.Class) int {
	if e.closed.Load() || len(ss) == 0 {
		return 0
	}
	now := time.Now().UnixNano()
	mask := len(e.shards) - 1
	// Group by shard: small batches just index directly, large ones get
	// bucketed so each channel is touched in one contiguous run.
	n := 0
	if len(ss) <= 16 {
		for _, s := range ss {
			ch := e.shards[s.User&mask]
			if e.admitOn(ch, class) && e.enqueueOn(ch, queued{s: s, enq: now}) {
				n++
			}
		}
	} else {
		groups := make([][]stream.Sample, len(e.shards))
		for _, s := range ss {
			si := s.User & mask
			groups[si] = append(groups[si], s)
		}
		for si, g := range groups {
			ch := e.shards[si]
			for _, s := range g {
				if e.admitOn(ch, class) && e.enqueueOn(ch, queued{s: s, enq: now}) {
					n++
				}
			}
		}
	}
	if n > 0 {
		e.signal()
	}
	return n
}

// ObserveAll applies a batch synchronously: it returns after the batch
// (and everything queued before it) has been applied to the model and a
// fresh view has been published, so a subsequent View() reflects the
// observations — read-your-writes for the HTTP observe endpoint. The
// batch is applied by the writer goroutine; callers only wait.
func (e *Engine) ObserveAll(ss []stream.Sample) { e.observeAll(ss, nil) }

// ObserveAllTraced is ObserveAll plus a per-stage timing breakdown for
// distributed tracing: how long the batch waited for the writer, then
// the journal append, model apply, and view publish durations. The
// plain ObserveAll path pays nothing for this — timings are recorded
// only when a destination struct is attached to the batch.
func (e *Engine) ObserveAllTraced(ss []stream.Sample) ObserveTiming {
	var t ObserveTiming
	e.observeAll(ss, &t)
	return t
}

func (e *Engine) observeAll(ss []stream.Sample, t *ObserveTiming) {
	sb := syncBatch{samples: ss, done: make(chan struct{}), timing: t}
	if t != nil {
		sb.enq = time.Now()
	}
	select {
	case e.syncCh <- sb:
		select {
		case <-sb.done:
		case <-e.stop:
			// Writer is shutting down; it may or may not have taken our
			// batch. Wait for it to exit, then apply inline if needed.
			e.wg.Wait()
			select {
			case <-sb.done:
			default:
				e.applyInline(ss, t)
			}
		}
	case <-e.stop:
		e.wg.Wait()
		e.applyInline(ss, t)
	}
}

// Observe applies one observation synchronously (see ObserveAll).
func (e *Engine) Observe(s stream.Sample) { e.ObserveAll([]stream.Sample{s}) }

// Flush blocks until every sample currently in the ingest queue has been
// applied and a fresh view published — a write barrier, mainly for tests
// and orderly shutdown.
func (e *Engine) Flush() { e.ObserveAll(nil) }

// applyInline is the post-Close fallback: the writer is gone, so mutate
// under mu directly. Durable acks complete inline too — there is no
// completer anymore, but acked⇒durable must survive shutdown races.
func (e *Engine) applyInline(ss []stream.Sample, t *ObserveTiming) {
	e.mu.Lock()
	e.timing = t
	seq := e.applyLocked(ss)
	e.publishLocked()
	e.timing = nil
	dj := e.durJournal
	e.mu.Unlock()
	if dj != nil && seq > 0 {
		if err := dj.WaitDurable(seq); err != nil {
			e.journalErrs.Add(1)
		}
	}
}

// ---------------------------------------------------------------------------
// Control operations: serialized with the writer via mu, each force-publishes
// so their effects are immediately visible to readers.

// ReplaySteps performs up to n replay updates (Algorithm 1's inner loop)
// and republishes. It returns the number of steps performed.
func (e *Engine) ReplaySteps(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	done := 0
	if e.trainer != nil {
		done = e.trainer.ReplaySteps(n)
	} else {
		for i := 0; i < n; i++ {
			if !e.model.ReplayStep() {
				break
			}
			done++
		}
	}
	if done > 0 {
		e.replayed.Add(int64(done))
		e.sincePublish += done
		e.pending.Add(int64(done))
		e.publishLocked()
	}
	return done
}

// AdvanceTo moves the model clock forward, expiring old replay samples.
func (e *Engine) AdvanceTo(t time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trainer != nil {
		e.trainer.AdvanceTo(t) // advances the model clock and every worker pool
		return
	}
	e.model.AdvanceTo(t)
}

// RemoveUser forgets a user (churn departure) and republishes so the
// departure is immediately visible to readers.
func (e *Engine) RemoveUser(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal != nil { // journal the departure before purging it
		if _, err := e.journal.AppendRemoveUser(id); err != nil {
			e.journalErrs.Add(1)
		}
	}
	e.model.RemoveUser(id)
	e.publishLocked()
}

// RemoveService forgets a service and republishes.
func (e *Engine) RemoveService(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal != nil {
		if _, err := e.journal.AppendRemoveService(id); err != nil {
			e.journalErrs.Add(1)
		}
	}
	e.model.RemoveService(id)
	e.publishLocked()
}

// SetLearnRate changes the SGD step size for subsequent updates.
func (e *Engine) SetLearnRate(eta float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.model.SetLearnRate(eta)
}

// Snapshot serializes the current published view. It takes no lock and
// never stalls the writer — unlike core.Concurrent.Snapshot, which holds
// the read lock across the full serialization.
func (e *Engine) Snapshot() ([]byte, error) { return e.View().Snapshot() }

// Restore atomically replaces the model with one reconstructed from a
// Snapshot and publishes a full rebuilt view. Readers see either the old
// or the new view, never an intermediate state.
func (e *Engine) Restore(data []byte) error {
	m, err := core.Restore(data)
	if err != nil {
		return err
	}
	m.SetArenaFloat32(e.cfg.ArenaFloat32) // restored model keeps the engine's arena precision
	e.mu.Lock()
	defer e.mu.Unlock()
	e.model = m
	if e.trainer != nil {
		// The trainer is bound to the replaced model: rebuild it against
		// the restored one (same worker count and mode).
		e.trainer.Close()
		e.trainer = core.NewTrainer(m, core.TrainerConfig{
			Workers:        e.cfg.TrainWorkers,
			Unsynchronized: e.cfg.TrainUnsync,
			Metrics:        e.trainMetrics, // keep /metrics series continuity
		})
	}
	e.publishLocked() // RefreshView detects the swap and fully rebuilds
	return nil
}

// ---------------------------------------------------------------------------
// Read-side conveniences (all wait-free: one view load + map reads).

// Predict estimates the QoS value from the current view.
func (e *Engine) Predict(user, service int) (float64, error) {
	return e.View().Predict(user, service)
}

// PredictWithConfidence estimates the QoS value and confidence from the
// current view.
func (e *Engine) PredictWithConfidence(user, service int) (float64, float64, error) {
	return e.View().PredictWithConfidence(user, service)
}

// RankServices ranks candidates against one consistent view.
func (e *Engine) RankServices(user int, candidates []int, lowerIsBetter bool) ([]core.Ranked, []int) {
	return e.View().RankServices(user, candidates, lowerIsBetter)
}

// TopK returns the best k candidates against one consistent view using
// the bounded-heap arena fast path (O(n log k), zero steady-state
// allocations — see core.PredictView.TopK).
func (e *Engine) TopK(user int, candidates []int, k int, lowerIsBetter bool) ([]core.Ranked, []int) {
	return e.View().TopK(user, candidates, k, lowerIsBetter)
}

// TopKAll ranks every known service for the user via contiguous arena
// scans (DotBatch), fanning across workers goroutines when workers > 1.
func (e *Engine) TopKAll(user int, k int, lowerIsBetter bool, workers int) []core.Ranked {
	return e.View().TopKAll(user, k, lowerIsBetter, workers)
}

// Best returns the single top candidate in one O(n) scan of the current
// view.
func (e *Engine) Best(user int, candidates []int, lowerIsBetter bool) (core.Ranked, bool) {
	return e.View().Best(user, candidates, lowerIsBetter)
}

// Updates returns the published view's model update count.
func (e *Engine) Updates() int64 { return e.View().Updates() }

// NumUsers returns the published view's user count.
func (e *Engine) NumUsers() int { return e.View().NumUsers() }

// NumServices returns the published view's service count.
func (e *Engine) NumServices() int { return e.View().NumServices() }

// Config returns the engine configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Metrics returns the engine's latency histograms (always maintained;
// see Metrics). The server registers them on its /metrics registry.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// TrainWorkers returns the effective parallel-training worker count
// (1 = the serial single-writer path).
func (e *Engine) TrainWorkers() int { return e.cfg.TrainWorkers }

// TrainMetrics returns the parallel trainer's instrumentation (per-worker
// apply latency, stripe contention, fan-out count), or nil when the
// engine runs the serial path. The returned pointer is stable for the
// engine's lifetime — trainers rebuilt on Restore record into the same
// series — so the server can register it once at setup.
func (e *Engine) TrainMetrics() *core.TrainerMetrics { return e.trainMetrics }

// Staleness reports how far behind the published view is: the age of the
// last publish while model updates are pending, and 0 when the view is
// current. It reads two atomics and never contends with the writer, so
// scrapers can poll it freely; under the default publish policy it stays
// below ~2·PublishInterval.
func (e *Engine) Staleness() time.Duration {
	if e.pending.Load() == 0 {
		return 0
	}
	d := time.Duration(time.Now().UnixNano() - e.lastPublishNano.Load())
	if d < 0 {
		d = 0
	}
	return d
}

// Stats returns accounting counters for the ingest queue and publisher.
func (e *Engine) Stats() Stats {
	v := e.View()
	queued := 0
	for _, ch := range e.shards {
		queued += len(ch)
	}
	dn, do := e.droppedNew.Load(), e.droppedOldest.Load()
	return Stats{
		Enqueued:      e.enqueued.Load(),
		Dropped:       dn + do,
		DroppedNew:    dn,
		DroppedOldest: do,
		ShedStandard:  e.shedStandard.Load(),
		ShedSheddable: e.shedSheddable.Load(),
		Applied:       e.applied.Load(),
		Replayed:      e.replayed.Load(),
		Published:     e.published.Load(),
		QueueLen:      queued,
		QueueCap:      len(e.shards) * e.cfg.QueueSize,
		Version:       v.Version(),
		Updates:       v.Updates(),
		TrainWorkers:  e.cfg.TrainWorkers,
		JournalErrors: e.journalErrs.Load(),
	}
}

// ---------------------------------------------------------------------------
// The writer loop.

func (e *Engine) signal() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *Engine) loop() {
	defer e.wg.Done()
	ivl := e.tunPublishInterval.Load()
	ticker := time.NewTicker(ivl)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			// Final drain so accepted samples make the last view.
			e.mu.Lock()
			e.drainLocked()
			e.publishLocked()
			acks := e.acks
			e.acks = nil
			e.mu.Unlock()
			if acks != nil {
				// The completer drains what's queued, then exits; its
				// e.wg membership keeps the shutdown fallback honest.
				close(acks)
			}
			return
		case sb := <-e.syncCh:
			e.mu.Lock()
			e.drainLocked() // queue order: async samples first
			if sb.timing != nil {
				// Queue wait for a sync batch = enqueue until the writer
				// turns to it (includes draining the async backlog ahead
				// of it). Safe to write here: the caller reads only after
				// done closes, which happens after the unlock below.
				sb.timing.QueueWait = time.Since(sb.enq)
				e.timing = sb.timing
			}
			seq := e.applyLocked(sb.samples)
			e.replayLocked()
			e.publishLocked() // force: sync callers get read-your-writes
			e.timing = nil
			dj, acks := e.durJournal, e.acks
			e.mu.Unlock()
			if dj != nil && acks != nil && seq > 0 {
				// Pipelined ack: the completer releases the caller once
				// the covering group fsync lands; this loop moves straight
				// on to the next batch while that fsync is in flight.
				a := ackEntry{seq: seq, sb: sb, j: dj}
				select {
				case acks <- a:
				default:
					e.completeAck(a) // queue full: backpressure inline
				}
			} else {
				close(sb.done)
			}
		case <-e.wake:
			e.mu.Lock()
			e.drainLocked()
			e.replayLocked()
			e.publishIfDueLocked()
			e.mu.Unlock()
		case <-ticker.C:
			// The housekeeping tick is where an adapted publish interval
			// takes effect: cheap (one atomic load per tick), and an
			// epoch's worth of delay to react is fine for a knob that
			// trades freshness for throughput.
			if cur := e.tunPublishInterval.Load(); cur != ivl {
				ivl = cur
				ticker.Reset(ivl)
			}
			e.mu.Lock()
			e.drainLocked()
			e.publishIfDueLocked()
			e.mu.Unlock()
		}
	}
}

// drainLocked applies queued samples, bounded to the ingest_batch_cap
// tunable (baseline: one publish quantum K) per call so a firehose
// cannot monopolize the writer and starve publication; leftovers
// re-signal the loop, which publishes between drains via
// publishIfDueLocked. Queue-wait latency is measured against
// the drain start (a lower bound for samples drained later in the batch),
// and the batch apply time is attributed to each update as its mean — one
// pair of clock reads per drain, not per update.
//
// With a journal attached, drained samples are first collected into
// drainBuf and appended to the WAL as ONE record, and only then applied
// — journal-before-apply, the recovery invariant (see Journal). The
// journal-free path is untouched: samples apply inline as they drain.
//
// With a parallel trainer the drain becomes a two-phase coordinator:
// phase one pulls queued samples into per-worker partitions (ingest shard
// si feeds worker si&(W−1) — exact, because IngestShards ≥ W and both are
// powers of two, so a user's worker is a function of its shard; per-user
// arrival order is preserved), phase two fans the partitions out across
// the trainer's workers and joins them. The writer never publishes while
// workers run — fan-outs are fork-join, so the quiescent windows between
// drains are the only publish points, same as the serial path.
func (e *Engine) drainLocked() {
	budget := e.tunBatchCap.Load()
	start := time.Now()
	startNano := start.UnixNano()
	parallel := e.trainer != nil
	journaling := e.journal != nil
	var wmask int
	if parallel {
		wmask = e.trainer.Workers() - 1
		for i := range e.parts {
			e.parts[i] = e.parts[i][:0]
		}
	}
	if journaling {
		e.drainBuf = e.drainBuf[:0]
	}
	drained := 0
	for budget > 0 {
		progress := false
		for si, ch := range e.shards {
			for budget > 0 {
				select {
				case q := <-ch:
					if wait := startNano - q.enq; wait > 0 {
						e.metrics.QueueWait.Observe(float64(wait) / 1e9)
					} else {
						e.metrics.QueueWait.Observe(0)
					}
					if journaling {
						e.drainBuf = append(e.drainBuf, q.s)
					}
					if parallel {
						w := si & wmask
						e.parts[w] = append(e.parts[w], q.s)
					} else if !journaling {
						e.model.Observe(q.s)
					}
					drained++
					budget--
					progress = true
					continue
				default:
				}
				break
			}
		}
		if !progress {
			break
		}
	}
	if drained > 0 {
		if journaling {
			// One record for the whole drained batch, BEFORE any of it
			// touches the model.
			e.journalSamplesLocked(e.drainBuf)
		}
		if parallel {
			e.trainer.ApplyOwned(e.parts)
		} else if journaling {
			for _, s := range e.drainBuf {
				e.model.Observe(s)
			}
		}
		dur := time.Since(start).Seconds()
		e.metrics.Apply.ObserveN(dur/float64(drained), int64(drained))
		e.applied.Add(int64(drained))
		e.sincePublish += drained
		e.pending.Add(int64(drained))
	}
	if budget == 0 {
		// Budget exhausted with samples possibly remaining: come back soon.
		e.signal()
	}
}

// applyLocked journals then applies one sync batch, returning the
// journal sequence number covering it (0 when nothing was journaled).
func (e *Engine) applyLocked(ss []stream.Sample) uint64 {
	if len(ss) == 0 {
		return 0
	}
	jStart := time.Now()
	seq := e.journalSamplesLocked(ss) // journal-before-apply
	start := time.Now()
	if e.timing != nil {
		e.timing.Journal = start.Sub(jStart)
	}
	if e.trainer != nil {
		e.trainer.Apply(ss)
	} else {
		for _, s := range ss {
			e.model.Observe(s)
		}
	}
	dur := time.Since(start).Seconds()
	if e.timing != nil {
		e.timing.Apply = time.Duration(dur * float64(time.Second))
	}
	e.metrics.Apply.ObserveN(dur/float64(len(ss)), int64(len(ss)))
	e.applied.Add(int64(len(ss)))
	e.sincePublish += len(ss)
	e.pending.Add(int64(len(ss)))
	return seq
}

func (e *Engine) replayLocked() {
	n := e.tunReplayPerBatch.Load()
	if n <= 0 {
		return
	}
	start := time.Now()
	done := 0
	if e.trainer != nil {
		done = e.trainer.ReplaySteps(n)
	} else {
		for i := 0; i < n; i++ {
			if !e.model.ReplayStep() {
				break
			}
			done++
		}
	}
	if done > 0 {
		dur := time.Since(start).Seconds()
		e.metrics.Apply.ObserveN(dur/float64(done), int64(done))
		e.replayed.Add(int64(done))
		e.sincePublish += done
		e.pending.Add(int64(done))
	}
}

// publishIfDueLocked republishes when K updates have accumulated or the
// oldest pending update is older than T.
func (e *Engine) publishIfDueLocked() {
	if e.sincePublish == 0 {
		return
	}
	if e.sincePublish >= e.tunPublishEvery.Load() || time.Since(e.lastPublish) >= e.tunPublishInterval.Load() {
		e.publishLocked()
	}
}

// publishLocked builds the next view incrementally from the current one
// and swings the atomic pointer — the RCU publish.
func (e *Engine) publishLocked() {
	start := time.Now()
	v := e.model.RefreshView(e.view.Load())
	e.view.Store(v)
	e.published.Add(1)
	e.sincePublish = 0
	e.lastPublish = time.Now()
	e.metrics.Publish.Observe(e.lastPublish.Sub(start).Seconds())
	if e.timing != nil {
		e.timing.Publish = e.lastPublish.Sub(start)
	}
	e.pending.Store(0)
	e.lastPublishNano.Store(e.lastPublish.UnixNano())
}
