package engine

import (
	"errors"
	"sync"
	"testing"

	"github.com/qoslab/amf/internal/stream"
)

// fakeJournal is an in-memory Journal that records everything appended
// to it, optionally failing every call.
type fakeJournal struct {
	mu       sync.Mutex
	seq      uint64
	samples  []stream.Sample
	removals []struct {
		user bool
		id   int
	}
	// cum[i] is the cumulative sample count covered by records with
	// sequence number <= i+1 (immutable history once appended).
	cum  []int
	fail bool
}

func (f *fakeJournal) AppendSamples(ss []stream.Sample) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return 0, errors.New("journal down")
	}
	f.seq++
	f.samples = append(f.samples, ss...)
	f.cum = append(f.cum, len(f.samples))
	return f.seq, nil
}

func (f *fakeJournal) appendRemove(user bool, id int) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return 0, errors.New("journal down")
	}
	f.seq++
	f.removals = append(f.removals, struct {
		user bool
		id   int
	}{user, id})
	f.cum = append(f.cum, len(f.samples))
	return f.seq, nil
}

// samplesCoveredBy returns how many samples sit in records with
// sequence number <= seq.
func (f *fakeJournal) samplesCoveredBy(seq uint64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq == 0 {
		return 0
	}
	return f.cum[seq-1]
}

func (f *fakeJournal) AppendRemoveUser(id int) (uint64, error)    { return f.appendRemove(true, id) }
func (f *fakeJournal) AppendRemoveService(id int) (uint64, error) { return f.appendRemove(false, id) }

func (f *fakeJournal) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

func (f *fakeJournal) sampleCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.samples)
}

// TestJournalAckImpliesJournaled: when ObserveAll returns, every sample
// in the batch is in the journal — ack-after-journal.
func TestJournalAckImpliesJournaled(t *testing.T) {
	for _, workers := range []int{1, 2} {
		e := New(testModel(t), Config{TrainWorkers: workers})
		j := &fakeJournal{}
		e.SetJournal(j)
		ss := seedSamples(4, 5)
		e.ObserveAll(ss)
		if got := j.sampleCount(); got != len(ss) {
			t.Fatalf("workers=%d: journal holds %d samples after ack, want %d", workers, got, len(ss))
		}
		e.Close()
	}
}

// TestJournalCoversEnqueuedSamples: async-ingested samples are journaled
// by the writer's drain before they are applied; after a Flush barrier
// everything applied is in the journal.
func TestJournalCoversEnqueuedSamples(t *testing.T) {
	for _, workers := range []int{1, 2} {
		e := New(testModel(t), Config{TrainWorkers: workers})
		j := &fakeJournal{}
		e.SetJournal(j)
		ss := seedSamples(6, 6)
		for _, s := range ss {
			if !e.Enqueue(s) {
				t.Fatal("enqueue rejected")
			}
		}
		e.Flush()
		if got := j.sampleCount(); got != len(ss) {
			t.Fatalf("workers=%d: journal holds %d samples after flush, want %d", workers, got, len(ss))
		}
		if applied := e.Stats().Applied; applied != int64(len(ss)) {
			t.Fatalf("applied %d, want %d", applied, len(ss))
		}
		e.Close()
	}
}

// TestJournalRemovals: churn departures are journaled before the model
// forgets them, so recovery does not resurrect deleted entities.
func TestJournalRemovals(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := &fakeJournal{}
	e.SetJournal(j)
	e.ObserveAll(seedSamples(3, 3))
	e.RemoveUser(1)
	e.RemoveService(2)
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.removals) != 2 {
		t.Fatalf("journaled %d removals, want 2", len(j.removals))
	}
	if !j.removals[0].user || j.removals[0].id != 1 {
		t.Fatalf("first removal: %+v", j.removals[0])
	}
	if j.removals[1].user || j.removals[1].id != 2 {
		t.Fatalf("second removal: %+v", j.removals[1])
	}
}

// TestJournalFailureKeepsServing: a failing journal is counted, not
// fatal — the model still learns and predictions still work
// (availability over durability).
func TestJournalFailureKeepsServing(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	e.SetJournal(&fakeJournal{fail: true})
	ss := seedSamples(4, 5)
	e.ObserveAll(ss)
	e.RemoveUser(99) // also counted, also non-fatal
	st := e.Stats()
	if st.JournalErrors < 2 {
		t.Fatalf("JournalErrors=%d, want >= 2", st.JournalErrors)
	}
	if st.Applied != int64(len(ss)) {
		t.Fatalf("applied %d, want %d — journal failure must not block learning", st.Applied, len(ss))
	}
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("predict after journal failure: %v", err)
	}
}

// TestCheckpointSeq: the returned sequence covers everything applied,
// and the view is force-published so a snapshot taken after the call
// reflects every covered record.
func TestCheckpointSeq(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	if got := e.CheckpointSeq(); got != 0 {
		t.Fatalf("no journal: CheckpointSeq=%d, want 0", got)
	}
	j := &fakeJournal{}
	e.SetJournal(j)
	e.ObserveAll(seedSamples(4, 5))
	seq := e.CheckpointSeq()
	if seq == 0 || seq != j.LastSeq() {
		t.Fatalf("CheckpointSeq=%d, journal LastSeq=%d", seq, j.LastSeq())
	}
	if e.Stats().Updates == 0 {
		t.Fatal("published view does not reflect applied updates")
	}
}

// TestCheckpointViewAtomicCapture: the (seq, view) pair must come from
// ONE writer critical section. A concurrent stream of synchronous
// batches would otherwise slip between reading the sequence number and
// snapshotting the view, training samples with seq > checkpoint-seq
// into the captured state — which recovery would then replay again
// (double-training). With ReplayPerBatch=0 every model update is one
// journaled sample, so the captured view's update count must equal
// EXACTLY the number of samples the journal covers at the captured
// sequence number.
func TestCheckpointViewAtomicCapture(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := &fakeJournal{}
	e.SetJournal(j)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.ObserveAll(seedSamples(i%5+2, i%7+2))
		}
	}()
	for i := 0; i < 500; i++ {
		seq, v := e.CheckpointView()
		if got, want := v.Updates(), int64(j.samplesCoveredBy(seq)); got != want {
			t.Fatalf("iteration %d: captured view holds %d updates but the journal covers %d samples at seq %d — seq/view capture is not atomic",
				i, got, want, seq)
		}
	}
	close(stop)
	wg.Wait()
}
