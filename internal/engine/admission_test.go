package engine

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

func admissionModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return core.MustNew(cfg)
}

// pausedEngine builds an engine whose writer effectively never drains:
// a huge publish interval plus a swallowed wake channel would still
// race, so instead we park the writer behind a long sync batch? No —
// simplest deterministic setup: tiny per-shard queues that we fill via
// the always-admitted critical path, so occupancy is under test
// control (the writer may drain concurrently; tests only assert on the
// refusal counters after forcing occupancy past the watermark).
func pausedEngine(t *testing.T, ctl *control.Registry) *Engine {
	t.Helper()
	e := New(admissionModel(t), Config{
		QueueSize:       8,
		IngestShards:    1,
		PublishInterval: time.Hour,
		PublishEvery:    1 << 30,
		Control:         ctl,
	})
	t.Cleanup(e.Close)
	return e
}

// fillShard stuffs the single ingest shard past the given occupancy
// using the critical path (never refused; drop-oldest keeps it full).
func fillShard(e *Engine, n int) {
	for i := 0; i < n; i++ {
		e.EnqueueClass(stream.Sample{User: 0, Service: i % 8, Value: 1}, control.Critical)
	}
}

// TestEnqueueClassWatermarks: sheddable and standard enqueues are
// refused once shard occupancy crosses their watermarks, critical never
// is, and the refusals are attributed per class in Stats.
func TestEnqueueClassWatermarks(t *testing.T) {
	ctl := control.NewRegistry()
	e := pausedEngine(t, ctl)

	// Watermarks pinned low so any queued sample trips them.
	for name, v := range map[string]string{
		"engine.admit_sheddable_watermark": "0.05",
		"engine.admit_standard_watermark":  "0.05",
	} {
		tun, ok := ctl.Lookup(name)
		if !ok {
			t.Fatalf("tunable %s not registered", name)
		}
		if err := tun.SetString(v, control.SourceOverride); err != nil {
			t.Fatal(err)
		}
	}

	// Occupancy 8/8 = 1.0 > 0.05: both lower classes must be refused.
	// The writer may drain concurrently, so refill before each check.
	shedDeadline := time.Now().Add(5 * time.Second)
	var st Stats
	for time.Now().Before(shedDeadline) {
		fillShard(e, 16)
		e.EnqueueClass(stream.Sample{User: 0, Service: 1, Value: 1}, control.Sheddable)
		e.EnqueueClass(stream.Sample{User: 0, Service: 2, Value: 1}, control.Standard)
		st = e.Stats()
		if st.ShedSheddable > 0 && st.ShedStandard > 0 {
			break
		}
	}
	if st.ShedSheddable == 0 || st.ShedStandard == 0 {
		t.Fatalf("expected per-class sheds, got %+v", st)
	}

	// Critical is never refused: it either lands or evicts (drop-oldest),
	// and nothing is added to the shed counters.
	before := e.Stats()
	for i := 0; i < 64; i++ {
		if !e.EnqueueClass(stream.Sample{User: 0, Service: 3, Value: 1}, control.Critical) {
			t.Fatal("critical enqueue refused")
		}
	}
	after := e.Stats()
	if after.ShedStandard != before.ShedStandard || after.ShedSheddable != before.ShedSheddable {
		t.Fatal("critical traffic moved the class shed counters")
	}
	if after.DroppedOldest == before.DroppedOldest {
		t.Fatal("expected drop-oldest churn from critical overload")
	}
}

// TestEnqueueAllClass: the batch path refuses per sample at the same
// watermark, and the ungated EnqueueAll (replication/WAL replay) still
// admits everything as critical.
func TestEnqueueAllClass(t *testing.T) {
	ctl := control.NewRegistry()
	e := pausedEngine(t, ctl)
	tun, _ := ctl.Lookup("engine.admit_sheddable_watermark")
	if err := tun.SetString("0.05", control.SourceOverride); err != nil {
		t.Fatal(err)
	}

	batch := make([]stream.Sample, 32)
	for i := range batch {
		batch[i] = stream.Sample{User: 0, Service: i % 8, Value: 1}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fillShard(e, 16)
		if n := e.EnqueueAllClass(batch, control.Sheddable); n < len(batch) {
			break
		}
	}
	if e.Stats().ShedSheddable == 0 {
		t.Fatal("batch sheddable enqueue never refused at a full shard")
	}
	if n := e.EnqueueAll(batch); n != len(batch) {
		t.Fatalf("ungated EnqueueAll admitted %d of %d", n, len(batch))
	}
}

// TestTunablesDriveWriter: adapted publish-interval/batch-cap values are
// picked up by a running writer — the convergence contract the epoch
// controller relies on.
func TestTunablesDriveWriter(t *testing.T) {
	ctl := control.NewRegistry()
	e := New(admissionModel(t), Config{
		QueueSize:       1024,
		IngestShards:    1,
		PublishInterval: 20 * time.Millisecond,
		PublishEvery:    1 << 20,
		Control:         ctl,
	})
	defer e.Close()

	// Narrow the interval via the registry and verify publishes speed up.
	tun, _ := ctl.Lookup("engine.publish_interval")
	if err := tun.SetString("1ms", control.SourceOverride); err != nil {
		t.Fatal(err)
	}
	e.Enqueue(stream.Sample{User: 1, Service: 1, Value: 1})
	base := e.Stats().Published
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Published < base+3 && time.Now().Before(deadline) {
		e.Enqueue(stream.Sample{User: 1, Service: 1, Value: 1})
		time.Sleep(time.Millisecond)
	}
	if e.Stats().Published < base+3 {
		t.Fatalf("writer ignored adapted publish interval: %d publishes after baseline %d",
			e.Stats().Published, base)
	}

	// Registry surface: every engine tunable is discoverable.
	want := []string{
		"engine.admit_sheddable_watermark", "engine.admit_standard_watermark",
		"engine.ingest_batch_cap", "engine.publish_every",
		"engine.publish_interval", "engine.replay_per_batch",
	}
	got := map[string]bool{}
	for _, tn := range e.Control().List() {
		got[tn.Name()] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("tunable %s not registered", name)
		}
	}
}
