package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

// TestStressRankingUnderRepublish hammers the ranking fast path (TopK,
// TopKParallel, TopKAll) against published views while the engine
// republishes, churns services, and restores snapshots underneath. Run
// with -race. It asserts the two invariants ranking promises:
//
//   - internal consistency: because every ranking runs against ONE
//     immutable view, TopK, TopKParallel, and the best-first order are
//     exact — regardless of what the writer does concurrently;
//   - agreement: on the same view, the serial, parallel, and full-scan
//     arena paths return identical rankings.
func TestStressRankingUnderRepublish(t *testing.T) {
	const (
		users    = 8
		services = 1500 // enough for TopKParallel's chunking to engage
		readers  = 4
		k        = 10
	)
	e := New(testModel(t), Config{
		QueueSize:       1024,
		IngestShards:    4,
		PublishEvery:    32,
		PublishInterval: time.Millisecond,
		ReplayPerBatch:  16,
	})
	defer e.Close()

	var seed []stream.Sample
	for u := 0; u < users; u++ {
		for s := u; s < services; s += users {
			seed = append(seed, stream.Sample{User: u, Service: s, Value: 1 + float64((u*s)%9)})
		}
	}
	e.ObserveAll(seed)

	candidates := make([]int, services)
	for i := range candidates {
		candidates[i] = i
	}

	var (
		stop      atomic.Bool
		failures  atomic.Int64
		firstErr  atomic.Value
		rankings  atomic.Int64
		recordErr = func(format string, args ...any) {
			if failures.Add(1) == 1 {
				firstErr.Store(fmt.Errorf(format, args...))
			}
		}
	)

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			checkOrder := func(ranked []core.Ranked, lower bool, what string) bool {
				for i := 1; i < len(ranked); i++ {
					if lower && ranked[i].Value < ranked[i-1].Value ||
						!lower && ranked[i].Value > ranked[i-1].Value {
						recordErr("reader %d: %s out of order at %d: %+v", r, what, i, ranked[i-1:i+1])
						return false
					}
				}
				return true
			}
			i := 0
			for !stop.Load() {
				i++
				lower := i%2 == 0
				user := (r + i) % users
				v := e.View() // ONE view for serial/parallel/full-scan comparison
				serial, su := v.TopK(user, candidates, k, lower)
				if !checkOrder(serial, lower, "serial TopK") {
					return
				}
				parallel, pu := v.TopKParallel(user, candidates, k, lower, 4)
				if len(parallel) != len(serial) || len(pu) != len(su) {
					recordErr("reader %d: parallel sizes %d/%d, serial %d/%d", r, len(parallel), len(pu), len(serial), len(su))
					return
				}
				for j := range serial {
					if parallel[j] != serial[j] {
						recordErr("reader %d: parallel[%d]=%+v, serial %+v (view %d)", r, j, parallel[j], serial[j], v.Version())
						return
					}
				}
				// Full-scan arena path: the view may know services the
				// candidate list doesn't (none here — candidates cover all
				// IDs ever observed), so TopKAll must agree with TopK.
				all := v.TopKAll(user, k, lower, 2)
				if len(all) != len(serial) {
					recordErr("reader %d: TopKAll %d results, TopK %d (view %d)", r, len(all), len(serial), v.Version())
					return
				}
				for j := range all {
					if all[j] != serial[j] {
						recordErr("reader %d: TopKAll[%d]=%+v, TopK %+v", r, j, all[j], serial[j])
						return
					}
				}
				rankings.Add(1)
			}
		}(r)
	}

	// Writer: firehose + churn + snapshot/restore, forcing republishes and
	// arena rebuilds of dirty shards underneath the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			i++
			e.Enqueue(stream.Sample{User: i % users, Service: i % services, Value: 1 + float64(i%7)})
			if i%64 == 0 {
				id := i % services
				e.RemoveService(id)
				e.ObserveAll([]stream.Sample{{User: i % users, Service: id, Value: 2}})
			}
			if i%512 == 0 {
				if data, err := e.Snapshot(); err == nil {
					if err := e.Restore(data); err != nil {
						recordErr("restore: %v", err)
						return
					}
				}
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d ranking consistency failures; first: %v", n, firstErr.Load())
	}
	if rankings.Load() == 0 {
		t.Fatal("no rankings completed")
	}
	st := e.Stats()
	if st.Published == 0 {
		t.Fatalf("no republishes happened during the stress run: %+v", st)
	}
	t.Logf("rankings=%d, stats=%+v", rankings.Load(), st)
}
