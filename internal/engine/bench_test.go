package engine

import (
	"sync/atomic"
	"testing"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

// BenchmarkEngineVsConcurrent measures parallel prediction throughput
// while a background writer continuously folds in observations — the
// serving workload of the paper's Sec. III framework. The old path
// funnels every predict and observe through core.Concurrent's global
// RWMutex; the engine serves predictions wait-free from the published
// view while the writer batches updates through the ingest queue.
//
//	go test -bench=BenchmarkEngineVsConcurrent -benchmem ./internal/engine/
func BenchmarkEngineVsConcurrent(b *testing.B) {
	const (
		users    = 128
		services = 512
		// benchClients multiplies GOMAXPROCS into concurrent reader
		// goroutines, modeling many simultaneous adaptation clients even
		// on small CI machines.
		benchClients = 16
		// replayBatch matches the seed server's RunReplay batch size:
		// the background convergence work every serving deployment runs.
		replayBatch = 500
		// obsBatch is the size of one uploaded observation batch.
		obsBatch = 64
	)
	seed := func() []stream.Sample {
		var ss []stream.Sample
		for u := 0; u < users; u++ {
			for s := 0; s < services; s++ {
				if (u+s)%5 == 0 {
					ss = append(ss, stream.Sample{User: u, Service: s, Value: 1 + float64((u*s)%9)})
				}
			}
		}
		return ss
	}
	// The HTTP observe API is batch-oriented (clients upload what they
	// measured); model the stream as arriving batches.
	batch := func(i int) []stream.Sample {
		out := make([]stream.Sample, 0, obsBatch)
		for j := 0; j < obsBatch; j++ {
			k := i*obsBatch + j
			out = append(out, stream.Sample{User: k % users, Service: (k * 3) % services, Value: 1 + float64(k%9)})
		}
		return out
	}

	b.Run("GlobalRWMutex", func(b *testing.B) {
		c := core.NewConcurrent(testModel(b))
		c.ObserveAll(seed())
		stop := make(chan struct{})
		go func() { // the online-update stream + background replay (RunReplay)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				c.ObserveAll(batch(i)) // write lock held for the whole batch
				if i%8 == 0 {
					c.ReplaySteps(replayBatch) // ditto
				}
			}
		}()
		b.Cleanup(func() { close(stop) })
		b.SetParallelism(benchClients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := c.Predict(i%users, (i*7)%services); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	b.Run("Engine", func(b *testing.B) {
		e := New(testModel(b), Config{})
		e.ObserveAll(seed())
		stop := make(chan struct{})
		go func() { // identical write-side work, through the ingest queue
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				e.EnqueueAll(batch(i)) // readers never block on the apply
				if i%8 == 0 {
					e.ReplaySteps(replayBatch)
				}
			}
		}()
		b.Cleanup(func() {
			close(stop)
			e.Close()
		})
		b.SetParallelism(benchClients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				if _, err := e.Predict(i%users, (i*7)%services); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkEnginePublish measures the incremental republish cost at
// steady state: K updates applied, then one RefreshView — the per-quantum
// overhead the RCU design pays for wait-free reads.
func BenchmarkEnginePublish(b *testing.B) {
	const k = 256
	m := testModel(b)
	for u := 0; u < 512; u++ {
		for s := 0; s < 512; s++ {
			if (u+s)%7 == 0 {
				m.Observe(stream.Sample{User: u, Service: s, Value: 1 + float64((u+s)%9)})
			}
		}
	}
	v := m.BuildView()
	var sink atomic.Pointer[core.PredictView]
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		for j := 0; j < k; j++ {
			i++
			m.Observe(stream.Sample{User: i % 512, Service: (i * 3) % 512, Value: 1 + float64(i%9)})
		}
		v = m.RefreshView(v)
		sink.Store(v)
	}
}

// BenchmarkEngineEnqueue measures the producer-side cost of the sharded
// bounded ingest queue.
func BenchmarkEngineEnqueue(b *testing.B) {
	e := New(testModel(b), Config{QueueSize: 1 << 16})
	defer e.Close()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			e.Enqueue(stream.Sample{User: i % 1024, Service: i % 4096, Value: 1})
		}
	})
}
