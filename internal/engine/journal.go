package engine

import (
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

// Journal is the engine's write-ahead log hook, satisfied by
// *store.WAL. The writer loop journals every drained/synchronous batch
// BEFORE applying it to the model, and every churn removal before
// purging it — journal-before-apply, the invariant the recovery path
// depends on. Because journaling and applying happen under the same
// writer lock, "applied to the model" always implies "present in the
// journal", so a checkpoint that records the journal's last sequence
// number while the model is quiescent covers exactly the records it
// claims to (see CheckpointView).
//
// With the journal's fsync policy set to always, ObserveAll's ack
// additionally implies the batch is on stable storage: read-your-writes
// becomes durable-your-writes.
//
// The engine keeps serving when a journal append fails (availability
// over durability — the model still learns); failures are counted in
// Stats.JournalErrors and in the store's own error metric, and the
// store fails the log fast after the first lost write so the damage is
// visible rather than a silent gap.
type Journal interface {
	// AppendSamples journals one batch of observations, returning the
	// sequence number of the last record written. Implementations must
	// accept a batch of ANY size (store.WAL splits batches that exceed
	// its record bound across several records) — an acked batch must
	// never be rejected for its size, or durability silently breaks.
	AppendSamples(ss []stream.Sample) (seq uint64, err error)
	// AppendRemoveUser journals a user churn departure.
	AppendRemoveUser(id int) (seq uint64, err error)
	// AppendRemoveService journals a service churn departure.
	AppendRemoveService(id int) (seq uint64, err error)
	// LastSeq returns the sequence number of the newest record.
	LastSeq() uint64
}

// SetJournal attaches (or detaches, with nil) the write-ahead log. Call
// it after recovery replay and before serving traffic: replayed samples
// go through the normal observe path and must not be re-journaled, so
// the recovery sequence is replay first, attach second.
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

// journalSamplesLocked appends one batch to the journal, counting (and
// tolerating) failures. Called under mu, always before the batch is
// applied to the model.
func (e *Engine) journalSamplesLocked(ss []stream.Sample) {
	if e.journal == nil || len(ss) == 0 {
		return
	}
	if _, err := e.journal.AppendSamples(ss); err != nil {
		e.journalErrs.Add(1)
	}
}

// CheckpointView publishes any pending model updates and returns, from
// a single critical section, the journal's last sequence number paired
// with the just-published view. Because the writer journals and applies
// under the same lock, the returned view reflects every record with
// seq <= the returned value and — crucially — no sample or removal
// record with a greater one. Snapshotting THAT view (not whatever view
// is current when the caller gets around to serializing) is what makes
// a checkpoint's (seq, blob) pair consistent: a drain that lands
// between reading the sequence number and snapshotting would otherwise
// train samples with seq > checkpoint-seq into the blob, and recovery
// would replay those same records into the restored model — double-
// training. This is the capture hook the store.Manager checkpointer
// builds on. Seq is 0 when no journal is attached.
func (e *Engine) CheckpointView() (uint64, *core.PredictView) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sincePublish > 0 {
		e.publishLocked()
	}
	var seq uint64
	if e.journal != nil {
		seq = e.journal.LastSeq()
	}
	return seq, e.view.Load()
}

// CheckpointSeq is CheckpointView without the view — callers that only
// need the covered sequence number (tests, status endpoints). Capture
// paths that go on to serialize state must use CheckpointView so the
// seq and the snapshot come from the same quiescent instant.
func (e *Engine) CheckpointSeq() uint64 {
	seq, _ := e.CheckpointView()
	return seq
}
