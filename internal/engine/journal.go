package engine

import (
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

// Journal is the engine's write-ahead log hook, satisfied by
// *store.WAL. The writer loop journals every drained/synchronous batch
// BEFORE applying it to the model, and every churn removal before
// purging it — journal-before-apply, the invariant the recovery path
// depends on. Because journaling and applying happen under the same
// writer lock, "applied to the model" always implies "present in the
// journal", so a checkpoint that records the journal's last sequence
// number while the model is quiescent covers exactly the records it
// claims to (see CheckpointView).
//
// With the journal's fsync policy set to always, ObserveAll's ack
// additionally implies the batch is on stable storage: read-your-writes
// becomes durable-your-writes.
//
// The engine keeps serving when a journal append fails (availability
// over durability — the model still learns); failures are counted in
// Stats.JournalErrors and in the store's own error metric, and the
// store fails the log fast after the first lost write so the damage is
// visible rather than a silent gap.
type Journal interface {
	// AppendSamples journals one batch of observations, returning the
	// sequence number of the last record written. Implementations must
	// accept a batch of ANY size (store.WAL splits batches that exceed
	// its record bound across several records) — an acked batch must
	// never be rejected for its size, or durability silently breaks.
	AppendSamples(ss []stream.Sample) (seq uint64, err error)
	// AppendRemoveUser journals a user churn departure.
	AppendRemoveUser(id int) (seq uint64, err error)
	// AppendRemoveService journals a service churn departure.
	AppendRemoveService(id int) (seq uint64, err error)
	// LastSeq returns the sequence number of the newest record.
	LastSeq() uint64
}

// DurableJournal is the optional group-commit extension of Journal,
// satisfied by *store.WAL. When the attached journal implements it AND
// reports GroupCommit(), the engine pipelines synchronous acks: the
// writer loop journals a batch, applies it, and moves on to the next
// batch while the covering fsync is in flight; a separate completer
// parks on WaitDurable and releases each ObserveAll caller only once
// its records are on stable storage. Acked still implies durable — N
// concurrent observers just share one fsync instead of queueing one
// each under the writer lock.
type DurableJournal interface {
	Journal
	// GroupCommit reports whether appends are covered by a batched
	// fsync whose completion must be awaited via WaitDurable.
	GroupCommit() bool
	// WaitDurable blocks until the record with the given sequence
	// number is on stable storage (or the log is fenced/failed/closed,
	// in which case it returns the rejection).
	WaitDurable(seq uint64) error
}

// SetJournal attaches (or detaches, with nil) the write-ahead log. Call
// it after recovery replay and before serving traffic: replayed samples
// go through the normal observe path and must not be re-journaled, so
// the recovery sequence is replay first, attach second. (It must also
// not race Close — the same before-serving rule covers that.)
//
// A journal that implements DurableJournal with group commit enabled
// switches the engine to pipelined acks (see DurableJournal).
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
	e.durJournal = nil
	if dj, ok := j.(DurableJournal); ok && dj.GroupCommit() {
		e.durJournal = dj
		if e.acks == nil && !e.closed.Load() {
			e.acks = make(chan ackEntry, ackQueueDepth)
			e.wg.Add(1)
			go e.ackLoop(e.acks)
		}
	}
}

// journalSamplesLocked appends one batch to the journal, counting (and
// tolerating) failures, and returns the sequence number of the last
// record written (0 when nothing was journaled). Called under mu,
// always before the batch is applied to the model.
func (e *Engine) journalSamplesLocked(ss []stream.Sample) uint64 {
	if e.journal == nil || len(ss) == 0 {
		return 0
	}
	seq, err := e.journal.AppendSamples(ss)
	if err != nil {
		e.journalErrs.Add(1)
		return 0
	}
	return seq
}

// ackQueueDepth bounds the completer's queue of in-flight synchronous
// batches. When it fills (more concurrent observers than slots), the
// writer completes the batch inline — backpressure, not loss.
const ackQueueDepth = 1024

// ackEntry is one synchronous batch whose caller is waiting for the
// covering group fsync.
type ackEntry struct {
	seq uint64
	sb  syncBatch
	j   DurableJournal
}

// ackLoop is the pipelined-ack completer: it parks on the durable
// commit index for each journaled sync batch, in writer order, and
// releases the ObserveAll caller once the batch is on stable storage.
// The writer closes the channel at exit after its final drain, so every
// taken batch's done channel is guaranteed closed once e.wg drains —
// the invariant observeAll's shutdown fallback relies on.
func (e *Engine) ackLoop(acks chan ackEntry) {
	defer e.wg.Done()
	for a := range acks {
		e.completeAck(a)
	}
}

// completeAck waits out the covering fsync and releases the caller. A
// WaitDurable rejection (fence, WAL failure, close) is counted like any
// other journal error — the engine keeps serving; the store's fail-fast
// makes the durability gap visible.
func (e *Engine) completeAck(a ackEntry) {
	var start time.Time
	if a.sb.timing != nil {
		start = time.Now()
	}
	if err := a.j.WaitDurable(a.seq); err != nil {
		e.journalErrs.Add(1)
	}
	if a.sb.timing != nil {
		a.sb.timing.CommitWait = time.Since(start)
	}
	close(a.sb.done)
}

// CheckpointView publishes any pending model updates and returns, from
// a single critical section, the journal's last sequence number paired
// with the just-published view. Because the writer journals and applies
// under the same lock, the returned view reflects every record with
// seq <= the returned value and — crucially — no sample or removal
// record with a greater one. Snapshotting THAT view (not whatever view
// is current when the caller gets around to serializing) is what makes
// a checkpoint's (seq, blob) pair consistent: a drain that lands
// between reading the sequence number and snapshotting would otherwise
// train samples with seq > checkpoint-seq into the blob, and recovery
// would replay those same records into the restored model — double-
// training. This is the capture hook the store.Manager checkpointer
// builds on. Seq is 0 when no journal is attached.
func (e *Engine) CheckpointView() (uint64, *core.PredictView) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sincePublish > 0 {
		e.publishLocked()
	}
	var seq uint64
	if e.journal != nil {
		seq = e.journal.LastSeq()
	}
	return seq, e.view.Load()
}

// CheckpointSeq is CheckpointView without the view — callers that only
// need the covered sequence number (tests, status endpoints). Capture
// paths that go on to serialize state must use CheckpointView so the
// seq and the snapshot come from the same quiescent instant.
func (e *Engine) CheckpointSeq() uint64 {
	seq, _ := e.CheckpointView()
	return seq
}
