package engine

import "github.com/qoslab/amf/internal/stream"

// Journal is the engine's write-ahead log hook, satisfied by
// *store.WAL. The writer loop journals every drained/synchronous batch
// BEFORE applying it to the model, and every churn removal before
// purging it — journal-before-apply, the invariant the recovery path
// depends on. Because journaling and applying happen under the same
// writer lock, "applied to the model" always implies "present in the
// journal", so a checkpoint that records the journal's last sequence
// number while the model is quiescent covers exactly the records it
// claims to (see CheckpointSeq).
//
// With the journal's fsync policy set to always, ObserveAll's ack
// additionally implies the batch is on stable storage: read-your-writes
// becomes durable-your-writes.
//
// The engine keeps serving when a journal append fails (availability
// over durability — the model still learns); failures are counted in
// Stats.JournalErrors and in the store's own error metric, and the
// store fails the log fast after the first lost write so the damage is
// visible rather than a silent gap.
type Journal interface {
	// AppendSamples journals one batch of observations as one record.
	AppendSamples(ss []stream.Sample) (seq uint64, err error)
	// AppendRemoveUser journals a user churn departure.
	AppendRemoveUser(id int) (seq uint64, err error)
	// AppendRemoveService journals a service churn departure.
	AppendRemoveService(id int) (seq uint64, err error)
	// LastSeq returns the sequence number of the newest record.
	LastSeq() uint64
}

// SetJournal attaches (or detaches, with nil) the write-ahead log. Call
// it after recovery replay and before serving traffic: replayed samples
// go through the normal observe path and must not be re-journaled, so
// the recovery sequence is replay first, attach second.
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

// journalSamplesLocked appends one batch to the journal, counting (and
// tolerating) failures. Called under mu, always before the batch is
// applied to the model.
func (e *Engine) journalSamplesLocked(ss []stream.Sample) {
	if e.journal == nil || len(ss) == 0 {
		return
	}
	if _, err := e.journal.AppendSamples(ss); err != nil {
		e.journalErrs.Add(1)
	}
}

// CheckpointSeq publishes any pending model updates and returns the
// journal's last sequence number. Because the writer journals and
// applies under one lock, every record with seq <= the returned value is
// reflected in the model — and therefore in any state snapshot taken
// from the published view afterwards. This is the capture hook the
// store.Manager checkpointer builds on. Returns 0 when no journal is
// attached.
func (e *Engine) CheckpointSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sincePublish > 0 {
		e.publishLocked()
	}
	if e.journal == nil {
		return 0
	}
	return e.journal.LastSeq()
}
