package engine

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

func obsModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return core.MustNew(cfg)
}

func TestEngineMetricsPopulate(t *testing.T) {
	e := New(obsModel(t), Config{})
	defer e.Close()
	m := e.Metrics()
	if m == nil || m.QueueWait == nil || m.Apply == nil || m.Publish == nil {
		t.Fatal("engine metrics not initialized")
	}

	// Async path: enqueue then flush → queue-wait and apply latency.
	for i := 0; i < 50; i++ {
		e.Enqueue(stream.Sample{User: i % 5, Service: i % 7, Value: 1 + float64(i%3)})
	}
	e.Flush()
	if m.QueueWait.Count() == 0 {
		t.Error("queue-wait histogram empty after enqueue+flush")
	}
	if m.Apply.Count() < 50 {
		t.Errorf("apply histogram count %d < 50 drained samples", m.Apply.Count())
	}
	if m.Publish.Count() == 0 {
		t.Error("publish histogram empty after flush")
	}
	if q := m.QueueWait.Quantile(0.99); q > 10 {
		t.Errorf("implausible queue wait p99 %gs", q)
	}

	// Sync path: ObserveAll also lands in Apply.
	before := m.Apply.Count()
	e.ObserveAll([]stream.Sample{{User: 1, Service: 1, Value: 2}})
	if m.Apply.Count() != before+1 {
		t.Errorf("sync apply not recorded: %d -> %d", before, m.Apply.Count())
	}

	// Replay through the control path counts as applied updates too.
	before = m.Apply.Count()
	if n := e.ReplaySteps(10); n > 0 && m.Apply.Count() != before {
		// ReplaySteps records via replayed counter only; Apply covers
		// ingest/sync batches plus ReplayPerBatch work.
		t.Log("replay steps are tracked by Stats.Replayed")
	}
}

func TestEngineStaleness(t *testing.T) {
	e := New(obsModel(t), Config{PublishInterval: time.Hour, PublishEvery: 1 << 30})
	defer e.Close()

	// Fresh engine: nothing pending, staleness 0.
	if s := e.Staleness(); s != 0 {
		t.Fatalf("fresh engine staleness = %v, want 0", s)
	}

	// Synchronous observe force-publishes → still 0 afterwards.
	e.ObserveAll([]stream.Sample{{User: 1, Service: 1, Value: 2}})
	if s := e.Staleness(); s != 0 {
		t.Fatalf("staleness after sync publish = %v, want 0", s)
	}

	// Queue a sample without letting the publisher catch up (huge K and
	// T): once the writer applies it, staleness must start growing.
	e.Enqueue(stream.Sample{User: 2, Service: 2, Value: 3})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Staleness() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if e.Staleness() == 0 {
		t.Fatal("staleness never rose with updates pending and publish deferred")
	}
	grew := e.Staleness()
	time.Sleep(10 * time.Millisecond)
	if e.Staleness() <= grew {
		t.Fatalf("staleness did not grow: %v then %v", grew, e.Staleness())
	}

	// Flushing publishes and clears it.
	e.Flush()
	if s := e.Staleness(); s != 0 {
		t.Fatalf("staleness after flush = %v, want 0", s)
	}
}

func TestReplayPerBatchFeedsApplyHistogram(t *testing.T) {
	e := New(obsModel(t), Config{ReplayPerBatch: 8})
	defer e.Close()
	e.ObserveAll([]stream.Sample{
		{User: 1, Service: 1, Value: 2},
		{User: 2, Service: 1, Value: 3},
	})
	// Wake the writer a few times so replayLocked runs with a warm pool.
	for i := 0; i < 20; i++ {
		e.Enqueue(stream.Sample{User: i % 3, Service: i % 2, Value: 1})
	}
	e.Flush()
	st := e.Stats()
	if st.Replayed == 0 {
		t.Skip("writer did not interleave replay in time") // timing-dependent; counted elsewhere
	}
	if e.Metrics().Apply.Count() < st.Applied {
		t.Errorf("apply histogram (%d) missing replay/ingest updates (applied=%d)",
			e.Metrics().Apply.Count(), st.Applied)
	}
}
