package engine

import (
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// TestTrainWorkersConfig pins the config normalization: worker counts
// round down to powers of two, and IngestShards is floored at the worker
// count so the shard→worker affinity mapping stays exact.
func TestTrainWorkersConfig(t *testing.T) {
	cases := []struct {
		in            Config
		wantWorkers   int
		minimumShards int
	}{
		{Config{}, 1, 1},
		{Config{TrainWorkers: 1}, 1, 1},
		{Config{TrainWorkers: 3}, 2, 2},
		{Config{TrainWorkers: 7}, 4, 4},
		{Config{TrainWorkers: 16, IngestShards: 4}, 16, 16},
		{Config{TrainWorkers: 100}, 64, 64},
	}
	for _, c := range cases {
		e := New(testModel(t), c.in)
		cfg := e.Config()
		if cfg.TrainWorkers != c.wantWorkers {
			t.Errorf("TrainWorkers %d → %d, want %d", c.in.TrainWorkers, cfg.TrainWorkers, c.wantWorkers)
		}
		if cfg.IngestShards < c.minimumShards {
			t.Errorf("TrainWorkers %d: IngestShards %d below worker count %d",
				c.in.TrainWorkers, cfg.IngestShards, c.minimumShards)
		}
		if got := e.Stats().TrainWorkers; got != c.wantWorkers {
			t.Errorf("Stats().TrainWorkers = %d, want %d", got, c.wantWorkers)
		}
		if (e.TrainMetrics() != nil) != (c.wantWorkers > 1) {
			t.Errorf("TrainWorkers %d: TrainMetrics presence wrong", c.in.TrainWorkers)
		}
		e.Close()
	}
}

// TestParallelEngineEndToEnd runs the full engine surface in parallel
// mode: sync observes, async enqueues, replay, churn, snapshot/restore,
// and post-Close fallbacks all behave exactly as the serial engine.
func TestParallelEngineEndToEnd(t *testing.T) {
	e := New(testModel(t), Config{TrainWorkers: 4, PublishInterval: 5 * time.Millisecond})
	ss := seedSamples(8, 12)

	// Read-your-writes through the parallel apply path.
	e.ObserveAll(ss)
	v := e.View()
	if v.Updates() != int64(len(ss)) {
		t.Fatalf("view updates %d, want %d", v.Updates(), len(ss))
	}
	if _, err := v.Predict(0, 0); err != nil {
		t.Fatalf("observation not visible after parallel ObserveAll: %v", err)
	}

	// Async ingest drains through the fan-out path.
	admitted := e.EnqueueAll(seedSamples(16, 12)[len(ss):])
	e.Flush()
	st := e.Stats()
	if st.Applied < int64(len(ss)+admitted) {
		t.Fatalf("applied %d < observed %d + admitted %d", st.Applied, len(ss), admitted)
	}

	// Replay fans across worker pools and publishes.
	if n := e.ReplaySteps(64); n == 0 {
		t.Fatal("parallel replay performed no steps on a seeded pool")
	}

	// Churn + snapshot/restore rebuilds the trainer against the new model.
	e.RemoveUser(1)
	if e.View().KnowsUser(1) {
		t.Fatal("removal not published")
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	e.ObserveAll([]stream.Sample{{User: 40, Service: 41, Value: 2}})
	if !e.View().KnowsUser(40) {
		t.Fatal("post-Restore parallel ObserveAll not applied")
	}
	if tm := e.TrainMetrics(); tm == nil || tm.Batches.Value() == 0 {
		t.Fatal("trainer metrics not recording through the engine")
	}

	// Post-Close fallback runs the serial inline path.
	e.Close()
	e.ObserveAll([]stream.Sample{{User: 50, Service: 50, Value: 2}})
	if !e.View().KnowsUser(50) {
		t.Fatal("post-Close ObserveAll not applied in parallel mode")
	}
	e.Close() // idempotent
}

// TestEnqueueAllBatch covers the batched ingest path: per-shard grouping
// must preserve visibility and return the admitted count, for both the
// small-batch (direct) and large-batch (bucketed) variants.
func TestEnqueueAllBatch(t *testing.T) {
	e := New(testModel(t), Config{})
	small := seedSamples(4, 5) // 7 samples ≤ 16 → direct path
	if len(small) > 16 {
		t.Fatalf("test assumes small batch, got %d", len(small))
	}
	if n := e.EnqueueAll(small); n != len(small) {
		t.Fatalf("small EnqueueAll admitted %d of %d", n, len(small))
	}
	large := seedSamples(16, 16) // > 16 → bucketed path
	if len(large) <= 16 {
		t.Fatalf("test assumes large batch, got %d", len(large))
	}
	if n := e.EnqueueAll(large); n != len(large) {
		t.Fatalf("large EnqueueAll admitted %d of %d", n, len(large))
	}
	e.Flush()
	for _, s := range large {
		if _, err := e.Predict(s.User, s.Service); err != nil {
			t.Fatalf("batched sample (%d,%d) not visible: %v", s.User, s.Service, err)
		}
	}
	if st := e.Stats(); st.Enqueued != int64(len(small)+len(large)) {
		t.Fatalf("enqueued %d, want %d", st.Enqueued, len(small)+len(large))
	}
	e.Close()
	if n := e.EnqueueAll(small); n != 0 {
		t.Fatalf("EnqueueAll after Close admitted %d", n)
	}
}

// TestDroppedSplitByReason pins the dropped-counter split: evictions of
// queued samples count as "oldest", shed incoming samples as "new", and
// the legacy aggregate stays their sum.
func TestDroppedSplitByReason(t *testing.T) {
	const q = 8
	e := New(testModel(t), Config{QueueSize: q, IngestShards: 1})
	defer e.Close()

	e.mu.Lock() // stall the writer so the queue can only overflow
	for i := 0; i < 4*q; i++ {
		e.Enqueue(stream.Sample{User: 0, Service: i, Value: 1})
	}
	st := e.Stats()
	e.mu.Unlock()

	if st.DroppedOldest == 0 {
		t.Fatalf("overflow produced no oldest-evictions: %+v", st)
	}
	if st.Dropped != st.DroppedNew+st.DroppedOldest {
		t.Fatalf("Dropped %d != DroppedNew %d + DroppedOldest %d", st.Dropped, st.DroppedNew, st.DroppedOldest)
	}
	// Single producer, uncontended: the drop-oldest spin always frees a
	// slot, so nothing should be shed as "new".
	if st.DroppedNew != 0 {
		t.Fatalf("uncontended overflow shed %d new samples", st.DroppedNew)
	}
}

// TestObserveAllCloseRace is the regression test for the post-Close
// fallback race: batches handed to the writer just as stop closes must be
// applied exactly once — either by the writer's final drain or by the
// caller's inline fallback, never both, never zero times.
func TestObserveAllCloseRace(t *testing.T) {
	const rounds = 40
	for r := 0; r < rounds; r++ {
		e := New(testModel(t), Config{PublishInterval: time.Hour, PublishEvery: 1 << 30})
		const callers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				// One batch of 2 samples per caller; user/service IDs are
				// unique per caller so registration counts double-apply too.
				e.ObserveAll([]stream.Sample{
					{User: c, Service: c, Value: 1},
					{User: c, Service: c, Value: 2},
				})
			}(c)
		}
		closeDone := make(chan struct{})
		go func() {
			<-start
			e.Close()
			close(closeDone)
		}()
		close(start)
		wg.Wait()
		<-closeDone

		// Exactly-once: every batch applied, none twice. Each sample is one
		// SGD update, so the model's update count is the exact apply count.
		if got, want := e.View().Updates(), int64(2*callers); got != want {
			t.Fatalf("round %d: %d updates after close race, want exactly %d", r, got, want)
		}
		for c := 0; c < callers; c++ {
			if !e.View().KnowsUser(c) {
				t.Fatalf("round %d: caller %d's batch lost", r, c)
			}
		}
	}
}
