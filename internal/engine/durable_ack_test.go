package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeDurableJournal extends fakeJournal with a manually-advanced
// durable commit index, so tests control exactly when a "covering
// fsync" lands.
type fakeDurableJournal struct {
	fakeJournal
	cmu     sync.Mutex
	durable uint64
	failErr error
	waiters map[uint64][]chan error
}

func newFakeDurableJournal() *fakeDurableJournal {
	return &fakeDurableJournal{waiters: make(map[uint64][]chan error)}
}

func (f *fakeDurableJournal) GroupCommit() bool { return true }

func (f *fakeDurableJournal) WaitDurable(seq uint64) error {
	f.cmu.Lock()
	if f.failErr != nil {
		err := f.failErr
		f.cmu.Unlock()
		return err
	}
	if seq <= f.durable {
		f.cmu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	f.waiters[seq] = append(f.waiters[seq], ch)
	f.cmu.Unlock()
	return <-ch
}

// advance marks everything <= seq durable and releases its waiters.
func (f *fakeDurableJournal) advance(seq uint64) {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	if seq > f.durable {
		f.durable = seq
	}
	for s, chs := range f.waiters {
		if s <= seq {
			for _, ch := range chs {
				ch <- nil
			}
			delete(f.waiters, s)
		}
	}
}

// failAll rejects every parked waiter and all future waits.
func (f *fakeDurableJournal) failAll(err error) {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	f.failErr = err
	for s, chs := range f.waiters {
		for _, ch := range chs {
			ch <- err
		}
		delete(f.waiters, s)
	}
}

// TestDurableAckPipelined: with a group-commit journal attached, the
// writer loop must journal and apply batch N+1 while batch N's covering
// fsync is still in flight — the callers stay parked until their commit
// lands, but the writer does not.
func TestDurableAckPipelined(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := newFakeDurableJournal()
	e.SetJournal(j)

	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() { e.ObserveAll(seedSamples(3, 3)); close(done1) }()
	// Wait until batch 1 is journaled (the writer has taken it).
	waitCond(t, func() bool { return j.LastSeq() >= 1 })
	go func() { e.ObserveAll(seedSamples(4, 4)); close(done2) }()
	// The writer must reach batch 2 while batch 1's ack is unreleased —
	// this is the pipelining: journal+apply run ahead of the fsync.
	waitCond(t, func() bool { return j.LastSeq() >= 2 })

	select {
	case <-done1:
		t.Fatal("ObserveAll returned before its commit was durable")
	case <-done2:
		t.Fatal("second ObserveAll returned before its commit was durable")
	case <-time.After(20 * time.Millisecond):
	}

	j.advance(2)
	waitClosed(t, done1, "first ObserveAll after commit")
	waitClosed(t, done2, "second ObserveAll after commit")
}

// TestDurableAckOrdering: acks complete in writer (seq) order — a later
// batch is never released before an earlier one when commits land
// together.
func TestDurableAckOrdering(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := newFakeDurableJournal()
	e.SetJournal(j)

	const batches = 8
	dones := make([]chan struct{}, batches)
	for i := 0; i < batches; i++ {
		i := i
		dones[i] = make(chan struct{})
		go func() { e.ObserveAll(seedSamples(2, 2)); close(dones[i]) }()
		waitCond(t, func() bool { return j.LastSeq() >= uint64(i+1) })
	}
	// Release commits one at a time; after each advance exactly the
	// covered callers may proceed.
	released := 0
	for seq := uint64(1); seq <= batches; seq++ {
		j.advance(seq)
		waitClosed(t, dones[seq-1], "caller for advanced seq")
		released++
		for k := int(seq); k < batches; k++ {
			select {
			case <-dones[k]:
				t.Fatalf("caller %d released at durable seq %d", k+1, seq)
			default:
			}
		}
	}
	if released != batches {
		t.Fatalf("released %d, want %d", released, batches)
	}
}

// TestDurableAckFailureReleases: a WaitDurable rejection (fence/WAL
// failure) must release the caller — counted as a journal error, never
// a hang — and the engine keeps serving.
func TestDurableAckFailureReleases(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := newFakeDurableJournal()
	e.SetJournal(j)

	done := make(chan struct{})
	go func() { e.ObserveAll(seedSamples(3, 3)); close(done) }()
	waitCond(t, func() bool { return j.LastSeq() >= 1 })
	j.failAll(errors.New("fenced"))
	waitClosed(t, done, "caller after WaitDurable rejection")
	waitCond(t, func() bool { return e.Stats().JournalErrors >= 1 })
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("predict after rejected ack: %v", err)
	}
}

// TestDurableAckCloseCompletes: Close with in-flight durable acks must
// complete every taken batch (the completer drains before e.wg
// releases), not leak parked callers.
func TestDurableAckCloseCompletes(t *testing.T) {
	e := New(testModel(t), Config{})
	j := newFakeDurableJournal()
	e.SetJournal(j)
	done := make(chan struct{})
	go func() { e.ObserveAll(seedSamples(3, 3)); close(done) }()
	waitCond(t, func() bool { return j.LastSeq() >= 1 })
	// Commit lands while the engine is closing.
	go func() { time.Sleep(5 * time.Millisecond); j.advance(1) }()
	e.Close()
	waitClosed(t, done, "caller across Close")
}

// TestDurableAckNonGroupInline: a DurableJournal that does NOT group-
// commit keeps the classic inline ack path (no completer involved).
func TestDurableAckNonGroupInline(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	j := &nonGroupDurable{}
	e.SetJournal(j)
	ss := seedSamples(3, 3)
	e.ObserveAll(ss) // must not park on WaitDurable (which would hang)
	if got := j.sampleCount(); got != len(ss) {
		t.Fatalf("journal holds %d samples, want %d", got, len(ss))
	}
}

type nonGroupDurable struct{ fakeJournal }

func (n *nonGroupDurable) GroupCommit() bool { return false }
func (n *nonGroupDurable) WaitDurable(seq uint64) error {
	select {} // must never be called when GroupCommit() is false
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitClosed(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: not released within 5s", what)
	}
}

var _ DurableJournal = (*fakeDurableJournal)(nil)
