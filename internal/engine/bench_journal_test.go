package engine

import (
	"io"
	"log/slog"
	"testing"

	"github.com/qoslab/amf/internal/store"
	"github.com/qoslab/amf/internal/stream"
)

// BenchmarkObserveJournal measures the durability tax on the synchronous
// observe path: the same 64-sample ObserveAll with no journal attached
// (the seed's write path) versus journaling into a real segmented WAL
// under each fsync policy. The acceptance budget is <=10% regression for
// fsync=interval; fsync=always pays a real fsync per batch and is
// reported for operators choosing the zero-loss policy.
//
//	go test -bench=BenchmarkObserveJournal -benchmem ./internal/engine/
func BenchmarkObserveJournal(b *testing.B) {
	const obsBatch = 64
	batch := make([]stream.Sample, obsBatch)
	for j := range batch {
		batch[j] = stream.Sample{User: j % 128, Service: (j * 3) % 512, Value: 1 + float64(j%9)}
	}
	run := func(b *testing.B, e *Engine) {
		b.Helper()
		b.SetBytes(int64(obsBatch))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ObserveAll(batch)
		}
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	b.Run("journal=none", func(b *testing.B) {
		e := New(testModel(b), Config{})
		defer e.Close()
		run(b, e)
	})
	for _, pol := range []store.SyncPolicy{store.SyncOff, store.SyncInterval, store.SyncAlways} {
		b.Run("journal="+pol.String(), func(b *testing.B) {
			w, err := store.OpenWAL(b.TempDir(), store.WALOptions{Sync: pol, Logger: quiet})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			e := New(testModel(b), Config{})
			defer e.Close()
			e.SetJournal(w)
			run(b, e)
		})
	}
}
