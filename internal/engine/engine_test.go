package engine

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

func testModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return core.MustNew(cfg)
}

func seedSamples(users, services int) []stream.Sample {
	var ss []stream.Sample
	for u := 0; u < users; u++ {
		for s := 0; s < services; s++ {
			if (u+s)%3 == 0 {
				ss = append(ss, stream.Sample{
					Time: time.Duration(u+s) * time.Second,
					User: u, Service: s,
					Value: 0.5 + float64((u*s)%7),
				})
			}
		}
	}
	return ss
}

func TestObserveAllReadYourWrites(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	ss := seedSamples(4, 5)
	e.ObserveAll(ss)
	v := e.View()
	if v.Updates() != int64(len(ss)) {
		t.Fatalf("view updates %d, want %d", v.Updates(), len(ss))
	}
	if _, _, err := v.PredictWithConfidence(0, 0); err != nil {
		t.Fatalf("observation not visible after ObserveAll: %v", err)
	}
	if v.NumUsers() != 4 || v.NumServices() != 5 {
		t.Fatalf("view sizes %d/%d", v.NumUsers(), v.NumServices())
	}
}

func TestObserveAllTracedTimings(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	ss := seedSamples(4, 5)
	tm := e.ObserveAllTraced(ss)
	if tm.QueueWait <= 0 {
		t.Errorf("QueueWait = %v, want > 0", tm.QueueWait)
	}
	if tm.Apply <= 0 {
		t.Errorf("Apply = %v, want > 0", tm.Apply)
	}
	if tm.Publish <= 0 {
		t.Errorf("Publish = %v, want > 0", tm.Publish)
	}
	// No journal attached: the append stage must report (near) zero.
	if tm.Journal > time.Millisecond {
		t.Errorf("Journal = %v without a journal attached", tm.Journal)
	}
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("traced observe lost read-your-writes: %v", err)
	}

	// The traced path must keep working after Close (inline fallback).
	e.Close()
	tm = e.ObserveAllTraced(seedSamples(5, 6))
	if tm.Apply <= 0 || tm.Publish <= 0 {
		t.Errorf("post-Close traced observe timings = %+v, want non-zero apply/publish", tm)
	}
}

func TestEnqueueFlushVisibility(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	for _, s := range seedSamples(4, 5) {
		if !e.Enqueue(s) {
			t.Fatal("enqueue rejected with an empty queue")
		}
	}
	e.Flush()
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("enqueued observation not visible after Flush: %v", err)
	}
	st := e.Stats()
	if st.Dropped != 0 || st.QueueLen != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if st.Applied != st.Enqueued {
		t.Fatalf("applied %d != enqueued %d", st.Applied, st.Enqueued)
	}
}

// TestStalenessBoundInterval: a fire-and-forget observation must appear
// in the published view within ~2x the publish interval even when the
// update-count threshold K is never reached.
func TestStalenessBoundInterval(t *testing.T) {
	e := New(testModel(t), Config{
		PublishEvery:    1 << 30, // K unreachable: only the T bound can publish
		PublishInterval: 10 * time.Millisecond,
	})
	defer e.Close()
	e.Enqueue(stream.Sample{User: 7, Service: 9, Value: 1.5})
	deadline := time.Now().Add(2 * time.Second) // generous CI headroom
	for time.Now().Before(deadline) {
		if e.View().KnowsUser(7) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("observation not published within deadline (T=10ms); stats %+v", e.Stats())
}

// TestStalenessBoundUpdates: with a huge interval, the view must still be
// republished once K updates accumulate.
func TestStalenessBoundUpdates(t *testing.T) {
	const k = 32
	e := New(testModel(t), Config{
		PublishEvery:    k,
		PublishInterval: time.Hour, // T unreachable in test time
	})
	defer e.Close()
	v0 := e.View()
	for i := 0; i < k+8; i++ {
		e.Enqueue(stream.Sample{User: i % 4, Service: i % 8, Value: 1 + float64(i%3)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v := e.View(); v.Version() > v0.Version() && v.Updates() >= k {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no publish after %d updates with K=%d; stats %+v", k+8, k, e.Stats())
}

// TestDropOldestUnderOverload stalls the writer (by holding its mutex)
// and overflows one shard: the engine must drop the oldest samples,
// account for them, and keep the freshest.
func TestDropOldestUnderOverload(t *testing.T) {
	const q = 8
	e := New(testModel(t), Config{QueueSize: q, IngestShards: 1})
	defer e.Close()

	e.mu.Lock() // stall the writer's apply path
	for i := 0; i < 3*q; i++ {
		e.Enqueue(stream.Sample{User: 0, Service: i, Value: float64(i%5) + 1})
	}
	st := e.Stats()
	e.mu.Unlock()

	if st.Dropped == 0 {
		t.Fatalf("no drops after overflowing a %d-slot shard with %d samples: %+v", q, 3*q, st)
	}
	if st.Enqueued+st.Dropped < 3*q {
		t.Fatalf("accounting leak: enqueued %d + dropped %d < %d", st.Enqueued, st.Dropped, 3*q)
	}
	e.Flush()
	// The freshest sample (highest service id) must have survived.
	if !e.View().KnowsService(3*q - 1) {
		t.Fatal("drop-oldest evicted the newest sample")
	}
}

func TestReplayStepsPublishes(t *testing.T) {
	e := New(testModel(t), Config{PublishInterval: time.Hour, PublishEvery: 1 << 30})
	defer e.Close()
	e.ObserveAll(seedSamples(4, 5))
	before := e.Updates()
	n := e.ReplaySteps(100)
	if n == 0 {
		t.Fatal("no replay steps performed on a seeded pool")
	}
	if e.Updates() != before+int64(n) {
		t.Fatalf("view updates %d after %d replay steps from %d (explicit ops must force-publish)",
			e.Updates(), n, before)
	}
}

func TestRemoveForcesPublish(t *testing.T) {
	e := New(testModel(t), Config{PublishInterval: time.Hour, PublishEvery: 1 << 30})
	defer e.Close()
	e.ObserveAll(seedSamples(4, 5))
	if !e.View().KnowsUser(1) {
		t.Fatal("user 1 missing")
	}
	e.RemoveUser(1)
	if e.View().KnowsUser(1) {
		t.Fatal("removed user still visible")
	}
	e.RemoveService(0)
	if e.View().KnowsService(0) {
		t.Fatal("removed service still visible")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	e.ObserveAll(seedSamples(6, 9))
	want, _, err := e.PredictWithConfidence(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	e2 := New(testModel(t), Config{})
	defer e2.Close()
	if err := e2.Restore(data); err != nil {
		t.Fatal(err)
	}
	got, _, err := e2.PredictWithConfidence(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored prediction %g, want %g", got, want)
	}
	if e2.Restore([]byte("garbage")) == nil {
		t.Fatal("garbage restore must fail")
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	e := New(testModel(t), Config{PublishInterval: time.Hour, PublishEvery: 1 << 30})
	for _, s := range seedSamples(4, 5) {
		e.Enqueue(s)
	}
	e.Close()
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("pre-Close samples lost: %v", err)
	}
	// Post-Close writes still work (inline fallback) so shutdown paths
	// (e.g. replaying a WAL before a final snapshot) cannot wedge.
	e.ObserveAll([]stream.Sample{{User: 50, Service: 50, Value: 2}})
	if !e.View().KnowsUser(50) {
		t.Fatal("post-Close ObserveAll not applied")
	}
	if e.Enqueue(stream.Sample{User: 51, Service: 51, Value: 2}) {
		t.Fatal("Enqueue after Close must report rejection")
	}
	e.Close() // idempotent
}

func TestRankFromView(t *testing.T) {
	e := New(testModel(t), Config{})
	defer e.Close()
	e.ObserveAll(seedSamples(6, 9))
	ranked, unknown := e.RankServices(3, []int{0, 3, 6, 777}, true)
	if len(unknown) != 1 || unknown[0] != 777 {
		t.Fatalf("unknown = %v", unknown)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Value > ranked[i].Value {
			t.Fatalf("ranking not ascending: %v", ranked)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(testModel(t), Config{IngestShards: 5})
	defer e.Close()
	cfg := e.Config()
	if cfg.IngestShards != 8 {
		t.Fatalf("shards %d, want next power of two 8", cfg.IngestShards)
	}
	if cfg.QueueSize != 4096 || cfg.PublishEvery != 256 || cfg.PublishInterval != 50*time.Millisecond {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if st := e.Stats(); st.QueueCap != 8*4096 {
		t.Fatalf("queue cap %d", st.QueueCap)
	}
}

// TestArenaFloat32Config: the engine's ArenaFloat32 config must hold
// through every view it publishes — the initial build, incremental
// republishes after observes, and the full rebuild after Restore (the
// restored model must inherit the engine's precision, not reset to
// float64).
func TestArenaFloat32Config(t *testing.T) {
	e := New(testModel(t), Config{ArenaFloat32: true})
	defer e.Close()
	if !e.View().ArenaFloat32() {
		t.Fatal("initial view is not float32")
	}
	e.ObserveAll(seedSamples(4, 5))
	if !e.View().ArenaFloat32() {
		t.Fatal("republished view dropped float32 mode")
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !e.View().ArenaFloat32() {
		t.Fatal("restored view dropped float32 mode")
	}
	// Predictions must survive the rounded round trip for trained pairs.
	if _, err := e.Predict(0, 0); err != nil {
		t.Fatalf("predict after f32 restore: %v", err)
	}

	// The default stays float64.
	e64 := New(testModel(t), Config{})
	defer e64.Close()
	if e64.View().ArenaFloat32() {
		t.Fatal("default engine published a float32 view")
	}
}
