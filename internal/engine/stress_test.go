package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// TestStressConcurrentReadWrite hammers one engine from >= 8 goroutines
// mixing every public operation. Run with -race. It asserts:
//
//   - no torn views: every prediction is finite and inside the model's
//     configured QoS range, every confidence is in (0, 1];
//   - monotonic publication: each reader observes non-decreasing view
//     versions, and (in the restore-free phase) non-decreasing update
//     counts.
func TestStressConcurrentReadWrite(t *testing.T) {
	runStressConcurrentReadWrite(t, Config{
		QueueSize:       256,
		IngestShards:    4,
		PublishEvery:    64,
		PublishInterval: 2 * time.Millisecond,
		ReplayPerBatch:  16,
	})
}

// TestStressParallelTrainer is the same torture run against the
// multi-writer path: the drain fans out across 4 trainer workers while
// readers, churn, snapshot, and restore race it. Run with -race — the
// synchronized trainer must be race-detector clean.
func TestStressParallelTrainer(t *testing.T) {
	runStressConcurrentReadWrite(t, Config{
		QueueSize:       256,
		IngestShards:    8,
		PublishEvery:    64,
		PublishInterval: 2 * time.Millisecond,
		ReplayPerBatch:  16,
		TrainWorkers:    4,
	})
}

func runStressConcurrentReadWrite(t *testing.T, cfg Config) {
	const (
		users    = 32
		services = 64
		readers  = 6
		writers  = 2
		mutators = 2 // churn + snapshot/replay goroutines
	)
	e := New(testModel(t), cfg)
	defer e.Close()

	// Seed synchronously so every (u, s) in range is predictable.
	var seed []stream.Sample
	for u := 0; u < users; u++ {
		for s := 0; s < services; s++ {
			seed = append(seed, stream.Sample{User: u, Service: s, Value: 1 + float64((u+s)%9)})
		}
	}
	e.ObserveAll(seed)

	var (
		stop        atomic.Bool
		restoreOn   atomic.Bool // set while Restore may run (relaxes update monotonicity)
		failures    atomic.Int64
		firstErr    atomic.Value
		cfgRange    = e.View().Config()
		recordError = func(format string, args ...any) {
			if failures.Add(1) == 1 {
				firstErr.Store(fmt.Errorf(format, args...))
			}
		}
	)

	var wg sync.WaitGroup

	// Readers: predict, rank, inspect — all wait-free view loads.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastVersion := uint64(0)
			lastUpdates := int64(0)
			i := 0
			for !stop.Load() {
				i++
				u, s := (r*7+i)%users, (r*13+i)%services
				v := e.View()
				if ver := v.Version(); ver < lastVersion {
					recordError("reader %d: view version went backwards: %d -> %d", r, lastVersion, ver)
					return
				} else {
					lastVersion = ver
				}
				if up := v.Updates(); up < lastUpdates && !restoreOn.Load() {
					recordError("reader %d: update count went backwards: %d -> %d", r, lastUpdates, up)
					return
				} else {
					lastUpdates = up
				}
				val, conf, err := v.PredictWithConfidence(u, s)
				if err != nil {
					continue // churn may have removed the entity; not a tear
				}
				if math.IsNaN(val) || math.IsInf(val, 0) || val < cfgRange.RMin-1e-9 || val > cfgRange.RMax+1e-9 {
					recordError("reader %d: torn prediction %g for (%d,%d)", r, val, u, s)
					return
				}
				if !(conf > 0 && conf <= 1) {
					recordError("reader %d: confidence %g out of (0,1]", r, conf)
					return
				}
				if i%64 == 0 {
					ranked, _ := v.RankServices(u, []int{0, 1, 2, 3, 4, 5}, true)
					for j := 1; j < len(ranked); j++ {
						if ranked[j-1].Value > ranked[j].Value {
							recordError("reader %d: inconsistent ranking %v", r, ranked)
							return
						}
					}
				}
			}
		}(r)
	}

	// Async writers: firehose Enqueue.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for !stop.Load() {
				i++
				e.Enqueue(stream.Sample{
					User:    (w*11 + i) % users,
					Service: (w*17 + i) % services,
					Value:   1 + float64(i%9),
				})
				if i%128 == 0 {
					e.ObserveAll([]stream.Sample{{User: i % users, Service: i % services, Value: 2}})
				}
			}
		}(w)
	}

	// Mutator 1: churn (remove + re-observe) and replay.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			i++
			id := i % users
			e.RemoveUser(id)
			e.ObserveAll([]stream.Sample{{User: id, Service: i % services, Value: 3}})
			e.ReplaySteps(32)
			e.AdvanceTo(time.Duration(i) * time.Millisecond)
		}
	}()

	// Mutator 2: lock-free snapshots, then restores (second phase only).
	wg.Add(1)
	go func() {
		defer wg.Done()
		var snap []byte
		i := 0
		for !stop.Load() {
			i++
			data, err := e.Snapshot()
			if err != nil {
				recordError("snapshot: %v", err)
				return
			}
			snap = data
			if restoreOn.Load() && i%8 == 0 {
				if err := e.Restore(snap); err != nil {
					recordError("restore: %v", err)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(150 * time.Millisecond) // phase 1: monotonic updates, no restore
	restoreOn.Store(true)
	time.Sleep(150 * time.Millisecond) // phase 2: add Restore to the mix
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d consistency failures; first: %v", n, firstErr.Load())
	}
	st := e.Stats()
	if st.Published == 0 || st.Applied == 0 {
		t.Fatalf("stress run did no work: %+v", st)
	}
	t.Logf("stress stats: %+v", st)
}

// TestStressStalenessUnderLoad verifies the publish bound holds while the
// engine is under concurrent load: a marker observation enqueued
// mid-firehose becomes visible within a generous multiple of the publish
// interval.
func TestStressStalenessUnderLoad(t *testing.T) {
	const interval = 5 * time.Millisecond
	e := New(testModel(t), Config{
		PublishEvery:    1 << 30, // only the interval bound may publish
		PublishInterval: interval,
		QueueSize:       1 << 14,
	})
	defer e.Close()

	// Sustained-but-sustainable load: bursts with pauses, so the writer
	// keeps up and the staleness bound (not drop-oldest overload
	// shedding, which TestDropOldestUnderOverload covers) is what's
	// under test.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			for b := 0; b < 64; b++ {
				i++
				e.Enqueue(stream.Sample{User: i % 16, Service: i % 32, Value: 1 + float64(i%5)})
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const markerUser = 10_000
	time.Sleep(5 * interval) // let the load establish
	for !e.Enqueue(stream.Sample{User: markerUser, Service: 0, Value: 1}) {
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(100 * interval)
	visible := false
	for time.Now().Before(deadline) {
		if e.View().KnowsUser(markerUser) {
			visible = true
			break
		}
		time.Sleep(interval / 5)
	}
	stop.Store(true)
	wg.Wait()
	if !visible {
		t.Fatalf("marker not visible within 100x publish interval; stats %+v", e.Stats())
	}
}
