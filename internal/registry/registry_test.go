package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegisterAndLookup(t *testing.T) {
	r := New()
	id, created := r.Register("user-a")
	if !created || id != 0 {
		t.Fatalf("first register = %d, %v", id, created)
	}
	id2, created2 := r.Register("user-a")
	if created2 || id2 != id {
		t.Fatalf("re-register = %d, %v", id2, created2)
	}
	if got, ok := r.Lookup("user-a"); !ok || got != id {
		t.Fatalf("lookup = %d, %v", got, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown lookup should fail")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestIDsNeverReused(t *testing.T) {
	r := New()
	idA, _ := r.Register("a")
	r.Deregister("a")
	idB, _ := r.Register("a")
	if idB == idA {
		t.Fatal("IDs must not be reused after deregistration")
	}
}

func TestDeregister(t *testing.T) {
	r := New()
	id, _ := r.Register("svc")
	gone, ok := r.Deregister("svc")
	if !ok || gone != id {
		t.Fatalf("deregister = %d, %v", gone, ok)
	}
	if _, ok := r.Lookup("svc"); ok {
		t.Fatal("deregistered name should be gone")
	}
	if _, ok := r.Get(id); ok {
		t.Fatal("deregistered ID should be gone")
	}
	if _, ok := r.Deregister("svc"); ok {
		t.Fatal("double deregister should fail")
	}
}

func TestGetAndClockInjection(t *testing.T) {
	fixed := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewWithClock(func() time.Time { return fixed })
	id, _ := r.Register("x")
	info, ok := r.Get(id)
	if !ok || info.Name != "x" || !info.Joined.Equal(fixed) {
		t.Fatalf("info = %+v, %v", info, ok)
	}
	if _, ok := r.Get(999); ok {
		t.Fatal("unknown ID should fail")
	}
	byName, ok := r.GetByName("x")
	if !ok || byName.ID != id {
		t.Fatalf("GetByName = %+v, %v", byName, ok)
	}
	if _, ok := r.GetByName("nope"); ok {
		t.Fatal("unknown name should fail")
	}
}

func TestMeta(t *testing.T) {
	r := New()
	r.Register("x")
	if err := r.SetMeta("x", "country", "DE"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetMeta("nope", "k", "v"); err == nil {
		t.Fatal("SetMeta on unknown name should error")
	}
	info, _ := r.GetByName("x")
	if info.Meta["country"] != "DE" {
		t.Fatalf("meta = %v", info.Meta)
	}
	// Returned Info must be a copy: mutating it must not leak back.
	info.Meta["country"] = "FR"
	again, _ := r.GetByName("x")
	if again.Meta["country"] != "DE" {
		t.Fatal("Get must return a defensive copy of Meta")
	}
}

func TestListSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"c", "a", "b"} {
		r.Register(n)
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("list length %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].ID <= list[i-1].ID {
			t.Fatal("list must be sorted by ID")
		}
	}
}

func TestConcurrentRegistration(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Half shared names (contended), half unique.
				if i%2 == 0 {
					r.Register(fmt.Sprintf("shared-%d", i))
				} else {
					r.Register(fmt.Sprintf("own-%d-%d", g, i))
				}
				r.Lookup("shared-0")
				r.Len()
			}
		}(g)
	}
	wg.Wait()
	wantShared := perG / 2
	wantOwn := goroutines * perG / 2
	if got := r.Len(); got != wantShared+wantOwn {
		t.Fatalf("len = %d, want %d", got, wantShared+wantOwn)
	}
	// IDs must be unique.
	seen := map[int]bool{}
	for _, info := range r.List() {
		if seen[info.ID] {
			t.Fatalf("duplicate ID %d", info.ID)
		}
		seen[info.ID] = true
	}
}

func TestRestorePreservesIDsAndResumesCounter(t *testing.T) {
	src := New()
	src.Register("a")
	src.Register("b")
	src.Register("c")
	src.Deregister("b") // leaves a hole: IDs {0, 2}
	exported := src.List()

	dst := New()
	dst.Register("x") // pre-existing content is replaced by Restore
	if err := dst.Restore(exported); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Lookup("x"); ok {
		t.Fatal("restore should replace prior contents")
	}
	idA, _ := dst.Lookup("a")
	idC, _ := dst.Lookup("c")
	if idA != 0 || idC != 2 {
		t.Fatalf("restored IDs a=%d c=%d, want 0/2", idA, idC)
	}
	// The counter must resume after the max restored ID.
	newID, created := dst.Register("d")
	if !created || newID != 3 {
		t.Fatalf("post-restore registration = %d, %v; want 3", newID, created)
	}
}

func TestRestoreRejectsDuplicates(t *testing.T) {
	r := New()
	r.Register("keep")
	dupName := []Info{{ID: 0, Name: "a"}, {ID: 1, Name: "a"}}
	if err := r.Restore(dupName); err == nil {
		t.Fatal("duplicate names should fail")
	}
	dupID := []Info{{ID: 0, Name: "a"}, {ID: 0, Name: "b"}}
	if err := r.Restore(dupID); err == nil {
		t.Fatal("duplicate IDs should fail")
	}
	// Failed restore must leave the registry unchanged.
	if _, ok := r.Lookup("keep"); !ok {
		t.Fatal("failed restore must not clear the registry")
	}
}

func TestRegisterIDIdempotentReplay(t *testing.T) {
	// WAL replay is at-least-once: re-applying the exact registration
	// must be a no-op, not an error and not a new ID.
	r := New()
	if err := r.RegisterID("u", 7); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterID("u", 7); err != nil {
		t.Fatalf("exact duplicate replay: %v", err)
	}
	if id, ok := r.Lookup("u"); !ok || id != 7 {
		t.Fatalf("lookup after replay = %d, %v", id, ok)
	}
	// The counter advanced past the forced ID, so fresh registrations
	// cannot collide with replayed ones.
	if id, created := r.Register("fresh"); !created || id != 8 {
		t.Fatalf("post-replay Register = %d, %v; want 8, true", id, created)
	}
}

func TestRegisterIDConflicts(t *testing.T) {
	r := New()
	if err := r.RegisterID("u", 3); err != nil {
		t.Fatal(err)
	}
	// Same name, different forced ID: a corrupted or foreign WAL.
	if err := r.RegisterID("u", 4); err == nil {
		t.Fatal("name rebound to a different ID should fail")
	}
	// Same ID, different name.
	if err := r.RegisterID("v", 3); err == nil {
		t.Fatal("ID rebound to a different name should fail")
	}
	// Negative IDs never come from a valid WAL.
	if err := r.RegisterID("w", -1); err == nil {
		t.Fatal("negative ID should fail")
	}
	// Failed registrations must leave no trace.
	if _, ok := r.Lookup("v"); ok {
		t.Fatal("failed RegisterID leaked a name binding")
	}
	if _, ok := r.Lookup("w"); ok {
		t.Fatal("failed RegisterID leaked a negative-ID binding")
	}
	if id, ok := r.Lookup("u"); !ok || id != 3 {
		t.Fatalf("original binding disturbed: %d, %v", id, ok)
	}
}

func TestRegisterIDAfterOrganicRegistration(t *testing.T) {
	// A name first registered organically (auto-assigned ID) then
	// replayed with a mismatched forced ID must be rejected — silently
	// remapping would detach the model's factor rows from their keys.
	r := New()
	id, _ := r.Register("organic")
	if err := r.RegisterID("organic", id); err != nil {
		t.Fatalf("matching forced ID: %v", err)
	}
	if err := r.RegisterID("organic", id+100); err == nil {
		t.Fatal("mismatched forced ID should fail")
	}
	// Forcing an ID below the counter must not rewind it.
	r2 := New()
	r2.Register("a") // ID 0
	r2.Register("b") // ID 1
	if err := r2.RegisterID("replayed", 0); err == nil {
		t.Fatal("forcing an ID bound to another name should fail")
	}
	if id, created := r2.Register("c"); !created || id != 2 {
		t.Fatalf("counter disturbed by failed RegisterID: %d, %v", id, created)
	}
}
