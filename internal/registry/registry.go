// Package registry implements the user manager and service manager of the
// paper's QoS prediction service (framework Fig. 3): it tracks the joining
// and leaving of named users and services and maps their external string
// names to the dense integer IDs the prediction models use internally.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrUnknown is returned when a name or ID is not registered.
var ErrUnknown = errors.New("registry: unknown entity")

// Info describes one registered entity.
type Info struct {
	ID     int
	Name   string
	Joined time.Time
	// Meta carries optional annotations (e.g. location, provider).
	Meta map[string]string
}

// Registry is a concurrency-safe name⇄ID directory with churn support.
// IDs are never reused, so a prediction model keyed by ID cannot confuse a
// departed entity with a later arrival. The zero value is not usable;
// construct with New.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Info
	byID   map[int]*Info
	nextID int
	now    func() time.Time
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		byName: make(map[string]*Info),
		byID:   make(map[int]*Info),
		now:    time.Now,
	}
}

// NewWithClock creates a registry with an injected clock, for tests and
// simulations.
func NewWithClock(now func() time.Time) *Registry {
	r := New()
	r.now = now
	return r
}

// Register returns the ID for name, creating a new registration if the
// name is unknown. created reports whether a new entity joined.
func (r *Registry) Register(name string) (id int, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if info, ok := r.byName[name]; ok {
		return info.ID, false
	}
	info := &Info{ID: r.nextID, Name: name, Joined: r.now()}
	r.nextID++
	r.byName[name] = info
	r.byID[info.ID] = info
	return info.ID, true
}

// RegisterID registers a name under a specific ID — the WAL-replay path,
// where the ID was assigned before the crash and must be reproduced
// exactly (the model's factors are keyed by it). Replay is at-least-once,
// so an identical existing registration is a no-op; a conflicting one
// (name or ID already bound differently) is an error. The ID counter
// advances past the forced ID so later registrations cannot collide.
func (r *Registry) RegisterID(name string, id int) error {
	if id < 0 {
		return fmt.Errorf("registry: negative ID %d for %q", id, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if info, ok := r.byName[name]; ok {
		if info.ID == id {
			return nil // exact duplicate: idempotent replay
		}
		return fmt.Errorf("registry: name %q already bound to ID %d, not %d", name, info.ID, id)
	}
	if info, ok := r.byID[id]; ok {
		return fmt.Errorf("registry: ID %d already bound to %q, not %q", id, info.Name, name)
	}
	info := &Info{ID: id, Name: name, Joined: r.now()}
	r.byName[name] = info
	r.byID[id] = info
	if id >= r.nextID {
		r.nextID = id + 1
	}
	return nil
}

// Lookup returns the ID for a registered name.
func (r *Registry) Lookup(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	return info.ID, true
}

// ResolveAll looks up many names under a single lock acquisition,
// returning parallel id/known slices (ids[i] is meaningful only when
// known[i]). Batch endpoints (batch predict, candidate ranking) use it
// instead of per-name Lookup calls so a 10k-candidate request costs one
// RLock, not 10k.
func (r *Registry) ResolveAll(names []string) (ids []int, known []bool) {
	ids = make([]int, len(names))
	known = make([]bool, len(names))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, name := range names {
		if info, ok := r.byName[name]; ok {
			ids[i] = info.ID
			known[i] = true
		}
	}
	return ids, known
}

// NameOf returns the registered name for an ID ("" when unknown) — the
// reverse of Lookup, used when mapping ranked model IDs back to API
// names.
func (r *Registry) NameOf(id int) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byID[id]
	if !ok {
		return "", false
	}
	return info.Name, true
}

// Get returns a copy of the Info for an ID.
func (r *Registry) Get(id int) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byID[id]
	if !ok {
		return Info{}, false
	}
	return r.copyInfo(info), true
}

// GetByName returns a copy of the Info for a name.
func (r *Registry) GetByName(name string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byName[name]
	if !ok {
		return Info{}, false
	}
	return r.copyInfo(info), true
}

func (r *Registry) copyInfo(info *Info) Info {
	out := *info
	if info.Meta != nil {
		out.Meta = make(map[string]string, len(info.Meta))
		for k, v := range info.Meta {
			out.Meta[k] = v
		}
	}
	return out
}

// SetMeta attaches a metadata key/value to a registered name.
func (r *Registry) SetMeta(name, key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.byName[name]
	if !ok {
		return ErrUnknown
	}
	if info.Meta == nil {
		info.Meta = make(map[string]string)
	}
	info.Meta[key] = value
	return nil
}

// Deregister removes a name (the entity leaves the environment). It
// returns the departed ID so callers can purge model state.
func (r *Registry) Deregister(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	delete(r.byName, name)
	delete(r.byID, info.ID)
	return info.ID, true
}

// Restore replaces the registry's contents with previously exported
// Infos (see List), preserving IDs. The ID counter resumes after the
// largest restored ID so later registrations cannot collide. It fails on
// duplicate names or IDs, leaving the registry unchanged.
func (r *Registry) Restore(infos []Info) error {
	byName := make(map[string]*Info, len(infos))
	byID := make(map[int]*Info, len(infos))
	next := 0
	for _, in := range infos {
		if _, dup := byName[in.Name]; dup {
			return fmt.Errorf("registry: duplicate name %q in restore", in.Name)
		}
		if _, dup := byID[in.ID]; dup {
			return fmt.Errorf("registry: duplicate ID %d in restore", in.ID)
		}
		cp := r.copyInfo(&in)
		byName[cp.Name] = &cp
		byID[cp.ID] = &cp
		if cp.ID >= next {
			next = cp.ID + 1
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName = byName
	r.byID = byID
	r.nextID = next
	return nil
}

// Len returns the number of registered entities.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// List returns copies of all registrations, sorted by ID.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.byID))
	for _, info := range r.byID {
		out = append(out, r.copyInfo(info))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
