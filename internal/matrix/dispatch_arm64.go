//go:build arm64 && !noasm

package matrix

// NEON dispatch for the ranking kernels. Advanced SIMD (NEON) with
// 64-bit FP lanes is architecturally mandatory on AArch64, so there is
// no runtime feature probe — the kernels are always eligible unless the
// noasm tag opts out.

// dotBatchNEON is the float64 batch kernel in kernels_arm64.s.
//
//go:noescape
func dotBatchNEON(dst, block, q []float64)

// dotBatch32NEON is the float32 twin.
//
//go:noescape
func dotBatch32NEON(dst, block, q []float32)

func init() {
	simdName = "neon"
	dotBatchArch = dotBatchNEON
	dotBatch32Arch = dotBatch32NEON
	// Dot as a one-row batch call: the bit-identity invariant in
	// kernels.go holds by construction.
	dotArch = func(a, b []float64) float64 {
		var d [1]float64
		dotBatchNEON(d[:1], a, b)
		return d[0]
	}
	dot32Arch = func(a, b []float32) float32 {
		var d [1]float32
		dotBatch32NEON(d[:1], a, b)
		return d[0]
	}
}
