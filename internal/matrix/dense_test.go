package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewDensePanicsOnNegativeShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("unexpected values: %v", m)
	}
}

func TestNewDenseFromRagged(t *testing.T) {
	if _, err := NewDenseFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestNewDenseFromEmpty(t *testing.T) {
	m, err := NewDenseFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("got %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("got %g, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 3)
	r := m.Row(1)
	r[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row must return a live view")
	}
	if len(r) != 3 {
		t.Fatalf("row length %d, want 3", len(r))
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 2)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be independent of the original")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want, _ := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !Equalish(got, want, 1e-12) {
		t.Fatalf("got\n%v want\n%v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	Mul(a, b)
}

func TestMulTMatchesMulWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewDense(4, 3)
	b := NewDense(5, 3)
	for _, m := range []*Dense{a, b} {
		m.Apply(func(float64) float64 { return rng.NormFloat64() })
	}
	if !Equalish(MulT(a, b), Mul(a, b.T()), 1e-12) {
		t.Fatal("MulT(a,b) must equal Mul(a, bᵀ)")
	}
}

func TestGramSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewDense(6, 4)
	m.Apply(func(float64) float64 { return rng.NormFloat64() })
	for _, byCols := range []bool{false, true} {
		g := Gram(m, byCols)
		wantN := 6
		if byCols {
			wantN = 4
		}
		if g.Rows() != wantN || g.Cols() != wantN {
			t.Fatalf("gram shape %dx%d, want %dx%d", g.Rows(), g.Cols(), wantN, wantN)
		}
		for i := 0; i < g.Rows(); i++ {
			for j := 0; j < g.Cols(); j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					t.Fatalf("gram not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("dot got %g, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("norm got %g, want 5", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestApplyScaleFillAddDense(t *testing.T) {
	m := NewDense(2, 2)
	m.Fill(2)
	m.Scale(3)
	m.Apply(func(x float64) float64 { return x + 1 })
	if m.At(1, 1) != 7 {
		t.Fatalf("got %g, want 7", m.At(1, 1))
	}
	n := NewDense(2, 2)
	n.Fill(1)
	m.AddDense(n)
	if m.At(0, 0) != 8 {
		t.Fatalf("got %g, want 8", m.At(0, 0))
	}
}

func TestEqualishShapeMismatch(t *testing.T) {
	if Equalish(NewDense(1, 2), NewDense(2, 1), 1) {
		t.Fatal("different shapes must not be Equalish")
	}
}

// Property: (Aᵀ)ᵀ == A for random matrices.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewDense(r, c)
		m.Apply(func(float64) float64 { return rng.NormFloat64() })
		return Equalish(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transposition.
func TestFrobeniusTransposeInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(1+rng.Intn(6), 1+rng.Intn(6))
		m.Apply(func(float64) float64 { return rng.NormFloat64() })
		return math.Abs(m.FrobeniusNorm()-m.T().FrobeniusNorm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewDense(2, 2)
	if small.String() == "" {
		t.Fatal("small matrix should render elements")
	}
	large := NewDense(100, 100)
	if got := large.String(); got != "Dense(100x100)" {
		t.Fatalf("large matrix should render compactly, got %q", got)
	}
}
