package matrix

import (
	"fmt"
	"sort"
)

// Entry is one observed cell of a sparse matrix: the QoS value Rij observed
// by user (row) i on service (column) j.
type Entry struct {
	Row, Col int
	Val      float64
}

// Sparse is a sparse matrix in triplet form with an optional CSR index for
// fast row iteration. It models the observed user-service QoS matrix R with
// indicator Iij=1 exactly on the stored entries (paper Eq. 1).
type Sparse struct {
	rows, cols int
	entries    []Entry

	// CSR index, built lazily by Freeze.
	frozen  bool
	rowPtr  []int
	colIdx  []int
	values  []float64
	colBase [][]int // column -> indices into values/rowsOf, built with Freeze
	rowsOf  []int   // row index aligned with values under CSR order
}

// NewSparse creates an empty sparse matrix with the given shape.
func NewSparse(rows, cols int) *Sparse {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid sparse shape %dx%d", rows, cols))
	}
	return &Sparse{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.entries) }

// Density returns NNZ / (rows*cols), the paper's "matrix density".
func (s *Sparse) Density() float64 {
	if s.rows == 0 || s.cols == 0 {
		return 0
	}
	return float64(len(s.entries)) / float64(s.rows*s.cols)
}

// Append adds an observed entry. Duplicate (row, col) pairs are allowed
// until Freeze, which keeps the last one. Append unfreezes the matrix.
func (s *Sparse) Append(row, col int, val float64) {
	if row < 0 || row >= s.rows || col < 0 || col >= s.cols {
		panic(fmt.Sprintf("matrix: sparse index (%d,%d) out of range for %dx%d", row, col, s.rows, s.cols))
	}
	s.entries = append(s.entries, Entry{Row: row, Col: col, Val: val})
	s.frozen = false
}

// Entries returns the raw triplet slice. If the matrix has been frozen,
// the entries are sorted by (row, col) and deduplicated.
func (s *Sparse) Entries() []Entry { return s.entries }

// Freeze sorts entries into CSR order, removes duplicates (last write
// wins), and builds row and column indexes. It is idempotent.
func (s *Sparse) Freeze() {
	if s.frozen {
		return
	}
	sort.SliceStable(s.entries, func(a, b int) bool {
		ea, eb := s.entries[a], s.entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	// Deduplicate, keeping the last occurrence (stable sort preserves
	// insertion order within equal keys).
	dedup := s.entries[:0]
	for i := 0; i < len(s.entries); i++ {
		if len(dedup) > 0 {
			last := &dedup[len(dedup)-1]
			if last.Row == s.entries[i].Row && last.Col == s.entries[i].Col {
				last.Val = s.entries[i].Val
				continue
			}
		}
		dedup = append(dedup, s.entries[i])
	}
	s.entries = dedup

	s.rowPtr = make([]int, s.rows+1)
	s.colIdx = make([]int, len(s.entries))
	s.values = make([]float64, len(s.entries))
	s.rowsOf = make([]int, len(s.entries))
	for _, e := range s.entries {
		s.rowPtr[e.Row+1]++
	}
	for i := 0; i < s.rows; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	for i, e := range s.entries {
		s.colIdx[i] = e.Col
		s.values[i] = e.Val
		s.rowsOf[i] = e.Row
	}
	s.colBase = make([][]int, s.cols)
	for i, e := range s.entries {
		s.colBase[e.Col] = append(s.colBase[e.Col], i)
	}
	s.frozen = true
}

// At returns (value, true) if entry (i, j) is observed, else (0, false).
// The matrix must be frozen.
func (s *Sparse) At(i, j int) (float64, bool) {
	s.mustFrozen()
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	k := lo + sort.SearchInts(s.colIdx[lo:hi], j)
	if k < hi && s.colIdx[k] == j {
		return s.values[k], true
	}
	return 0, false
}

// RowEntries calls f(col, val) for every observed entry in row i.
// The matrix must be frozen.
func (s *Sparse) RowEntries(i int, f func(col int, val float64)) {
	s.mustFrozen()
	for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
		f(s.colIdx[k], s.values[k])
	}
}

// ColEntries calls f(row, val) for every observed entry in column j.
// The matrix must be frozen.
func (s *Sparse) ColEntries(j int, f func(row int, val float64)) {
	s.mustFrozen()
	for _, k := range s.colBase[j] {
		f(s.rowsOf[k], s.values[k])
	}
}

// RowNNZ returns the number of observed entries in row i (frozen only).
func (s *Sparse) RowNNZ(i int) int {
	s.mustFrozen()
	return s.rowPtr[i+1] - s.rowPtr[i]
}

// ColNNZ returns the number of observed entries in column j (frozen only).
func (s *Sparse) ColNNZ(j int) int {
	s.mustFrozen()
	return len(s.colBase[j])
}

// RowMean returns the mean of observed entries in row i, or (0, false) if
// the row is empty.
func (s *Sparse) RowMean(i int) (float64, bool) {
	s.mustFrozen()
	n := s.RowNNZ(i)
	if n == 0 {
		return 0, false
	}
	var sum float64
	for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
		sum += s.values[k]
	}
	return sum / float64(n), true
}

// ColMean returns the mean of observed entries in column j, or (0, false)
// if the column is empty.
func (s *Sparse) ColMean(j int) (float64, bool) {
	s.mustFrozen()
	n := s.ColNNZ(j)
	if n == 0 {
		return 0, false
	}
	var sum float64
	for _, k := range s.colBase[j] {
		sum += s.values[k]
	}
	return sum / float64(n), true
}

// ToDense materializes the sparse matrix; unobserved cells hold fill.
func (s *Sparse) ToDense(fill float64) *Dense {
	d := NewDense(s.rows, s.cols)
	if fill != 0 {
		d.Fill(fill)
	}
	for _, e := range s.entries {
		d.Set(e.Row, e.Col, e.Val)
	}
	return d
}

func (s *Sparse) mustFrozen() {
	if !s.frozen {
		panic("matrix: sparse matrix must be frozen before indexed access")
	}
}
