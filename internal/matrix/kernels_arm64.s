//go:build !noasm

#include "textflag.h"

// NEON batch inner-product kernels (see kernels.go for the dispatch
// contract). NEON is baseline on arm64, so there is no feature check.
//
// Unlike the AVX2 kernels these keep a deliberately simple one-row loop
// shape: arm64 is build-verified but not exercised by this project's CI
// hardware, so the kernels stay close to the portable loop's structure
// (row blocking is an amd64-only optimization until arm64 hardware is
// in CI). Two 128-bit accumulators per row still break the FMA
// dependence chain; with only one path per row, the bit-identity
// invariant (Dot == one-row DotBatch, split invariance) holds
// trivially.
//
// float64 reduce: V0=[a0 a1] V1=[b0 b1] -> (a0+a1)+(b0+b1).
// float32 reduce: V0=[a0..a3] V1=[b0..b3]
//                 -> ((a0+a1)+(a2+a3)) + ((b0+b1)+(b2+b3)).
// (The assembler has no plain vector FADD across registers we can rely
// on for this shape, so reduction moves lanes to scalars — fine at the
// AMF ranks where the loop, not the reduce, dominates.)

// func dotBatchNEON(dst, block, q []float64)
TEXT ·dotBatchNEON(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD dst_len+8(FP), R1
	MOVD block_base+24(FP), R2
	MOVD q_base+48(FP), R3
	MOVD q_len+56(FP), R4
	CBZ  R1, done64

rows64:
	MOVD R3, R5               // q cursor
	MOVD R4, R6               // k remaining
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16

chunk64:
	CMP  $4, R6
	BLT  reduce64
	VLD1.P 32(R2), [V2.D2, V3.D2]
	VLD1.P 32(R5), [V4.D2, V5.D2]
	VFMLA V4.D2, V2.D2, V0.D2
	VFMLA V5.D2, V3.D2, V1.D2
	SUB  $4, R6
	B    chunk64

reduce64:
	VMOV V0.D[1], V6.D[0]
	VMOV V1.D[1], V7.D[0]
	FADDD F6, F0, F0          // a0+a1
	FADDD F7, F1, F1          // b0+b1
	FADDD F1, F0, F0
	CBZ  R6, store64

tail64:
	FMOVD.P 8(R2), F2
	FMOVD.P 8(R5), F3
	FMADDD F2, F0, F3, F0     // F0 += F3*F2
	SUB  $1, R6
	CBNZ R6, tail64

store64:
	FMOVD F0, (R0)
	ADD  $8, R0
	SUB  $1, R1
	CBNZ R1, rows64

done64:
	RET

// func dotBatch32NEON(dst, block, q []float32)
TEXT ·dotBatch32NEON(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD dst_len+8(FP), R1
	MOVD block_base+24(FP), R2
	MOVD q_base+48(FP), R3
	MOVD q_len+56(FP), R4
	CBZ  R1, done32

rows32:
	MOVD R3, R5
	MOVD R4, R6
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16

chunk32:
	CMP  $8, R6
	BLT  reduce32
	VLD1.P 32(R2), [V2.S4, V3.S4]
	VLD1.P 32(R5), [V4.S4, V5.S4]
	VFMLA V4.S4, V2.S4, V0.S4
	VFMLA V5.S4, V3.S4, V1.S4
	SUB  $8, R6
	B    chunk32

reduce32:
	VMOV V0.S[1], V8.S[0]
	VMOV V0.S[2], V9.S[0]
	VMOV V0.S[3], V10.S[0]
	VMOV V1.S[1], V11.S[0]
	VMOV V1.S[2], V12.S[0]
	VMOV V1.S[3], V13.S[0]
	FADDS F8, F0, F0          // a0+a1
	FADDS F10, F9, F9         // a2+a3
	FADDS F11, F1, F1         // b0+b1
	FADDS F13, F12, F12       // b2+b3
	FADDS F9, F0, F0          // (a0+a1)+(a2+a3)
	FADDS F12, F1, F1         // (b0+b1)+(b2+b3)
	FADDS F1, F0, F0
	CBZ  R6, store32

tail32:
	FMOVS.P 4(R2), F2
	FMOVS.P 4(R5), F3
	FMADDS F2, F0, F3, F0
	SUB  $1, R6
	CBNZ R6, tail32

store32:
	FMOVS F0, (R0)
	ADD  $4, R0
	SUB  $1, R1
	CBNZ R1, rows32

done32:
	RET
