//go:build !noasm

#include "textflag.h"

// AVX2+FMA batch inner-product kernels (see kernels.go for the
// dispatch contract). Both kernels process four arena rows per
// iteration against one resident query chunk, with a one-row remainder
// loop. Bit-identity rules the structure:
//
//   - every row owns a single vector accumulator, fed the same chunk
//     sequence and reduced by the same instruction sequence in both the
//     4-row and 1-row paths, so a row's result never depends on which
//     path scored it (=> block splits and Dot-as-one-row-batch are
//     exact);
//   - the scalar tail FMAs onto the reduced vector sum in element
//     order, after the horizontal reduce — scalar VEX ops zero the
//     upper YMM bits, so the reduce must come first anyway.
//
// float64 reduce: [v0 v1 v2 v3] -> (v0+v2)+(v1+v3)
//   (VEXTRACTF128 folds the high lanes, VHADDPD adds the pair).
// float32 reduce: [v0..v7] -> ((v0+v4)+(v1+v5)) + ((v2+v6)+(v3+v7)).

// func dotBatchAVX2(dst, block, q []float64)
TEXT ·dotBatchAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ block_base+24(FP), SI
	MOVQ q_base+48(FP), DX
	MOVQ q_len+56(FP), BX
	MOVQ BX, R10
	SHLQ $3, R10              // row stride in bytes
	LEAQ (R10)(R10*2), R11    // 3 * stride

rows4:
	CMPQ CX, $4
	JL   rows1
	MOVQ DX, R9               // q cursor
	MOVQ BX, R8               // k remaining
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

chunk4:
	CMPQ R8, $4
	JL   reduce4
	VMOVUPD (R9), Y4
	VMOVUPD (SI), Y5
	VFMADD231PD Y4, Y5, Y0
	VMOVUPD (SI)(R10*1), Y5
	VFMADD231PD Y4, Y5, Y1
	VMOVUPD (SI)(R10*2), Y5
	VFMADD231PD Y4, Y5, Y2
	VMOVUPD (SI)(R11*1), Y5
	VFMADD231PD Y4, Y5, Y3
	ADDQ $32, SI
	ADDQ $32, R9
	SUBQ $4, R8
	JMP  chunk4

reduce4:
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPD X4, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPD X4, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPD X4, X3, X3
	VHADDPD X3, X3, X3
	TESTQ R8, R8
	JE   store4

tail4:
	VMOVSD (R9), X4
	VMOVSD (SI), X5
	VFMADD231SD X4, X5, X0
	VMOVSD (SI)(R10*1), X5
	VFMADD231SD X4, X5, X1
	VMOVSD (SI)(R10*2), X5
	VFMADD231SD X4, X5, X2
	VMOVSD (SI)(R11*1), X5
	VFMADD231SD X4, X5, X3
	ADDQ $8, SI
	ADDQ $8, R9
	DECQ R8
	JNZ  tail4

store4:
	VMOVSD X0, (DI)
	VMOVSD X1, 8(DI)
	VMOVSD X2, 16(DI)
	VMOVSD X3, 24(DI)
	ADDQ $32, DI
	ADDQ R11, SI              // SI sits at row r+1; hop to row r+4
	SUBQ $4, CX
	JMP  rows4

rows1:
	TESTQ CX, CX
	JE   done64
	MOVQ DX, R9
	MOVQ BX, R8
	VXORPD Y0, Y0, Y0

chunk1:
	CMPQ R8, $4
	JL   reduce1
	VMOVUPD (R9), Y4
	VMOVUPD (SI), Y5
	VFMADD231PD Y4, Y5, Y0
	ADDQ $32, SI
	ADDQ $32, R9
	SUBQ $4, R8
	JMP  chunk1

reduce1:
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	TESTQ R8, R8
	JE   store1

tail1:
	VMOVSD (R9), X4
	VMOVSD (SI), X5
	VFMADD231SD X4, X5, X0
	ADDQ $8, SI
	ADDQ $8, R9
	DECQ R8
	JNZ  tail1

store1:
	VMOVSD X0, (DI)
	ADDQ $8, DI
	DECQ CX
	JMP  rows1

done64:
	VZEROUPPER
	RET

// func dotBatch32AVX2(dst, block, q []float32)
TEXT ·dotBatch32AVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ block_base+24(FP), SI
	MOVQ q_base+48(FP), DX
	MOVQ q_len+56(FP), BX
	MOVQ BX, R10
	SHLQ $2, R10              // row stride in bytes
	LEAQ (R10)(R10*2), R11    // 3 * stride

rows4f:
	CMPQ CX, $4
	JL   rows1f
	MOVQ DX, R9
	MOVQ BX, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

chunk4f:
	CMPQ R8, $8
	JL   reduce4f
	VMOVUPS (R9), Y4
	VMOVUPS (SI), Y5
	VFMADD231PS Y4, Y5, Y0
	VMOVUPS (SI)(R10*1), Y5
	VFMADD231PS Y4, Y5, Y1
	VMOVUPS (SI)(R10*2), Y5
	VFMADD231PS Y4, Y5, Y2
	VMOVUPS (SI)(R11*1), Y5
	VFMADD231PS Y4, Y5, Y3
	ADDQ $32, SI
	ADDQ $32, R9
	SUBQ $8, R8
	JMP  chunk4f

reduce4f:
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS X4, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS X4, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	TESTQ R8, R8
	JE   store4f

tail4f:
	VMOVSS (R9), X4
	VMOVSS (SI), X5
	VFMADD231SS X4, X5, X0
	VMOVSS (SI)(R10*1), X5
	VFMADD231SS X4, X5, X1
	VMOVSS (SI)(R10*2), X5
	VFMADD231SS X4, X5, X2
	VMOVSS (SI)(R11*1), X5
	VFMADD231SS X4, X5, X3
	ADDQ $4, SI
	ADDQ $4, R9
	DECQ R8
	JNZ  tail4f

store4f:
	VMOVSS X0, (DI)
	VMOVSS X1, 4(DI)
	VMOVSS X2, 8(DI)
	VMOVSS X3, 12(DI)
	ADDQ $16, DI
	ADDQ R11, SI
	SUBQ $4, CX
	JMP  rows4f

rows1f:
	TESTQ CX, CX
	JE   done32
	MOVQ DX, R9
	MOVQ BX, R8
	VXORPS Y0, Y0, Y0

chunk1f:
	CMPQ R8, $8
	JL   reduce1f
	VMOVUPS (R9), Y4
	VMOVUPS (SI), Y5
	VFMADD231PS Y4, Y5, Y0
	ADDQ $32, SI
	ADDQ $32, R9
	SUBQ $8, R8
	JMP  chunk1f

reduce1f:
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	TESTQ R8, R8
	JE   store1f

tail1f:
	VMOVSS (R9), X4
	VMOVSS (SI), X5
	VFMADD231SS X4, X5, X0
	ADDQ $4, SI
	ADDQ $4, R9
	DECQ R8
	JNZ  tail1f

store1f:
	VMOVSS X0, (DI)
	ADDQ $4, DI
	DECQ CX
	JMP  rows1f

done32:
	VZEROUPPER
	RET
