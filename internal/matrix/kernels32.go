package matrix

import "fmt"

// Float32 twins of the ranking kernels, backing the `-arena-precision
// f32` mode (ISSUE 8): a PredictView can freeze its factor arenas as
// float32, halving the bytes the full-scan rank path streams per row.
// At rank time the model is read-only, so the precision loss is a
// one-time rounding of the published factors — measured honestly by
// core's TestFloat32ArenaPrecision rather than assumed.
//
// The same bit-identity invariant as the float64 kernels holds: Dot32
// of two vectors equals a single-row DotBatch32, and blocked assembly
// paths match the one-row path per row, so ranking's candidate and
// arena paths agree exactly within one build.

// dot4_32 is the portable unrolled float32 kernel shared by Dot32 and
// DotBatch32. Accumulation is in float32 — that is the point of the
// mode: the arithmetic matches what the SIMD lanes do, and the error it
// introduces is what the precision tests measure.
func dot4_32(a, b []float32) float32 {
	n := len(a)
	b = b[:n] // one bounds check here, none in the loops below
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot32 returns the float32 inner product of two equal-length vectors.
// It panics if the lengths differ. Within one build it is exactly a
// single-row DotBatch32 (see the bit-identity invariant in kernels.go).
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot32 length mismatch %d vs %d", len(a), len(b)))
	}
	if dot32Arch != nil {
		return dot32Arch(a, b)
	}
	return dot4_32(a, b)
}

// DotBatch32 is DotBatch over float32 data: dst[i] = block[i*k:(i+1)*k]
// · q with k = len(q). It panics if len(block) != len(dst)*len(q); a
// zero-length q zeroes dst.
func DotBatch32(dst, block, q []float32) {
	k := len(q)
	if len(block) != len(dst)*k {
		panic(fmt.Sprintf("matrix: DotBatch32 block length %d != rows %d x rank %d", len(block), len(dst), k))
	}
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if dotBatch32Arch != nil {
		dotBatch32Arch(dst, block, q)
		return
	}
	off := 0
	for i := range dst {
		dst[i] = dot4_32(block[off:off+k], q)
		off += k
	}
}

// MulBatch32 is MulBatch over float32 data: Q packed query vectors
// against one row-major block, each (query, row) product bit-identical
// to the corresponding DotBatch32 call. Panics when k <= 0 or any
// length disagrees with the k-derived shape.
func MulBatch32(dst, block, qs []float32, k int) {
	rows, nq := mulBatchShape(len(dst), len(block), len(qs), k)
	for qi := 0; qi < nq; qi++ {
		DotBatch32(dst[qi*rows:(qi+1)*rows], block, qs[qi*k:(qi+1)*k])
	}
}
