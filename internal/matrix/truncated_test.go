package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopSingularValuesMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewDense(20, 35)
	m.Apply(func(float64) float64 { return rng.NormFloat64() })

	full, err := SingularValues(m, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopSingularValues(m, 8, TruncatedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 8 {
		t.Fatalf("got %d values", len(top))
	}
	for i := range top {
		if math.Abs(top[i]-full[i]) > 1e-6*(1+full[i]) {
			t.Fatalf("sv[%d]: truncated %.10f vs jacobi %.10f", i, top[i], full[i])
		}
	}
}

func TestTopSingularValuesLowRankTailIsZero(t *testing.T) {
	// Rank-2 matrix: values beyond the second must be ~0.
	rng := rand.New(rand.NewSource(3))
	n, m := 15, 25
	a := NewDense(n, m)
	u1, u2 := make([]float64, n), make([]float64, n)
	v1, v2 := make([]float64, m), make([]float64, m)
	for i := range u1 {
		u1[i], u2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	for j := range v1 {
		v1[j], v2[j] = rng.NormFloat64(), rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, u1[i]*v1[j]+u2[i]*v2[j])
		}
	}
	sv, err := TopSingularValues(a, 5, TruncatedOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sv[0] <= 0 || sv[1] <= 0 {
		t.Fatalf("leading values should be positive: %v", sv)
	}
	for i := 2; i < len(sv); i++ {
		if sv[i] > 1e-5*sv[0] {
			t.Fatalf("sv[%d] = %g should be ~0 for rank-2 input", i, sv[i])
		}
	}
}

func TestTopSingularValuesValidation(t *testing.T) {
	m := NewDense(3, 3)
	if _, err := TopSingularValues(m, 0, TruncatedOptions{}); err == nil {
		t.Fatal("k=0 should error")
	}
	// k larger than the dimension clamps rather than failing.
	sv, err := TopSingularValues(m, 10, TruncatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sv) != 3 {
		t.Fatalf("clamped length = %d, want 3", len(sv))
	}
}

func TestTopSingularValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewDense(12, 18)
	m.Apply(func(float64) float64 { return rng.NormFloat64() })
	sv, err := TopSingularValues(m, 6, TruncatedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sv); i++ {
		if sv[i] > sv[i-1]+1e-9 {
			t.Fatalf("not descending: %v", sv)
		}
	}
}
