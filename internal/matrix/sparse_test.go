package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSparse(t *testing.T) *Sparse {
	t.Helper()
	s := NewSparse(3, 4)
	s.Append(0, 0, 1.4)
	s.Append(0, 2, 1.1)
	s.Append(1, 1, 0.3)
	s.Append(1, 3, 0.7)
	s.Append(2, 0, 0.4)
	s.Freeze()
	return s
}

func TestSparseBasics(t *testing.T) {
	s := buildSparse(t)
	if s.Rows() != 3 || s.Cols() != 4 {
		t.Fatalf("shape %dx%d, want 3x4", s.Rows(), s.Cols())
	}
	if s.NNZ() != 5 {
		t.Fatalf("nnz %d, want 5", s.NNZ())
	}
	wantDensity := 5.0 / 12.0
	if d := s.Density(); d != wantDensity {
		t.Fatalf("density %g, want %g", d, wantDensity)
	}
}

func TestSparseAt(t *testing.T) {
	s := buildSparse(t)
	if v, ok := s.At(0, 2); !ok || v != 1.1 {
		t.Fatalf("At(0,2) = %g,%v; want 1.1,true", v, ok)
	}
	if _, ok := s.At(0, 1); ok {
		t.Fatal("At(0,1) should be unobserved")
	}
}

func TestSparseAppendOutOfRangePanics(t *testing.T) {
	s := NewSparse(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range append")
		}
	}()
	s.Append(2, 0, 1)
}

func TestSparseUnfrozenAccessPanics(t *testing.T) {
	s := NewSparse(2, 2)
	s.Append(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unfrozen access")
		}
	}()
	s.At(0, 0)
}

func TestSparseDuplicateLastWins(t *testing.T) {
	s := NewSparse(2, 2)
	s.Append(0, 0, 1)
	s.Append(0, 0, 2)
	s.Append(0, 0, 3)
	s.Freeze()
	if s.NNZ() != 1 {
		t.Fatalf("nnz %d, want 1 after dedup", s.NNZ())
	}
	if v, _ := s.At(0, 0); v != 3 {
		t.Fatalf("got %g, want last write 3", v)
	}
}

func TestSparseRowColIteration(t *testing.T) {
	s := buildSparse(t)
	var cols []int
	var vals []float64
	s.RowEntries(1, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("row 1 cols = %v, want [1 3]", cols)
	}
	var rows []int
	s.ColEntries(0, func(r int, v float64) { rows = append(rows, r) })
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Fatalf("col 0 rows = %v, want [0 2]", rows)
	}
	if s.RowNNZ(0) != 2 || s.ColNNZ(3) != 1 || s.ColNNZ(2) != 1 {
		t.Fatal("row/col nnz mismatch")
	}
}

func TestSparseMeans(t *testing.T) {
	s := buildSparse(t)
	if m, ok := s.RowMean(0); !ok || m != (1.4+1.1)/2 {
		t.Fatalf("row 0 mean = %g,%v", m, ok)
	}
	if m, ok := s.ColMean(0); !ok || math.Abs(m-0.9) > 1e-12 {
		t.Fatalf("col 0 mean = %g,%v", m, ok)
	}
	empty := NewSparse(2, 2)
	empty.Freeze()
	if _, ok := empty.RowMean(0); ok {
		t.Fatal("empty row must report no mean")
	}
	if _, ok := empty.ColMean(1); ok {
		t.Fatal("empty col must report no mean")
	}
}

func TestSparseToDense(t *testing.T) {
	s := buildSparse(t)
	d := s.ToDense(-1)
	if d.At(0, 0) != 1.4 {
		t.Fatalf("dense (0,0) = %g, want 1.4", d.At(0, 0))
	}
	if d.At(0, 1) != -1 {
		t.Fatalf("dense fill = %g, want -1", d.At(0, 1))
	}
}

func TestSparseFreezeIdempotent(t *testing.T) {
	s := buildSparse(t)
	s.Freeze()
	s.Freeze()
	if s.NNZ() != 5 {
		t.Fatalf("nnz changed after refreeze: %d", s.NNZ())
	}
}

func TestSparseAppendAfterFreezeUnfreezes(t *testing.T) {
	s := buildSparse(t)
	s.Append(2, 3, 9)
	s.Freeze()
	if v, ok := s.At(2, 3); !ok || v != 9 {
		t.Fatalf("At(2,3) = %g,%v after refreeze", v, ok)
	}
}

// Property: every appended (unique) entry is retrievable after Freeze, and
// row iteration yields columns in ascending order.
func TestSparseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		s := NewSparse(rows, cols)
		want := map[[2]int]float64{}
		for k := 0; k < 30; k++ {
			i, j := rng.Intn(rows), rng.Intn(cols)
			v := rng.Float64()
			s.Append(i, j, v)
			want[[2]int{i, j}] = v
		}
		s.Freeze()
		if s.NNZ() != len(want) {
			return false
		}
		for key, v := range want {
			got, ok := s.At(key[0], key[1])
			if !ok || got != v {
				return false
			}
		}
		for i := 0; i < rows; i++ {
			prev := -1
			ok := true
			s.RowEntries(i, func(c int, _ float64) {
				if c <= prev {
					ok = false
				}
				prev = c
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
