package matrix

import (
	"fmt"
	"math"
	"sort"
)

// JacobiOptions tunes the cyclic Jacobi eigensolver.
type JacobiOptions struct {
	// MaxSweeps bounds the number of full cyclic sweeps. Zero means the
	// default of 64, which is far more than typical convergence (~10).
	MaxSweeps int
	// Tol is the convergence threshold on the off-diagonal Frobenius norm
	// relative to the matrix Frobenius norm. Zero means 1e-12.
	Tol float64
}

func (o JacobiOptions) withDefaults() JacobiOptions {
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 64
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	return o
}

// SymEigen computes the eigenvalues of a symmetric matrix using the cyclic
// Jacobi rotation method. The input is not modified. Eigenvalues are
// returned in descending order. An error is returned if the matrix is not
// square or not symmetric (within 1e-8 of its transpose, scaled).
func SymEigen(m *Dense, opts JacobiOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := m.Rows()
	if n != m.Cols() {
		return nil, fmt.Errorf("matrix: SymEigen requires square input, got %dx%d", n, m.Cols())
	}
	scale := m.FrobeniusNorm()
	if scale == 0 {
		return make([]float64, n), nil
	}
	symTol := 1e-8 * scale
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > symTol {
				return nil, fmt.Errorf("matrix: SymEigen input not symmetric at (%d,%d): %g vs %g", i, j, m.At(i, j), m.At(j, i))
			}
		}
	}

	a := m.Clone()
	ad := a.Data()
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := ad[i*n+j]
				off += 2 * v * v
			}
		}
		if math.Sqrt(off) <= opts.Tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := ad[p*n+q]
				if apq == 0 {
					continue
				}
				app := ad[p*n+p]
				aqq := ad[q*n+q]
				// Rotation angle that annihilates a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ)ᵀ A G(p,q,θ) in place.
				for k := 0; k < n; k++ {
					akp := ad[k*n+p]
					akq := ad[k*n+q]
					ad[k*n+p] = c*akp - s*akq
					ad[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := ad[p*n+k]
					aqk := ad[q*n+k]
					ad[p*n+k] = c*apk - s*aqk
					ad[q*n+k] = s*apk + c*aqk
				}
			}
		}
	}

	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = ad[i*n+i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig, nil
}

// SingularValues computes the singular values of an arbitrary dense matrix
// in descending order, via the eigenvalues of the smaller Gram matrix
// (A·Aᵀ or Aᵀ·A, whichever is smaller). This is exactly what the paper's
// Fig. 9 needs: the 142x4500 QoS matrix reduces to a 142x142 symmetric
// eigenproblem. Tiny negative eigenvalues from round-off are clamped to 0.
func SingularValues(m *Dense, opts JacobiOptions) ([]float64, error) {
	byCols := m.Cols() < m.Rows()
	g := Gram(m, byCols)
	eig, err := SymEigen(g, opts)
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig))
	for i, e := range eig {
		if e < 0 {
			e = 0
		}
		sv[i] = math.Sqrt(e)
	}
	return sv, nil
}

// NormalizeDescending divides the slice by its first (largest) element so
// the leading value is 1, matching the normalization in paper Fig. 9.
// A zero or empty leading value leaves the slice unchanged.
func NormalizeDescending(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	if len(out) == 0 || out[0] == 0 {
		return out
	}
	max := out[0]
	for i := range out {
		out[i] /= max
	}
	return out
}

// EffectiveRank returns the number of normalized singular values at or
// above threshold. It quantifies the "approximately low-rank" observation
// the paper draws from Fig. 9.
func EffectiveRank(singular []float64, threshold float64) int {
	norm := NormalizeDescending(singular)
	n := 0
	for _, v := range norm {
		if v >= threshold {
			n++
		}
	}
	return n
}
