//go:build noasm || (!amd64 && !arm64)

package matrix

// Pure-Go build: the dispatch vars in kernels.go stay nil and every
// exported kernel runs the portable unrolled loops. The noasm tag
// exists so CI can prove the fallback alone passes the full suite
// (`go test -tags noasm ./internal/matrix ./internal/core`), and so an
// operator can opt out of the assembly on a misbehaving machine without
// patching code.
