package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// TruncatedOptions tunes TopSingularValues.
type TruncatedOptions struct {
	// MaxIters bounds the power iterations per singular value. Zero
	// means 300.
	MaxIters int
	// Tol is the relative change threshold declaring a singular value
	// converged. Zero means 1e-10.
	Tol float64
	// Seed fixes the random start vectors.
	Seed int64
}

func (o TruncatedOptions) withDefaults() TruncatedOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

// TopSingularValues computes the k largest singular values of m by power
// iteration with deflation on the smaller Gram matrix: O(k·iters·n²)
// instead of the full Jacobi sweep's O(n³·sweeps), which pays off once
// the smaller matrix dimension reaches the high hundreds (for the paper's
// 142-user matrices the full sweep is still cheap — BenchmarkTruncatedSVD
// compares the two). Results agree with SingularValues to ~1e-6.
func TopSingularValues(m *Dense, k int, opts TruncatedOptions) ([]float64, error) {
	opts = opts.withDefaults()
	if k <= 0 {
		return nil, fmt.Errorf("matrix: k must be positive, got %d", k)
	}
	g := Gram(m, m.Cols() < m.Rows())
	n := g.Rows()
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	// Deflated vectors whose image under g falls below this are in the
	// numerically-zero part of the spectrum: without the floor, power
	// iteration on rounding noise can wander back toward the dominant
	// eigenvectors faster than one Gram-Schmidt pass removes them.
	zeroFloor := 1e-12 * g.FrobeniusNorm()

	out := make([]float64, 0, k)
	vectors := make([][]float64, 0, k)
	v := make([]float64, n)
	next := make([]float64, n)
	for comp := 0; comp < k; comp++ {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		orthogonalize(v, vectors)
		if norm := Norm2(v); norm > 0 {
			scaleVec(v, 1/norm)
		}
		var eig, prev float64
		for iter := 0; iter < opts.MaxIters; iter++ {
			mulSym(g, v, next)
			// Two Gram-Schmidt passes: the second removes the residue the
			// first leaves behind when the projections nearly cancel the
			// whole vector.
			orthogonalize(next, vectors)
			orthogonalize(next, vectors)
			norm := Norm2(next)
			if norm <= zeroFloor {
				// The remaining spectrum is (numerically) zero.
				eig = 0
				break
			}
			scaleVec(next, 1/norm)
			copy(v, next)
			eig = rayleigh(g, v, next)
			if prev != 0 && math.Abs(eig-prev) <= opts.Tol*math.Abs(prev) {
				break
			}
			prev = eig
		}
		if eig < 0 {
			eig = 0
		}
		out = append(out, math.Sqrt(eig))
		kept := make([]float64, n)
		copy(kept, v)
		vectors = append(vectors, kept)
	}
	// Deflation can reorder near-degenerate values; enforce descending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// mulSym computes dst = g·v for a square matrix g.
func mulSym(g *Dense, v, dst []float64) {
	n := g.Rows()
	data := g.Data()
	for i := 0; i < n; i++ {
		row := data[i*n : (i+1)*n]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
}

// rayleigh computes vᵀ·g·v (v must be unit norm); scratch receives g·v.
func rayleigh(g *Dense, v, scratch []float64) float64 {
	mulSym(g, v, scratch)
	return Dot(v, scratch)
}

// orthogonalize removes the components of v along each (unit) basis
// vector (modified Gram-Schmidt, one pass).
func orthogonalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		proj := Dot(v, b)
		for i := range v {
			v[i] -= proj * b[i]
		}
	}
}

func scaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}
