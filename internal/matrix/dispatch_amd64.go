//go:build amd64 && !noasm

package matrix

// AVX2+FMA dispatch for the ranking kernels. Feature detection is
// written against the raw CPUID/XGETBV leaves (cpuid_amd64.s) so the
// module keeps its zero-dependency rule — no golang.org/x/sys/cpu.
//
// The kernels require AVX2 (256-bit integer/FP lanes), FMA3, and an OS
// that saves YMM state on context switch (OSXSAVE + XCR0 bits 1-2).
// Anything less falls through to the portable Go loops in kernels.go.

// cpuid executes CPUID with the given EAX/ECX inputs (cpuid_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended-state enable mask (cpuid_amd64.s).
func xgetbv0() (eax, edx uint32)

// dotBatchAVX2 is the float64 batch kernel in kernels_amd64.s: 4-row
// blocked FMA over 4-wide chunks with a one-row remainder path that
// shares the per-row association exactly.
//
//go:noescape
func dotBatchAVX2(dst, block, q []float64)

// dotBatch32AVX2 is the float32 twin: 4-row blocked over 8-wide chunks.
//
//go:noescape
func dotBatch32AVX2(dst, block, q []float32)

func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}

func init() {
	if !hasAVX2FMA() {
		return
	}
	simdName = "avx2"
	dotBatchArch = dotBatchAVX2
	dotBatch32Arch = dotBatch32AVX2
	// Dot as a one-row batch call: the bit-identity invariant in
	// kernels.go holds by construction.
	dotArch = func(a, b []float64) float64 {
		var d [1]float64
		dotBatchAVX2(d[:1], a, b)
		return d[0]
	}
	dot32Arch = func(a, b []float32) float32 {
		var d [1]float32
		dotBatch32AVX2(d[:1], a, b)
		return d[0]
	}
}
