// Package matrix provides the small dense/sparse linear-algebra kernel used
// throughout the AMF reproduction: row-major dense matrices backed by a
// single []float64, a triplet/CSR sparse representation for observed QoS
// entries, and a symmetric Jacobi eigensolver that powers the singular-value
// analysis of the user-service QoS matrices (paper Fig. 9).
//
// The package deliberately sticks to plain slices and the standard library;
// there is no external numeric dependency.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use NewDense to allocate one with a shape.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows x cols matrix of zeros.
// It panics if either dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a dense matrix from a slice of rows. All rows must
// have equal length.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i as a slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice in row-major order. Mutating it mutates
// the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product a*b.
// It panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulT returns a * bᵀ, i.e. the matrix of pairwise row dot products.
func MulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("matrix: mulT shape mismatch %dx%d * (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			orow[j] = Dot(arow, brow)
		}
	}
	return out
}

// Gram returns mᵀ*m if byCols, else m*mᵀ. The result is symmetric
// positive semi-definite; it is the input to the Jacobi eigensolver when
// extracting singular values.
func Gram(m *Dense, byCols bool) *Dense {
	if byCols {
		t := m.T()
		return MulT(t, t)
	}
	return MulT(m, m)
}

// Dot returns the inner product of two equal-length vectors.
// It panics if the lengths differ.
//
// On CPUs with vector kernels (see SIMD) it dispatches to a single-row
// DotBatch call, so it is bit-identical to the batch kernel; the
// portable fallback is 4-way unrolled with independent accumulators
// (see kernels.go). Either way the summation order differs from a naive
// left-to-right loop, so results may differ by a few ULPs.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot length mismatch %d vs %d", len(a), len(b)))
	}
	if dotArch != nil {
		return dotArch(a, b)
	}
	return dot4(a, b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 { return Norm2(m.data) }

// Equalish reports whether a and b have the same shape and all elements
// within tol of each other.
func Equalish(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddDense adds other into m element-wise. Shapes must match.
func (m *Dense) AddDense(other *Dense) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("matrix: add shape mismatch %dx%d vs %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	for i, v := range other.data {
		m.data[i] += v
	}
}

// String renders the matrix compactly, primarily for debugging and tests.
func (m *Dense) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
