package matrix

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// dotNaive is the reference scalar loop the unrolled kernel must agree
// with (Dot's implementation before the ranking fast path).
func dotNaive(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// ulpBound returns an error envelope for comparing two floating-point
// summations of the same n products that differ only in association
// order: c·n·eps·Σ|a_i·b_i|, the standard worst-case bound (with a small
// constant of safety). For well-conditioned inputs this is within a few
// ULPs of the result.
func ulpBound(a, b []float64) float64 {
	var mag float64
	for i := range a {
		mag += math.Abs(a[i] * b[i])
	}
	const eps = 2.220446049250313e-16 // 2^-52
	n := float64(len(a)) + 4
	bound := 4 * n * eps * mag
	if bound < eps {
		bound = eps
	}
	return bound
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 67; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		got, want := Dot(a, b), dotNaive(a, b)
		if diff := math.Abs(got - want); diff > ulpBound(a, b) {
			t.Fatalf("n=%d: Dot=%g naive=%g diff=%g > bound=%g", n, got, want, diff, ulpBound(a, b))
		}
	}
}

func TestDotAMFRanksExact(t *testing.T) {
	// At the configured AMF ranks the entries are O(1/sqrt(rank)); the
	// reassociated sum must stay within the ULP envelope for every rank
	// the model actually runs at.
	rng := rand.New(rand.NewSource(7))
	for _, rank := range []int{8, 10, 16} {
		for trial := 0; trial < 200; trial++ {
			a, b := randVec(rng, rank), randVec(rng, rank)
			scale := 1 / math.Sqrt(float64(rank))
			for i := range a {
				a[i] *= scale
				b[i] *= scale
			}
			got, want := Dot(a, b), dotNaive(a, b)
			if diff := math.Abs(got - want); diff > ulpBound(a, b) {
				t.Fatalf("rank=%d: diff %g exceeds ULP bound %g", rank, diff, ulpBound(a, b))
			}
		}
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct{ rows, k int }{{0, 5}, {1, 1}, {3, 0}, {7, 10}, {64, 16}, {100, 3}} {
		q := randVec(rng, shape.k)
		block := randVec(rng, shape.rows*shape.k)
		dst := make([]float64, shape.rows)
		for i := range dst {
			dst[i] = math.NaN() // must be overwritten
		}
		DotBatch(dst, block, q)
		for i := 0; i < shape.rows; i++ {
			row := block[i*shape.k : (i+1)*shape.k]
			want := dotNaive(row, q)
			if diff := math.Abs(dst[i] - want); diff > ulpBound(row, q) {
				t.Fatalf("rows=%d k=%d row %d: got %g want %g", shape.rows, shape.k, i, dst[i], want)
			}
		}
	}
}

func TestDotBatchPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotBatch(make([]float64, 2), make([]float64, 5), make([]float64, 3))
}

func TestMulVecTo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewDense(13, 6)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	q := randVec(rng, 6)
	dst := make([]float64, 13)
	m.MulVecTo(dst, q)
	for i := 0; i < m.Rows(); i++ {
		want := dotNaive(m.Row(i), q)
		if diff := math.Abs(dst[i] - want); diff > ulpBound(m.Row(i), q) {
			t.Fatalf("row %d: got %g want %g", i, dst[i], want)
		}
	}
}

func TestMulVecToPanics(t *testing.T) {
	m := NewDense(2, 3)
	for _, tc := range []struct{ dst, q int }{{2, 2}, {1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("dst=%d q=%d: expected panic", tc.dst, tc.q)
				}
			}()
			m.MulVecTo(make([]float64, tc.dst), make([]float64, tc.q))
		}()
	}
}

// FuzzDotKernels drives the dispatched kernels (SIMD assembly where the
// CPU qualifies, portable loops otherwise) against the naive loop AND
// against the portable unrolled loop with arbitrary bit patterns,
// bounding both differences by the reassociation ULP envelope (finite
// inputs only; NaN/Inf propagate in both and are not comparable). The
// asm-vs-portable comparison is the fuzz pin for the assembly: on
// SIMD-capable hardware dot4/dot4_32 take the pure-Go path while
// Dot/Dot32 take the dispatched one. Single-row DotBatch identity and
// the float32 twins are checked on the same inputs.
func FuzzDotKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 160))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16 // 8 bytes per float, two vectors
		if n == 0 {
			return
		}
		a := make([]float64, n)
		b := make([]float64, n)
		a32 := make([]float32, n)
		b32 := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			b[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			// Clamp to a sane magnitude so the products and the bound
			// stay finite; the kernel's arithmetic is identical across
			// magnitudes.
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e100 {
				a[i] = 1
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) || math.Abs(b[i]) > 1e100 {
				b[i] = 1
			}
			// The float32 twin squeezes harder: clamp so even n products
			// cannot overflow float32 accumulation.
			a32[i], b32[i] = float32(a[i]), float32(b[i])
			if math.IsInf(float64(a32[i]), 0) || math.Abs(float64(a32[i])) > 1e15 {
				a32[i] = 1
			}
			if math.IsInf(float64(b32[i]), 0) || math.Abs(float64(b32[i])) > 1e15 {
				b32[i] = 1
			}
		}
		want := dotNaive(a, b)
		got := Dot(a, b)
		if diff := math.Abs(got - want); diff > ulpBound(a, b) {
			t.Fatalf("n=%d: Dot=%g naive=%g diff=%g bound=%g", n, got, want, diff, ulpBound(a, b))
		}
		if diff := math.Abs(got - dot4(a, b)); diff > ulpBound(a, b) {
			t.Fatalf("n=%d: dispatched Dot=%g portable=%g diff=%g bound=%g", n, got, dot4(a, b), diff, ulpBound(a, b))
		}
		dst := make([]float64, 1)
		DotBatch(dst, a, b)
		if dst[0] != got {
			t.Fatalf("DotBatch single row %g != Dot %g", dst[0], got)
		}
		got32 := Dot32(a32, b32)
		want32 := dotNaive32Ref(a32, b32)
		if diff := math.Abs(float64(got32) - want32); diff > ulpBound32(a32, b32) {
			t.Fatalf("n=%d: Dot32=%g ref=%g diff=%g bound=%g", n, got32, want32, diff, ulpBound32(a32, b32))
		}
		if diff := math.Abs(float64(got32) - float64(dot4_32(a32, b32))); diff > ulpBound32(a32, b32) {
			t.Fatalf("n=%d: dispatched Dot32=%g portable=%g diff=%g", n, got32, dot4_32(a32, b32), diff)
		}
		dst32 := make([]float32, 1)
		DotBatch32(dst32, a32, b32)
		if dst32[0] != got32 {
			t.Fatalf("DotBatch32 single row %g != Dot32 %g", dst32[0], got32)
		}
	})
}

// ---------------------------------------------------------------------------
// Benchmarks: the dispatched kernel must be no slower than the naive
// loop at the configured AMF ranks (8/10/16). The batch kernels'
// scalar-vs-SIMD-vs-float32 comparisons live in kernels32_test.go as
// paired-interleaved benches (BenchmarkDotBatch, BenchmarkMulBatch).

var sinkF float64

func benchVecs(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	return randVec(rng, n), randVec(rng, n)
}

func BenchmarkDot(b *testing.B) {
	for _, rank := range []int{8, 10, 16, 64} {
		a, q := benchVecs(rank)
		b.Run("unrolled/rank="+itoa(rank), func(b *testing.B) {
			b.ReportAllocs()
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot(a, q)
			}
			sinkF = s
		})
		b.Run("naive/rank="+itoa(rank), func(b *testing.B) {
			b.ReportAllocs()
			var s float64
			for i := 0; i < b.N; i++ {
				s += dotNaive(a, q)
			}
			sinkF = s
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
