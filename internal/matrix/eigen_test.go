package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	eig, err := SymEigen(m, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(eig[i]-w) > 1e-10 {
			t.Fatalf("eig[%d] = %g, want %g", i, eig[i], w)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m, _ := NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	eig, err := SymEigen(m, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-10 || math.Abs(eig[1]-1) > 1e-10 {
		t.Fatalf("eig = %v, want [3 1]", eig)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(NewDense(2, 3), JacobiOptions{}); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(m, JacobiOptions{}); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	eig, err := SymEigen(NewDense(3, 3), JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eig {
		if e != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", eig)
		}
	}
}

// Property: trace and Frobenius norm are preserved by the eigenvalue
// decomposition of random symmetric matrices.
func TestSymEigenInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		eig, err := SymEigen(m, JacobiOptions{})
		if err != nil {
			return false
		}
		var trace, sumEig, sumSq float64
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
		}
		for _, e := range eig {
			sumEig += e
			sumSq += e * e
		}
		fro := m.FrobeniusNorm()
		return math.Abs(trace-sumEig) < 1e-8 && math.Abs(fro*fro-sumSq) < 1e-6*(1+fro*fro)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag(3, 2) embedded in a 2x3 matrix has singular values {3, 2}.
	m, _ := NewDenseFrom([][]float64{{3, 0, 0}, {0, 2, 0}})
	sv, err := SingularValues(m, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sv[0]-3) > 1e-9 || math.Abs(sv[1]-2) > 1e-9 {
		t.Fatalf("singular values %v, want [3 2]", sv)
	}
}

func TestSingularValuesLowRank(t *testing.T) {
	// Rank-2 matrix built from two outer products: exactly 2 nonzero
	// singular values regardless of shape.
	rng := rand.New(rand.NewSource(42))
	n, m := 20, 35
	u1, u2 := make([]float64, n), make([]float64, n)
	v1, v2 := make([]float64, m), make([]float64, m)
	for i := range u1 {
		u1[i], u2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	for j := range v1 {
		v1[j], v2[j] = rng.NormFloat64(), rng.NormFloat64()
	}
	a := NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, u1[i]*v1[j]+u2[i]*v2[j])
		}
	}
	sv, err := SingularValues(a, JacobiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sv[0] <= 0 || sv[1] <= 0 {
		t.Fatalf("leading singular values should be positive: %v", sv[:3])
	}
	for k := 2; k < len(sv); k++ {
		if sv[k] > 1e-6*sv[0] {
			t.Fatalf("sv[%d] = %g not ~0 for rank-2 matrix (sv0=%g)", k, sv[k], sv[0])
		}
	}
}

// Property: singular values of random matrices are non-negative, sorted
// descending, and their squared sum equals the squared Frobenius norm.
func TestSingularValuesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewDense(r, c)
		m.Apply(func(float64) float64 { return rng.NormFloat64() })
		sv, err := SingularValues(m, JacobiOptions{})
		if err != nil {
			return false
		}
		var sumSq float64
		for i, v := range sv {
			if v < 0 {
				return false
			}
			if i > 0 && sv[i] > sv[i-1]+1e-12 {
				return false
			}
			sumSq += v * v
		}
		fro := m.FrobeniusNorm()
		return math.Abs(sumSq-fro*fro) < 1e-6*(1+fro*fro)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeDescending(t *testing.T) {
	got := NormalizeDescending([]float64{4, 2, 1})
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := NormalizeDescending(nil); len(out) != 0 {
		t.Fatal("empty input should stay empty")
	}
	zeros := NormalizeDescending([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatal("zero leading value must not divide")
	}
}

func TestEffectiveRank(t *testing.T) {
	sv := []float64{10, 5, 1, 0.01}
	if got := EffectiveRank(sv, 0.1); got != 3 {
		t.Fatalf("effective rank = %d, want 3", got)
	}
	if got := EffectiveRank(sv, 0.6); got != 1 {
		t.Fatalf("effective rank = %d, want 1", got)
	}
}
