package matrix

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// dotNaive32Ref computes the float32 dot's reference value in float64
// over the widened inputs. The float32 kernel accumulates in float32,
// so it is compared against this within the float32 reassociation
// envelope (ulpBound32), not exactly.
func dotNaive32Ref(a, b []float32) float64 {
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// ulpBound32 is ulpBound with float32 machine epsilon: the error
// envelope for n float32 products summed in any association order.
func ulpBound32(a, b []float32) float64 {
	var mag float64
	for i := range a {
		mag += math.Abs(float64(a[i]) * float64(b[i]))
	}
	const eps = 1.1920928955078125e-7 // 2^-23
	n := float64(len(a)) + 8
	bound := 4 * n * eps * mag
	if bound < eps {
		bound = eps
	}
	return bound
}

func randVec32(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestDot32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for n := 0; n <= 67; n++ {
		a, b := randVec32(rng, n), randVec32(rng, n)
		got, want := float64(Dot32(a, b)), dotNaive32Ref(a, b)
		if diff := math.Abs(got - want); diff > ulpBound32(a, b) {
			t.Fatalf("n=%d: Dot32=%g ref=%g diff=%g > bound=%g", n, got, want, diff, ulpBound32(a, b))
		}
	}
}

func TestDot32PanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot32([]float32{1}, []float32{1, 2})
}

func TestDotBatch32(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []struct{ rows, k int }{{0, 5}, {1, 1}, {3, 0}, {7, 10}, {64, 16}, {100, 3}, {9, 8}} {
		q := randVec32(rng, shape.k)
		block := randVec32(rng, shape.rows*shape.k)
		dst := make([]float32, shape.rows)
		for i := range dst {
			dst[i] = float32(math.NaN()) // must be overwritten
		}
		DotBatch32(dst, block, q)
		for i := 0; i < shape.rows; i++ {
			row := block[i*shape.k : (i+1)*shape.k]
			want := dotNaive32Ref(row, q)
			if diff := math.Abs(float64(dst[i]) - want); diff > ulpBound32(row, q) {
				t.Fatalf("rows=%d k=%d row %d: got %g want %g", shape.rows, shape.k, i, dst[i], want)
			}
		}
	}
}

func TestDotBatch32PanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DotBatch32(make([]float32, 2), make([]float32, 5), make([]float32, 3))
}

// TestDotBatchSplitInvariance pins the bit-identity contract from
// kernels.go: a row's score must not depend on which rows share its
// DotBatch call. The coalesced rank path splits arenas into arbitrary
// row blocks and the candidate path scores rows one at a time (Dot), so
// any grouping of the same rows must produce identical bits — including
// groupings that land rows in the SIMD kernels' blocked vs remainder
// paths differently.
func TestDotBatchSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 7, 8, 10, 11, 16, 19} {
		const rows = 23
		q := randVec(rng, k)
		block := randVec(rng, rows*k)
		want := make([]float64, rows)
		DotBatch(want, block, q)
		q32 := randVec32(rng, k)
		block32 := randVec32(rng, rows*k)
		want32 := make([]float32, rows)
		DotBatch32(want32, block32, q32)

		// Per-row: single-row batch and Dot must both match exactly.
		for i := 0; i < rows; i++ {
			row := block[i*k : (i+1)*k]
			var one [1]float64
			DotBatch(one[:], row, q)
			if one[0] != want[i] {
				t.Fatalf("k=%d row %d: single-row batch %v != full batch %v", k, i, one[0], want[i])
			}
			if got := Dot(row, q); got != want[i] {
				t.Fatalf("k=%d row %d: Dot %v != batch %v", k, i, got, want[i])
			}
			row32 := block32[i*k : (i+1)*k]
			var one32 [1]float32
			DotBatch32(one32[:], row32, q32)
			if one32[0] != want32[i] {
				t.Fatalf("k=%d row %d: single-row batch32 %v != full batch32 %v", k, i, one32[0], want32[i])
			}
			if got := Dot32(row32, q32); got != want32[i] {
				t.Fatalf("k=%d row %d: Dot32 %v != batch32 %v", k, i, got, want32[i])
			}
		}

		// Every two-way split of the block.
		got := make([]float64, rows)
		got32 := make([]float32, rows)
		for cut := 0; cut <= rows; cut++ {
			DotBatch(got[:cut], block[:cut*k], q)
			DotBatch(got[cut:], block[cut*k:], q)
			DotBatch32(got32[:cut], block32[:cut*k], q32)
			DotBatch32(got32[cut:], block32[cut*k:], q32)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d cut=%d row %d: split %v != full %v", k, cut, i, got[i], want[i])
				}
				if got32[i] != want32[i] {
					t.Fatalf("k=%d cut=%d row %d: split32 %v != full32 %v", k, cut, i, got32[i], want32[i])
				}
			}
		}
	}
}

// TestSIMDAgreesWithPortable compares the dispatched kernels against
// the portable Go loops within the reassociation ULP envelope — the
// asm-vs-scalar pin the fuzzer also enforces, run deterministically
// over a grid of shapes. Skipped when no SIMD kernel is active (noasm
// builds, unsupported CPUs) since both sides would be the same code.
func TestSIMDAgreesWithPortable(t *testing.T) {
	if SIMD() == "" {
		t.Skip("no SIMD kernel active")
	}
	t.Logf("active kernel set: %s", SIMD())
	rng := rand.New(rand.NewSource(13))
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 17, 31, 64} {
		for _, rows := range []int{1, 2, 3, 4, 5, 8, 17} {
			q := randVec(rng, k)
			block := randVec(rng, rows*k)
			dst := make([]float64, rows)
			DotBatch(dst, block, q)
			for i := 0; i < rows; i++ {
				row := block[i*k : (i+1)*k]
				want := dot4(row, q)
				if diff := math.Abs(dst[i] - want); diff > ulpBound(row, q) {
					t.Fatalf("k=%d rows=%d row %d: simd %g vs portable %g diff %g", k, rows, i, dst[i], want, diff)
				}
			}
			q32 := randVec32(rng, k)
			block32 := randVec32(rng, rows*k)
			dst32 := make([]float32, rows)
			DotBatch32(dst32, block32, q32)
			for i := 0; i < rows; i++ {
				row := block32[i*k : (i+1)*k]
				want := float64(dot4_32(row, q32))
				if diff := math.Abs(float64(dst32[i]) - want); diff > ulpBound32(row, q32) {
					t.Fatalf("k=%d rows=%d row %d: simd32 %g vs portable32 %g diff %g", k, rows, i, dst32[i], want, diff)
				}
			}
		}
	}
}

// TestMulBatchMatchesDotBatch pins MulBatch's contract: bit-identical
// to Q independent DotBatch passes, for both precisions.
func TestMulBatchMatchesDotBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shape := range []struct{ rows, k, nq int }{{1, 1, 1}, {7, 10, 3}, {64, 10, 8}, {23, 6, 5}, {5, 16, 2}} {
		block := randVec(rng, shape.rows*shape.k)
		qs := randVec(rng, shape.nq*shape.k)
		dst := make([]float64, shape.nq*shape.rows)
		MulBatch(dst, block, qs, shape.k)
		want := make([]float64, shape.rows)
		block32 := randVec32(rng, shape.rows*shape.k)
		qs32 := randVec32(rng, shape.nq*shape.k)
		dst32 := make([]float32, shape.nq*shape.rows)
		MulBatch32(dst32, block32, qs32, shape.k)
		want32 := make([]float32, shape.rows)
		for qi := 0; qi < shape.nq; qi++ {
			DotBatch(want, block, qs[qi*shape.k:(qi+1)*shape.k])
			DotBatch32(want32, block32, qs32[qi*shape.k:(qi+1)*shape.k])
			for i := 0; i < shape.rows; i++ {
				if dst[qi*shape.rows+i] != want[i] {
					t.Fatalf("rows=%d k=%d q=%d row=%d: MulBatch %v != DotBatch %v", shape.rows, shape.k, qi, i, dst[qi*shape.rows+i], want[i])
				}
				if dst32[qi*shape.rows+i] != want32[i] {
					t.Fatalf("rows=%d k=%d q=%d row=%d: MulBatch32 %v != DotBatch32 %v", shape.rows, shape.k, qi, i, dst32[qi*shape.rows+i], want32[i])
				}
			}
		}
	}
}

func TestMulBatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-rank":   func() { MulBatch(nil, nil, nil, 0) },
		"block-shape": func() { MulBatch(make([]float64, 2), make([]float64, 5), make([]float64, 2), 2) },
		"qs-shape":    func() { MulBatch(make([]float64, 2), make([]float64, 4), make([]float64, 3), 2) },
		"dst-shape":   func() { MulBatch(make([]float64, 3), make([]float64, 4), make([]float64, 2), 2) },
		"shape-32":    func() { MulBatch32(make([]float32, 3), make([]float32, 4), make([]float32, 2), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// ---------------------------------------------------------------------------
// Paired-interleaved kernel benchmarks (ISSUE 8 satellite): scalar,
// SIMD float64, and SIMD float32 are sampled in ONE timing loop so
// single-core CI drift cannot fake a speedup — the same discipline as
// PR 6's gateway benches. ns/op covers one scalar + one dispatched f64
// + one f32 pass; the per-arm p50s and the headline speedups ride along
// as custom metrics (archived by benchjson into BENCH_kernels.json).

var sink32 float32

// dotBatchPortable is the scalar reference arm: the portable loop the
// dispatcher would run under -tags noasm, callable even when SIMD is
// active.
func dotBatchPortable(dst, block, q []float64) {
	k := len(q)
	off := 0
	for i := range dst {
		dst[i] = dot4(block[off:off+k], q)
		off += k
	}
}

func BenchmarkDotBatch(b *testing.B) {
	const rank = 10
	for _, rows := range []int{1000, 10000} {
		rng := rand.New(rand.NewSource(2))
		block := randVec(rng, rows*rank)
		q := randVec(rng, rank)
		block32 := randVec32(rng, rows*rank)
		q32 := randVec32(rng, rank)
		dst := make([]float64, rows)
		dst32 := make([]float32, rows)
		b.Run("paired/rows="+itoa(rows), func(b *testing.B) {
			b.ReportAllocs()
			sl := make([]time.Duration, b.N)
			vl := make([]time.Duration, b.N)
			fl := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				dotBatchPortable(dst, block, q)
				t1 := time.Now()
				DotBatch(dst, block, q)
				t2 := time.Now()
				DotBatch32(dst32, block32, q32)
				sl[i] = t1.Sub(t0)
				vl[i] = t2.Sub(t1)
				fl[i] = time.Since(t2)
			}
			b.StopTimer()
			sinkF = dst[0]
			sink32 = dst32[0]
			s50 := medianDur(sl)
			v50 := medianDur(vl)
			f50 := medianDur(fl)
			b.ReportMetric(float64(s50), "scalar-p50-ns/op")
			b.ReportMetric(float64(v50), "simd-p50-ns/op")
			b.ReportMetric(float64(f50), "f32-p50-ns/op")
			b.ReportMetric(float64(s50)/float64(v50), "simd-speedup-x")
			b.ReportMetric(float64(s50)/float64(f50), "f32-speedup-x")
			b.ReportMetric(rank*8, "f64-bytes/row")
			b.ReportMetric(rank*4, "f32-bytes/row")
		})
	}
}

// BenchmarkMulBatch measures the kernel-level coalescing win the rank
// coalescer banks on: Q queries over cache-sized row blocks (each block
// pulled from DRAM once, reused hot for the remaining queries — the
// TopKAllBatch traversal) vs Q independent full passes (the whole block
// streamed from DRAM once per query), paired in one loop. A full-block
// MulBatch call would NOT show this — its memory traffic is identical
// to the independent passes; the win is in the blocked traversal.
func BenchmarkMulBatch(b *testing.B) {
	const rank = 10
	const rows = 100000 // 8 MB of arena at f64 — too big for L2, the case coalescing exists for
	const blockRows = 1024
	for _, nq := range []int{4, 8} {
		rng := rand.New(rand.NewSource(6))
		block := randVec(rng, rows*rank)
		qs := randVec(rng, nq*rank)
		dst := make([]float64, nq*rows)
		bdst := make([]float64, nq*blockRows)
		b.Run("paired/q="+itoa(nq), func(b *testing.B) {
			b.ReportAllocs()
			cl := make([]time.Duration, b.N)
			il := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				for lo := 0; lo < rows; lo += blockRows {
					hi := lo + blockRows
					if hi > rows {
						hi = rows
					}
					n := hi - lo
					MulBatch(bdst[:nq*n], block[lo*rank:hi*rank], qs, rank)
				}
				t1 := time.Now()
				for qi := 0; qi < nq; qi++ {
					DotBatch(dst[qi*rows:(qi+1)*rows], block, qs[qi*rank:(qi+1)*rank])
				}
				cl[i] = t1.Sub(t0)
				il[i] = time.Since(t1)
			}
			b.StopTimer()
			sinkF = bdst[0]
			sinkF = dst[0]
			c50 := medianDur(cl)
			i50 := medianDur(il)
			b.ReportMetric(float64(c50), "coalesced-p50-ns/op")
			b.ReportMetric(float64(i50), "independent-p50-ns/op")
			b.ReportMetric(float64(i50)/float64(c50), "coalesce-speedup-x")
		})
	}
}

func medianDur(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
