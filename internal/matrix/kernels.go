package matrix

import "fmt"

// This file holds the vectorized inner-product kernels behind the
// candidate-ranking fast path (ISSUE 3). The paper's runtime-adaptation
// query — "rank these n candidate services for user u" — reduces to n
// inner products of one query vector (the user's latent factors) against
// n service factor rows. At serving scale that is a memory-bandwidth
// problem, not a FLOP problem, so the kernels are written for the memory
// system:
//
//   - Dot is 4-way unrolled with four independent accumulators, breaking
//     the loop-carried dependence on a single sum so the FP adds pipeline
//     (the naive loop serializes on one accumulator, one FMA latency per
//     element).
//   - DotBatch / MulVecTo stream a contiguous row-major block of factor
//     rows past one query vector that stays resident in registers/L1:
//     the hardware prefetcher sees a single sequential stream instead of
//     the pointer-chase of per-entity heap slices.
//
// Unrolling reassociates the summation (s0+s2)+(s1+s3) instead of
// (((s0+s1)+s2)+s3 element order), so results can differ from the naive
// loop by a few ULPs; FuzzDotKernels bounds the difference by the
// standard n·eps condition-number envelope.

// Dot4 is the unrolled inner-product kernel shared by Dot and DotBatch.
// It assumes len(b) >= len(a) and reads exactly len(a) elements of each;
// callers are responsible for length checking.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // one bounds check here, none in the loops below
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotBatch computes dst[i] = block[i*k : (i+1)*k] · q for every i, where
// k = len(q): many inner products of one query vector against a
// contiguous row-major block of len(dst) rows. This is the GEMV-style
// kernel the ranking fast path runs over a PredictView's frozen factor
// arena — the block streams through the cache once while q stays hot.
//
// It panics if len(block) != len(dst)*len(q). A zero-length q zeroes dst.
func DotBatch(dst, block, q []float64) {
	k := len(q)
	if len(block) != len(dst)*k {
		panic(fmt.Sprintf("matrix: DotBatch block length %d != rows %d x rank %d", len(block), len(dst), k))
	}
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	off := 0
	for i := range dst {
		dst[i] = dot4(block[off:off+k], q)
		off += k
	}
}

// MulVecTo computes dst = m · q (one inner product per row) without
// allocating, writing row i's product to dst[i]. It panics when dst or q
// disagree with the matrix shape.
func (m *Dense) MulVecTo(dst, q []float64) {
	if len(q) != m.cols {
		panic(fmt.Sprintf("matrix: MulVecTo vector length %d != cols %d", len(q), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecTo dst length %d != rows %d", len(dst), m.rows))
	}
	DotBatch(dst, m.data, q)
}
