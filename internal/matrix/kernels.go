package matrix

import "fmt"

// This file holds the vectorized inner-product kernels behind the
// candidate-ranking fast path (ISSUE 3, SIMD'd in ISSUE 8). The paper's
// runtime-adaptation query — "rank these n candidate services for user
// u" — reduces to n inner products of one query vector (the user's
// latent factors) against n service factor rows. At serving scale that
// is a memory-bandwidth problem, not a FLOP problem, so the kernels are
// written for the memory system:
//
//   - Dot is 4-way unrolled with four independent accumulators, breaking
//     the loop-carried dependence on a single sum so the FP adds pipeline
//     (the naive loop serializes on one accumulator, one FMA latency per
//     element).
//   - DotBatch / MulVecTo stream a contiguous row-major block of factor
//     rows past one query vector that stays resident in registers/L1:
//     the hardware prefetcher sees a single sequential stream instead of
//     the pointer-chase of per-entity heap slices.
//   - On amd64 with AVX2+FMA and on arm64 (NEON is baseline) the batch
//     kernels are hand-written assembly (kernels_amd64.s /
//     kernels_arm64.s), selected once at init by the dispatch_*.go
//     files. Build with `-tags noasm` to force the portable Go loops.
//
// Unrolling reassociates the summation (s0+s2)+(s1+s3) instead of
// (((s0+s1)+s2)+s3 element order), so results can differ from the naive
// loop by a few ULPs; FuzzDotKernels bounds the difference by the
// standard n·eps condition-number envelope. The assembly kernels use
// their own (fixed) association, bounded by the same envelope.
//
// Bit-identity invariant: within one build, Dot(a, b) is exactly
// DotBatch of a single row, for both precisions. The ranking layer
// depends on this — the candidate path scores with Dot while the
// full-scan path scores with DotBatch over the arena, and
// core.TopKAll's tests compare the two paths with exact equality. The
// assembly enforces it by construction: Dot is dispatched as a
// one-row DotBatch call, and the multi-row-blocked assembly paths use
// the same per-row association as the one-row path (each row owns one
// vector accumulator, chunked and reduced identically), so results are
// also invariant to how a block is split across calls —
// TestDotBatchSplitInvariance pins that.

// Dispatch targets installed by the per-architecture init in
// dispatch_amd64.go / dispatch_arm64.go when the CPU qualifies. Nil
// means the portable Go kernels below serve (also forced by the noasm
// build tag — see dispatch_fallback.go).
var (
	simdName       string
	dotArch        func(a, b []float64) float64
	dotBatchArch   func(dst, block, q []float64)
	dot32Arch      func(a, b []float32) float32
	dotBatch32Arch func(dst, block, q []float32)
)

// SIMD reports the vector instruction set the kernels dispatched to at
// init: "avx2", "neon", or "" when the portable Go loops are serving
// (noasm build, unsupported architecture, or missing CPU features).
func SIMD() string { return simdName }

// Dot4 is the unrolled inner-product kernel shared by the portable Dot
// and DotBatch. It assumes len(b) >= len(a) and reads exactly len(a)
// elements of each; callers are responsible for length checking.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // one bounds check here, none in the loops below
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotBatch computes dst[i] = block[i*k : (i+1)*k] · q for every i, where
// k = len(q): many inner products of one query vector against a
// contiguous row-major block of len(dst) rows. This is the GEMV-style
// kernel the ranking fast path runs over a PredictView's frozen factor
// arena — the block streams through the cache once while q stays hot.
//
// It panics if len(block) != len(dst)*len(q). A zero-length q zeroes dst.
func DotBatch(dst, block, q []float64) {
	k := len(q)
	if len(block) != len(dst)*k {
		panic(fmt.Sprintf("matrix: DotBatch block length %d != rows %d x rank %d", len(block), len(dst), k))
	}
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if dotBatchArch != nil {
		dotBatchArch(dst, block, q)
		return
	}
	off := 0
	for i := range dst {
		dst[i] = dot4(block[off:off+k], q)
		off += k
	}
}

// MulBatch computes the GEMM-shaped product behind request-coalesced
// ranking: dst[qi*rows+i] = block[i*k : (i+1)*k] · qs[qi*k : (qi+1)*k]
// for every query qi and block row i, where rows = len(block)/k. The
// caller passes Q query vectors packed contiguously in qs; each query's
// scores land in its own contiguous dst stripe of length rows.
//
// Callers chasing memory bandwidth should hand it cache-sized row
// blocks: the coalesced rank path scans ~1024 rows per call so the
// block stays resident while every query's products stream over it —
// arena bytes are read from DRAM once per batch instead of once per
// request.
//
// Each (query, row) product is computed by the same DotBatch kernel, so
// results are bit-identical to Q independent DotBatch passes. Panics
// when k <= 0 or any length disagrees with the k-derived shape.
func MulBatch(dst, block, qs []float64, k int) {
	rows, nq := mulBatchShape(len(dst), len(block), len(qs), k)
	for qi := 0; qi < nq; qi++ {
		DotBatch(dst[qi*rows:(qi+1)*rows], block, qs[qi*k:(qi+1)*k])
	}
}

// mulBatchShape validates the packed MulBatch/MulBatch32 geometry and
// returns (rows, queries).
func mulBatchShape(lenDst, lenBlock, lenQs, k int) (rows, nq int) {
	if k <= 0 {
		panic(fmt.Sprintf("matrix: MulBatch rank %d must be positive", k))
	}
	rows = lenBlock / k
	nq = lenQs / k
	if lenBlock != rows*k || lenQs != nq*k || lenDst != nq*rows {
		panic(fmt.Sprintf("matrix: MulBatch shape mismatch dst=%d block=%d qs=%d rank=%d", lenDst, lenBlock, lenQs, k))
	}
	return rows, nq
}

// MulVecTo computes dst = m · q (one inner product per row) without
// allocating, writing row i's product to dst[i]. It panics when dst or q
// disagree with the matrix shape.
func (m *Dense) MulVecTo(dst, q []float64) {
	if len(q) != m.cols {
		panic(fmt.Sprintf("matrix: MulVecTo vector length %d != cols %d", len(q), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecTo dst length %d != rows %d", len(dst), m.rows))
	}
	DotBatch(dst, m.data, q)
}
