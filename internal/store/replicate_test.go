package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func testSamples(n, base int) []stream.Sample {
	ss := make([]stream.Sample, n)
	for i := range ss {
		ss[i] = stream.Sample{
			Time:    time.Duration(base+i) * time.Second,
			User:    base + i,
			Service: base + i + 1,
			Value:   float64(base+i) + 0.5,
		}
	}
	return ss
}

// TestStreamSinceRoundTrip ships every record kind across the wire and
// decodes it back, verifying seq, order, and payload fidelity.
func TestStreamSinceRoundTrip(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Sync: SyncOff, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := w.AppendRegisterUser(0, "u0"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendRegisterService(1, "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSamples(testSamples(5, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendRemoveUser(7); err != nil {
		t.Fatal(err)
	}
	last, err := w.AppendRemoveService(9)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	got, err := w.StreamSince(0, &buf, 0)
	if err != nil {
		t.Fatalf("StreamSince: %v", err)
	}
	if got != last {
		t.Fatalf("StreamSince returned seq %d, want %d", got, last)
	}

	rr := NewRecordReader(&buf)
	var entries []Entry
	for {
		e, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		e.Samples = append([]stream.Sample(nil), e.Samples...)
		entries = append(entries, e)
	}
	if len(entries) != 5 {
		t.Fatalf("decoded %d entries, want 5", len(entries))
	}
	wantKinds := []EntryKind{EntryRegisterUser, EntryRegisterService, EntrySamples, EntryRemoveUser, EntryRemoveService}
	for i, e := range entries {
		if e.Kind != wantKinds[i] {
			t.Errorf("entry %d: kind %d, want %d", i, e.Kind, wantKinds[i])
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("entry %d: seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if got := entries[2].Samples; len(got) != 5 || got[0].User != 10 || got[4].Value != 14.5 {
		t.Errorf("samples payload corrupted in transit: %+v", got)
	}
	if entries[0].Name != "u0" || entries[3].ID != 7 {
		t.Errorf("registration/removal payload corrupted: %+v / %+v", entries[0], entries[3])
	}
}

// TestStreamSinceFrom verifies the from bound is exclusive and spans
// segment rotations.
func TestStreamSinceFrom(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Sync: SyncOff, SegmentBytes: 256, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.AppendSamples(testSamples(2, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("want multiple segments, got %d", w.SegmentCount())
	}

	var buf bytes.Buffer
	last, err := w.StreamSince(15, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 {
		t.Fatalf("last = %d, want 20", last)
	}
	rr := NewRecordReader(&buf)
	next := uint64(16)
	for {
		e, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != next {
			t.Fatalf("seq %d, want %d", e.Seq, next)
		}
		next++
	}
	if next != 21 {
		t.Fatalf("stream ended at %d, want 21", next)
	}
}

// TestStreamSinceByteBudget: the stream cuts on a record boundary at the
// budget but always ships at least one record so a poll can't starve.
func TestStreamSinceByteBudget(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Sync: SyncOff, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if _, err := w.AppendSamples(testSamples(4, i*4)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	last, err := w.StreamSince(0, &buf, 1) // budget below one record
	if err != nil {
		t.Fatal(err)
	}
	if last != 1 {
		t.Fatalf("tiny budget shipped through seq %d, want exactly 1", last)
	}
	rr := NewRecordReader(&buf)
	if e, err := rr.Next(); err != nil || e.Seq != 1 {
		t.Fatalf("Next = (%+v, %v), want seq 1", e, err)
	}
	if _, err := rr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after budgeted record, got %v", err)
	}

	// A mid-range budget ships a strict prefix.
	buf.Reset()
	last, err = w.StreamSince(0, &buf, 400)
	if err != nil {
		t.Fatal(err)
	}
	if last == 0 || last >= 10 {
		t.Fatalf("mid budget shipped through seq %d, want a strict prefix", last)
	}
}

// TestRecordReaderRejectsCorruption: flipped payload bytes and spliced
// gaps must fail loudly, never decode.
func TestRecordReaderRejectsCorruption(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{Sync: SyncOff, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.AppendSamples(testSamples(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := w.StreamSince(0, &buf, 0); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), wire...)
	bad[recHeaderSize+3] ^= 0xFF
	rr := NewRecordReader(bytes.NewReader(bad))
	if _, err := rr.Next(); err == nil {
		t.Fatal("corrupted record decoded cleanly")
	}

	// Splice out the middle record: continuity check must catch it.
	recLen := len(wire) / 3
	spliced := append(append([]byte(nil), wire[:recLen]...), wire[2*recLen:]...)
	rr = NewRecordReader(bytes.NewReader(spliced))
	if _, err := rr.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := rr.Next(); err == nil {
		t.Fatal("gap in stream decoded cleanly")
	}
}
