package store

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Fencing. The cluster's failover protocol is shared-storage: a promoted
// follower opens the (presumed dead) leader's durable directory and
// continues its WAL lineage. If that leader was merely partitioned, two
// processes now hold the same segment files open — the old writer's
// buffered appends, background checkpoints, and truncations would
// corrupt the directory the new leader just claimed, and every sample
// the old leader still acks lands on a diverged lineage nobody
// replicates. The LOCK file makes the takeover observable: every Open
// bumps a monotonic epoch and installs a fresh owner token, and a
// background watcher on each Manager re-reads the file so a previous
// owner notices within one check interval and fences itself — WAL
// appends, flushes, checkpoints, and truncations all start failing with
// ErrFenced, and an optional callback lets the embedding server demote
// itself. The epoch also gives the gateway a total order on competing
// leader claims: the highest epoch is, by construction, the most recent
// holder of the durable directory.

// ErrFenced is returned by WAL and Manager mutations after another
// process has claimed the data directory (or Fence was called).
var ErrFenced = errors.New("store: fenced: the data directory has been claimed by another process")

// lockFileName is the claim file at the data directory root.
const lockFileName = "LOCK"

// DefaultFenceCheckInterval is how often a Manager re-reads the LOCK
// file to detect a takeover.
const DefaultFenceCheckInterval = time.Second

// lockInfo is the LOCK file's JSON body.
type lockInfo struct {
	// Epoch increments on every Open of the directory; the highest
	// epoch is the most recent claimant.
	Epoch uint64 `json:"epoch"`
	// Owner is the claimant's unique token (host, pid, random suffix —
	// unique per Open, not just per process).
	Owner string `json:"owner"`
	// Acquired records when the claim was written (diagnostics only).
	Acquired string `json:"acquired"`
}

// readLock parses the directory's LOCK file. A missing file returns the
// zero lockInfo (epoch 0) — the directory has never been claimed. A
// malformed file does too: treating garbage as "unclaimed" lets a new
// Open repair it, and the epoch restarting from 1 still fences every
// token mismatch.
func readLock(dir string) (lockInfo, error) {
	var li lockInfo
	data, err := os.ReadFile(filepath.Join(dir, lockFileName))
	if errors.Is(err, os.ErrNotExist) {
		return li, nil
	}
	if err != nil {
		return li, fmt.Errorf("store: read lock: %w", err)
	}
	if err := json.Unmarshal(data, &li); err != nil {
		return lockInfo{}, nil
	}
	return li, nil
}

// acquireLock claims the directory: epoch = previous + 1, fresh owner
// token, written atomically (temp → fsync → rename → dir fsync) so a
// crash mid-claim can never leave a torn LOCK file.
func acquireLock(dir string) (lockInfo, error) {
	prev, err := readLock(dir)
	if err != nil {
		return lockInfo{}, err
	}
	li := lockInfo{
		Epoch:    prev.Epoch + 1,
		Owner:    newOwnerToken(),
		Acquired: time.Now().UTC().Format(time.RFC3339Nano),
	}
	data, err := json.Marshal(li)
	if err != nil {
		return lockInfo{}, fmt.Errorf("store: encode lock: %w", err)
	}
	tmp := filepath.Join(dir, lockFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return lockInfo{}, fmt.Errorf("store: create lock: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return lockInfo{}, fmt.Errorf("store: write lock: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return lockInfo{}, fmt.Errorf("store: sync lock: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return lockInfo{}, fmt.Errorf("store: close lock: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, lockFileName)); err != nil {
		os.Remove(tmp)
		return lockInfo{}, fmt.Errorf("store: publish lock: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return lockInfo{}, err
	}
	return li, nil
}

// newOwnerToken builds a token unique per Open: host and pid for
// operator legibility, random suffix for uniqueness (the same process
// may reopen a directory, and pids recycle).
func newOwnerToken() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Fall back to a clock-derived suffix; uniqueness only has to
		// hold across claimants of one directory.
		return fmt.Sprintf("%s-%d-t%d", host, os.Getpid(), time.Now().UnixNano())
	}
	return fmt.Sprintf("%s-%d-%s", host, os.Getpid(), hex.EncodeToString(buf[:]))
}

// Epoch returns the claim epoch this manager acquired at Open. Higher
// epochs claimed the directory more recently.
func (m *Manager) Epoch() uint64 { return m.epoch }

// Fenced reports whether this manager has lost the directory claim (or
// Fence was called): all mutations fail with ErrFenced.
func (m *Manager) Fenced() bool { return m.fenced.Load() }

// SetOnFence installs a callback invoked (once, from the fence watcher
// or the fencing caller) when the manager becomes fenced. The embedding
// server uses it to demote itself out of the leader role.
func (m *Manager) SetOnFence(fn func()) { m.onFence.Store(fn) }

// Fence manually fences the manager: WAL appends, flushes, checkpoints,
// and truncations start failing with ErrFenced, and buffered-but-
// unflushed appends are dropped rather than written into a directory a
// newer claimant may own. Used on demotion; idempotent.
func (m *Manager) Fence(reason string) { m.fenceNow(reason) }

func (m *Manager) fenceNow(reason string) {
	if !m.fenced.CompareAndSwap(false, true) {
		return
	}
	m.wal.Fence()
	m.log.Error("durable store fenced: all mutations disabled",
		"dir", m.dir, "epoch", m.epoch, "reason", reason)
	// Invoke the callback on its own goroutine: the typical callback is
	// "demote the server", and a demotion may itself fence the manager —
	// calling back synchronously from inside that lock would deadlock.
	if fn, ok := m.onFence.Load().(func()); ok && fn != nil {
		go fn()
	}
}

// checkFence re-reads the LOCK file and fences the manager if another
// owner has claimed the directory. Returns true once fenced (the
// watcher then stops — fencing is one-way; rejoining requires a fresh
// Open).
func (m *Manager) checkFence() bool {
	if m.fenced.Load() {
		return true
	}
	li, err := readLock(m.dir)
	if err != nil {
		m.log.Warn("fence check failed", "dir", m.dir, "err", err)
		return false
	}
	if li.Owner == m.lockOwner {
		return false
	}
	m.fenceNow(fmt.Sprintf("lock held by %s (epoch %d, ours %d)", li.Owner, li.Epoch, m.epoch))
	return true
}

// fenceWatch polls the LOCK file until fenced or closed.
func (m *Manager) fenceWatch() {
	defer m.fenceWG.Done()
	ticker := time.NewTicker(m.opts.FenceCheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.fenceStop:
			return
		case <-ticker.C:
			if m.checkFence() {
				return
			}
		}
	}
}
