package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// On-disk record framing, shared by every segment file:
//
//	u32  payload length (little endian)
//	u32  CRC32C over seq || payload
//	u64  sequence number
//	payload
//
// The CRC covers the sequence number so a record can never be replayed
// under the wrong position, and the length is bounded by MaxRecordBytes
// so a torn length field cannot make the scanner allocate gigabytes.
const (
	recHeaderSize = 16
	// MaxRecordBytes bounds a single record's payload. The largest
	// legitimate payload is an engine drain batch (a few thousand
	// samples at 32 bytes each); 16 MiB leaves two orders of magnitude
	// of headroom while still rejecting garbage lengths instantly.
	MaxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EntryKind discriminates the payload types recorded in the WAL.
type EntryKind uint8

const (
	// EntrySamples is a batch of QoS observations (the common record).
	EntrySamples EntryKind = 1
	// EntryRemoveUser journals a churn departure of a user ID.
	EntryRemoveUser EntryKind = 2
	// EntryRemoveService journals a churn departure of a service ID.
	EntryRemoveService EntryKind = 3
	// EntryRegisterUser journals a user name⇄ID registration. Samples
	// reference dense model IDs that the server's registries assign at
	// observe time; without these records a recovered model would hold
	// factors for IDs whose names only lived in server memory.
	EntryRegisterUser EntryKind = 4
	// EntryRegisterService journals a service name⇄ID registration.
	EntryRegisterService EntryKind = 5
)

// MaxNameBytes bounds a registration record's name, mirroring what a
// sane API client would send and keeping hostile on-disk bytes from
// materializing huge strings.
const MaxNameBytes = 4096

// Entry is one decoded WAL record.
type Entry struct {
	Seq  uint64
	Kind EntryKind
	// Samples is set for EntrySamples.
	Samples []stream.Sample
	// ID is set for EntryRemove* / EntryRegister*.
	ID int
	// Name is set for EntryRegisterUser / EntryRegisterService.
	Name string
}

const sampleWire = 32 // i64 time, i64 user, i64 service, f64 value

// maxSamplesPerRecord is the largest observation count whose
// EncodeSamples payload still fits in MaxRecordBytes (5 header bytes +
// sampleWire per sample). WAL.AppendSamples splits bigger batches across
// several records, so a legitimate batch of any size can be journaled —
// an oversized batch must never be acked-but-rejected (a silent
// durability hole even under fsync=always).
const maxSamplesPerRecord = (MaxRecordBytes - 5) / sampleWire

// EncodeSamples renders a batch of observations as an EntrySamples
// payload: kind byte, u32 count, then 32 fixed bytes per sample. The
// same encoding doubles as the qosdb checkpoint body.
func EncodeSamples(ss []stream.Sample) []byte {
	buf := make([]byte, 5+sampleWire*len(ss))
	buf[0] = byte(EntrySamples)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(ss)))
	off := 5
	for _, s := range ss {
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(s.Time)))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(int64(s.User)))
		binary.LittleEndian.PutUint64(buf[off+16:], uint64(int64(s.Service)))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(s.Value))
		off += sampleWire
	}
	return buf
}

// DecodeSamples decodes an EntrySamples payload. It is strict: the
// count must match the payload length exactly and every value must be
// finite (mirroring the old text parser's rejection of NaN/Inf), so a
// corrupted-but-CRC-colliding record cannot poison the model.
func DecodeSamples(p []byte) ([]stream.Sample, error) {
	return DecodeSamplesInto(nil, p)
}

// DecodeSamplesInto is DecodeSamples decoding into scratch's backing
// array when it is large enough (scratch is resliced, never grown in
// place past its capacity). Replay-heavy paths pass a reused buffer so
// a million-record replay costs a handful of allocations instead of one
// slice per record; the returned slice is only valid until scratch is
// reused.
func DecodeSamplesInto(scratch []stream.Sample, p []byte) ([]stream.Sample, error) {
	if len(p) < 5 || EntryKind(p[0]) != EntrySamples {
		return nil, fmt.Errorf("store: not a samples payload")
	}
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	if len(p)-5 != n*sampleWire {
		return nil, fmt.Errorf("store: samples payload: count %d does not match %d payload bytes", n, len(p)-5)
	}
	out := scratch
	if cap(out) < n {
		out = make([]stream.Sample, n)
	}
	out = out[:n]
	off := 5
	for i := range out {
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[off+24:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("store: samples payload: non-finite value at sample %d", i)
		}
		out[i] = stream.Sample{
			Time:    time.Duration(int64(binary.LittleEndian.Uint64(p[off:]))),
			User:    int(int64(binary.LittleEndian.Uint64(p[off+8:]))),
			Service: int(int64(binary.LittleEndian.Uint64(p[off+16:]))),
			Value:   v,
		}
		off += sampleWire
	}
	return out, nil
}

// encodeRemove renders an EntryRemoveUser / EntryRemoveService payload.
func encodeRemove(kind EntryKind, id int) []byte {
	buf := make([]byte, 9)
	buf[0] = byte(kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(int64(id)))
	return buf
}

// encodeRegister renders an EntryRegisterUser / EntryRegisterService
// payload: kind byte, i64 ID, then the raw name bytes.
func encodeRegister(kind EntryKind, id int, name string) []byte {
	buf := make([]byte, 9+len(name))
	buf[0] = byte(kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(int64(id)))
	copy(buf[9:], name)
	return buf
}

// DecodeEntry decodes a record payload into a typed Entry.
func DecodeEntry(seq uint64, p []byte) (Entry, error) {
	return decodeEntryInto(nil, seq, p)
}

// decodeEntryInto is DecodeEntry with a reusable sample scratch buffer
// (see DecodeSamplesInto): the returned Entry's Samples alias scratch's
// backing array when it is large enough, so the Entry is only valid
// until the scratch is reused.
func decodeEntryInto(scratch []stream.Sample, seq uint64, p []byte) (Entry, error) {
	if len(p) == 0 {
		return Entry{}, fmt.Errorf("store: empty record payload")
	}
	switch EntryKind(p[0]) {
	case EntrySamples:
		ss, err := DecodeSamplesInto(scratch, p)
		if err != nil {
			return Entry{}, err
		}
		return Entry{Seq: seq, Kind: EntrySamples, Samples: ss}, nil
	case EntryRemoveUser, EntryRemoveService:
		if len(p) != 9 {
			return Entry{}, fmt.Errorf("store: removal payload: want 9 bytes, got %d", len(p))
		}
		return Entry{Seq: seq, Kind: EntryKind(p[0]), ID: int(int64(binary.LittleEndian.Uint64(p[1:])))}, nil
	case EntryRegisterUser, EntryRegisterService:
		if len(p) < 10 || len(p) > 9+MaxNameBytes {
			return Entry{}, fmt.Errorf("store: registration payload: %d bytes out of range", len(p))
		}
		return Entry{
			Seq:  seq,
			Kind: EntryKind(p[0]),
			ID:   int(int64(binary.LittleEndian.Uint64(p[1:]))),
			Name: string(p[9:]),
		}, nil
	default:
		return Entry{}, fmt.Errorf("store: unknown record kind %d", p[0])
	}
}

// encodeRecord frames a payload as an on-disk record.
func encodeRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[recHeaderSize:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], recordCRC(seq, payload))
	return rec
}

// decodeRecordHeader parses a record header, returning the payload
// length, the expected CRC, and the sequence number.
func decodeRecordHeader(h []byte) (plen int, crc uint32, seq uint64) {
	return int(binary.LittleEndian.Uint32(h[0:4])),
		binary.LittleEndian.Uint32(h[4:8]),
		binary.LittleEndian.Uint64(h[8:16])
}

// recordCRC computes the CRC of a record body (seq || payload). The
// seq prefix is folded in by a per-byte table walk instead of
// crc32.Update over a stack buffer: Update's slice parameter escapes,
// which would cost a heap allocation per record on the scan/replay and
// append paths. The table walk is bit-identical to hashing the 8
// little-endian seq bytes (Update conditions the running CRC with ^ on
// entry and exit, so the raw state threads through).
func recordCRC(seq uint64, payload []byte) uint32 {
	crc := ^uint32(0)
	for i := 0; i < 8; i++ {
		crc = crcTable[byte(crc)^byte(seq)] ^ (crc >> 8)
		seq >>= 8
	}
	return crc32.Update(^crc, crcTable, payload)
}
