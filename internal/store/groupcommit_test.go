package store

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitRoundTrip: appends under fsync=group become durable
// (WaitDurable returns nil), survive a reopen, and the commit metrics
// record at least one batched fsync.
func TestGroupCommitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncGroup})
	if !w.GroupCommit() {
		t.Fatal("GroupCommit() = false under SyncGroup")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := w.AppendSamples(sampleBatch(i*10, 4))
			if err != nil {
				errs <- err
				return
			}
			errs <- w.WaitDurable(seq)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("append/wait: %v", err)
		}
	}
	if got := w.DurableSeq(); got != 16 {
		t.Fatalf("DurableSeq = %d, want 16", got)
	}
	if w.Metrics().GroupCommits.Load() == 0 {
		t.Fatal("no group commits recorded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := testWAL(t, dir, WALOptions{Sync: SyncGroup})
	defer w2.Close()
	if got := len(replayAll(t, w2, 0)); got != 16 {
		t.Fatalf("replayed %d records after reopen, want 16", got)
	}
}

// TestGroupCommitWindowBound: with no waiter parked, a buffered append
// is still fsynced within (a generous multiple of) the configured
// window — the async latency bound.
func TestGroupCommitWindowBound(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup, GroupWindow: time.Millisecond})
	defer w.Close()
	seq, err := w.AppendSamples(sampleBatch(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("append not durable within 2s (window 1ms); DurableSeq=%d", w.DurableSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitWaitDurablePast: waiting on an already-durable (or
// never-assigned) low sequence number returns immediately.
func TestGroupCommitWaitDurablePast(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup})
	defer w.Close()
	if err := w.WaitDurable(0); err != nil {
		t.Fatalf("WaitDurable(0): %v", err)
	}
	seq, err := w.AppendSamples(sampleBatch(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
	// Second wait on the same seq: instant, via the atomic fast path.
	if err := w.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFenceDropsPendingWindow: fencing mid-window must (a)
// reject every parked waiter with ErrFenced and (b) DROP the buffered
// bytes — flushing them would overwrite the new owner's log tail. The
// window/byte triggers are set far out of reach so the records are
// guaranteed still buffered when the fence lands.
func TestGroupCommitFenceDropsPendingWindow(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{
		Sync:        SyncGroup,
		GroupWindow: time.Hour,
		GroupBytes:  1 << 40,
	})
	const writers = 8
	var appended sync.WaitGroup
	var parked sync.WaitGroup
	waitErrs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		appended.Add(1)
		parked.Add(1)
		go func(i int) {
			defer parked.Done()
			seq, err := w.AppendSamples(sampleBatch(i, 2))
			appended.Done()
			if err != nil {
				waitErrs <- err
				return
			}
			waitErrs <- w.WaitDurable(seq)
		}(i)
	}
	appended.Wait()
	// The waiters signal the coordinator, which would normally fsync
	// immediately — but each goroutine may not have parked yet. Fencing
	// races WaitDurable here by design: a waiter either parks and is
	// rejected, or checks the fenced flag first. Both paths must error.
	w.Fence()
	parked.Wait()
	close(waitErrs)
	rejected := 0
	for err := range waitErrs {
		if err == nil {
			// The coordinator may have fsynced a prefix before the fence
			// landed; those waiters were durably acked — legal. But the
			// test forces an un-syncable window, so any nil beyond what
			// the first immediate fsync could cover is suspicious. Track
			// only hard failures here; the reopen below is the real check.
			continue
		}
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("parked waiter got %v, want ErrFenced", err)
		}
		rejected++
	}
	if rejected == 0 {
		t.Fatal("no waiter was rejected with ErrFenced")
	}
	// Appends after the fence fail outright.
	if _, err := w.AppendSamples(sampleBatch(99, 1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after fence: %v, want ErrFenced", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The dropped window must NOT be on disk: a reopen sees only the
	// records the (at most one) pre-fence fsync covered.
	w2 := testWAL(t, dir, WALOptions{Sync: SyncGroup})
	defer w2.Close()
	if got, durable := uint64(len(replayAll(t, w2, 0))), w2.LastSeq(); got != durable {
		t.Fatalf("reopen: %d replayable records vs LastSeq %d", got, durable)
	}
	if w2.LastSeq() == writers {
		t.Fatalf("all %d buffered records reached disk despite the fence dropping the window", writers)
	}
}

// TestGroupCommitFailRejectsWaiters: an fsync failure (segment file
// closed underneath the coordinator) poisons the log and rejects parked
// waiters with ErrWALFailed instead of hanging them forever.
func TestGroupCommitFailRejectsWaiters(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{
		Sync:        SyncGroup,
		GroupWindow: 5 * time.Millisecond,
	})
	seq, err := w.AppendSamples(sampleBatch(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the fsync: close the segment file out from under the
	// coordinator before its window expires.
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
	err = w.WaitDurable(seq)
	if err == nil {
		// The fsync may have squeaked in before the sabotage landed;
		// force another append through the poisoned/closed file.
		seq2, aerr := w.AppendSamples(sampleBatch(1, 2))
		if aerr != nil {
			return // append already surfaced the failure — also fine
		}
		err = w.WaitDurable(seq2)
	}
	if err == nil || errors.Is(err, ErrFenced) {
		t.Fatalf("WaitDurable after sabotaged fsync: %v, want ErrWALFailed", err)
	}
}

// TestGroupCommitCheckpointBarrier: Manager.Checkpoint's wal.Sync()
// barrier must hold under group commit — after Sync returns, the full
// appended tail is durable, so the checkpoint's claimed seq can never
// exceed the durable log.
func TestGroupCommitCheckpointBarrier(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup, GroupWindow: time.Hour, GroupBytes: 1 << 40})
	defer w.Close()
	seq, err := w.AppendSamples(sampleBatch(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableSeq(); got != seq {
		t.Fatalf("DurableSeq after Sync = %d, want %d", got, seq)
	}
}

// TestGroupCommitSubscribe: a commit subscriber wakes when the commit
// index advances, and cancel unregisters it.
func TestGroupCommitSubscribe(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup})
	defer w.Close()
	ch, cancel := w.SubscribeCommits()
	defer cancel()
	seq, err := w.AppendSamples(sampleBatch(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no commit notification within 2s")
	}
	if got := w.DurableSeq(); got < seq {
		// Coalesced wakeups can fire before the index we care about;
		// drain until it lands.
		deadline := time.Now().Add(2 * time.Second)
		for w.DurableSeq() < seq && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if w.DurableSeq() < seq {
			t.Fatalf("DurableSeq=%d never reached %d", w.DurableSeq(), seq)
		}
	}
}

// TestGroupCommitStreamSinceShipsOnlyDurable: under fsync=group the
// replication stream is bounded at the durable commit index — records
// whose covering fsync has not landed are not shipped.
func TestGroupCommitStreamSinceShipsOnlyDurable(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup, GroupWindow: time.Hour, GroupBytes: 1 << 40})
	defer w.Close()
	// First batch: force durability via the barrier.
	if _, err := w.AppendSamples(sampleBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := w.DurableSeq()
	// Second batch: left buffered (hour-long window, no waiter).
	if _, err := w.AppendSamples(sampleBatch(10, 2)); err != nil {
		t.Fatal(err)
	}
	var sink countWriter
	last, err := w.StreamSince(0, &sink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != durable {
		t.Fatalf("StreamSince shipped through %d, want durable bound %d (tail %d)", last, durable, w.LastSeq())
	}
	// Nothing shippable: an empty answer, not a forced fsync.
	if last2, err := w.StreamSince(durable, &sink, 0); err != nil || last2 != durable {
		t.Fatalf("StreamSince(durable) = %d, %v; want %d, nil", last2, err, durable)
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// TestGroupCommitConcurrentWithRotation: tiny segments force rotations
// while concurrent writers append+wait — the rotation's inline sync must
// coordinate with in-flight group fsyncs instead of racing the file.
func TestGroupCommitConcurrentWithRotation(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncGroup, SegmentBytes: 512})
	defer w.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				seq, err := w.AppendSamples(sampleBatch(i*100+j, 3))
				if err != nil {
					errs <- err
					return
				}
				if err := w.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotations, got %d segment(s)", w.SegmentCount())
	}
	if got := len(replayAll(t, w, 0)); got != 64 {
		t.Fatalf("replayed %d records, want 64", got)
	}
}
