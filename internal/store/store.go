// Package store is the unified durable-state layer of the prediction
// service: a segmented binary write-ahead log, an atomic checkpoint
// writer, and the recovery path that stitches the two back into a live
// engine after a crash.
//
// AMF's whole value is *online* learning (paper Sec. IV-C): the model is
// the accumulated product of every streamed sample, so losing the
// process must not lose the stream. The layer follows the classic
// journal-before-apply design:
//
//   - WAL. Observation batches (and entity removals) are appended as
//     length-prefixed, CRC32C-protected records with contiguous sequence
//     numbers, into size-rotated segment files. Three fsync policies
//     trade durability for throughput: SyncAlways fsyncs every append
//     (an acked write is a durable write), SyncInterval fsyncs on a
//     background tick (loss bounded by the flush window), SyncOff leaves
//     flushing to the OS. A torn final record — the signature of a crash
//     mid-write — is truncated away on open; corruption anywhere else is
//     an error, never silently skipped.
//
//   - Checkpoints. A background checkpointer periodically captures the
//     full service state (model snapshot + registry directories) through
//     a caller-supplied capture function, writes it via the
//     temp-file → fsync → rename → dir-fsync dance so a crash can never
//     leave a half-written checkpoint in place, retains the last N, and
//     truncates WAL segments wholly covered by the checkpoint's sequence
//     number. Recovery therefore replays only the WAL tail.
//
//   - Recovery. Open the newest valid checkpoint (falling back to older
//     ones on CRC mismatch), restore it, then replay WAL records with
//     sequence numbers beyond the checkpoint through the engine's normal
//     observe path, verifying sequence continuity along the way.
//
// Replay is at-least-once by design: a checkpoint captured while the
// writer kept journaling may already include a few records past its
// recorded sequence number, and replaying an observation twice is just
// one extra SGD step on data the model has already seen. What is never
// acceptable — and what the continuity check catches — is a *gap*:
// acked records that vanished.
//
// The engine journals through this package (engine.Config/SetJournal),
// the server's state endpoints and the checkpoint loop ride Manager, and
// internal/qosdb reuses the same segment writer and checkpoint files for
// its observation database.
package store

import (
	"fmt"
	"os"
)

// syncDir fsyncs a directory so renames and file creations inside it are
// durable. Failure is returned — callers on exotic filesystems that do
// not support directory fsync may choose to ignore it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
