package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 41, []byte("state-41")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, 99, []byte("state-99")); err != nil {
		t.Fatal(err)
	}
	seq, data, ok, err := LoadNewestCheckpoint(dir, quietLogger())
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if seq != 99 || !bytes.Equal(data, []byte("state-99")) {
		t.Fatalf("got seq=%d data=%q", seq, data)
	}
}

func TestCheckpointEmptyDir(t *testing.T) {
	_, _, ok, err := LoadNewestCheckpoint(t.TempDir(), quietLogger())
	if err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	// A directory that does not exist at all is also "no checkpoint".
	_, _, ok, err = LoadNewestCheckpoint(filepath.Join(t.TempDir(), "nope"), quietLogger())
	if err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestCheckpointFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, []byte("good-old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, 20, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file's body.
	path := filepath.Join(dir, checkpointName(20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, body, ok, err := LoadNewestCheckpoint(dir, quietLogger())
	if err != nil || !ok {
		t.Fatalf("fallback load: ok=%v err=%v", ok, err)
	}
	if seq != 10 || !bytes.Equal(body, []byte("good-old")) {
		t.Fatalf("fallback got seq=%d data=%q", seq, body)
	}
}

func TestCheckpointAllCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 5, []byte("only")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName(5))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadNewestCheckpoint(dir, quietLogger()); err == nil {
		t.Fatal("all-corrupt checkpoint set must error, not silently start empty")
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 6; seq++ {
		if err := WriteCheckpoint(dir, seq*10, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
		if err := PruneCheckpoints(dir, 3); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 40 || seqs[2] != 60 {
		t.Fatalf("retention kept %v, want [40 50 60]", seqs)
	}
}

func TestCheckpointTempFilesIgnoredAndCleaned(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a .tmp file; it must never be loaded.
	tmp := filepath.Join(dir, checkpointName(77)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := LoadNewestCheckpoint(dir, quietLogger())
	if err != nil || ok {
		t.Fatalf("tmp leftovers must be invisible: ok=%v err=%v", ok, err)
	}
}
