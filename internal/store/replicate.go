package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"github.com/qoslab/amf/internal/stream"
)

// This file is the WAL-shipping half of the replication protocol: the
// leader streams framed records to followers over HTTP, and followers
// decode them back into Entries with a RecordReader. The wire framing is
// the on-disk record framing verbatim (u32 len | CRC32C(seq‖payload) |
// u64 seq | payload), so a shipped record carries the same integrity
// check it had on the leader's disk and a follower can never apply a
// record under the wrong sequence number.

// replayRaw walks every intact record with sequence number > from across
// the segment files, in order, verifying sequence continuity, and hands
// each (seq, payload) pair to fn before decoding. It is the shared
// traversal under both Replay (decode into Entries) and StreamSince
// (re-frame onto a wire). Must not run concurrently with appends —
// except when bound > 0, which stops the walk at that sequence number
// WITHOUT forcing a sync first: the caller asserts every record <= bound
// is already flushed and durable (the group-commit durable prefix), so
// the scan never races the appending tail.
func (w *WAL) replayRaw(from, bound uint64, fn func(seq uint64, payload []byte) error) error {
	if bound == 0 {
		// Make sure everything buffered is visible to the file reads below.
		if err := w.Sync(); err != nil {
			return err
		}
	}
	w.mu.Lock()
	segs := make([]walSegment, len(w.segments))
	copy(segs, w.segments)
	w.mu.Unlock()

	next := from + 1
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= next {
			continue // wholly below the replay point
		}
		last := i == len(segs)-1
		_, _, torn, err := scanSegmentFile(filepath.Join(w.dir, seg.name), seg.first, func(seq uint64, payload []byte) error {
			if seq <= from {
				return nil
			}
			if bound > 0 && seq > bound {
				return errPastBound
			}
			if seq != next {
				return fmt.Errorf("store: wal gap: expected seq %d, found %d in %s", next, seq, seg.name)
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			next = seq + 1
			return nil
		})
		if errors.Is(err, errPastBound) {
			return nil
		}
		if err != nil {
			return err
		}
		if torn > 0 && !last {
			return fmt.Errorf("store: wal corruption inside %s (%d bytes unreadable mid-log)", seg.name, torn)
		}
	}
	return nil
}

// StreamSince writes every record with sequence number > from to dst as
// framed wire records, oldest first, stopping early once maxBytes of
// payload+framing have been written (0 means no bound; the cut is always
// on a record boundary, so the stream stays decodable). It returns the
// last sequence number written (= from when nothing qualified). The
// leader's replication endpoint calls this against a live WAL: appends
// may race the stream, in which case the stream simply ends at whatever
// tail the segment scan saw — followers pick the rest up on their next
// poll. Under the group-commit fsync policy only the DURABLE prefix is
// shipped (bounded at DurableSeq, no forced sync): shipping records
// whose covering fsync has not landed would let a follower apply state
// the leader itself loses in a crash — divergence, not replication —
// and forcing a sync per poll would defeat the batching the policy
// exists for.
func (w *WAL) StreamSince(from uint64, dst io.Writer, maxBytes int64) (last uint64, err error) {
	last = from
	var bound uint64
	if w.opts.Sync == SyncGroup {
		bound = w.DurableSeq()
		if bound <= from {
			return from, nil
		}
	}
	var written int64
	err = w.replayRaw(from, bound, func(seq uint64, payload []byte) error {
		rec := encodeRecord(seq, payload)
		if maxBytes > 0 && written > 0 && written+int64(len(rec)) > maxBytes {
			return errStreamFull
		}
		if _, werr := dst.Write(rec); werr != nil {
			return fmt.Errorf("store: stream record %d: %w", seq, werr)
		}
		written += int64(len(rec))
		last = seq
		return nil
	})
	if errors.Is(err, errStreamFull) {
		err = nil
	}
	return last, err
}

// errStreamFull is the internal sentinel StreamSince uses to stop the
// segment walk at the byte budget.
var errStreamFull = errors.New("store: stream budget reached")

// errPastBound is the internal sentinel replayRaw uses to stop the
// segment walk at the caller's durable bound.
var errPastBound = errors.New("store: replay bound reached")

// RecordReader decodes a stream of framed WAL records (the body of a
// replication response) back into Entries. It verifies each record's CRC
// and, from the second record on, sequence continuity — a gap means the
// stream is corrupt and the follower must re-sync rather than silently
// skip acked data.
type RecordReader struct {
	br      *bufio.Reader
	header  [recHeaderSize]byte
	payload []byte
	samples []stream.Sample // decode scratch, reused across Next calls
	prev    uint64
	started bool
}

// NewRecordReader wraps an io.Reader carrying framed records.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next decoded entry. It returns io.EOF at a clean end
// of stream; any other error means the stream is torn or corrupt. The
// returned Entry reuses the reader's decode buffers — its Samples are
// only valid until the next call to Next, so callers that retain them
// must copy (applyStream copies element-wise into the apply batch).
func (rr *RecordReader) Next() (Entry, error) {
	if _, err := io.ReadFull(rr.br, rr.header[:]); err != nil {
		if err == io.EOF {
			return Entry{}, io.EOF
		}
		return Entry{}, fmt.Errorf("store: record stream: torn header: %w", err)
	}
	plen, wantCRC, seq := decodeRecordHeader(rr.header[:])
	if plen <= 0 || plen > MaxRecordBytes {
		return Entry{}, fmt.Errorf("store: record stream: payload length %d out of range", plen)
	}
	if cap(rr.payload) < plen {
		rr.payload = make([]byte, plen)
	}
	rr.payload = rr.payload[:plen]
	if _, err := io.ReadFull(rr.br, rr.payload); err != nil {
		return Entry{}, fmt.Errorf("store: record stream: torn payload at seq %d: %w", seq, err)
	}
	if recordCRC(seq, rr.payload) != wantCRC {
		return Entry{}, fmt.Errorf("store: record stream: CRC mismatch at seq %d", seq)
	}
	if rr.started && seq != rr.prev+1 {
		return Entry{}, fmt.Errorf("store: record stream: gap: expected seq %d, got %d", rr.prev+1, seq)
	}
	rr.started = true
	rr.prev = seq
	e, err := decodeEntryInto(rr.samples, seq, rr.payload)
	if err == nil && cap(e.Samples) > cap(rr.samples) {
		rr.samples = e.Samples[:cap(e.Samples)]
	}
	return e, err
}
