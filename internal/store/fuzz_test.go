package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeEntry hammers the WAL record decoder with arbitrary payload
// bytes: it must never panic, and anything it accepts must re-encode and
// decode back to the same entry (the decoder is the first thing touching
// attacker-controllable on-disk bytes during recovery).
func FuzzDecodeEntry(f *testing.F) {
	f.Add(EncodeSamples(sampleBatch(0, 3)))
	f.Add(EncodeSamples(nil))
	f.Add(encodeRemove(EntryRemoveUser, 42))
	f.Add(encodeRemove(EntryRemoveService, -1))
	f.Add(encodeRegister(EntryRegisterUser, 7, "alice"))
	f.Add(encodeRegister(EntryRegisterService, 9, "svc/eu-west/1"))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{9, 9, 9})

	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := DecodeEntry(7, payload)
		if err != nil {
			return
		}
		var again []byte
		switch e.Kind {
		case EntrySamples:
			again = EncodeSamples(e.Samples)
		case EntryRemoveUser, EntryRemoveService:
			again = encodeRemove(e.Kind, e.ID)
		case EntryRegisterUser, EntryRegisterService:
			again = encodeRegister(e.Kind, e.ID, e.Name)
		default:
			t.Fatalf("decoder accepted unknown kind %d", e.Kind)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("round-trip changed payload: %x vs %x", again, payload)
		}
		e2, err := DecodeEntry(7, again)
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if e2.Kind != e.Kind || e2.ID != e.ID || e2.Name != e.Name || len(e2.Samples) != len(e.Samples) {
			t.Fatalf("round-trip changed entry: %+v vs %+v", e2, e)
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the segment scanner: whatever
// is on disk, opening a WAL over it must not panic, and an open that
// succeeds must yield a log whose replay succeeds too (the scanner
// truncated everything it could not vouch for).
func FuzzSegmentScan(f *testing.F) {
	valid := func(build func(w *WAL)) []byte {
		dir, err := os.MkdirTemp("", "walfuzz")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		w, err := OpenWAL(dir, WALOptions{Sync: SyncOff, Logger: quietLogger()})
		if err != nil {
			f.Fatal(err)
		}
		build(w)
		w.Close()
		data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add([]byte(segMagic))
	f.Add(valid(func(w *WAL) { w.AppendSamples(sampleBatch(0, 2)) }))
	f.Add(valid(func(w *WAL) { w.AppendRemoveUser(3); w.AppendSamples(sampleBatch(5, 1)) }))
	f.Add([]byte{})
	f.Add([]byte("AMFWAL1\nxxxxxxxxxxxxxxxxxxxx"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALOptions{Sync: SyncOff, Logger: quietLogger()})
		if err != nil {
			return // structurally unopenable is fine; panics are not
		}
		defer w.Close()
		count := 0
		if err := w.Replay(0, func(e Entry) error { count++; return nil }); err != nil {
			t.Fatalf("replay after successful open failed: %v", err)
		}
		if count > 0 && w.LastSeq() == 0 {
			t.Fatalf("replayed %d entries but LastSeq=0", count)
		}
	})
}
