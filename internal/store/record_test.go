package store

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// TestRecordCRCEquivalence pins recordCRC's seq-prefix table walk to the
// reference computation (crc32.Update over the 8 little-endian seq
// bytes, then the payload). On-disk logs written by earlier builds used
// the reference form directly — any divergence here would make every
// existing WAL read as corrupt.
func TestRecordCRCEquivalence(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("qos"), make([]byte, 4096)}
	for i := range payloads[4] {
		payloads[4][i] = byte(i * 31)
	}
	for _, seq := range []uint64{0, 1, 255, 256, 0xdeadbeef, 1<<63 + 7, ^uint64(0)} {
		for _, p := range payloads {
			var sb [8]byte
			binary.LittleEndian.PutUint64(sb[:], seq)
			want := crc32.Update(crc32.Update(0, crcTable, sb[:]), crcTable, p)
			if got := recordCRC(seq, p); got != want {
				t.Fatalf("recordCRC(%d, %d bytes) = %#x, want %#x", seq, len(p), got, want)
			}
		}
	}
	// Golden value: a cross-build tripwire independent of both
	// implementations above.
	if got := recordCRC(42, []byte("hello")); got != 0x87af9708 {
		t.Fatalf("recordCRC(42, \"hello\") = %#x, want golden 0x87af9708", got)
	}
}
