package store

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testWAL(t *testing.T, dir string, opts WALOptions) *WAL {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	w, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

func sampleBatch(base, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		out[i] = stream.Sample{
			Time:    time.Duration(base+i) * time.Millisecond,
			User:    (base + i) % 97,
			Service: (base + i) % 31,
			Value:   float64(base+i) * 0.5,
		}
	}
	return out
}

func replayAll(t *testing.T, w *WAL, from uint64) []Entry {
	t.Helper()
	var out []Entry
	if err := w.Replay(from, func(e Entry) error {
		// Replay reuses its decode buffer across records; retained
		// entries must copy their samples out.
		e.Samples = append([]stream.Sample(nil), e.Samples...)
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff})
	want := [][]stream.Sample{sampleBatch(0, 3), sampleBatch(100, 1), sampleBatch(200, 7)}
	for i, b := range want {
		seq, err := w.AppendSamples(b)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if _, err := w.AppendRemoveUser(42); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendRemoveService(7); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, w, 0)
	if len(got) != 5 {
		t.Fatalf("replayed %d entries, want 5", len(got))
	}
	for i, b := range want {
		e := got[i]
		if e.Kind != EntrySamples || e.Seq != uint64(i+1) {
			t.Fatalf("entry %d: kind=%d seq=%d", i, e.Kind, e.Seq)
		}
		if len(e.Samples) != len(b) {
			t.Fatalf("entry %d: %d samples, want %d", i, len(e.Samples), len(b))
		}
		for j := range b {
			if e.Samples[j] != b[j] {
				t.Fatalf("entry %d sample %d: %+v != %+v", i, j, e.Samples[j], b[j])
			}
		}
	}
	if got[3].Kind != EntryRemoveUser || got[3].ID != 42 {
		t.Fatalf("entry 3: %+v", got[3])
	}
	if got[4].Kind != EntryRemoveService || got[4].ID != 7 {
		t.Fatalf("entry 4: %+v", got[4])
	}

	// Partial replay skips covered entries.
	tail := replayAll(t, w, 3)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("tail replay: %+v", tail)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff})
	for i := 0; i < 5; i++ {
		if _, err := w.AppendSamples(sampleBatch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := testWAL(t, dir, WALOptions{Sync: SyncOff})
	if w2.LastSeq() != 5 {
		t.Fatalf("reopened LastSeq=%d, want 5", w2.LastSeq())
	}
	seq, err := w2.AppendSamples(sampleBatch(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("append after reopen: seq %d, want 6", seq)
	}
	if got := replayAll(t, w2, 0); len(got) != 6 {
		t.Fatalf("replayed %d, want 6", len(got))
	}
	w2.Close()
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every batch of 4 samples (~150B) rotates quickly.
	w := testWAL(t, dir, WALOptions{Sync: SyncOff, SegmentBytes: 256})
	for i := 0; i < 10; i++ {
		if _, err := w.AppendSamples(sampleBatch(i*10, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if n := w.SegmentCount(); n < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", n)
	}
	if got := replayAll(t, w, 0); len(got) != 10 {
		t.Fatalf("replay across segments: %d entries, want 10", len(got))
	}

	// Truncation through seq 6 must keep everything > 6 replayable.
	before := w.SegmentCount()
	if err := w.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if after := w.SegmentCount(); after >= before {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", before, after)
	}
	got := replayAll(t, w, 6)
	if len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("post-truncate tail: %d entries, first seq %v", len(got), got)
	}
	// The open segment is never removed.
	if err := w.TruncateThrough(1 << 60); err != nil {
		t.Fatal(err)
	}
	if w.SegmentCount() != 1 {
		t.Fatalf("full truncate left %d segments, want 1", w.SegmentCount())
	}
	w.Close()

	// Reopen after truncation: sequence numbering continues.
	w2 := testWAL(t, dir, WALOptions{Sync: SyncOff})
	if w2.LastSeq() != 10 {
		t.Fatalf("LastSeq after truncate+reopen = %d, want 10", w2.LastSeq())
	}
	w2.Close()
}

// TestWALTornTailTruncatedAtEveryOffset is the torn-tail property test:
// however many bytes of the final record made it to disk, open must
// recover exactly the intact prefix and keep appending from there.
func TestWALTornTailTruncatedAtEveryOffset(t *testing.T) {
	build := func(t *testing.T, dir string) (lastPath string, intactSize int64) {
		w := testWAL(t, dir, WALOptions{Sync: SyncOff})
		for i := 0; i < 3; i++ {
			if _, err := w.AppendSamples(sampleBatch(i*10, 2)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v %v", segs, err)
		}
		lastPath = filepath.Join(dir, segs[0].name)
		fi, err := os.Stat(lastPath)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		return lastPath, fi.Size()
	}

	probe := t.TempDir()
	_, full := build(t, probe)
	// Size of the last record = total - size after two records.
	recSize := int64(recHeaderSize + 5 + 2*sampleWire)
	intact := full - recSize

	for cut := intact; cut < full; cut++ {
		dir := t.TempDir()
		path, _ := build(t, dir)
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		w := testWAL(t, dir, WALOptions{Sync: SyncOff})
		got := replayAll(t, w, 0)
		if len(got) != 2 {
			t.Fatalf("cut=%d: replayed %d entries, want 2", cut, len(got))
		}
		if w.LastSeq() != 2 {
			t.Fatalf("cut=%d: LastSeq=%d, want 2", cut, w.LastSeq())
		}
		// Appends continue with the next sequence number.
		seq, err := w.AppendSamples(sampleBatch(99, 1))
		if err != nil || seq != 3 {
			t.Fatalf("cut=%d: append seq=%d err=%v", cut, seq, err)
		}
		if got := replayAll(t, w, 0); len(got) != 3 {
			t.Fatalf("cut=%d: after repair replayed %d, want 3", cut, len(got))
		}
		w.Close()
	}
}

func TestWALTornTailCountsMetric(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff})
	if _, err := w.AppendSamples(sampleBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	fi, _ := os.Stat(path)
	w.Close()
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	met := NewMetrics()
	w2 := testWAL(t, dir, WALOptions{Sync: SyncOff, Metrics: met})
	defer w2.Close()
	if met.TornTruncations.Load() != 1 {
		t.Fatalf("TornTruncations=%d, want 1", met.TornTruncations.Load())
	}
}

// TestWALMidLogCorruptionIsFatal: flipping a byte in a non-final segment
// must fail replay loudly rather than silently skipping records.
func TestWALMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff, SegmentBytes: 200})
	for i := 0; i < 8; i++ {
		if _, err := w.AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("need >=2 segments, got %d", w.SegmentCount())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	first := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff // corrupt the first (non-final) segment
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, func(Entry) error { return nil }); err == nil {
		t.Fatal("replay over mid-log corruption must error")
	}
	w.Close()
}

// TestWALGapDetection: deleting an interior segment is a gap, and replay
// must refuse to paper over it.
func TestWALGapDetection(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff, SegmentBytes: 200})
	for i := 0; i < 8; i++ {
		if _, err := w.AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 3 {
		t.Fatalf("need >=3 segments, got %d", w.SegmentCount())
	}
	w.Close()
	segs, _ := listSegments(dir)
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	w2 := testWAL(t, dir, WALOptions{Sync: SyncOff})
	defer w2.Close()
	if err := w2.Replay(0, func(Entry) error { return nil }); err == nil {
		t.Fatal("replay across a missing segment must error")
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w := testWAL(t, dir, WALOptions{Sync: pol, SyncInterval: 5 * time.Millisecond})
			met := w.Metrics()
			for i := 0; i < 4; i++ {
				if _, err := w.AppendSamples(sampleBatch(i, 1)); err != nil {
					t.Fatal(err)
				}
			}
			switch pol {
			case SyncAlways:
				if met.Fsync.Count() < 4 {
					t.Fatalf("always: %d fsyncs, want >=4", met.Fsync.Count())
				}
			case SyncInterval:
				deadline := time.Now().Add(2 * time.Second)
				for met.Fsync.Count() == 0 && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				if met.Fsync.Count() == 0 {
					t.Fatal("interval: background flusher never fsynced")
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// Whatever the policy, a graceful close makes all records readable.
			w2 := testWAL(t, dir, WALOptions{Sync: SyncOff})
			if got := replayAll(t, w2, 0); len(got) != 4 {
				t.Fatalf("%s: replayed %d, want 4", pol, len(got))
			}
			w2.Close()
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Interval": SyncInterval, "off": SyncOff, "none": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy must error")
	}
}

func TestWALRejectsOversizedAndEmptyPayloads(t *testing.T) {
	w := testWAL(t, t.TempDir(), WALOptions{Sync: SyncOff})
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty payload must error")
	}
	if _, err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized payload must error")
	}
	if w.LastSeq() != 0 {
		t.Fatalf("rejected appends must not consume sequence numbers, LastSeq=%d", w.LastSeq())
	}
}

// TestWALAdvanceTo: the recovery escape hatch for a checkpoint claiming
// sequences beyond the tail — the counter jumps forward onto a fresh
// segment, so fresh appends can never collide with a covered range.
func TestWALAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff})
	for i := 0; i < 3; i++ {
		if _, err := w.AppendSamples(sampleBatch(i*10, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AdvanceTo(2); err != nil { // below the tail: no-op
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != 3 {
		t.Fatalf("LastSeq=%d after no-op advance, want 3", got)
	}
	if err := w.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != 10 {
		t.Fatalf("LastSeq=%d after advance, want 10", got)
	}
	seq, err := w.AppendSamples(sampleBatch(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("append after advance got seq %d, want 11", seq)
	}
	got := replayAll(t, w, 10)
	if len(got) != 1 || got[0].Seq != 11 || len(got[0].Samples) != 2 {
		t.Fatalf("replay past the advanced range: %+v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: numbering continues past the advanced range.
	w2 := testWAL(t, dir, WALOptions{Sync: SyncOff})
	if got := w2.LastSeq(); got != 11 {
		t.Fatalf("reopened LastSeq=%d, want 11", got)
	}
	w2.Close()
}

// TestWALAppendSamplesChunked: batches whose encoding exceeds the
// per-record bound are split across records instead of rejected — an
// acked batch must always reach the log. Exercised against a small
// bound so the test does not materialize a half-GiB batch.
func TestWALAppendSamplesChunked(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, dir, WALOptions{Sync: SyncOff})
	defer w.Close()
	batch := sampleBatch(0, 10)
	seq, err := w.appendSamplesChunked(batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 || w.LastSeq() != 4 { // ceil(10/3) records
		t.Fatalf("seq=%d LastSeq=%d, want 4 records", seq, w.LastSeq())
	}
	var got []stream.Sample
	var sizes []int
	for _, e := range replayAll(t, w, 0) {
		if e.Kind != EntrySamples {
			t.Fatalf("unexpected kind %d", e.Kind)
		}
		sizes = append(sizes, len(e.Samples))
		got = append(got, e.Samples...)
	}
	if len(sizes) != 4 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 3 || sizes[3] != 1 {
		t.Fatalf("chunk sizes %v, want [3 3 3 1]", sizes)
	}
	if len(got) != len(batch) {
		t.Fatalf("replayed %d samples, want %d", len(got), len(batch))
	}
	for i := range got {
		if got[i] != batch[i] {
			t.Fatalf("sample %d reordered: got %+v want %+v", i, got[i], batch[i])
		}
	}
}

// TestMaxSamplesPerRecordBound: the chunk bound is the exact maximum —
// one more sample would overflow MaxRecordBytes.
func TestMaxSamplesPerRecordBound(t *testing.T) {
	if 5+maxSamplesPerRecord*sampleWire > MaxRecordBytes {
		t.Fatal("maxSamplesPerRecord encodes past MaxRecordBytes")
	}
	if 5+(maxSamplesPerRecord+1)*sampleWire <= MaxRecordBytes {
		t.Fatal("maxSamplesPerRecord is not maximal")
	}
}
