package store

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Benchmarks for the durable-state layer. `make bench-recovery` archives
// these as BENCH_recovery.json: the WAL append cost under each fsync
// policy is the per-observe durability tax, the replay and recovery rows
// are the restart-time budget (the paper's online setting has no offline
// retraining window, so recovery time is serving downtime).

func benchSamples(n int) []stream.Sample {
	ss := make([]stream.Sample, n)
	for i := range ss {
		ss[i] = stream.Sample{
			Time:    time.Duration(i) * time.Millisecond,
			User:    i % 140,
			Service: i % 4500,
			Value:   0.5 + float64(i%40)/10,
		}
	}
	return ss
}

func quietLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// BenchmarkWALAppend measures one batched observe journal append (16
// samples per record, the common HTTP batch shape) under each fsync
// policy. The always row is a real fsync per op — expect disk, not CPU.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncOff, SyncInterval, SyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			w, err := OpenWAL(b.TempDir(), WALOptions{Sync: pol, Logger: quietLog()})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batch := benchSamples(16)
			b.SetBytes(int64(len(EncodeSamples(batch))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.AppendSamples(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func openBenchWAL(b *testing.B, pol SyncPolicy) *WAL {
	b.Helper()
	w, err := OpenWAL(b.TempDir(), WALOptions{Sync: pol, Logger: quietLog()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() })
	return w
}

func medianNs(ds []time.Duration) float64 {
	cp := append([]time.Duration(nil), ds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return float64(cp[len(cp)/2])
}

// BenchmarkWALGroupCommit measures the durable-ack cost per append when P
// concurrent writers contend for the log, pairing the three policies
// inside one iteration so they see identical filesystem state:
//
//   - always: AppendSamples alone — the record is durable when Append
//     returns (one fsync per record, serialized under the WAL mutex).
//   - group: AppendSamples + WaitDurable — the same durability guarantee,
//     but concurrent writers share one covering fsync per window.
//   - interval: AppendSamples alone — the bounded-loss baseline (no
//     fsync on the append path at all), the floor group commit chases.
//
// Writers each issue a few back-to-back appends so the group window sees
// sustained concurrency rather than a single synchronized burst. The
// group-speedup-x extra is the acceptance metric: durable acks per
// second under group vs always at the same writer count.
func BenchmarkWALGroupCommit(b *testing.B) {
	const opsPerWriter = 4
	batch := benchSamples(16)
	for _, p := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			wAlways := openBenchWAL(b, SyncAlways)
			wGroup := openBenchWAL(b, SyncGroup)
			wInterval := openBenchWAL(b, SyncInterval)
			arm := func(w *WAL, waitDurable bool) time.Duration {
				var wg sync.WaitGroup
				start := time.Now()
				for g := 0; g < p; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < opsPerWriter; k++ {
							seq, err := w.AppendSamples(batch)
							if err != nil {
								b.Error(err)
								return
							}
							if waitDurable {
								if err := w.WaitDurable(seq); err != nil {
									b.Error(err)
								}
							}
						}
					}()
				}
				wg.Wait()
				return time.Since(start)
			}
			al := make([]time.Duration, b.N)
			gl := make([]time.Duration, b.N)
			il := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				al[i] = arm(wAlways, false)
				gl[i] = arm(wGroup, true)
				il[i] = arm(wInterval, false)
			}
			b.StopTimer()
			ops := float64(p * opsPerWriter)
			a50, g50, i50 := medianNs(al), medianNs(gl), medianNs(il)
			b.ReportMetric(a50/ops, "always-p50-ns/append")
			b.ReportMetric(g50/ops, "group-p50-ns/append")
			b.ReportMetric(i50/ops, "interval-p50-ns/append")
			b.ReportMetric(a50/g50, "group-speedup-x")
		})
	}
}

// BenchmarkWALReplay measures decoding + callback dispatch over a
// prebuilt log: the per-record half of crash-recovery cost.
func BenchmarkWALReplay(b *testing.B) {
	for _, records := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			w, err := OpenWAL(dir, WALOptions{Sync: SyncOff, Logger: quietLog()})
			if err != nil {
				b.Fatal(err)
			}
			batch := benchSamples(16)
			for i := 0; i < records; i++ {
				if _, err := w.AppendSamples(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := OpenWAL(dir, WALOptions{Sync: SyncOff, Logger: quietLog()})
				if err != nil {
					b.Fatal(err)
				}
				var n int
				if err := r.Replay(0, func(e Entry) error { n += len(e.Samples); return nil }); err != nil {
					b.Fatal(err)
				}
				if n != records*len(batch) {
					b.Fatalf("replayed %d samples, want %d", n, records*len(batch))
				}
				r.Close()
			}
		})
	}
}

// BenchmarkCheckpoint measures one full checkpoint cycle on a manager
// (capture + atomic temp→fsync→rename + retention prune + WAL rotate +
// truncate) for a fixed-size state blob.
func BenchmarkCheckpoint(b *testing.B) {
	for _, kb := range []int{64, 1024} {
		b.Run(fmt.Sprintf("state=%dKiB", kb), func(b *testing.B) {
			m, err := Open(b.TempDir(), Options{Sync: SyncOff, CheckpointInterval: time.Hour, Logger: quietLog()})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			if _, err := m.Recover(func([]byte) error { return nil }, func(Entry) error { return nil }); err != nil {
				b.Fatal(err)
			}
			blob := make([]byte, kb<<10)
			m.SetCaptureForTest(func() (uint64, []byte, error) { return m.WAL().LastSeq(), blob, nil })
			batch := benchSamples(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.WAL().AppendSamples(batch); err != nil {
					b.Fatal(err)
				}
				if err := m.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures the manager's full restart path — open the
// directory, restore the newest checkpoint, replay the WAL tail — over a
// log that carries the given number of 16-sample records past the
// checkpoint. This is the downtime a crash costs.
func BenchmarkRecovery(b *testing.B) {
	for _, records := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("tail=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			m, err := Open(dir, Options{Sync: SyncOff, CheckpointInterval: time.Hour, Logger: quietLog()})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Recover(func([]byte) error { return nil }, func(Entry) error { return nil }); err != nil {
				b.Fatal(err)
			}
			blob := make([]byte, 256<<10)
			m.SetCaptureForTest(func() (uint64, []byte, error) { return m.WAL().LastSeq(), blob, nil })
			batch := benchSamples(16)
			if _, err := m.WAL().AppendSamples(batch); err != nil {
				b.Fatal(err)
			}
			if err := m.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if _, err := m.WAL().AppendSamples(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
			want := records * len(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(dir, Options{Sync: SyncOff, CheckpointInterval: time.Hour, Logger: quietLog()})
				if err != nil {
					b.Fatal(err)
				}
				var samples int
				rs, err := r.Recover(func([]byte) error { return nil }, func(e Entry) error {
					samples += len(e.Samples)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rs.HaveCheckpoint || samples != want {
					b.Fatalf("recovery: checkpoint=%v samples=%d want=%d", rs.HaveCheckpoint, samples, want)
				}
				r.Close()
			}
		})
	}
}
