package store

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func openForFenceTest(t *testing.T, dir string, check time.Duration) *Manager {
	t.Helper()
	m, err := Open(dir, Options{
		Sync:               SyncAlways,
		CheckpointInterval: time.Hour,
		FenceCheckInterval: check,
		Logger:             quietLogger(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func waitFenced(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("manager never fenced after takeover")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpenFencesPreviousOwner is the shared-storage takeover scenario:
// a second Open of the same directory (the promoted follower) bumps the
// claim epoch, and the first owner (the partitioned ex-leader) fences
// itself within one check interval — its appends, checkpoints, and
// truncations all fail instead of corrupting the new owner's lineage.
func TestOpenFencesPreviousOwner(t *testing.T) {
	dir := t.TempDir()
	old := openForFenceTest(t, dir, 5*time.Millisecond)
	if old.Epoch() == 0 {
		t.Fatal("first Open should claim epoch >= 1")
	}
	if _, err := old.WAL().AppendSamples([]stream.Sample{{User: 1, Service: 1, Value: 1}}); err != nil {
		t.Fatalf("append before takeover: %v", err)
	}

	niu := openForFenceTest(t, dir, time.Hour)
	if niu.Epoch() != old.Epoch()+1 {
		t.Fatalf("takeover epoch = %d, want %d", niu.Epoch(), old.Epoch()+1)
	}
	waitFenced(t, old)

	if _, err := old.WAL().AppendSamples([]stream.Sample{{User: 2, Service: 2, Value: 2}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after fence: err = %v, want ErrFenced", err)
	}
	old.SetCaptureForTest(func() (uint64, []byte, error) { return 1, []byte("x"), nil })
	if err := old.Checkpoint(); !errors.Is(err, ErrFenced) {
		t.Fatalf("checkpoint after fence: err = %v, want ErrFenced", err)
	}
	if err := old.WAL().TruncateThrough(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("truncate after fence: err = %v, want ErrFenced", err)
	}
	// The new owner is unaffected.
	if _, err := niu.WAL().AppendSamples([]stream.Sample{{User: 3, Service: 3, Value: 3}}); err != nil {
		t.Fatalf("new owner append: %v", err)
	}
	// Closing a fenced manager must not flush buffered bytes into the
	// new owner's segment files.
	if err := old.Close(); err != nil {
		t.Fatalf("close fenced manager: %v", err)
	}
}

// TestCheckpointRechecksClaim pins the narrow race the watcher's poll
// interval leaves open: even with fence checks effectively disabled, a
// checkpoint must notice the takeover right before its durable write.
func TestCheckpointRechecksClaim(t *testing.T) {
	dir := t.TempDir()
	old := openForFenceTest(t, dir, time.Hour) // watcher never fires in time
	old.SetCaptureForTest(func() (uint64, []byte, error) { return 0, []byte("x"), nil })
	if err := old.Checkpoint(); err != nil {
		t.Fatalf("checkpoint before takeover: %v", err)
	}
	openForFenceTest(t, dir, time.Hour)
	if err := old.Checkpoint(); !errors.Is(err, ErrFenced) {
		t.Fatalf("checkpoint after takeover: err = %v, want ErrFenced", err)
	}
	if !old.Fenced() {
		t.Fatal("failed checkpoint should have fenced the manager")
	}
}

// TestFenceManualAndCallback covers the demotion path: Fence() flips
// the manager immediately and the OnFence callback fires exactly once.
func TestFenceManualAndCallback(t *testing.T) {
	m := openForFenceTest(t, t.TempDir(), time.Hour)
	var calls atomic.Int32
	m.SetOnFence(func() { calls.Add(1) })
	m.Fence("test demotion")
	m.Fence("again") // idempotent
	if !m.Fenced() {
		t.Fatal("Fence did not fence")
	}
	// The callback runs on its own goroutine (fencing inside a demotion
	// lock must not deadlock) — wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("onFence fired %d times, want 1", n)
	}
	if _, err := m.WAL().Append([]byte("p")); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after manual fence: err = %v, want ErrFenced", err)
	}
}
