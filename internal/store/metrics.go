package store

import (
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/obs"
)

// Metrics is the durable-state layer's instrumentation sink: lock-free
// histograms and atomic counters that the WAL, checkpointer, and
// recovery path record into unconditionally (a few atomic adds — there
// is no off switch). The server registers one Metrics instance on its
// /metrics registry as the amf_wal_* / amf_checkpoint_* /
// amf_recovery_* families.
type Metrics struct {
	// Fsync is the latency of WAL fsyncs (seconds).
	Fsync *obs.Histogram
	// Checkpoint is the end-to-end checkpoint latency (state capture +
	// atomic write + WAL truncation), in seconds.
	Checkpoint *obs.Histogram
	// GroupBatch is the number of records covered by each group-commit
	// fsync — the batching factor concurrent writers actually achieved.
	GroupBatch *obs.Histogram

	// GroupCommits counts group-commit fsyncs (each covers one batch).
	GroupCommits atomic.Int64

	// Appends counts records appended to the WAL.
	Appends atomic.Int64
	// Bytes counts bytes appended to the WAL (headers included).
	Bytes atomic.Int64
	// Errors counts failed WAL operations (append, flush, fsync).
	Errors atomic.Int64
	// TornTruncations counts torn tails truncated at open — each one is
	// a crash the log recovered from.
	TornTruncations atomic.Int64
	// Segments gauges the live WAL segment files.
	Segments atomic.Int64

	// Checkpoints counts checkpoints successfully written.
	Checkpoints atomic.Int64
	// LastCheckpointNano is the UnixNano of the last successful
	// checkpoint (0 until the first).
	LastCheckpointNano atomic.Int64
	// RecoveryReplayed counts observations replayed from the WAL tail
	// during crash recovery.
	RecoveryReplayed atomic.Int64

	startNano int64
}

// NewMetrics creates an empty sink. Fsyncs land in [1µs, 60s);
// checkpoints in [100µs, 10min).
func NewMetrics() *Metrics {
	return &Metrics{
		Fsync:      obs.NewHistogram(1e-6, 60, 8),
		Checkpoint: obs.NewHistogram(1e-4, 600, 8),
		GroupBatch: obs.NewHistogram(1, 1e6, 8),
		startNano:  time.Now().UnixNano(),
	}
}

// CheckpointAge returns the seconds since the last successful
// checkpoint, or since the sink was created when none has been written
// yet — either way, the age of the state an operator would lose the WAL
// tail's worth of replay over.
func (m *Metrics) CheckpointAge() float64 {
	last := m.LastCheckpointNano.Load()
	if last == 0 {
		last = m.startNano
	}
	age := time.Now().UnixNano() - last
	if age < 0 {
		age = 0
	}
	return float64(age) / 1e9
}
