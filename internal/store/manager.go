package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a Manager. The zero value gets defaults.
type Options struct {
	// SegmentBytes is the WAL rotation threshold (default 64 MiB).
	SegmentBytes int64
	// Sync is the WAL fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the flush cadence under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// GroupWindow is the max-latency bound under SyncGroup (default
	// DefaultGroupWindow).
	GroupWindow time.Duration
	// GroupBytes is the early-fsync byte trigger under SyncGroup
	// (default DefaultGroupBytes).
	GroupBytes int64
	// CheckpointInterval is the background checkpoint cadence
	// (default 1 minute).
	CheckpointInterval time.Duration
	// Retain is how many checkpoints to keep (default 3).
	Retain int
	// FenceCheckInterval is how often the manager re-reads the LOCK
	// file to detect that another process claimed the directory
	// (default DefaultFenceCheckInterval; see fence.go).
	FenceCheckInterval time.Duration
	// Logger receives lifecycle and warning events (default slog.Default()).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = time.Minute
	}
	if o.FenceCheckInterval <= 0 {
		o.FenceCheckInterval = DefaultFenceCheckInterval
	}
	if o.Retain <= 0 {
		o.Retain = DefaultRetain
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	// HaveCheckpoint reports whether a checkpoint was restored.
	HaveCheckpoint bool
	// CheckpointSeq is the restored checkpoint's sequence number.
	CheckpointSeq uint64
	// Entries is the number of WAL records replayed past the checkpoint.
	Entries int
	// Samples is the number of observations those records carried.
	Samples int
	// Removals is the number of churn-departure records replayed.
	Removals int
	// Registrations is the number of name⇄ID registration records
	// replayed.
	Registrations int
}

// Manager owns one service's durable state: a segmented WAL under
// <dir>/wal plus checkpoints under <dir>/checkpoints, and the background
// checkpointer that ties them together. Lifecycle:
//
//	m, _ := store.Open(dir, opts)
//	stats, _ := m.Recover(restoreState, replayEntry) // before serving
//	engine.SetJournal(m.WAL())                       // start journaling
//	m.Start(captureState)                            // periodic checkpoints
//	...
//	m.Checkpoint()                                   // final, on shutdown
//	m.Close()
type Manager struct {
	dir     string
	ckptDir string
	wal     *WAL
	met     *Metrics
	log     *slog.Logger
	opts    Options

	// ckptMu serializes checkpoints (background loop, HTTP trigger,
	// shutdown) and guards capture.
	ckptMu  sync.Mutex
	capture func() (seq uint64, data []byte, err error)

	// Directory claim (see fence.go): epoch and owner token from the
	// LOCK file written at Open; fenced flips when another claimant
	// appears (or Fence is called) and permanently disables mutations.
	epoch     uint64
	lockOwner string
	fenced    atomic.Bool
	onFence   atomic.Value // func()
	fenceStop chan struct{}
	fenceWG   sync.WaitGroup

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// Open creates or reopens a durable-state directory. Opening claims the
// directory: the LOCK file's epoch is bumped and a previous owner still
// running (a partitioned ex-leader on shared storage) fences itself
// within one FenceCheckInterval — see fence.go.
func Open(dir string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create checkpoint dir: %w", err)
	}
	met := NewMetrics()
	wal, err := OpenWAL(filepath.Join(dir, "wal"), WALOptions{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		GroupWindow:  opts.GroupWindow,
		GroupBytes:   opts.GroupBytes,
		Metrics:      met,
		Logger:       opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		dir:       dir,
		ckptDir:   ckptDir,
		wal:       wal,
		met:       met,
		log:       opts.Logger,
		opts:      opts,
		epoch:     lock.Epoch,
		lockOwner: lock.Owner,
		fenceStop: make(chan struct{}),
		stop:      make(chan struct{}),
	}
	m.fenceWG.Add(1)
	go m.fenceWatch()
	return m, nil
}

// WAL returns the manager's journal (the engine's Journal).
func (m *Manager) WAL() *WAL { return m.wal }

// Metrics returns the shared instrumentation sink.
func (m *Manager) Metrics() *Metrics { return m.met }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Recover rebuilds service state: it loads the newest valid checkpoint
// (calling restore with its blob), then replays every WAL record past
// the checkpoint's sequence number through replay, verifying sequence
// continuity. Call before serving and before the engine starts
// journaling — replayed entries are already in the log and must not be
// re-journaled.
func (m *Manager) Recover(restore func(data []byte) error, replay func(Entry) error) (RecoveryStats, error) {
	var rs RecoveryStats
	seq, data, ok, err := LoadNewestCheckpoint(m.ckptDir, m.log)
	if err != nil {
		return rs, err
	}
	if ok {
		if err := restore(data); err != nil {
			return rs, fmt.Errorf("store: restore checkpoint seq %d: %w", seq, err)
		}
		rs.HaveCheckpoint = true
		rs.CheckpointSeq = seq
	}
	if last := m.wal.LastSeq(); ok && seq > last {
		// The durable checkpoint claims sequence numbers the log no
		// longer has (lost WAL tail, wiped wal directory). The
		// checkpointed state itself is intact — every record <= seq is
		// reflected in the blob just restored — but any record that was
		// journaled AFTER the checkpoint is gone, and the WAL counter
		// sits below the covered range: left alone, fresh acked appends
		// would reuse sequence numbers <= seq and the next recovery
		// would silently skip them. Shout, then advance the counter past
		// the covered range so a collision is structurally impossible.
		m.log.Error("wal tail missing: checkpoint covers sequences beyond the log; "+
			"records journaled after the checkpoint are lost",
			"checkpoint_seq", seq, "wal_last_seq", last)
		if err := m.wal.AdvanceTo(seq); err != nil {
			return rs, fmt.Errorf("store: advance wal past checkpoint seq %d: %w", seq, err)
		}
	}
	err = m.wal.Replay(seq, func(e Entry) error {
		if err := replay(e); err != nil {
			return err
		}
		rs.Entries++
		switch e.Kind {
		case EntrySamples:
			rs.Samples += len(e.Samples)
			m.met.RecoveryReplayed.Add(int64(len(e.Samples)))
		case EntryRegisterUser, EntryRegisterService:
			rs.Registrations++
		default:
			rs.Removals++
		}
		return nil
	})
	if err != nil {
		return rs, err
	}
	if rs.HaveCheckpoint || rs.Entries > 0 {
		m.log.Info("durable state recovered",
			"checkpoint_seq", rs.CheckpointSeq, "wal_entries", rs.Entries,
			"samples_replayed", rs.Samples, "removals_replayed", rs.Removals)
	}
	return rs, nil
}

// Start launches the background checkpointer. capture must return a
// state blob plus the WAL sequence number it covers — every record with
// seq <= the returned value must be reflected in the blob. The engine
// provides exactly that via CheckpointSeq (journal-then-apply under one
// lock) followed by a view snapshot.
func (m *Manager) Start(capture func() (seq uint64, data []byte, err error)) {
	m.ckptMu.Lock()
	if m.started || m.closed {
		m.ckptMu.Unlock()
		return
	}
	m.capture = capture
	m.started = true
	m.ckptMu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.opts.CheckpointInterval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				if err := m.Checkpoint(); err != nil {
					m.log.Warn("background checkpoint failed", "err", err)
				}
			}
		}
	}()
}

// Checkpoint captures the current state, writes it atomically, prunes
// old checkpoints, and truncates WAL segments the new checkpoint wholly
// covers. Safe to call concurrently with serving traffic; checkpoints
// themselves serialize.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if m.capture == nil {
		return errors.New("store: no capture function; call Start first")
	}
	if m.fenced.Load() {
		return ErrFenced
	}
	start := time.Now()
	seq, data, err := m.capture()
	if err != nil {
		return fmt.Errorf("store: capture state: %w", err)
	}
	// Fsync the WAL before durably publishing the checkpoint. The blob
	// reflects every record with seq <= the captured sequence number, but
	// under SyncInterval/SyncOff those records may still sit in the WAL's
	// buffer: without this barrier a crash could reopen the WAL below
	// seq, hand the SAME sequence numbers to fresh acked appends, and the
	// next recovery (this checkpoint still sorting newest) would silently
	// skip them in Replay. The invariant is: the WAL's durable tail is
	// always >= any durable checkpoint's claimed sequence.
	if err := m.wal.Sync(); err != nil {
		return fmt.Errorf("store: sync wal before checkpoint: %w", err)
	}
	// Re-verify the directory claim at the last moment: the fence
	// watcher only polls, and a checkpoint written (plus WAL segments
	// truncated) after a takeover would corrupt the new owner's
	// directory. One small file read against a multi-megabyte durable
	// write is cheap insurance.
	if m.checkFence() {
		return ErrFenced
	}
	if err := WriteCheckpoint(m.ckptDir, seq, data); err != nil {
		return err
	}
	if err := PruneCheckpoints(m.ckptDir, m.opts.Retain); err != nil {
		return err
	}
	if err := m.wal.TruncateThrough(seq); err != nil {
		return err
	}
	dur := time.Since(start)
	m.met.Checkpoint.Observe(dur.Seconds())
	m.met.Checkpoints.Add(1)
	m.met.LastCheckpointNano.Store(time.Now().UnixNano())
	m.log.Info("checkpoint written",
		"seq", seq, "bytes", len(data), "duration", dur,
		"wal_segments", m.wal.SegmentCount())
	return nil
}

// SetCaptureForTest installs the capture function without starting the
// background loop (manual Checkpoint calls only).
func (m *Manager) SetCaptureForTest(capture func() (uint64, []byte, error)) {
	m.ckptMu.Lock()
	m.capture = capture
	m.ckptMu.Unlock()
}

// Close stops the checkpointer and closes the WAL. It does NOT write a
// final checkpoint — callers that shut down gracefully should call
// Checkpoint first (amfserver does), so restart replays nothing.
func (m *Manager) Close() error {
	m.ckptMu.Lock()
	if m.closed {
		m.ckptMu.Unlock()
		return nil
	}
	m.closed = true
	started := m.started
	m.ckptMu.Unlock()
	close(m.fenceStop)
	m.fenceWG.Wait()
	if started {
		close(m.stop)
		m.wg.Wait()
	}
	return m.wal.Close()
}
