package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint files: checkpoint-<seq>.ckpt, written atomically via
// temp-file → fsync → rename → dir-fsync. Format:
//
//	8B  magic "AMFCKPT1"
//	u64 sequence number the state covers (all WAL records <= seq)
//	u32 CRC32C of the state blob
//	u64 state blob length
//	state blob
const (
	ckptMagic  = "AMFCKPT1"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"

	// DefaultRetain is how many checkpoints PruneCheckpoints keeps by
	// default: the newest plus two fallbacks against corruption.
	DefaultRetain = 3

	// MaxCheckpointBytes bounds a checkpoint blob (1 GiB): enough for
	// millions of rank-64 user/service vectors, small enough to reject
	// a garbage length field without attempting the allocation.
	MaxCheckpointBytes = int64(1) << 30
)

func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

// WriteCheckpoint atomically persists a state blob covering all WAL
// records with sequence numbers <= seq. A crash at any point leaves
// either the previous checkpoint set or the new file complete — never a
// half-written checkpoint under the final name.
func WriteCheckpoint(dir string, seq uint64, data []byte) error {
	final := filepath.Join(dir, checkpointName(seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create checkpoint temp: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(data, crcTable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(data)))
	if _, err := bw.WriteString(ckptMagic); err == nil {
		_, err = bw.Write(hdr[:])
		if err == nil {
			_, err = bw.Write(data)
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish checkpoint: %w", err)
	}
	return syncDir(dir)
}

// listCheckpoints returns checkpoint sequence numbers in dir, ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list checkpoints: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // stray file; ignore
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// PruneCheckpoints removes all but the newest retain checkpoints.
func PruneCheckpoints(dir string, retain int) error {
	if retain < 1 {
		retain = 1
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	if len(seqs) <= retain {
		return nil
	}
	for _, seq := range seqs[:len(seqs)-retain] {
		if err := os.Remove(filepath.Join(dir, checkpointName(seq))); err != nil {
			return fmt.Errorf("store: prune checkpoint: %w", err)
		}
	}
	return syncDir(dir)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (seq uint64, data []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("store: open checkpoint: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(ckptMagic)+20)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, nil, fmt.Errorf("store: checkpoint header: %w", err)
	}
	if string(hdr[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, fmt.Errorf("store: checkpoint magic mismatch")
	}
	body := hdr[len(ckptMagic):]
	seq = binary.LittleEndian.Uint64(body[0:8])
	wantCRC := binary.LittleEndian.Uint32(body[8:12])
	n := int64(binary.LittleEndian.Uint64(body[12:20]))
	if n < 0 || n > MaxCheckpointBytes {
		return 0, nil, fmt.Errorf("store: checkpoint length %d out of range", n)
	}
	data = make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return 0, nil, fmt.Errorf("store: checkpoint body: %w", err)
	}
	if crc32.Checksum(data, crcTable) != wantCRC {
		return 0, nil, fmt.Errorf("store: checkpoint CRC mismatch")
	}
	return seq, data, nil
}

// LoadNewestCheckpoint returns the newest valid checkpoint in dir,
// falling back to older ones when a file fails validation (each fallback
// is logged — it means a checkpoint was corrupted on disk). ok is false
// when the directory holds no checkpoints at all; an error is returned
// when checkpoints exist but none validates, because silently starting
// empty would masquerade as data loss.
func LoadNewestCheckpoint(dir string, log *slog.Logger) (seq uint64, data []byte, ok bool, err error) {
	if log == nil {
		log = slog.Default()
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return 0, nil, false, err
	}
	if len(seqs) == 0 {
		return 0, nil, false, nil
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, checkpointName(seqs[i]))
		s, d, rerr := readCheckpoint(path)
		if rerr != nil {
			log.Warn("store: skipping invalid checkpoint", "path", path, "err", rerr)
			continue
		}
		return s, d, true, nil
	}
	return 0, nil, false, fmt.Errorf("store: %d checkpoint(s) present in %s but none valid", len(seqs), dir)
}
