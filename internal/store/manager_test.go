package store

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func openManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// TestManagerCheckpointAndRecover runs the full durable-state cycle:
// journal, checkpoint, journal a tail, crash (no final checkpoint),
// recover = restore + tail replay only.
func TestManagerCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncAlways})

	// "Apply" = collect samples into state; capture serializes it.
	var state []stream.Sample
	for i := 0; i < 5; i++ {
		if _, err := m.WAL().AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
		state = append(state, sampleBatch(i*10, 2)...)
	}
	m.SetCaptureForTest(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), EncodeSamples(state), nil
	})
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().Checkpoints.Load() != 1 {
		t.Fatal("checkpoint counter not bumped")
	}
	// Tail past the checkpoint.
	if _, err := m.WAL().AppendSamples(sampleBatch(900, 3)); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon without Close (SyncAlways ⇒ everything acked is on disk).

	m2 := openManager(t, dir, Options{Sync: SyncAlways})
	var restored []stream.Sample
	var tail []stream.Sample
	rs, err := m2.Recover(
		func(data []byte) error {
			ss, err := DecodeSamples(data)
			restored = ss
			return err
		},
		func(e Entry) error {
			if e.Kind != EntrySamples {
				return fmt.Errorf("unexpected kind %d", e.Kind)
			}
			tail = append(tail, e.Samples...)
			return nil
		})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rs.HaveCheckpoint || rs.CheckpointSeq != 5 {
		t.Fatalf("stats: %+v", rs)
	}
	if rs.Entries != 1 || rs.Samples != 3 {
		t.Fatalf("tail stats: %+v", rs)
	}
	if len(restored) != 10 {
		t.Fatalf("restored %d samples, want 10", len(restored))
	}
	want := sampleBatch(900, 3)
	if len(tail) != 3 || tail[0] != want[0] || tail[2] != want[2] {
		t.Fatalf("tail: %+v", tail)
	}
	if m2.Metrics().RecoveryReplayed.Load() != 3 {
		t.Fatalf("RecoveryReplayed=%d, want 3", m2.Metrics().RecoveryReplayed.Load())
	}
	m2.Close()
}

func TestManagerCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff, SegmentBytes: 200})
	for i := 0; i < 10; i++ {
		if _, err := m.WAL().AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if m.WAL().SegmentCount() < 3 {
		t.Fatalf("need rotation, got %d segments", m.WAL().SegmentCount())
	}
	m.SetCaptureForTest(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), []byte("full-state"), nil
	})
	before := m.WAL().SegmentCount()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := m.WAL().SegmentCount(); after >= before {
		t.Fatalf("checkpoint did not truncate segments (%d -> %d)", before, after)
	}
	// Recovery after the checkpoint replays nothing.
	m.Close()
	m2 := openManager(t, dir, Options{Sync: SyncOff})
	var blob []byte
	rs, err := m2.Recover(func(d []byte) error { blob = d; return nil }, func(Entry) error {
		t.Fatal("nothing should replay after a covering checkpoint")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HaveCheckpoint || !bytes.Equal(blob, []byte("full-state")) {
		t.Fatalf("recover: %+v blob=%q", rs, blob)
	}
	m2.Close()
}

func TestManagerBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff, CheckpointInterval: 10 * time.Millisecond})
	if _, err := m.WAL().AppendSamples(sampleBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	m.Start(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), []byte("bg"), nil
	})
	deadline := time.Now().Add(2 * time.Second)
	for m.Metrics().Checkpoints.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Metrics().Checkpoints.Load() == 0 {
		t.Fatal("background checkpointer never fired")
	}
	if m.Metrics().CheckpointAge() > 60 {
		t.Fatalf("checkpoint age implausible: %v", m.Metrics().CheckpointAge())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and Start after Close is a no-op.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m.Start(func() (uint64, []byte, error) { return 0, nil, nil })
}

func TestManagerCheckpointWithoutCapture(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	defer m.Close()
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint without capture must error")
	}
}

func TestRecoverRemovalEntries(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff})
	if _, err := m.WAL().AppendSamples(sampleBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WAL().AppendRemoveUser(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WAL().AppendRemoveService(2); err != nil {
		t.Fatal(err)
	}
	m.WAL().Sync()

	var kinds []EntryKind
	rs, err := m.Recover(func([]byte) error { return nil }, func(e Entry) error {
		kinds = append(kinds, e.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Removals != 2 || rs.Samples != 2 || len(kinds) != 3 {
		t.Fatalf("stats: %+v kinds=%v", rs, kinds)
	}
	if kinds[1] != EntryRemoveUser || kinds[2] != EntryRemoveService {
		t.Fatalf("kinds: %v", kinds)
	}
	m.Close()
}
