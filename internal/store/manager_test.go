package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func openManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// TestManagerCheckpointAndRecover runs the full durable-state cycle:
// journal, checkpoint, journal a tail, crash (no final checkpoint),
// recover = restore + tail replay only.
func TestManagerCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncAlways})

	// "Apply" = collect samples into state; capture serializes it.
	var state []stream.Sample
	for i := 0; i < 5; i++ {
		if _, err := m.WAL().AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
		state = append(state, sampleBatch(i*10, 2)...)
	}
	m.SetCaptureForTest(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), EncodeSamples(state), nil
	})
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().Checkpoints.Load() != 1 {
		t.Fatal("checkpoint counter not bumped")
	}
	// Tail past the checkpoint.
	if _, err := m.WAL().AppendSamples(sampleBatch(900, 3)); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon without Close (SyncAlways ⇒ everything acked is on disk).

	m2 := openManager(t, dir, Options{Sync: SyncAlways})
	var restored []stream.Sample
	var tail []stream.Sample
	rs, err := m2.Recover(
		func(data []byte) error {
			ss, err := DecodeSamples(data)
			restored = ss
			return err
		},
		func(e Entry) error {
			if e.Kind != EntrySamples {
				return fmt.Errorf("unexpected kind %d", e.Kind)
			}
			tail = append(tail, e.Samples...)
			return nil
		})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rs.HaveCheckpoint || rs.CheckpointSeq != 5 {
		t.Fatalf("stats: %+v", rs)
	}
	if rs.Entries != 1 || rs.Samples != 3 {
		t.Fatalf("tail stats: %+v", rs)
	}
	if len(restored) != 10 {
		t.Fatalf("restored %d samples, want 10", len(restored))
	}
	want := sampleBatch(900, 3)
	if len(tail) != 3 || tail[0] != want[0] || tail[2] != want[2] {
		t.Fatalf("tail: %+v", tail)
	}
	if m2.Metrics().RecoveryReplayed.Load() != 3 {
		t.Fatalf("RecoveryReplayed=%d, want 3", m2.Metrics().RecoveryReplayed.Load())
	}
	m2.Close()
}

func TestManagerCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff, SegmentBytes: 200})
	for i := 0; i < 10; i++ {
		if _, err := m.WAL().AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if m.WAL().SegmentCount() < 3 {
		t.Fatalf("need rotation, got %d segments", m.WAL().SegmentCount())
	}
	m.SetCaptureForTest(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), []byte("full-state"), nil
	})
	before := m.WAL().SegmentCount()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := m.WAL().SegmentCount(); after >= before {
		t.Fatalf("checkpoint did not truncate segments (%d -> %d)", before, after)
	}
	// Recovery after the checkpoint replays nothing.
	m.Close()
	m2 := openManager(t, dir, Options{Sync: SyncOff})
	var blob []byte
	rs, err := m2.Recover(func(d []byte) error { blob = d; return nil }, func(Entry) error {
		t.Fatal("nothing should replay after a covering checkpoint")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HaveCheckpoint || !bytes.Equal(blob, []byte("full-state")) {
		t.Fatalf("recover: %+v blob=%q", rs, blob)
	}
	m2.Close()
}

func TestManagerBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff, CheckpointInterval: 10 * time.Millisecond})
	if _, err := m.WAL().AppendSamples(sampleBatch(0, 1)); err != nil {
		t.Fatal(err)
	}
	m.Start(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), []byte("bg"), nil
	})
	deadline := time.Now().Add(2 * time.Second)
	for m.Metrics().Checkpoints.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Metrics().Checkpoints.Load() == 0 {
		t.Fatal("background checkpointer never fired")
	}
	if m.Metrics().CheckpointAge() > 60 {
		t.Fatalf("checkpoint age implausible: %v", m.Metrics().CheckpointAge())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and Start after Close is a no-op.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m.Start(func() (uint64, []byte, error) { return 0, nil, nil })
}

// TestCheckpointSyncsWALBeforeWrite: the WAL's durable tail must be >=
// any durable checkpoint's claimed sequence number. With SyncOff nothing
// flushes on its own, so Checkpoint itself must sync the log before
// publishing the checkpoint — otherwise a crash right after would reopen
// the WAL below the checkpoint's seq, hand already-covered sequence
// numbers to fresh acked appends, and the next recovery would silently
// skip them.
func TestCheckpointSyncsWALBeforeWrite(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff})
	for i := 0; i < 3; i++ {
		if _, err := m.WAL().AppendSamples(sampleBatch(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	m.SetCaptureForTest(func() (uint64, []byte, error) {
		return m.WAL().LastSeq(), []byte("state"), nil
	})
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// "Crash": reopen the wal directory without Close. Only bytes that
	// reached disk before the crash are visible; the checkpoint durably
	// claims seq 3, so the reopened log must already hold seq 3.
	w2 := testWAL(t, filepath.Join(dir, "wal"), WALOptions{Sync: SyncOff})
	if got := w2.LastSeq(); got != 3 {
		t.Fatalf("durable wal tail at seq %d < checkpoint seq 3 — Checkpoint did not sync the log first", got)
	}
	w2.Close()
	m.Close()
}

// TestRecoverCheckpointBeyondWALTail: a durable checkpoint claiming
// sequence numbers past the log's tail (lost WAL tail, wiped wal dir)
// must not leave the sequence counter below the covered range —
// otherwise fresh acked appends would reuse covered numbers and the
// NEXT recovery would silently skip them.
func TestRecoverCheckpointBeyondWALTail(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncAlways})
	if _, err := m.WAL().AppendSamples(sampleBatch(0, 2)); err != nil { // seq 1
		t.Fatal(err)
	}
	// A checkpoint whose covering WAL tail is gone: claims seq 10.
	if err := WriteCheckpoint(filepath.Join(dir, "checkpoints"), 10, []byte("state@10")); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	rs, err := m.Recover(func(d []byte) error { blob = d; return nil }, func(Entry) error {
		t.Fatal("records below the checkpoint must not replay")
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rs.HaveCheckpoint || rs.CheckpointSeq != 10 || string(blob) != "state@10" {
		t.Fatalf("recover: %+v blob=%q", rs, blob)
	}
	if got := m.WAL().LastSeq(); got != 10 {
		t.Fatalf("LastSeq=%d after recover, want 10 (counter must clear the covered range)", got)
	}
	seq, err := m.WAL().AppendSamples(sampleBatch(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("fresh append got seq %d, want 11", seq)
	}
	m.Close()

	// The point of the bump: a second recovery replays the post-restart
	// append instead of skipping it as already-checkpointed.
	m2 := openManager(t, dir, Options{Sync: SyncAlways})
	var tail []stream.Sample
	rs2, err := m2.Recover(func([]byte) error { return nil }, func(e Entry) error {
		tail = append(tail, e.Samples...)
		return nil
	})
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if rs2.CheckpointSeq != 10 || rs2.Entries != 1 || len(tail) != 3 {
		t.Fatalf("second recovery lost the post-restart append: %+v tail=%d", rs2, len(tail))
	}
	m2.Close()
}

func TestManagerCheckpointWithoutCapture(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{})
	defer m.Close()
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint without capture must error")
	}
}

func TestRecoverRemovalEntries(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, Options{Sync: SyncOff})
	if _, err := m.WAL().AppendSamples(sampleBatch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WAL().AppendRemoveUser(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WAL().AppendRemoveService(2); err != nil {
		t.Fatal(err)
	}
	m.WAL().Sync()

	var kinds []EntryKind
	rs, err := m.Recover(func([]byte) error { return nil }, func(e Entry) error {
		kinds = append(kinds, e.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Removals != 2 || rs.Samples != 2 || len(kinds) != 3 {
		t.Fatalf("stats: %+v kinds=%v", rs, kinds)
	}
	if kinds[1] != EntryRemoveUser || kinds[2] != EntryRemoveService {
		t.Fatalf("kinds: %v", kinds)
	}
	m.Close()
}
