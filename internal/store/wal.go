package store

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// SyncPolicy controls when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) flushes and fsyncs on a background
	// tick; crash loss is bounded by the flush window.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: an acked write is a durable
	// write. The slowest and safest policy.
	SyncAlways
	// SyncOff never fsyncs explicitly (buffers are still flushed on
	// rotation and close); the OS decides when data hits disk.
	SyncOff
	// SyncGroup batches concurrent appends under one fsync (group
	// commit): Append returns a sequence number immediately and
	// WaitDurable(seq) parks until a covering fsync lands. The commit
	// coordinator fsyncs as soon as a waiter is parked (so a lone writer
	// pays ~one fsync of latency, never the full window) and otherwise
	// within GroupWindow or GroupBytes of the first buffered byte.
	SyncGroup
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	case "group":
		return SyncGroup, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, group, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	case SyncGroup:
		return "group"
	}
	return "interval"
}

const (
	segMagic  = "AMFWAL1\n"
	segPrefix = "wal-"
	segSuffix = ".seg"

	// DefaultSegmentBytes is the rotation threshold: ~64 MiB keeps
	// truncation granular without drowning the directory in files.
	DefaultSegmentBytes = int64(64 << 20)
	// DefaultSyncInterval is the SyncInterval flush cadence.
	DefaultSyncInterval = 100 * time.Millisecond
	// DefaultGroupWindow bounds how long a SyncGroup append may sit
	// buffered before a covering fsync starts. It is a MAXIMUM latency
	// bound, not a batching delay: a parked WaitDurable triggers an
	// immediate fsync.
	DefaultGroupWindow = time.Millisecond
	// DefaultGroupBytes triggers an early group fsync once this many
	// bytes are buffered, regardless of the window.
	DefaultGroupBytes = int64(1 << 20)
)

// ErrWALFailed is returned by appends after a write error has poisoned
// the log: continuing to assign sequence numbers past an undefined tail
// would turn one bad write into an undetectable gap.
var ErrWALFailed = errors.New("store: wal failed; a previous append did not reach the log")

// WALOptions tunes a segmented log. The zero value gets defaults.
type WALOptions struct {
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size. Default DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the flush cadence under SyncInterval.
	SyncInterval time.Duration
	// GroupWindow is the max-latency bound under SyncGroup: a buffered
	// append is covered by an fsync no later than this after it was
	// written (sooner when a WaitDurable caller is parked or GroupBytes
	// accumulate). Default DefaultGroupWindow.
	GroupWindow time.Duration
	// GroupBytes triggers an early group fsync once this many buffered
	// bytes are pending under SyncGroup. Default DefaultGroupBytes.
	GroupBytes int64
	// Metrics is an optional shared sink (fsync latency, bytes,
	// segment gauge). NewMetrics() is used when nil.
	Metrics *Metrics
	// Logger receives torn-tail warnings (default slog.Default()).
	Logger *slog.Logger
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = DefaultGroupWindow
	}
	if o.GroupBytes <= 0 {
		o.GroupBytes = DefaultGroupBytes
	}
	if o.Metrics == nil {
		o.Metrics = NewMetrics()
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

type walSegment struct {
	name  string // file name within dir
	first uint64 // first sequence number the segment may contain
}

// WAL is a segmented, CRC-protected, length-prefixed binary log with
// contiguous sequence numbers. It is safe for concurrent use; appends
// serialize on one mutex (the engine has a single writer anyway).
type WAL struct {
	dir  string
	opts WALOptions
	met  *Metrics
	log  *slog.Logger

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	size     int64 // bytes in the current segment (incl. magic)
	seq      uint64
	segments []walSegment // sorted; last is the open one
	dirty    bool         // unflushed or un-fsynced bytes pending
	failed   bool
	fenced   bool // another process claimed the directory; see fence.go
	closed   bool

	// Group-commit state (see commitLoop). durable is the commit index:
	// every record with seq <= durable is on stable storage. waiters is
	// a min-heap ordered by seq so completion is published in seq order;
	// subs are commit-notification subscribers (replication long-poll,
	// see SubscribeCommits). syncing marks an fsync in flight outside
	// the mutex; syncDone is broadcast when it lands.
	durable      uint64
	durableAt    atomic.Uint64 // mirror of durable for lock-free reads
	waiters      durableWaiters
	subs         []chan struct{}
	syncing      bool
	syncDone     *sync.Cond // on mu
	commitCh     chan struct{}
	pendingSince time.Time // first buffered group append since last fsync start
	pendingBytes int64     // buffered group bytes since last fsync start

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
}

// durableWaiter is one parked WaitDurable call.
type durableWaiter struct {
	seq uint64
	ch  chan error // buffered(1); receives nil once durable, or the failure
}

// durableWaiters is a min-heap by seq (container/heap).
type durableWaiters []durableWaiter

func (h durableWaiters) Len() int            { return len(h) }
func (h durableWaiters) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h durableWaiters) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durableWaiters) Push(x interface{}) { *h = append(*h, x.(durableWaiter)) }
func (h *durableWaiters) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = durableWaiter{}
	*h = old[:n-1]
	return x
}

// OpenWAL opens (or creates) a segmented log in dir. The final segment's
// torn tail — a record cut short by a crash — is truncated away with a
// warning; the log then appends after the last intact record.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, met: opts.Metrics, log: opts.Logger}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w.segments = segs
	if len(segs) == 0 {
		if err := w.createSegmentLocked(1); err != nil {
			return nil, err
		}
		w.seq = 0
	} else {
		last := segs[len(segs)-1]
		path := filepath.Join(dir, last.name)
		validSize, lastSeq, torn, err := scanSegmentFile(path, last.first, nil)
		if err != nil {
			return nil, fmt.Errorf("store: open wal: %w", err)
		}
		if lastSeq == 0 {
			// No intact record in the final segment: the log's last
			// sequence number is whatever preceded this segment.
			lastSeq = last.first - 1
		}
		if torn > 0 {
			w.log.Warn("wal: truncating torn tail",
				"segment", last.name, "valid_bytes", validSize, "torn_bytes", torn)
			w.met.TornTruncations.Add(1)
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open wal segment: %w", err)
		}
		if torn > 0 {
			if err := f.Truncate(validSize); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		if _, err := f.Seek(validSize, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: seek wal segment: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 1<<16)
		w.size = validSize
		w.seq = lastSeq
		if validSize == 0 {
			// The whole file (magic included) was torn: rewrite the header.
			if _, err := w.bw.WriteString(segMagic); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: rewrite segment magic: %w", err)
			}
			w.size = int64(len(segMagic))
			w.dirty = true
		}
	}
	w.met.Segments.Store(int64(len(w.segments)))
	w.syncDone = sync.NewCond(&w.mu)
	// Everything intact on disk at open is durable by definition.
	w.durable = w.seq
	w.durableAt.Store(w.seq)
	switch opts.Sync {
	case SyncInterval:
		w.stopFlush = make(chan struct{})
		w.flushWG.Add(1)
		go w.flushLoop()
	case SyncGroup:
		w.stopFlush = make(chan struct{})
		w.commitCh = make(chan struct{}, 1)
		w.flushWG.Add(1)
		go w.commitLoop()
	}
	return w, nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list wal dir: %w", err)
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: malformed segment name %s", name)
		}
		segs = append(segs, walSegment{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("store: overlapping segments %s and %s", segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}

// scanSegmentFile walks a segment's records. For each intact record it
// calls fn (if non-nil). It returns the byte offset just past the last
// intact record, the last intact sequence number (0 if none), and how
// many trailing bytes form a torn (invalid) tail. Scanning stops at the
// first invalid byte; the caller decides whether a torn tail is
// tolerable (final segment) or fatal (interior segment).
func scanSegmentFile(path string, first uint64, fn func(seq uint64, payload []byte) error) (validSize int64, lastSeq uint64, torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: stat segment: %w", err)
	}
	fileSize := fi.Size()
	br := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		// Torn or missing header: nothing in this file is valid.
		return 0, 0, fileSize, nil
	}
	off := int64(len(segMagic))
	expected := first
	header := make([]byte, recHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF {
				return off, seqBefore(expected, first), 0, nil
			}
			return off, seqBefore(expected, first), fileSize - off, nil // torn header
		}
		plen, wantCRC, seq := decodeRecordHeader(header)
		if plen < 0 || plen > MaxRecordBytes || seq != expected {
			return off, seqBefore(expected, first), fileSize - off, nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, seqBefore(expected, first), fileSize - off, nil // torn payload
		}
		if recordCRC(seq, payload) != wantCRC {
			return off, seqBefore(expected, first), fileSize - off, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return off, seqBefore(expected, first), 0, err
			}
		}
		off += int64(recHeaderSize + plen)
		expected++
	}
}

// seqBefore converts the next-expected sequence back to the last seen
// one (0 when the segment held no intact records yet).
func seqBefore(expected, first uint64) uint64 {
	if expected == first {
		return 0
	}
	return expected - 1
}

// createSegmentLocked opens a fresh segment whose first record will be
// sequence number first, and fsyncs the directory so the file itself
// survives a crash.
func (w *WAL) createSegmentLocked(first uint64) error {
	name := segmentName(first)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	if _, err := w.bw.WriteString(segMagic); err != nil {
		return fmt.Errorf("store: write segment magic: %w", err)
	}
	w.size = int64(len(segMagic))
	w.dirty = true
	w.segments = append(w.segments, walSegment{name: name, first: first})
	w.met.Segments.Store(int64(len(w.segments)))
	if err := syncDir(w.dir); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Appends. These satisfy the engine's Journal interface.

// AppendSamples journals a batch of observations and returns the
// sequence number of the last record written. Batches that fit under
// MaxRecordBytes (the overwhelmingly common case — the bound is two
// orders of magnitude above a drain batch) become one record; larger
// batches are split into maximal chunks so NO batch size is ever
// rejected — an acked batch must always reach the log. A crash between
// chunks durably keeps a prefix of the batch, which recovery replays;
// that matches the at-most-flush-window loss contract of every non-
// SyncAlways policy, and under SyncAlways every chunk is on stable
// storage when this returns.
func (w *WAL) AppendSamples(ss []stream.Sample) (uint64, error) {
	return w.appendSamplesChunked(ss, maxSamplesPerRecord)
}

// appendSamplesChunked is AppendSamples with an explicit chunk bound,
// separated so tests can exercise the multi-record path without
// materializing half-gigabyte batches.
func (w *WAL) appendSamplesChunked(ss []stream.Sample, maxPerRecord int) (uint64, error) {
	if len(ss) <= maxPerRecord {
		return w.Append(EncodeSamples(ss))
	}
	var seq uint64
	for len(ss) > 0 {
		n := len(ss)
		if n > maxPerRecord {
			n = maxPerRecord
		}
		s, err := w.Append(EncodeSamples(ss[:n]))
		if err != nil {
			return seq, err
		}
		seq = s
		ss = ss[n:]
	}
	return seq, nil
}

// AppendRemoveUser journals a user churn departure.
func (w *WAL) AppendRemoveUser(id int) (uint64, error) {
	return w.Append(encodeRemove(EntryRemoveUser, id))
}

// AppendRemoveService journals a service churn departure.
func (w *WAL) AppendRemoveService(id int) (uint64, error) {
	return w.Append(encodeRemove(EntryRemoveService, id))
}

// AppendRegisterUser journals a user name⇄ID registration.
func (w *WAL) AppendRegisterUser(id int, name string) (uint64, error) {
	if len(name) == 0 || len(name) > MaxNameBytes {
		return 0, fmt.Errorf("store: register: name of %d bytes out of range", len(name))
	}
	return w.Append(encodeRegister(EntryRegisterUser, id, name))
}

// AppendRegisterService journals a service name⇄ID registration.
func (w *WAL) AppendRegisterService(id int, name string) (uint64, error) {
	if len(name) == 0 || len(name) > MaxNameBytes {
		return 0, fmt.Errorf("store: register: name of %d bytes out of range", len(name))
	}
	return w.Append(encodeRegister(EntryRegisterService, id, name))
}

// Append journals one opaque payload and returns its sequence number.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("store: append: payload of %d bytes out of range", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("store: append on closed wal")
	}
	if w.fenced {
		w.met.Errors.Add(1)
		return 0, ErrFenced
	}
	if w.failed {
		w.met.Errors.Add(1)
		return 0, ErrWALFailed
	}
	recSize := int64(recHeaderSize + len(payload))
	if w.size > int64(len(segMagic)) && w.size+recSize > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.failed = true
			w.met.Errors.Add(1)
			return 0, err
		}
	}
	rec := encodeRecord(w.seq+1, payload)
	if _, err := w.bw.Write(rec); err != nil {
		w.failed = true
		w.met.Errors.Add(1)
		return 0, fmt.Errorf("store: append: %w", err)
	}
	w.seq++
	w.size += recSize
	w.dirty = true
	w.met.Appends.Add(1)
	w.met.Bytes.Add(recSize)
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.syncLocked(); err != nil {
			return w.seq, err
		}
	case SyncGroup:
		if w.pendingSince.IsZero() {
			w.pendingSince = time.Now()
		}
		w.pendingBytes += recSize
		w.signalCommit()
	default:
		// Interval/off: the record is shippable (the replication tail is
		// LastSeq under lossy policies), so wake commit subscribers now.
		w.notifySubsLocked()
	}
	return w.seq, nil
}

// signalCommit nudges the group-commit coordinator (non-blocking; no-op
// for non-group policies).
func (w *WAL) signalCommit() {
	if w.commitCh == nil {
		return
	}
	select {
	case w.commitCh <- struct{}{}:
	default:
	}
}

// WaitDurable blocks until the record with the given sequence number is
// on stable storage, returning nil once it is. Under SyncAlways the
// record is durable before Append returns, so this is instant; under
// SyncOff durability is explicitly waived by policy and this returns nil
// immediately. A parked waiter is rejected with ErrFenced when the
// directory is fenced and ErrWALFailed when an append or fsync poisons
// the log — an error here means the ack MUST NOT be sent.
func (w *WAL) WaitDurable(seq uint64) error {
	if w.durableAt.Load() >= seq {
		return nil
	}
	w.mu.Lock()
	if seq <= w.durable {
		w.mu.Unlock()
		return nil
	}
	if w.fenced {
		w.mu.Unlock()
		return ErrFenced
	}
	if w.failed {
		w.mu.Unlock()
		return ErrWALFailed
	}
	if w.closed {
		w.mu.Unlock()
		return errors.New("store: wait-durable on closed wal")
	}
	if w.opts.Sync == SyncOff {
		w.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	heap.Push(&w.waiters, durableWaiter{seq: seq, ch: ch})
	w.mu.Unlock()
	// A parked waiter makes the pending window urgent: fsync now rather
	// than waiting out the latency bound.
	w.signalCommit()
	return <-ch
}

// DurableSeq returns the durable commit index: the highest sequence
// number known to be on stable storage. Under lossy policies (interval/
// off) durability is not tracked per record and the appended tail is
// returned — that is the shippable tail those policies promise.
func (w *WAL) DurableSeq() uint64 {
	if w.opts.Sync == SyncGroup || w.opts.Sync == SyncAlways {
		return w.durableAt.Load()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// GroupCommit reports whether this WAL runs the group-commit
// coordinator (fsync policy "group").
func (w *WAL) GroupCommit() bool { return w.opts.Sync == SyncGroup }

// SubscribeCommits registers a commit-notification channel: it receives
// (coalesced, non-blocking) signals whenever the shippable tail advances
// — a durable-commit-index advance under always/group, any append under
// interval/off — and on fence, failure, or close. The returned cancel
// func unregisters the channel.
func (w *WAL) SubscribeCommits() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	w.mu.Lock()
	w.subs = append(w.subs, ch)
	w.mu.Unlock()
	cancel := func() {
		w.mu.Lock()
		for i, c := range w.subs {
			if c == ch {
				w.subs = append(w.subs[:i], w.subs[i+1:]...)
				break
			}
		}
		w.mu.Unlock()
	}
	return ch, cancel
}

func (w *WAL) notifySubsLocked() {
	for _, ch := range w.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// advanceDurableLocked publishes a new durable commit index, completing
// parked waiters in seq order and waking commit subscribers.
func (w *WAL) advanceDurableLocked(seq uint64) {
	if seq <= w.durable {
		return
	}
	w.durable = seq
	w.durableAt.Store(seq)
	for len(w.waiters) > 0 && w.waiters[0].seq <= seq {
		wt := heap.Pop(&w.waiters).(durableWaiter)
		wt.ch <- nil
	}
	w.notifySubsLocked()
}

// failWaitersLocked rejects every parked waiter with err (fence, write
// failure, or close — in all three cases the covering fsync will never
// happen) and wakes subscribers so they observe the terminal state.
func (w *WAL) failWaitersLocked(err error) {
	for len(w.waiters) > 0 {
		wt := heap.Pop(&w.waiters).(durableWaiter)
		wt.ch <- err
	}
	w.notifySubsLocked()
}

// awaitSyncLocked blocks (releasing the mutex) until no group fsync is
// in flight. Rotation, Close, AdvanceTo, and inline syncs must not
// flush, close, or reuse the segment file underneath one.
func (w *WAL) awaitSyncLocked() {
	for w.syncing {
		w.syncDone.Wait()
	}
}

// oldestWaiterSeqLocked returns the smallest parked waiter seq, or
// ^uint64(0) when none is parked.
func (w *WAL) oldestWaiterSeqLocked() uint64 {
	if len(w.waiters) == 0 {
		return ^uint64(0)
	}
	return w.waiters[0].seq
}

// commitLoop is the SyncGroup coordinator. It sleeps until an append or
// waiter signals it, then fsyncs immediately when the window is urgent —
// a waiter is parked on an already-appended record, GroupBytes have
// accumulated, or the window expired — and otherwise dozes out the
// remainder of the window so independent appends coalesce. Batching
// under load arises naturally: appends arriving while an fsync is in
// flight buffer into the next window, so P concurrent durable writers
// share ~one fsync per device round-trip instead of paying one each.
func (w *WAL) commitLoop() {
	defer w.flushWG.Done()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-w.commitCh:
		}
		for {
			w.mu.Lock()
			if w.closed || w.fenced || w.failed {
				// Close/Fence/the failing sync already settled waiters.
				w.mu.Unlock()
				return
			}
			if w.durable == w.seq && !w.dirty {
				w.mu.Unlock()
				break // drained; park until the next signal
			}
			urgent := w.pendingBytes >= w.opts.GroupBytes ||
				w.oldestWaiterSeqLocked() <= w.seq
			var wait time.Duration
			if !urgent {
				wait = w.opts.GroupWindow - time.Since(w.pendingSince)
				if wait <= 0 {
					urgent = true
				}
			}
			if urgent {
				w.groupSyncLocked() // releases the mutex
				continue
			}
			w.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-w.stopFlush:
				t.Stop()
				return
			case <-w.commitCh:
				t.Stop()
			case <-t.C:
			}
		}
	}
}

// groupSyncLocked runs one group fsync covering everything appended so
// far. Called with the mutex held; returns with it released. The fsync
// itself runs OUTSIDE the mutex so appends keep flowing into the next
// window while the device round-trip is in flight — that overlap is the
// whole point of group commit.
func (w *WAL) groupSyncLocked() {
	defer w.mu.Unlock()
	w.awaitSyncLocked()
	if w.closed || w.fenced || w.failed {
		return
	}
	target := w.seq
	if target <= w.durable && !w.dirty {
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.failed = true
		w.met.Errors.Add(1)
		w.failWaitersLocked(ErrWALFailed)
		w.log.Warn("wal: group flush failed", "err", err)
		return
	}
	recs := target - w.durable
	f := w.f
	w.syncing = true
	w.dirty = false
	w.pendingSince = time.Time{}
	w.pendingBytes = 0
	w.mu.Unlock()

	start := time.Now()
	err := f.Sync()

	w.mu.Lock()
	w.syncing = false
	w.syncDone.Broadcast()
	if err != nil {
		w.failed = true
		w.met.Errors.Add(1)
		w.failWaitersLocked(ErrWALFailed)
		w.log.Warn("wal: group fsync failed", "err", err)
		return
	}
	w.met.Fsync.Observe(time.Since(start).Seconds())
	w.met.GroupCommits.Add(1)
	w.met.GroupBatch.Observe(float64(recs))
	if w.fenced {
		// The fence raced the fsync: the bytes hit disk, but the waiters
		// were already rejected and the lineage is abandoned — do not
		// advance the commit index of a log we no longer own.
		return
	}
	w.advanceDurableLocked(target)
}

// Sync flushes buffered appends and fsyncs the current segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	return w.syncLocked()
}

// Fence permanently disables mutations: appends, flushes, rotations,
// and truncations return ErrFenced, and bytes still sitting in the
// write buffer are dropped rather than flushed — the segment file's
// tail now belongs to the directory's new owner, and writing our
// buffered records over it would corrupt their log. See fence.go.
func (w *WAL) Fence() {
	w.mu.Lock()
	w.fenced = true
	// Drop — never flush — the displaced owner's pending window, and
	// reject every parked WaitDurable: their covering fsync will never
	// happen here.
	w.dirty = false
	w.pendingSince = time.Time{}
	w.pendingBytes = 0
	w.failWaitersLocked(ErrFenced)
	w.mu.Unlock()
}

func (w *WAL) syncLocked() error {
	// Never flush or fsync underneath an in-flight group fsync: the
	// coordinator owns the file until it lands.
	w.awaitSyncLocked()
	if w.fenced {
		return ErrFenced
	}
	if w.failed {
		// A poisoned log must not report a clean sync: callers like the
		// checkpoint barrier would otherwise claim sequence numbers past
		// an undefined tail.
		return ErrWALFailed
	}
	if !w.dirty {
		w.advanceDurableLocked(w.seq)
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.failed = true
		w.met.Errors.Add(1)
		w.failWaitersLocked(ErrWALFailed)
		return fmt.Errorf("store: flush wal: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.failed = true
		w.met.Errors.Add(1)
		w.failWaitersLocked(ErrWALFailed)
		return fmt.Errorf("store: fsync wal: %w", err)
	}
	w.met.Fsync.Observe(time.Since(start).Seconds())
	w.dirty = false
	w.pendingSince = time.Time{}
	w.pendingBytes = 0
	w.advanceDurableLocked(w.seq)
	return nil
}

func (w *WAL) flushLoop() {
	defer w.flushWG.Done()
	ticker := time.NewTicker(w.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed && !w.fenced && w.f != nil {
				if err := w.syncLocked(); err != nil {
					w.log.Warn("wal: background flush failed", "err", err)
				}
			}
			w.mu.Unlock()
		}
	}
}

// Rotate forces a fresh segment (the previous one is flushed, fsynced,
// and closed). Mostly useful before TruncateThrough, so the records just
// covered by a checkpoint stop sharing a file with new appends.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: rotate on closed wal")
	}
	return w.rotateLocked()
}

func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return w.createSegmentLocked(w.seq + 1)
}

// AdvanceTo raises the WAL's sequence counter to at least seq, rotating
// to a fresh segment (named seq+1) so per-segment numbering stays
// continuous. It is the recovery escape hatch for a durable checkpoint
// whose claimed sequence number exceeds the log's tail (a lost WAL tail
// or wiped wal directory): after the bump, fresh appends can never
// reuse sequence numbers the checkpoint already covers, so a later
// recovery can never mistake them for already-checkpointed records and
// silently skip them. No-op when seq <= LastSeq.
func (w *WAL) AdvanceTo(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: advance on closed wal")
	}
	if w.fenced {
		return ErrFenced
	}
	if seq <= w.seq {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	w.seq = seq
	return w.createSegmentLocked(seq + 1)
}

// TruncateThrough removes segments whose records all have sequence
// numbers <= seq — the durable cleanup after a checkpoint. The open
// segment is never removed, so sequence numbering stays continuous.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fenced {
		return ErrFenced
	}
	removed := 0
	for len(w.segments) > 1 && w.segments[1].first <= seq+1 {
		path := filepath.Join(w.dir, w.segments[0].name)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: truncate wal: %w", err)
		}
		w.segments = w.segments[1:]
		removed++
	}
	if removed > 0 {
		w.met.Segments.Store(int64(len(w.segments)))
		if err := syncDir(w.dir); err != nil {
			return err
		}
	}
	return nil
}

// Replay walks every record with sequence number > from, in order,
// decoding each into an Entry. It verifies continuity: the first
// delivered record must be from+1 and each subsequent one must follow
// directly — a gap means acked data was lost and recovery must not
// pretend otherwise. Replay must not run concurrently with appends; the
// recovery path calls it before the engine starts journaling. (The
// segment traversal itself is shared with StreamSince — see replicate.go.)
//
// The Entry handed to fn reuses one decode buffer across records:
// e.Samples is only valid during the callback, so a callback that
// retains samples must copy them out (recovery appliers copy element-
// wise anyway; this is what keeps a million-record replay at a handful
// of allocations instead of one slice per record).
func (w *WAL) Replay(from uint64, fn func(Entry) error) error {
	var scratch []stream.Sample
	return w.replayRaw(from, 0, func(seq uint64, payload []byte) error {
		e, err := decodeEntryInto(scratch, seq, payload)
		if err != nil {
			return fmt.Errorf("store: wal seq %d: %w", seq, err)
		}
		if cap(e.Samples) > cap(scratch) {
			scratch = e.Samples[:cap(e.Samples)]
		}
		return fn(e)
	})
}

// LastSeq returns the sequence number of the most recent append.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SegmentCount returns the number of live segment files.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

// Dir returns the segment directory.
func (w *WAL) Dir() string { return w.dir }

// Metrics returns the WAL's metric sink.
func (w *WAL) Metrics() *Metrics { return w.met }

// Close flushes, fsyncs, and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	stop := w.stopFlush
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		w.flushWG.Wait()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.awaitSyncLocked()
	var err error
	if w.f != nil {
		// A fenced log closes without flushing: the buffered bytes
		// belong to a lineage the directory's new owner has already
		// diverged from, and writing them would corrupt that log.
		if !w.fenced {
			if ferr := w.bw.Flush(); ferr != nil && err == nil {
				err = fmt.Errorf("store: close wal: %w", ferr)
			}
			if w.dirty {
				start := time.Now()
				if serr := w.f.Sync(); serr != nil && err == nil {
					err = fmt.Errorf("store: close wal: %w", serr)
				} else if serr == nil {
					w.met.Fsync.Observe(time.Since(start).Seconds())
				}
				w.dirty = false
			}
			if err == nil && !w.failed {
				// The close fsync covered the whole tail: complete any
				// waiters the stopped coordinator left behind.
				w.advanceDurableLocked(w.seq)
			}
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("store: close wal: %w", cerr)
		}
		w.f = nil
	}
	// Whatever is still parked can never become durable now.
	w.failWaitersLocked(errors.New("store: wal closed with waiters parked"))
	return err
}
