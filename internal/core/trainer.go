package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/stream"
)

// Trainer is the parallel training path: it spreads SGD updates for one
// Model across W worker goroutines so that training throughput scales
// with cores instead of being pinned to the single writer that the
// serving engine used through PR 3.
//
// The parallelization follows the paper's own distributed-extension
// argument (Sec. VI): concurrent updates for *different users* touch
// disjoint user vectors and conflict only on the shared service vectors.
// Concretely:
//
//   - Users are partitioned by ID: worker w exclusively owns every user
//     with id&(W−1) == w, which (because W divides tableShards) is
//     exactly the users in the model-table shards {si : si&(W−1) == w}.
//     User-side lookups, registrations, latent-vector updates, error-
//     tracker updates, and dirty marks are therefore lock-free — no
//     other goroutine ever touches those shards while a fan-out runs.
//
//   - Service state is shared, so service-side work serializes through a
//     power-of-two array of striped mutexes indexed by the service's
//     shard hash (stripe == model shard == view shard; see table.go).
//     One brief stripe hold covers the service lookup/registration, the
//     numeric update, and the dirty mark. Stripe acquisitions that had
//     to wait are counted in Metrics().StripeContention.
//
//   - TrainerConfig.Unsynchronized drops the stripe lock around the
//     numeric update (registration stays locked — Go maps cannot race).
//     This is Hogwild-style training: racy-but-benign float updates for
//     benchmarking the cost of the stripes. It is NOT race-detector
//     clean by design; never enable it outside benchmarks.
//
// Every fan-out is fork-join: the coordinator (whoever calls Apply /
// ReplaySteps / Fit) dispatches per-worker batches and waits for all
// workers to finish before returning. Between fan-outs the workers are
// quiescent, so the single-threaded Model API (BuildView, RefreshView,
// Snapshot, RemoveUser, ...) remains safe to call from the coordinator
// exactly as before — the serving engine publishes views only between
// batches.
//
// With Workers == 1 the Trainer delegates to the exact serial Model code
// paths (Observe, ReplayStep, Fit), reproducing them bit for bit — the
// determinism contract behind the engine's -train-workers=1 mode.
type Trainer struct {
	m       *Model
	workers int
	unsync  bool

	stripes []stripeMutex // len tableShards; stripes[si] guards services shard si
	rngs    []*rand.Rand  // per-worker entity-init / shuffle randomness
	pools   []*stream.Pool
	parts   [][]stream.Sample // reusable partition scratch, len workers
	counts  []workerCount     // per-fan-out results, len workers

	tasks  []chan trainTask
	wg     sync.WaitGroup
	closed bool

	metrics *TrainerMetrics
}

// MaxTrainWorkers is the upper bound on Trainer workers: the model-table
// shard count, so worker ownership always aligns with table shards.
const MaxTrainWorkers = tableShards

// TrainerConfig tunes a Trainer. The zero value gets sensible defaults.
type TrainerConfig struct {
	// Workers is the number of training workers W. It is rounded down to
	// a power of two and clamped to [1, 64] (the model-table shard
	// count, so worker ownership aligns with table shards). 0 means
	// GOMAXPROCS rounded down to a power of two.
	Workers int
	// Unsynchronized enables Hogwild-style service updates: the numeric
	// part of each update runs outside the stripe lock. Benchmarking
	// only — see the type comment.
	Unsynchronized bool
	// Metrics optionally supplies an existing instrumentation set to
	// record into instead of allocating a fresh one — the serving engine
	// uses this so a trainer rebuilt on Restore keeps the same series
	// its /metrics scrape is bound to. Nil allocates new metrics.
	Metrics *TrainerMetrics
}

// TrainerMetrics is the trainer's instrumentation, maintained always
// (recording is a few atomic adds). The server exposes these as the
// amf_train_* families on /metrics.
type TrainerMetrics struct {
	// Apply records one observation per worker per fan-out: the wall
	// time that worker spent applying its slice of the batch (seconds).
	Apply *obs.Histogram
	// StripeContention counts service-stripe acquisitions that found the
	// stripe already held by another worker (TryLock failed).
	StripeContention *obs.Counter
	// Batches counts coordinator fan-outs (Apply/replay/fit epochs).
	Batches *obs.Counter
}

// stripeMutex is a mutex padded out to a cache line so adjacent stripes
// do not false-share under contention.
type stripeMutex struct {
	sync.Mutex
	_ [56]byte
}

// workerCount is a per-worker fan-out result slot, padded so workers
// writing their own slot do not bounce a shared cache line.
type workerCount struct {
	steps   int     // samples visited (picks, in replay terms)
	updates int     // SGD updates actually applied
	errSum  float64 // training-error partial sum (fit error pass)
	errN    int     // training-error partial count
	_       [16]byte
}

type trainTask struct {
	fn func(w int)
	wg *sync.WaitGroup
}

// NewTrainer creates a parallel trainer for the model and starts its
// worker goroutines. The caller must not mutate the model directly while
// a trainer call is in flight (reads between calls are fine — workers
// are quiescent outside fan-outs). Close releases the workers.
func NewTrainer(m *Model, cfg TrainerConfig) *Trainer {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Round down to a power of two so ownership is a mask, clamp to the
	// table shard count so worker partitions align with table shards.
	p := 1
	for p*2 <= w && p*2 <= tableShards {
		p *= 2
	}
	w = p
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = &TrainerMetrics{
			Apply:            obs.NewHistogram(1e-9, 60, 8),
			StripeContention: &obs.Counter{},
			Batches:          &obs.Counter{},
		}
	}
	tr := &Trainer{
		m:       m,
		workers: w,
		unsync:  cfg.Unsynchronized,
		stripes: make([]stripeMutex, tableShards),
		rngs:    make([]*rand.Rand, w),
		pools:   make([]*stream.Pool, w),
		parts:   make([][]stream.Sample, w),
		counts:  make([]workerCount, w),
		tasks:   make([]chan trainTask, w),
		metrics: metrics,
	}
	for i := 0; i < w; i++ {
		// Deterministic per-worker seeds, disjoint from the model's own
		// generator (cfg.Seed) and pool (cfg.Seed+1).
		seed := m.cfg.Seed + int64(1000*(i+2))
		tr.rngs[i] = rand.New(rand.NewSource(seed))
		tr.pools[i] = stream.NewPool(m.cfg.Expiry, seed+1)
	}
	if w > 1 {
		for i := 0; i < w; i++ {
			tr.tasks[i] = make(chan trainTask)
			tr.wg.Add(1)
			go tr.worker(i)
		}
	}
	return tr
}

// Workers returns the effective worker count (after rounding/clamping).
func (tr *Trainer) Workers() int { return tr.workers }

// Unsynchronized reports whether Hogwild mode is enabled.
func (tr *Trainer) Unsynchronized() bool { return tr.unsync }

// Metrics returns the trainer's instrumentation.
func (tr *Trainer) Metrics() *TrainerMetrics { return tr.metrics }

// Close stops the worker goroutines. Idempotent. The model remains
// usable through its own serial API afterwards.
func (tr *Trainer) Close() {
	if tr.closed {
		return
	}
	tr.closed = true
	if tr.workers > 1 {
		for _, ch := range tr.tasks {
			close(ch)
		}
		tr.wg.Wait()
	}
}

func (tr *Trainer) worker(w int) {
	defer tr.wg.Done()
	for task := range tr.tasks[w] {
		task.fn(w)
		task.wg.Done()
	}
}

// fanOut runs fn(w) on every worker and waits for all of them — the
// fork-join barrier that brackets every parallel phase.
func (tr *Trainer) fanOut(fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(tr.workers)
	task := trainTask{fn: fn, wg: &wg}
	for _, ch := range tr.tasks {
		ch <- task
	}
	wg.Wait()
	tr.metrics.Batches.Inc()
}

// ownerOf maps a user ID to its owning worker. Because W divides
// tableShards, this equals shardOf(user) & (W−1): a user's worker is a
// function of its table shard, which is also its engine ingest shard
// modulo the worker mask — shard affinity end to end.
func (tr *Trainer) ownerOf(user int) int { return user & (tr.workers - 1) }

// ---------------------------------------------------------------------------
// Observe path.

// Apply ingests a batch of newly observed samples in parallel: it
// partitions them by owning worker (preserving per-user arrival order)
// and fans the per-sample work — registration, replay-pool insert, one
// online SGD update each — across the workers. It returns the number of
// updates applied (always len(ss)) after all workers have joined.
//
// With Workers == 1 it is exactly Model.ObserveAll.
func (tr *Trainer) Apply(ss []stream.Sample) int {
	if tr.workers == 1 {
		tr.m.ObserveAll(ss)
		return len(ss)
	}
	for i := range tr.parts {
		tr.parts[i] = tr.parts[i][:0]
	}
	for _, s := range ss {
		w := tr.ownerOf(s.User)
		tr.parts[w] = append(tr.parts[w], s)
	}
	return tr.ApplyOwned(tr.parts)
}

// ApplyOwned is Apply for a batch the caller has already partitioned by
// owning worker: parts[w] must contain only samples whose user is owned
// by worker w (ownerOf), in the order they should be applied. The
// serving engine builds parts directly from its ingest shards (shard si
// feeds worker si&(W−1)) so the samples never need re-partitioning.
func (tr *Trainer) ApplyOwned(parts [][]stream.Sample) int {
	if tr.workers == 1 {
		n := 0
		for _, part := range parts {
			tr.m.ObserveAll(part)
			n += len(part)
		}
		return n
	}
	counts := tr.counts
	tr.fanOut(func(w int) {
		part := parts[w]
		start := time.Now()
		for _, s := range part {
			tr.applySample(w, s, true)
			tr.pools[w].Add(s)
		}
		tr.metrics.Apply.Observe(time.Since(start).Seconds())
		counts[w].updates = len(part)
	})
	total := 0
	for i := range counts {
		total += counts[i].updates
	}
	tr.m.updates += int64(total)
	return total
}

// applySample performs one online update from worker w. register
// controls whether unknown entities are created (Observe semantics) or
// the sample is skipped (ReplayStep semantics: replays must not
// resurrect departed entities). It reports whether an update happened.
func (tr *Trainer) applySample(w int, s stream.Sample, register bool) bool {
	m := tr.m
	// User side: worker-exclusive shard, no locks.
	usi := shardOf(s.User)
	ush := m.users.shards[usi]
	u, ok := ush[s.User]
	if !ok {
		if !register {
			return false
		}
		u = newEntityWith(tr.rngs[w], &m.cfg)
		ush[s.User] = u
	}
	// Service side: shared, stripe-locked by shard.
	ssi := shardOf(s.Service)
	st := &tr.stripes[ssi]
	if !st.TryLock() {
		tr.metrics.StripeContention.Inc()
		st.Lock()
	}
	ssh := m.services.shards[ssi]
	v, ok := ssh[s.Service]
	if !ok {
		if !register {
			st.Unlock()
			return false
		}
		v = newEntityWith(tr.rngs[w], &m.cfg)
		ssh[s.Service] = v
	}
	if m.dirtyServices != nil {
		m.dirtyServices.shards[ssi][s.Service] = struct{}{}
	}
	if tr.unsync {
		// Hogwild: registration and dirty marking stay locked (map
		// structure cannot tolerate races), the float math runs free.
		st.Unlock()
		m.updateEntities(u, v, s.Value)
	} else {
		m.updateEntities(u, v, s.Value)
		st.Unlock()
	}
	if m.dirtyUsers != nil {
		m.dirtyUsers.shards[usi][s.User] = struct{}{} // worker-owned shard
	}
	return true
}

// ---------------------------------------------------------------------------
// Replay path.

// ReplaySteps performs up to n replay updates (Algorithm 1's "randomly
// pick an existing sample") split evenly across the workers, each worker
// drawing from its own partition of the replay pool. It returns the
// number of picks performed (like Model.ReplayStep, a pick whose
// entities have departed still counts — the sample was consumed).
//
// Parallel replay draws from the worker-local pools, which hold every
// sample ingested through Apply/ApplyOwned partitioned by owner; samples
// sitting in the model's own pool (observed through the serial API before
// the trainer existed) are not drawn here — Fit's epoch passes cover
// both sets. The engine's parallel mode ingests exclusively through the
// trainer, so its replay working set is complete.
//
// With Workers == 1 it is exactly n serial Model.ReplayStep calls.
func (tr *Trainer) ReplaySteps(n int) int {
	if tr.workers == 1 {
		done := 0
		for i := 0; i < n; i++ {
			if !tr.m.ReplayStep() {
				break
			}
			done++
		}
		return done
	}
	quota := (n + tr.workers - 1) / tr.workers
	counts := tr.counts
	tr.fanOut(func(w int) {
		start := time.Now()
		steps, updates := 0, 0
		pool := tr.pools[w]
		for i := 0; i < quota; i++ {
			s, ok := pool.Pick()
			if !ok {
				break
			}
			steps++
			if tr.applySample(w, s, false) {
				updates++
			}
		}
		if steps > 0 {
			tr.metrics.Apply.Observe(time.Since(start).Seconds())
		}
		counts[w].steps, counts[w].updates = steps, updates
	})
	steps, updates := 0, 0
	for i := range counts {
		steps += counts[i].steps
		updates += counts[i].updates
	}
	tr.m.updates += int64(updates)
	return steps
}

// AdvanceTo moves the model clock and every worker pool clock forward,
// expiring old replay samples on all partitions.
func (tr *Trainer) AdvanceTo(t time.Duration) {
	tr.m.AdvanceTo(t)
	for _, p := range tr.pools {
		p.AdvanceTo(t)
	}
}

// PoolLen returns the number of retained replay samples across the model
// pool and every worker pool.
func (tr *Trainer) PoolLen() int {
	n := tr.m.PoolLen()
	for _, p := range tr.pools {
		n += p.Len()
	}
	return n
}

// liveSamples snapshots every live replay sample the trainer can draw
// from: the model's own pool (samples observed through the serial API)
// plus every worker-local pool (samples ingested via Apply/ApplyOwned).
func (tr *Trainer) liveSamples() []stream.Sample {
	out := tr.m.liveSamples()
	for _, p := range tr.pools {
		p.Compact()
		p.Each(func(s stream.Sample) { out = append(out, s) })
	}
	return out
}

// ---------------------------------------------------------------------------
// Parallel fit (offline convergence on the model's replay pool).

// Fit is Model.Fit's parallel epoch mode: each epoch snapshots the live
// replay pool once, partitions it by owning worker, fans one full
// replay pass across the workers (each worker visits its samples in a
// per-epoch shuffled order), and then reduces the epoch-end training
// error in a single parallel pass — per-worker partial sums merged by
// the coordinator. Convergence criteria (Tol, MinEpochs, MaxEpochs) are
// identical to the serial loop.
//
// With Workers == 1 it is exactly Model.Fit.
func (tr *Trainer) Fit(opts FitOptions) FitResult {
	if tr.workers == 1 {
		opts.Workers = 0 // force the serial path; avoid re-delegation
		return tr.m.Fit(opts)
	}
	opts = opts.withDefaults()
	var res FitResult
	prev := math.Inf(1)
	counts := tr.counts
	for epoch := 0; epoch < opts.MaxEpochs; epoch++ {
		samples := tr.liveSamples()
		if len(samples) == 0 {
			break
		}
		for i := range tr.parts {
			tr.parts[i] = tr.parts[i][:0]
		}
		for _, s := range samples {
			w := tr.ownerOf(s.User)
			tr.parts[w] = append(tr.parts[w], s)
		}
		// Replay pass: one update per live sample, shuffled per worker.
		tr.fanOut(func(w int) {
			part := tr.parts[w]
			rng := tr.rngs[w]
			rng.Shuffle(len(part), func(a, b int) { part[a], part[b] = part[b], part[a] })
			start := time.Now()
			steps, updates := 0, 0
			for _, s := range part {
				steps++
				if tr.applySample(w, s, false) {
					updates++
				}
			}
			if steps > 0 {
				tr.metrics.Apply.Observe(time.Since(start).Seconds())
			}
			counts[w].steps, counts[w].updates = steps, updates
		})
		updates := 0
		for i := range counts {
			res.Steps += counts[i].steps
			updates += counts[i].updates
		}
		tr.m.updates += int64(updates)
		res.Epochs++
		// Error pass: pure reads (workers quiesced between fan-outs, and
		// within this pass nobody writes), reduced to one mean.
		tr.fanOut(func(w int) {
			sum, n := 0.0, 0
			for _, s := range tr.parts[w] {
				if e, ok := tr.m.sampleError(s); ok {
					sum += e
					n++
				}
			}
			counts[w].errSum, counts[w].errN = sum, n
		})
		sum, n := 0.0, 0
		for i := range counts {
			sum += counts[i].errSum
			n += counts[i].errN
		}
		cur := 0.0
		if n > 0 {
			cur = sum / float64(n)
		}
		if epoch+1 >= opts.MinEpochs && prev < math.Inf(1) {
			if prev == 0 || math.Abs(prev-cur)/math.Max(prev, epsTol) < opts.Tol {
				res.FinalError = cur
				res.Converged = true
				return res
			}
		}
		prev = cur
		res.FinalError = cur
	}
	return res
}
