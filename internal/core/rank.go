package core

import (
	"sort"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/transform"
)

// Ranked is one entry of a candidate ranking.
type Ranked struct {
	Service int
	Value   float64
}

// RankServices predicts the QoS of every candidate service for a user and
// returns the candidates sorted by predicted value — ascending when
// lowerIsBetter (response time), descending otherwise (throughput). This
// is the candidate-selection query a service adaptation action issues
// (paper Sec. III). Candidates without a prediction (unknown service, or
// unknown user) are omitted; the second result lists them.
//
// Ordering is defined on the raw latent score Ui·Sj with ties broken by
// ascending service ID — the same deterministic order PredictView's
// ranking fast path uses (see topk.go), so the locked and lock-free
// paths agree element for element.
func (m *Model) RankServices(user int, candidates []int, lowerIsBetter bool) (ranked []Ranked, unknown []int) {
	u, ok := m.users.get(user)
	if !ok {
		return nil, append(unknown, candidates...)
	}
	keys := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		s, ok := m.services.get(c)
		if !ok {
			unknown = append(unknown, c)
			continue
		}
		keys = append(keys, scored{service: c, key: matrix.Dot(u.vec, s.vec)})
	}
	sort.Slice(keys, func(i, j int) bool { return betterScored(keys[i], keys[j], lowerIsBetter) })
	ranked = finishRanked(make([]Ranked, 0, len(keys)), keys, m.tr)
	return ranked, unknown
}

// Best returns the top-ranked candidate in a single O(n) scan — no sort,
// no intermediate ranking — or ok=false when none is predictable.
func (m *Model) Best(user int, candidates []int, lowerIsBetter bool) (Ranked, bool) {
	u, ok := m.users.get(user)
	if !ok {
		return Ranked{}, false
	}
	best := scored{}
	found := false
	for _, c := range candidates {
		s, ok := m.services.get(c)
		if !ok {
			continue
		}
		cand := scored{service: c, key: matrix.Dot(u.vec, s.vec)}
		if !found || betterScored(cand, best, lowerIsBetter) {
			best, found = cand, true
		}
	}
	if !found {
		return Ranked{}, false
	}
	return Ranked{Service: best.service, Value: m.tr.Backward(transform.Sigmoid(best.key))}, true
}

// Flagged is one entity whose tracked relative error exceeds a threshold.
type Flagged struct {
	ID    int
	Error float64
}

// HighErrorUsers returns users whose EMA relative error (Eq. 13) is at or
// above threshold, worst first. Operationally these are the entities the
// model currently predicts poorly — newcomers still converging, or users
// whose QoS regime shifted — and the ones adaptation policies should
// treat with low confidence.
func (m *Model) HighErrorUsers(threshold float64) []Flagged {
	return flagHighError(m.users, threshold)
}

// HighErrorServices is HighErrorUsers for the service side (Eq. 14).
func (m *Model) HighErrorServices(threshold float64) []Flagged {
	return flagHighError(m.services, threshold)
}

func flagHighError(entities *entityTable, threshold float64) []Flagged {
	var out []Flagged
	entities.each(func(id int, e *entity) {
		if v := e.err.Value(); v >= threshold {
			out = append(out, Flagged{ID: id, Error: v})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Error != out[j].Error {
			return out[i].Error > out[j].Error
		}
		return out[i].ID < out[j].ID
	})
	return out
}
