package core

import "sort"

// Ranked is one entry of a candidate ranking.
type Ranked struct {
	Service int
	Value   float64
}

// RankServices predicts the QoS of every candidate service for a user and
// returns the candidates sorted by predicted value — ascending when
// lowerIsBetter (response time), descending otherwise (throughput). This
// is the candidate-selection query a service adaptation action issues
// (paper Sec. III). Candidates without a prediction (unknown service, or
// unknown user) are omitted; the second result lists them.
func (m *Model) RankServices(user int, candidates []int, lowerIsBetter bool) (ranked []Ranked, unknown []int) {
	for _, c := range candidates {
		v, err := m.Predict(user, c)
		if err != nil {
			unknown = append(unknown, c)
			continue
		}
		ranked = append(ranked, Ranked{Service: c, Value: v})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if lowerIsBetter {
			return ranked[i].Value < ranked[j].Value
		}
		return ranked[i].Value > ranked[j].Value
	})
	return ranked, unknown
}

// Best returns the top-ranked candidate, or ok=false when none is
// predictable.
func (m *Model) Best(user int, candidates []int, lowerIsBetter bool) (Ranked, bool) {
	ranked, _ := m.RankServices(user, candidates, lowerIsBetter)
	if len(ranked) == 0 {
		return Ranked{}, false
	}
	return ranked[0], true
}

// Flagged is one entity whose tracked relative error exceeds a threshold.
type Flagged struct {
	ID    int
	Error float64
}

// HighErrorUsers returns users whose EMA relative error (Eq. 13) is at or
// above threshold, worst first. Operationally these are the entities the
// model currently predicts poorly — newcomers still converging, or users
// whose QoS regime shifted — and the ones adaptation policies should
// treat with low confidence.
func (m *Model) HighErrorUsers(threshold float64) []Flagged {
	return flagHighError(m.users, threshold)
}

// HighErrorServices is HighErrorUsers for the service side (Eq. 14).
func (m *Model) HighErrorServices(threshold float64) []Flagged {
	return flagHighError(m.services, threshold)
}

func flagHighError(entities map[int]*entity, threshold float64) []Flagged {
	var out []Flagged
	for id, e := range entities {
		if v := e.err.Value(); v >= threshold {
			out = append(out, Flagged{ID: id, Error: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Error != out[j].Error {
			return out[i].Error > out[j].Error
		}
		return out[i].ID < out[j].ID
	})
	return out
}
