package core_test

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/stream"
)

// The basic AMF lifecycle: configure with the paper's hyperparameters,
// observe a stream of QoS samples, let the model converge on its replay
// pool, and predict an invocation that was never observed.
func ExampleModel() {
	cfg := core.DefaultConfig(-0.007, 0, 20) // response time in [0, 20] s
	cfg.Expiry = 0
	model := core.MustNew(cfg)

	// Two users share service 0; user 0 also uses service 1. AMF infers
	// user 1's unknown QoS on service 1 collaboratively.
	for i := 0; i < 40; i++ {
		t := time.Duration(i) * time.Second
		model.Observe(stream.Sample{Time: t, User: 0, Service: 0, Value: 1.0})
		model.Observe(stream.Sample{Time: t, User: 1, Service: 0, Value: 1.0})
		model.Observe(stream.Sample{Time: t, User: 0, Service: 1, Value: 4.0})
	}
	model.Fit(core.FitOptions{})

	v, err := model.Predict(1, 1) // never observed
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("user 1 on service 1: predicted within [2,6]: %v\n", v > 2 && v < 6)
	// Output:
	// user 1 on service 1: predicted within [2,6]: true
}

// Candidate ranking for an adaptation decision: lower response time ranks
// first.
func ExampleModel_RankServices() {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	model := core.MustNew(cfg)
	for i := 0; i < 60; i++ {
		model.Observe(stream.Sample{Time: time.Duration(i), User: 0, Service: 0, Value: 0.5})
		model.Observe(stream.Sample{Time: time.Duration(i), User: 0, Service: 1, Value: 3.0})
		model.Observe(stream.Sample{Time: time.Duration(i), User: 0, Service: 2, Value: 9.0})
	}
	model.Fit(core.FitOptions{})

	ranked, _ := model.RankServices(0, []int{2, 0, 1}, true)
	for _, r := range ranked {
		fmt.Println("service", r.Service)
	}
	// Output:
	// service 0
	// service 1
	// service 2
}
