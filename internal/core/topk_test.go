package core

import (
	"math"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// topkTestModel trains one user against n services so ranking tests have
// a wide, fully-known candidate universe.
func topkTestModel(t testing.TB, n int) *Model {
	t.Helper()
	cfg := DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	m := MustNew(cfg)
	for s := 0; s < n; s++ {
		v := 0.5 + float64((s*7919)%17)
		m.Observe(stream.Sample{Time: time.Duration(s) * time.Millisecond, User: 0, Service: s, Value: v})
		if s%3 == 0 { // second user keeps the view multi-user
			m.Observe(stream.Sample{Time: time.Duration(s) * time.Millisecond, User: 1, Service: s, Value: v / 2})
		}
	}
	return m
}

func rankedEqual(t *testing.T, what string, got, want []Ranked) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: got %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

func intsEqual(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %v, want %v", what, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: %v, want %v", what, got, want)
		}
	}
}

// TestViewRankingParity is the locked-vs-lock-free agreement contract:
// Model.RankServices, PredictView.RankServices, and PredictView.TopK with
// k = n must produce element-for-element identical rankings, in both
// metric directions, including the unknown list.
func TestViewRankingParity(t *testing.T) {
	m := topkTestModel(t, 60)
	v := m.BuildView()
	candidates := []int{17, 3, 59, 0, 41, 999, 8, 1000, 25}
	for _, lower := range []bool{true, false} {
		mr, mu := m.RankServices(0, candidates, lower)
		vr, vu := v.RankServices(0, candidates, lower)
		rankedEqual(t, "view vs model ranked", vr, mr)
		intsEqual(t, "view vs model unknown", vu, mu)
		tr, tu := v.TopK(0, candidates, len(candidates), lower)
		rankedEqual(t, "TopK(n) vs RankServices", tr, vr)
		intsEqual(t, "TopK(n) unknown", tu, vu)
	}
}

// TestTopKIsPrefixOfFullRanking checks the selection property: TopK(k)
// must equal the first k entries of the full ranking for every k.
func TestTopKIsPrefixOfFullRanking(t *testing.T) {
	m := topkTestModel(t, 40)
	v := m.BuildView()
	candidates := make([]int, 40)
	for i := range candidates {
		candidates[i] = i
	}
	for _, lower := range []bool{true, false} {
		full, _ := v.RankServices(0, candidates, lower)
		for k := 1; k <= len(candidates); k += 7 {
			got, _ := v.TopK(0, candidates, k, lower)
			rankedEqual(t, "TopK prefix", got, full[:k])
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	m := topkTestModel(t, 10)
	v := m.BuildView()
	candidates := []int{0, 1, 2, 3, 4}

	// k > n clamps to n.
	got, _ := v.TopK(0, candidates, 50, true)
	full, _ := v.RankServices(0, candidates, true)
	rankedEqual(t, "k>n", got, full)

	// k <= 0 ranks nothing but still reports unknowns.
	got, unknown := v.TopK(0, []int{0, 99, 1}, 0, true)
	if len(got) != 0 {
		t.Fatalf("k=0 ranked %v", got)
	}
	intsEqual(t, "k=0 unknown", unknown, []int{99})

	// Unknown user: every candidate is unknown, nothing ranked.
	got, unknown = v.TopK(777, candidates, 3, true)
	if len(got) != 0 {
		t.Fatalf("unknown user ranked %v", got)
	}
	intsEqual(t, "unknown user", unknown, candidates)

	// Empty candidate list.
	got, unknown = v.TopK(0, nil, 3, true)
	if len(got) != 0 || len(unknown) != 0 {
		t.Fatalf("empty candidates: %v / %v", got, unknown)
	}

	// Duplicate candidates are ranked once each (they are distinct list
	// entries) and stay adjacent under the ID tie-break.
	got, _ = v.TopK(0, []int{3, 3, 1}, 3, true)
	if len(got) != 3 {
		t.Fatalf("duplicates collapsed: %v", got)
	}
	dup := 0
	for _, r := range got {
		if r.Service == 3 {
			dup++
		}
	}
	if dup != 2 {
		t.Fatalf("expected service 3 twice, got %v", got)
	}
}

// TestRankingTieBreakDeterministic forces exact key ties by aliasing
// factor vectors and checks both paths order ties by ascending service ID
// regardless of candidate order.
func TestRankingTieBreakDeterministic(t *testing.T) {
	m := topkTestModel(t, 12)
	// Make services 2, 5, 9 latent-identical: exact dot-product ties.
	svc := func(id int) *entity {
		e, ok := m.services.get(id)
		if !ok {
			t.Fatalf("service %d missing", id)
		}
		return e
	}
	base := svc(2).vec
	for _, id := range []int{5, 9} {
		copy(svc(id).vec, base)
	}
	v := m.BuildView()
	for _, lower := range []bool{true, false} {
		a, _ := v.TopK(0, []int{9, 2, 5}, 3, lower)
		b, _ := v.TopK(0, []int{5, 9, 2}, 3, lower)
		rankedEqual(t, "tie order independent of candidate order", a, b)
		intsEqual(t, "ties ascend by ID",
			[]int{a[0].Service, a[1].Service, a[2].Service}, []int{2, 5, 9})
		mr, _ := m.RankServices(0, []int{9, 5, 2}, lower)
		rankedEqual(t, "model agrees on ties", mr, a)
	}
}

func TestTopKParallelMatchesSerial(t *testing.T) {
	const n = 2000 // > workers*minParallelChunk so the fan-out engages
	m := topkTestModel(t, n)
	v := m.BuildView()
	candidates := make([]int, 0, n+3)
	for i := 0; i < n; i++ {
		candidates = append(candidates, i)
		if i%500 == 0 {
			candidates = append(candidates, n+i) // sprinkle unknowns
		}
	}
	for _, lower := range []bool{true, false} {
		for _, k := range []int{1, 10, 257, len(candidates)} {
			sr, su := v.TopK(0, candidates, k, lower)
			pr, pu := v.TopKParallel(0, candidates, k, lower, 4)
			rankedEqual(t, "parallel vs serial ranked", pr, sr)
			intsEqual(t, "parallel vs serial unknown", pu, su)
		}
	}
	// Degenerate worker counts fall back to serial.
	sr, _ := v.TopK(0, candidates, 10, true)
	for _, w := range []int{0, 1, 10_000} {
		pr, _ := v.TopKParallel(0, candidates, 10, true, w)
		rankedEqual(t, "degenerate workers", pr, sr)
	}
	// Unknown user through the parallel path.
	if r, u := v.TopKParallel(777, candidates, 10, true, 4); len(r) != 0 || len(u) != len(candidates) {
		t.Fatalf("unknown user parallel: %d ranked, %d unknown", len(r), len(u))
	}
}

func TestTopKAllMatchesExplicitCandidates(t *testing.T) {
	const n = 1500
	m := topkTestModel(t, n)
	v := m.BuildView()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for _, lower := range []bool{true, false} {
		for _, k := range []int{1, 10, n} {
			want, _ := v.TopK(0, all, k, lower)
			for _, w := range []int{1, 4} {
				got := v.TopKAll(0, k, lower, w)
				rankedEqual(t, "TopKAll", got, want)
			}
		}
	}
	if v.TopKAll(777, 5, true, 1) != nil {
		t.Fatal("unknown user should rank nothing")
	}
	if v.TopKAll(0, 0, true, 1) != nil {
		t.Fatal("k=0 should rank nothing")
	}
}

func TestViewBestMatchesTopK(t *testing.T) {
	m := topkTestModel(t, 30)
	v := m.BuildView()
	candidates := []int{11, 4, 27, 0, 999}
	for _, lower := range []bool{true, false} {
		top, _ := v.TopK(0, candidates, 1, lower)
		best, ok := v.Best(0, candidates, lower)
		if !ok || best != top[0] {
			t.Fatalf("Best %+v/%v, TopK[0] %+v", best, ok, top[0])
		}
		mbest, mok := m.Best(0, candidates, lower)
		if !mok || mbest != best {
			t.Fatalf("model Best %+v, view Best %+v", mbest, best)
		}
	}
	if _, ok := v.Best(777, candidates, true); ok {
		t.Fatal("unknown user has no best")
	}
	if _, ok := v.Best(0, []int{999}, true); ok {
		t.Fatal("all-unknown candidates have no best")
	}
}

func TestPredictBatch(t *testing.T) {
	m := topkTestModel(t, 20)
	v := m.BuildView()
	services := []int{0, 5, 999, 12}
	dst := make([]float64, len(services))
	if err := v.PredictBatch(0, services, dst); err != nil {
		t.Fatal(err)
	}
	for i, id := range services {
		want, err := v.Predict(0, id)
		if err != nil {
			if !math.IsNaN(dst[i]) {
				t.Fatalf("dst[%d]=%g for unknown service %d, want NaN", i, dst[i], id)
			}
			continue
		}
		if dst[i] != want {
			t.Fatalf("dst[%d]=%g, Predict=%g", i, dst[i], want)
		}
	}
	// Unknown user: ErrUnknownUser and a fully NaN-filled dst.
	if err := v.PredictBatch(777, services, dst); err != ErrUnknownUser {
		t.Fatalf("unknown user err = %v", err)
	}
	for i := range dst {
		if !math.IsNaN(dst[i]) {
			t.Fatalf("dst[%d]=%g after unknown user, want NaN", i, dst[i])
		}
	}
	// Shape mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dst length mismatch")
		}
	}()
	v.PredictBatch(0, services, make([]float64, 1))
}

// TestAppendTopKZeroAlloc pins the ISSUE's allocation budget: with a
// warmed scratch pool and a reused dst, the steady-state ranking path
// must not allocate.
func TestAppendTopKZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts, so the zero-alloc pin cannot hold")
	}
	m := topkTestModel(t, 512)
	v := m.BuildView()
	candidates := make([]int, 512)
	for i := range candidates {
		candidates[i] = i
	}
	dst := make([]Ranked, 0, 10)
	// Warm the pool and dst.
	dst, _ = v.AppendTopK(dst[:0], 0, candidates, 10, true)
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = v.AppendTopK(dst[:0], 0, candidates, 10, true)
	})
	if allocs != 0 {
		t.Fatalf("AppendTopK allocates %v per run, want 0", allocs)
	}
	if len(dst) != 10 {
		t.Fatalf("ranked %d, want 10", len(dst))
	}
}

// TestArenaAliasesViewEntities verifies the SoA arena invariant: every
// shard map entry's vector aliases its arena row (same backing array), on
// both fresh builds and incremental refreshes.
func TestArenaAliasesViewEntities(t *testing.T) {
	m := topkTestModel(t, 100)
	v := m.BuildView()
	checkAlias := func(v *PredictView, when string) {
		t.Helper()
		total := 0
		for si, a := range v.services.arenas {
			if a == nil {
				if len(v.services.shards[si]) != 0 {
					t.Fatalf("%s: shard %d has %d entries but nil arena", when, si, len(v.services.shards[si]))
				}
				continue
			}
			if len(a.vecs) != len(a.ids)*a.rank || len(a.errs) != len(a.ids) {
				t.Fatalf("%s: shard %d arena shape ids=%d vecs=%d errs=%d rank=%d",
					when, si, len(a.ids), len(a.vecs), len(a.errs), a.rank)
			}
			for i, id := range a.ids {
				e, ok := v.services.shards[si][id]
				if !ok {
					t.Fatalf("%s: arena id %d missing from shard map %d", when, id, si)
				}
				row := a.row(i)
				if &e.vec[0] != &row[0] {
					t.Fatalf("%s: service %d vec does not alias its arena row", when, id)
				}
				if e.err != a.errs[i] {
					t.Fatalf("%s: service %d err %g, arena %g", when, id, e.err, a.errs[i])
				}
			}
			total += len(a.ids)
		}
		if total != v.services.count {
			t.Fatalf("%s: arenas hold %d services, view %d", when, total, v.services.count)
		}
	}
	checkAlias(v, "fresh build")

	// Dirty a few services and one removal, then refresh: rebuilt shards
	// must re-establish the invariant; clean shards share the old arena.
	m.Observe(stream.Sample{User: 0, Service: 3, Value: 2})
	m.RemoveService(7)
	v2 := m.RefreshView(v)
	checkAlias(v2, "after refresh")
	cleanShard := -1
	for si := range v.services.arenas {
		if v.services.arenas[si] != nil && v.services.arenas[si] == v2.services.arenas[si] {
			cleanShard = si
			break
		}
	}
	if cleanShard < 0 {
		t.Fatal("no clean shard shares its arena across the refresh")
	}
}
