package core

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// rankedModel trains a model where service j's QoS for user 0 is
// approximately proportional to j+1, so the true ranking is known.
func rankedModel(t *testing.T) *Model {
	t.Helper()
	cfg := rtConfig()
	m := MustNew(cfg)
	for round := 0; round < 30; round++ {
		for u := 0; u < 4; u++ {
			for s := 0; s < 5; s++ {
				v := float64(s+1) * (1 + 0.1*float64(u))
				m.Observe(stream.Sample{Time: time.Duration(round), User: u, Service: s, Value: v})
			}
		}
	}
	m.Fit(FitOptions{MaxEpochs: 50})
	return m
}

func TestRankServicesAscending(t *testing.T) {
	m := rankedModel(t)
	ranked, unknown := m.RankServices(0, []int{4, 2, 0, 3, 1}, true)
	if len(unknown) != 0 {
		t.Fatalf("unexpected unknown candidates %v", unknown)
	}
	if len(ranked) != 5 {
		t.Fatalf("ranked %d candidates", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Value < ranked[i-1].Value {
			t.Fatalf("not ascending: %+v", ranked)
		}
	}
	// The learned best service should be service 0 (lowest RT).
	if ranked[0].Service != 0 {
		t.Fatalf("best service = %d, want 0 (ranking %+v)", ranked[0].Service, ranked)
	}
}

func TestRankServicesDescending(t *testing.T) {
	m := rankedModel(t)
	ranked, _ := m.RankServices(0, []int{0, 1, 2, 3, 4}, false)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Value > ranked[i-1].Value {
			t.Fatalf("not descending: %+v", ranked)
		}
	}
	if ranked[0].Service != 4 {
		t.Fatalf("best throughput-style service = %d, want 4", ranked[0].Service)
	}
}

func TestRankServicesUnknown(t *testing.T) {
	m := rankedModel(t)
	ranked, unknown := m.RankServices(0, []int{1, 99, 2}, true)
	if len(ranked) != 2 || len(unknown) != 1 || unknown[0] != 99 {
		t.Fatalf("ranked=%v unknown=%v", ranked, unknown)
	}
	// Unknown user: everything lands in unknown.
	ranked, unknown = m.RankServices(99, []int{1, 2}, true)
	if len(ranked) != 0 || len(unknown) != 2 {
		t.Fatalf("unknown user: ranked=%v unknown=%v", ranked, unknown)
	}
}

func TestBest(t *testing.T) {
	m := rankedModel(t)
	best, ok := m.Best(0, []int{3, 1, 2}, true)
	if !ok || best.Service != 1 {
		t.Fatalf("best = %+v, %v; want service 1", best, ok)
	}
	if _, ok := m.Best(99, []int{1}, true); ok {
		t.Fatal("unknown user should have no best")
	}
	if _, ok := m.Best(0, nil, true); ok {
		t.Fatal("empty candidate list should have no best")
	}
}

func TestHighErrorEntitiesFlagNewcomers(t *testing.T) {
	m := rankedModel(t) // users 0-3 well trained
	// A brand-new user with a single noisy observation: its tracker is
	// still near the initialization value 1.
	m.Observe(stream.Sample{Time: time.Hour, User: 99, Service: 0, Value: 10})

	flagged := m.HighErrorUsers(0.5)
	if len(flagged) == 0 {
		t.Fatal("the newcomer should be flagged")
	}
	if flagged[0].ID != 99 {
		t.Fatalf("worst-first ordering: got %+v", flagged)
	}
	for i := 1; i < len(flagged); i++ {
		if flagged[i].Error > flagged[i-1].Error {
			t.Fatalf("not sorted worst-first: %+v", flagged)
		}
	}
	// Converged users must not be flagged at a high threshold.
	for _, f := range m.HighErrorUsers(0.9) {
		if f.ID != 99 {
			t.Fatalf("converged user %d flagged at 0.9", f.ID)
		}
	}
	if got := m.HighErrorServices(10); len(got) != 0 {
		t.Fatalf("impossible threshold flagged %v", got)
	}
}
