package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"github.com/qoslab/amf/internal/stats"
)

// snapshot is the gob-serializable image of a model's learned state. The
// replay pool is deliberately excluded: a restored model resumes from the
// learned factors and error trackers and refills its pool from new
// observations, which is what a restarted prediction service needs.
type snapshot struct {
	Config   Config
	Users    []entitySnapshot
	Services []entitySnapshot
	Updates  int64
}

type entitySnapshot struct {
	ID      int
	Vec     []float64
	Err     float64
	Updates int
}

// Snapshot serializes the model's learned state (configuration, latent
// factors, error trackers). See Restore.
func (m *Model) Snapshot() ([]byte, error) {
	snap := snapshot{Config: m.cfg, Updates: m.updates}
	snap.Users = entitiesToSnapshots(m.users)
	snap.Services = entitiesToSnapshots(m.services)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func entitiesToSnapshots(t *entityTable) []entitySnapshot {
	out := make([]entitySnapshot, 0, t.len())
	t.each(func(id int, e *entity) {
		vec := make([]float64, len(e.vec))
		copy(vec, e.vec)
		out = append(out, entitySnapshot{ID: id, Vec: vec, Err: e.err.Value(), Updates: e.updates})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore reconstructs a model from a Snapshot. The restored model has an
// empty replay pool and the snapshot's configuration.
func Restore(data []byte) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	m, err := New(snap.Config)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot has invalid config: %w", err)
	}
	restoreEntities(m, m.users, snap.Users)
	restoreEntities(m, m.services, snap.Services)
	m.updates = snap.Updates
	return m, nil
}

func restoreEntities(m *Model, dst *entityTable, src []entitySnapshot) {
	for _, es := range src {
		vec := make([]float64, m.cfg.Rank)
		copy(vec, es.Vec)
		dst.put(es.ID, &entity{
			vec:     vec,
			err:     stats.NewEMAInit(m.cfg.Beta, es.Err),
			updates: es.Updates,
		})
	}
}
