package core

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	m := MustNew(rtConfig())
	for i := 0; i < 60; i++ {
		m.Observe(stream.Sample{Time: time.Duration(i), User: i % 6, Service: i % 8, Value: 0.5 + float64(i%7)})
	}
	m.Fit(FitOptions{MaxEpochs: 10, Tol: 1e-9, MinEpochs: 10})
	return m
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := trainedModel(t)
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumUsers() != m.NumUsers() || r.NumServices() != m.NumServices() {
		t.Fatalf("restored counts %d/%d, want %d/%d", r.NumUsers(), r.NumServices(), m.NumUsers(), m.NumServices())
	}
	if r.Updates() != m.Updates() {
		t.Fatalf("restored updates %d, want %d", r.Updates(), m.Updates())
	}
	for u := 0; u < 6; u++ {
		for s := 0; s < 8; s++ {
			v1, err1 := m.Predict(u, s)
			v2, err2 := r.Predict(u, s)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if v1 != v2 {
				t.Fatalf("restored prediction differs at (%d,%d): %g vs %g", u, s, v1, v2)
			}
		}
	}
	// Error trackers must survive exactly.
	for u := 0; u < 6; u++ {
		e1, _ := m.UserError(u)
		e2, _ := r.UserError(u)
		if e1 != e2 {
			t.Fatalf("restored user error differs: %g vs %g", e1, e2)
		}
	}
}

func TestRestoredModelKeepsLearning(t *testing.T) {
	m := trainedModel(t)
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.PoolLen() != 0 {
		t.Fatalf("restored pool should be empty, len=%d", r.PoolLen())
	}
	before := r.Updates()
	r.Observe(stream.Sample{Time: time.Hour, User: 0, Service: 0, Value: 2})
	if r.Updates() != before+1 {
		t.Fatal("restored model should accept new observations")
	}
	// New entities should also work post-restore.
	r.Observe(stream.Sample{Time: time.Hour, User: 1000, Service: 1000, Value: 3})
	if !r.KnowsUser(1000) || !r.KnowsService(1000) {
		t.Fatal("restored model should register new entities")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Restore(nil); err == nil {
		t.Fatal("expected decode error on empty input")
	}
}

func TestSnapshotEmptyModel(t *testing.T) {
	m := MustNew(rtConfig())
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumUsers() != 0 || r.NumServices() != 0 {
		t.Fatal("restored empty model should be empty")
	}
}
