package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Property: after any sequence of observations with in-range values, every
// prediction is finite and inside [0, RMax], and every error tracker is a
// finite positive number. This is the safety contract the prediction
// service relies on.
func TestModelInvariantsUnderRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := rtConfig()
		cfg.Seed = seed
		m := MustNew(cfg)
		users := 1 + rng.Intn(6)
		services := 1 + rng.Intn(8)
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			// Heavy-tailed values spanning the full range, including
			// values beyond RMax (clamped by the transform).
			v := math.Exp(rng.NormFloat64()*2 - 0.2)
			m.Observe(stream.Sample{
				Time:    time.Duration(i),
				User:    rng.Intn(users),
				Service: rng.Intn(services),
				Value:   v,
			})
		}
		for i := 0; i < 20; i++ {
			m.ReplayStep()
		}
		for u := 0; u < users; u++ {
			for s := 0; s < services; s++ {
				v, err := m.Predict(u, s)
				if err != nil {
					continue // never co-observed is fine
				}
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > cfg.RMax {
					return false
				}
			}
			if e, ok := m.UserError(u); ok {
				if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Observe increments Updates by exactly one and registers both
// endpoints, for any sample.
func TestObserveAccountingProperty(t *testing.T) {
	f := func(user, service uint8, raw uint16) bool {
		m := MustNew(rtConfig())
		before := m.Updates()
		m.Observe(stream.Sample{
			User:    int(user),
			Service: int(service),
			Value:   float64(raw)/1000 + 0.001,
		})
		return m.Updates() == before+1 &&
			m.KnowsUser(int(user)) && m.KnowsService(int(service)) &&
			m.NumUsers() == 1 && m.NumServices() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is lossless for predictions regardless of
// the observation history.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := rtConfig()
		cfg.Seed = seed
		m := MustNew(cfg)
		for i := 0; i < 60; i++ {
			m.Observe(stream.Sample{
				Time:    time.Duration(i),
				User:    rng.Intn(4),
				Service: rng.Intn(6),
				Value:   0.1 + rng.Float64()*10,
			})
		}
		data, err := m.Snapshot()
		if err != nil {
			return false
		}
		r, err := Restore(data)
		if err != nil {
			return false
		}
		for u := 0; u < 4; u++ {
			for s := 0; s < 6; s++ {
				v1, err1 := m.Predict(u, s)
				v2, err2 := r.Predict(u, s)
				if (err1 == nil) != (err2 == nil) {
					return false
				}
				if err1 == nil && v1 != v2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: with adaptive weights, both weights are in [0,1] and training
// on a pair reduces (or at least does not explode) the tracked errors.
// Verified indirectly: after many updates of a constant-valued pair, both
// trackers fall below their initial value 1.
func TestAdaptiveErrorTrackersConvergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := rtConfig()
		cfg.Seed = seed
		m := MustNew(cfg)
		value := 0.2 + rng.Float64()*10
		m.Observe(stream.Sample{Time: 1, User: 0, Service: 0, Value: value})
		for i := 0; i < 200; i++ {
			m.ReplayStep()
		}
		eu, okU := m.UserError(0)
		es, okS := m.ServiceError(0)
		return okU && okS && eu < 1 && es < 1 && eu >= 0 && es >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFitOptionsDefaults(t *testing.T) {
	o := FitOptions{}.withDefaults()
	if o.MaxEpochs != 200 || o.Tol != 1e-3 || o.MinEpochs != 3 {
		t.Fatalf("defaults = %+v", o)
	}
	custom := FitOptions{MaxEpochs: 5, Tol: 0.1, MinEpochs: 1}.withDefaults()
	if custom.MaxEpochs != 5 || custom.Tol != 0.1 || custom.MinEpochs != 1 {
		t.Fatalf("custom options overridden: %+v", custom)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	cfg := rtConfig()
	cfg.MaxGradNorm = 0
	m := MustNew(cfg)
	if m.Config().MaxGradNorm != 1 {
		t.Fatalf("MaxGradNorm default = %g, want 1", m.Config().MaxGradNorm)
	}
	cfg.MaxGradNorm = 7
	if MustNew(cfg).Config().MaxGradNorm != 7 {
		t.Fatal("explicit MaxGradNorm should be kept")
	}
}
