package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/transform"
)

// viewShardCount is the number of hash shards a PredictView's entity
// tables are split into. It must be a power of two (IDs are mapped to
// shards by masking). Sharding is what makes incremental republication
// cheap: a refresh reclones only the shards containing entities that
// changed since the previous view, and shares the untouched shards with
// the previous view by pointer.
const viewShardCount = 64

// viewEntity is the immutable published state of one user or service:
// a private copy of the latent factor vector plus the tracked error and
// update count frozen at publish time. Once a viewEntity is reachable
// from a published PredictView it is never written again.
//
// Exactly one of vec/vec32 is set, matching the view's arena precision
// (Model.SetArenaFloat32): vec32 carries the factors rounded to float32
// in f32 views, and every read-side prediction dispatches on which one
// is present (veDot).
type viewEntity struct {
	vec     []float64
	vec32   []float32
	err     float64
	updates int
}

// veDot is the precision-dispatching inner product between two frozen
// entities of the same view: the float64 kernel over default arenas,
// the float32 kernel when the view was published with float32 arenas.
// Both entities always carry the same precision — they come from the
// same view, and a view's precision is uniform.
func veDot(u, s viewEntity) float64 {
	if u.vec32 != nil {
		return float64(matrix.Dot32(u.vec32, s.vec32))
	}
	return matrix.Dot(u.vec, s.vec)
}

// viewTable is one side (users or services) of a PredictView: a fixed
// array of hash shards plus one frozen SoA factor arena per shard (see
// arena.go). The arrays themselves are copied per refresh (64 pointers
// each); individual shard maps and arenas are shared between consecutive
// views unless dirty. Each shard map's viewEntity.vec aliases a row of
// the shard's arena, so point lookups and contiguous scans read the same
// immutable storage.
type viewTable struct {
	shards [viewShardCount]map[int]viewEntity
	arenas [viewShardCount]*shardArena
	count  int
}

func shardOf(id int) int { return id & (viewShardCount - 1) }

func (t *viewTable) get(id int) (viewEntity, bool) {
	sh := t.shards[shardOf(id)]
	if sh == nil {
		return viewEntity{}, false
	}
	e, ok := sh[id]
	return e, ok
}

func (t *viewTable) each(f func(id int, e viewEntity)) {
	for _, sh := range t.shards {
		for id, e := range sh {
			f(id, e)
		}
	}
}

// recount recomputes the cached entity count after shard surgery.
func (t *viewTable) recount() {
	n := 0
	for _, sh := range t.shards {
		n += len(sh)
	}
	t.count = n
}

// PredictView is an immutable, shareable snapshot of a Model's learned
// state, sufficient to serve every read-side query (predictions,
// confidence, ranking, error reports, serialization) without any lock.
// A view is safe for unlimited concurrent use; it never changes after
// construction. The serving engine (internal/engine) publishes views
// through an atomic pointer, RCU-style: readers load the current view
// and work on it while the single writer prepares and publishes the next
// one.
//
// Build one with Model.BuildView, or incrementally with Model.RefreshView.
type PredictView struct {
	cfg      Config
	tr       *transform.Transformer
	users    viewTable
	services viewTable
	updates  int64
	version  uint64
	// f32 records the arena precision this view was frozen with; a
	// refresh across a mode flip falls back to a full rebuild.
	f32 bool
	// owner identifies the model this view was built from, so that
	// RefreshView can detect a model swap (Restore) and fall back to a
	// full rebuild. Readers never touch it.
	owner *Model
}

// ArenaFloat32 reports whether this view's factor arenas were frozen as
// float32 (Model.SetArenaFloat32).
func (v *PredictView) ArenaFloat32() bool { return v.f32 }

// EnableViewTracking turns on recording of entities touched by updates
// (Observe, ReplayStep, RemoveUser/RemoveService) so that RefreshView can
// republish views incrementally. BuildView enables it implicitly.
func (m *Model) EnableViewTracking() {
	if m.dirtyUsers == nil {
		m.dirtyUsers = newDirtySet()
		m.dirtyServices = newDirtySet()
	}
}

// markDirty records a touched (user, service) pair for incremental view
// refresh. A no-op until EnableViewTracking.
func (m *Model) markDirty(user, service int) {
	if m.dirtyUsers == nil {
		return
	}
	m.dirtyUsers.mark(user)
	m.dirtyServices.mark(service)
}

func (m *Model) clearDirty() {
	m.dirtyUsers.clear()
	m.dirtyServices.clear()
}

// DirtyCount returns the number of users and services touched since the
// last BuildView/RefreshView (0, 0 when tracking is disabled). The
// serving engine uses it to decide whether a republish is pending.
func (m *Model) DirtyCount() (users, services int) {
	if m.dirtyUsers == nil {
		return 0, 0
	}
	return m.dirtyUsers.count(), m.dirtyServices.count()
}

// BuildView constructs a complete immutable view of the model's current
// state and enables dirty tracking for subsequent RefreshView calls. Cost
// is O(entities × rank): every latent vector is copied so later in-place
// SGD updates cannot tear a published view.
func (m *Model) BuildView() *PredictView {
	m.EnableViewTracking()
	m.clearDirty()
	v := &PredictView{
		cfg:     m.cfg,
		tr:      m.tr,
		updates: m.updates,
		version: 1,
		f32:     m.arenaF32,
		owner:   m,
	}
	buildTable(&v.users, m.users, m.cfg.Rank, m.arenaF32)
	buildTable(&v.services, m.services, m.cfg.Rank, m.arenaF32)
	return v
}

func buildTable(dst *viewTable, src *entityTable, rank int, f32 bool) {
	// Model table shards and view shards share the same hash (see
	// table.go), so each model shard freezes into its view shard directly.
	total := 0
	for si := range src.shards {
		sh := src.shards[si]
		if len(sh) == 0 {
			continue
		}
		ids := make([]int, 0, len(sh))
		for id := range sh {
			ids = append(ids, id)
		}
		dst.shards[si], dst.arenas[si] = freezeShardFromModel(sh, ids, rank, f32)
		total += len(ids)
	}
	dst.count = total
}

// freezeEntity makes a private, view-precision copy of a live model
// entity. The copy is temporary — rebuildArena repacks it into the
// shard's fresh arena right after the map surgery.
func freezeEntity(e *entity, f32 bool) viewEntity {
	if f32 {
		vec := make([]float32, len(e.vec))
		for i, x := range e.vec {
			vec[i] = float32(x)
		}
		return viewEntity{vec32: vec, err: e.err.Value(), updates: e.updates}
	}
	vec := make([]float64, len(e.vec))
	copy(vec, e.vec)
	return viewEntity{vec: vec, err: e.err.Value(), updates: e.updates}
}

// RefreshView publishes a new view derived from prev, recloning only the
// shards that contain entities touched since prev was built. Untouched
// shards are shared with prev by pointer, so the refresh cost scales with
// the write rate between publishes, not with the total number of
// entities. If prev is nil, was built from a different model (Restore
// swapped it), or dirty tracking is off, it falls back to a full
// BuildView while keeping the version sequence monotonic.
func (m *Model) RefreshView(prev *PredictView) *PredictView {
	if prev == nil {
		return m.BuildView()
	}
	if prev.owner != m || m.dirtyUsers == nil || prev.f32 != m.arenaF32 {
		// Model swap, tracking off, or an arena-precision flip: shards
		// can't be shared across any of these, so rebuild from scratch.
		v := m.BuildView()
		v.version = prev.version + 1
		return v
	}
	v := &PredictView{
		cfg:      m.cfg,
		tr:       m.tr,
		users:    prev.users,    // shares shard maps; dirty ones replaced below
		services: prev.services, // ditto
		updates:  m.updates,
		version:  prev.version + 1,
		f32:      m.arenaF32,
		owner:    m,
	}
	refreshTable(&v.users, m.users, m.dirtyUsers, m.cfg.Rank, m.arenaF32)
	refreshTable(&v.services, m.services, m.dirtyServices, m.cfg.Rank, m.arenaF32)
	m.clearDirty()
	return v
}

// refreshTable replaces the dirty shards of dst (currently aliasing the
// previous view's shards) with fresh clones reflecting src, then repacks
// each cloned shard's factor vectors into a fresh contiguous arena.
// Untouched shards keep sharing both map and arena with the previous
// view. Dirty sets are sharded with the same hash as both tables, so the
// walk is per-shard: clone once, patch every dirty id, rebuild the arena.
func refreshTable(dst *viewTable, src *entityTable, dirty *dirtySet, rank int, f32 bool) {
	changed := false
	for si := range dirty.shards {
		ids := dirty.shards[si]
		if len(ids) == 0 {
			continue
		}
		old := dst.shards[si]
		sh := make(map[int]viewEntity, len(old)+len(ids))
		for k, e := range old {
			sh[k] = e
		}
		modelShard := src.shards[si]
		for id := range ids {
			if e, ok := modelShard[id]; ok {
				sh[id] = freezeEntity(e, f32)
			} else {
				delete(sh, id) // removed entity (churn departure)
			}
		}
		dst.shards[si] = sh
		rebuildArena(dst, si, rank, f32)
		changed = true
	}
	if changed {
		dst.recount()
	}
}

// Version returns the publish sequence number of this view. Versions are
// strictly increasing along the chain of BuildView/RefreshView calls.
func (v *PredictView) Version() uint64 { return v.version }

// Updates returns the model's total SGD update count frozen at publish
// time. Monotonically non-decreasing across successive views of one model.
func (v *PredictView) Updates() int64 { return v.updates }

// Config returns the model configuration frozen at publish time.
func (v *PredictView) Config() Config { return v.cfg }

// Transformer exposes the view's data transformation (immutable).
func (v *PredictView) Transformer() *transform.Transformer { return v.tr }

// NumUsers returns the number of users in the view.
func (v *PredictView) NumUsers() int { return v.users.count }

// NumServices returns the number of services in the view.
func (v *PredictView) NumServices() int { return v.services.count }

// KnowsUser reports whether the user is present in the view.
func (v *PredictView) KnowsUser(id int) bool { _, ok := v.users.get(id); return ok }

// KnowsService reports whether the service is present in the view.
func (v *PredictView) KnowsService(id int) bool { _, ok := v.services.get(id); return ok }

// Predict estimates the QoS value between a user and a service, exactly
// as Model.Predict but against the frozen factors — wait-free.
func (v *PredictView) Predict(user, service int) (float64, error) {
	u, ok := v.users.get(user)
	if !ok {
		return 0, ErrUnknownUser
	}
	s, ok := v.services.get(service)
	if !ok {
		return 0, ErrUnknownService
	}
	g := transform.Sigmoid(veDot(u, s))
	return v.tr.Backward(g), nil
}

// PredictWithConfidence returns Predict's estimate with the confidence
// score 1/(1 + e_ui + e_sj) derived from the frozen error trackers (see
// Model.PredictWithConfidence).
func (v *PredictView) PredictWithConfidence(user, service int) (value, confidence float64, err error) {
	u, ok := v.users.get(user)
	if !ok {
		return 0, 0, ErrUnknownUser
	}
	s, ok := v.services.get(service)
	if !ok {
		return 0, 0, ErrUnknownService
	}
	g := transform.Sigmoid(veDot(u, s))
	confidence = 1 / (1 + u.err + s.err)
	return v.tr.Backward(g), confidence, nil
}

// PredictNormalized returns the raw sigmoid output g(Ui·Sj) in [0,1].
func (v *PredictView) PredictNormalized(user, service int) (float64, error) {
	u, ok := v.users.get(user)
	if !ok {
		return 0, ErrUnknownUser
	}
	s, ok := v.services.get(service)
	if !ok {
		return 0, ErrUnknownService
	}
	return transform.Sigmoid(veDot(u, s)), nil
}

// UserError returns the user's frozen tracked error e_ui.
func (v *PredictView) UserError(id int) (float64, bool) {
	e, ok := v.users.get(id)
	return e.err, ok
}

// ServiceError returns the service's frozen tracked error e_sj.
func (v *PredictView) ServiceError(id int) (float64, bool) {
	e, ok := v.services.get(id)
	return e.err, ok
}

// RankServices, Best, TopK, PredictBatch and the parallel arena scans
// live in topk.go (the vectorized candidate-ranking fast path).

// HighErrorUsers returns users whose frozen tracked error is at or above
// threshold, worst first (see Model.HighErrorUsers).
func (v *PredictView) HighErrorUsers(threshold float64) []Flagged {
	return v.users.flagged(threshold)
}

// HighErrorServices is HighErrorUsers for services.
func (v *PredictView) HighErrorServices(threshold float64) []Flagged {
	return v.services.flagged(threshold)
}

func (t *viewTable) flagged(threshold float64) []Flagged {
	var out []Flagged
	t.each(func(id int, e viewEntity) {
		if e.err >= threshold {
			out = append(out, Flagged{ID: id, Error: e.err})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Error != out[j].Error {
			return out[i].Error > out[j].Error
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Snapshot serializes the view in the same format as Model.Snapshot, so
// the bytes are interchangeable with core.Restore. Because the view is
// immutable, serialization requires no lock and cannot stall the writer —
// this is the serving engine's replacement for Concurrent.Snapshot, which
// holds the read lock (blocking all writers) for the full serialization.
func (v *PredictView) Snapshot() ([]byte, error) {
	snap := snapshot{Config: v.cfg, Updates: v.updates}
	snap.Users = v.users.snapshots()
	snap.Services = v.services.snapshots()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encode view snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func (t *viewTable) snapshots() []entitySnapshot {
	out := make([]entitySnapshot, 0, t.count)
	t.each(func(id int, e viewEntity) {
		// The view's vectors are immutable and the snapshot is a value
		// copy, so sharing the slice here would still be safe — but gob
		// encoding aliases are cheap enough that we keep the copy for
		// symmetry with entitiesToSnapshots. Float32 arenas widen back
		// to float64 exactly (every float32 is representable), so the
		// snapshot format is precision-independent; what a round trip
		// through an f32 view loses is the rounding at publish time,
		// documented in DESIGN.md's ranking-fast-path section.
		var vec []float64
		if e.vec32 != nil {
			vec = make([]float64, len(e.vec32))
			for i, x := range e.vec32 {
				vec[i] = float64(x)
			}
		} else {
			vec = make([]float64, len(e.vec))
			copy(vec, e.vec)
		}
		out = append(out, entitySnapshot{ID: id, Vec: vec, Err: e.err, Updates: e.updates})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
