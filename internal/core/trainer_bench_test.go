package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// BenchmarkTrainThroughput measures online-update throughput (samples/s)
// through the parallel trainer at increasing worker counts, plus the
// Hogwild (unsynchronized) variant at the widest width. workers=1 is the
// exact serial baseline (Trainer delegates to Model.ObserveAll), so the
// sub-benchmark ratios are the parallel speedup directly.
//
// The benchmark is designed to expose scaling on multicore hosts: the
// user side is embarrassingly parallel (worker-owned shards), and with
// 512 users × 256 services the service-stripe collision rate is low. On
// a single-core host all widths serialize and the fan-out overhead is
// what's being measured. Run via `make bench-train` (archived as
// BENCH_train.json).
func BenchmarkTrainThroughput(b *testing.B) {
	const (
		users    = 512
		services = 256
		batch    = 2048
	)
	mkSamples := func() []stream.Sample {
		ss := make([]stream.Sample, batch)
		for i := range ss {
			u := (i * 2654435761) % users
			s := (i * 40503) % services
			ss[i] = stream.Sample{User: u, Service: s, Value: 0.5 + float64((u+s)%9)}
		}
		return ss
	}

	run := func(b *testing.B, workers int, unsync bool) {
		cfg := rtConfig()
		cfg.Expiry = 2 * time.Second // bound replay-pool growth across iterations
		m := MustNew(cfg)
		tr := NewTrainer(m, TrainerConfig{Workers: workers, Unsynchronized: unsync})
		defer tr.Close()
		ss := mkSamples()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := time.Duration(i) * time.Second
			for j := range ss {
				ss[j].Time = t
			}
			tr.Apply(ss)
		}
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)*batch/sec, "samples/s")
		}
	}

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, w, false) })
	}
	b.Run("workers=8-unsync", func(b *testing.B) {
		if raceEnabled {
			b.Skip("Hogwild mode is not race-detector clean by design")
		}
		run(b, 8, true)
	})

	// Replay throughput: Algorithm 1's inner loop fanned across the
	// worker-partitioned pools.
	b.Run("replay/workers=4", func(b *testing.B) {
		cfg := rtConfig()
		m := MustNew(cfg)
		tr := NewTrainer(m, TrainerConfig{Workers: 4})
		defer tr.Close()
		tr.Apply(mkSamples())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.ReplaySteps(batch)
		}
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)*batch/sec, "samples/s")
		}
	})
}
