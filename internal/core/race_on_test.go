//go:build race

package core

// raceEnabled gates assertions that the race detector invalidates by
// design — e.g. sync.Pool randomly drops Puts under -race, so
// zero-allocation pins cannot hold.
const raceEnabled = true
