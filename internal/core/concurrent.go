package core

import (
	"sync"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Concurrent wraps a Model with a read-write mutex so that multiple
// goroutines can serve predictions while a writer folds in observed QoS
// data. Predictions take the read lock; observations, replay, and
// restores take the write lock.
//
// Concurrent remains the simple choice for library users with modest
// concurrency. The HTTP serving stack no longer uses it: under heavy
// parallel read traffic the single RWMutex becomes the bottleneck (every
// prediction bounces the same cache line, and each SGD write stalls all
// readers), so internal/engine serves predictions from an immutable
// published PredictView behind an atomic pointer instead — wait-free
// reads, single-writer batched updates.
type Concurrent struct {
	mu sync.RWMutex
	m  *Model
}

// NewConcurrent wraps an existing model. The caller must not use the
// wrapped model directly afterwards.
func NewConcurrent(m *Model) *Concurrent {
	return &Concurrent{m: m}
}

// Observe ingests one sample under the write lock.
func (c *Concurrent) Observe(s stream.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Observe(s)
}

// ObserveAll ingests samples under a single write-lock acquisition.
func (c *Concurrent) ObserveAll(ss []stream.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.ObserveAll(ss)
}

// ReplaySteps performs up to n replay updates under one write-lock
// acquisition and returns the number of steps actually performed
// (0 when the pool is empty). Callers that interleave replay with
// predictions should use modest n to bound writer lock hold time.
func (c *Concurrent) ReplaySteps(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := 0
	for i := 0; i < n; i++ {
		if !c.m.ReplayStep() {
			break
		}
		done++
	}
	return done
}

// Predict estimates the QoS value under the read lock.
func (c *Concurrent) Predict(user, service int) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Predict(user, service)
}

// PredictWithConfidence estimates the QoS value and its confidence under
// the read lock.
func (c *Concurrent) PredictWithConfidence(user, service int) (float64, float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.PredictWithConfidence(user, service)
}

// KnowsUser reports whether the user has been observed.
func (c *Concurrent) KnowsUser(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.KnowsUser(id)
}

// KnowsService reports whether the service has been observed.
func (c *Concurrent) KnowsService(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.KnowsService(id)
}

// NumUsers returns the number of registered users.
func (c *Concurrent) NumUsers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.NumUsers()
}

// NumServices returns the number of registered services.
func (c *Concurrent) NumServices() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.NumServices()
}

// Updates returns the total number of SGD updates performed.
func (c *Concurrent) Updates() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Updates()
}

// UserError returns the tracked error of a user.
func (c *Concurrent) UserError(id int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.UserError(id)
}

// ServiceError returns the tracked error of a service.
func (c *Concurrent) ServiceError(id int) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.ServiceError(id)
}

// HighErrorUsers lists users whose tracked error is at or above
// threshold, worst first, under the read lock.
func (c *Concurrent) HighErrorUsers(threshold float64) []Flagged {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.HighErrorUsers(threshold)
}

// HighErrorServices is HighErrorUsers for services.
func (c *Concurrent) HighErrorServices(threshold float64) []Flagged {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.HighErrorServices(threshold)
}

// RemoveUser forgets a user under the write lock.
func (c *Concurrent) RemoveUser(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.RemoveUser(id)
}

// RemoveService forgets a service under the write lock.
func (c *Concurrent) RemoveService(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.RemoveService(id)
}

// AdvanceTo moves the model clock forward under the write lock.
func (c *Concurrent) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.AdvanceTo(t)
}

// Snapshot serializes the learned state under the read lock.
//
// Note that the read lock is held for the FULL serialization (gob-encoding
// every latent vector), during which every writer — Observe, ObserveAll,
// ReplaySteps, Restore — is blocked. For a large model this stall can
// reach tens of milliseconds. Library users snapshotting occasionally can
// live with that; the serving path must not, which is why the server
// stack uses engine.Engine instead: its Snapshot serializes an immutable
// published PredictView and never touches a lock (see internal/engine and
// Model.BuildView).
func (c *Concurrent) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Snapshot()
}

// Restore atomically replaces the wrapped model with one reconstructed
// from a Snapshot. Concurrent readers see either the old or the new model,
// never an intermediate state.
func (c *Concurrent) Restore(data []byte) error {
	m, err := Restore(data)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = m
	return nil
}

// Config returns the wrapped model's configuration.
func (c *Concurrent) Config() Config {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.Config()
}
