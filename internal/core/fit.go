package core

import (
	"math"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stream"
	"github.com/qoslab/amf/internal/transform"
)

// FitOptions controls Fit's convergence loop.
type FitOptions struct {
	// MaxEpochs bounds the number of replay epochs (each epoch performs
	// PoolLen random replay updates). Zero means the default of 200.
	MaxEpochs int
	// Tol declares convergence when the epoch-over-epoch relative
	// improvement of the training error drops below it. Zero means the
	// default of 1e-3.
	Tol float64
	// MinEpochs prevents premature convergence declarations on the first
	// flat epoch. Zero means the default of 3.
	MinEpochs int
	// Workers > 1 runs the convergence loop in the Trainer's parallel
	// epoch mode: each epoch's replay pass and error reduction fan out
	// across Workers user-partitioned workers (see Trainer). 0 or 1
	// keeps the exact serial legacy behavior.
	Workers int
}

// epsTol is the epsilon guarding the relative-improvement division in the
// convergence check, shared by the serial and parallel fit loops.
const epsTol = transform.Eps

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxEpochs == 0 {
		o.MaxEpochs = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.MinEpochs == 0 {
		o.MinEpochs = 3
	}
	return o
}

// FitResult reports the outcome of a Fit call.
type FitResult struct {
	Epochs     int     // replay epochs performed
	Steps      int     // total replay updates performed
	FinalError float64 // mean training error after the last epoch
	Converged  bool    // whether Tol was reached before MaxEpochs
}

// Fit runs Algorithm 1's inner loop to convergence on the current replay
// pool: repeated random replay updates, declaring convergence when the
// mean training error stops improving. Call after seeding the model with
// Observe/ObserveAll, or again after each batch of new observations.
func (m *Model) Fit(opts FitOptions) FitResult {
	opts = opts.withDefaults()
	if opts.Workers > 1 {
		tr := NewTrainer(m, TrainerConfig{Workers: opts.Workers})
		defer tr.Close()
		return tr.Fit(opts)
	}
	var res FitResult
	prev := math.Inf(1)
	for epoch := 0; epoch < opts.MaxEpochs; epoch++ {
		n := m.pool.Len()
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if !m.ReplayStep() {
				break
			}
			res.Steps++
		}
		res.Epochs++
		cur := m.TrainingError()
		if epoch+1 >= opts.MinEpochs && prev < math.Inf(1) {
			if prev == 0 || math.Abs(prev-cur)/math.Max(prev, transform.Eps) < opts.Tol {
				res.FinalError = cur
				res.Converged = true
				return res
			}
		}
		prev = cur
		res.FinalError = cur
	}
	return res
}

// TrainingError returns the mean per-sample error of the model on the
// live samples currently in the replay pool: relative error |r−g|/r under
// the relative loss, absolute |r−g| otherwise. Returns 0 for an empty pool.
func (m *Model) TrainingError() float64 {
	var sum float64
	var n int
	m.forEachLiveSample(func(s stream.Sample) {
		e, ok := m.sampleError(s)
		if !ok {
			return
		}
		sum += e
		n++
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// sampleError computes one replay sample's training error — relative
// |r−g|/r under the relative loss, absolute |r−g| otherwise — or ok=false
// when either entity has departed. It is the shared per-sample kernel
// behind TrainingError and the Trainer's parallel error reduction.
func (m *Model) sampleError(s stream.Sample) (float64, bool) {
	u, okU := m.users.get(s.User)
	v, okV := m.services.get(s.Service)
	if !okU || !okV {
		return 0, false
	}
	r := m.tr.Forward(s.Value)
	g := transform.Sigmoid(dot(u.vec, v.vec))
	e := math.Abs(r - g)
	if m.cfg.RelativeLoss {
		e /= r
	}
	return e, true
}

// liveSamples compacts the replay pool and returns a snapshot slice of
// every live sample — the per-epoch working set of the parallel fit loop.
func (m *Model) liveSamples() []stream.Sample {
	out := make([]stream.Sample, 0, m.pool.Len())
	m.forEachLiveSample(func(s stream.Sample) { out = append(out, s) })
	return out
}

// dot delegates to the unrolled matrix kernel so every prediction path in
// core (fit loss, view predicts, ranking) shares one inner-product
// implementation.
func dot(a, b []float64) float64 { return matrix.Dot(a, b) }

// forEachLiveSample visits every live replay sample. It compacts the pool
// first so dead samples are not visited.
func (m *Model) forEachLiveSample(f func(stream.Sample)) {
	m.pool.Compact()
	m.pool.Each(f)
}
