package core

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// TestFitPoolExpiresMidRun covers the pool-empties-mid-epoch path: the
// epoch starts with a nonzero (uncompacted) pool length, but every
// sample has expired, so the first ReplayStep fails and the loop winds
// down without steps instead of spinning or declaring convergence.
func TestFitPoolExpiresMidRun(t *testing.T) {
	cfg := rtConfig()
	cfg.Expiry = 10 * time.Second
	m := MustNew(cfg)
	for i := 0; i < 20; i++ {
		m.Observe(stream.Sample{Time: time.Second, User: i % 4, Service: i % 5, Value: 1 + float64(i%3)})
	}
	m.AdvanceTo(time.Minute) // everything expired, pool not yet compacted
	if m.PoolLen() == 0 {
		t.Skip("pool compacted eagerly; mid-epoch case not reachable")
	}
	res := m.Fit(FitOptions{MaxEpochs: 50})
	if res.Steps != 0 {
		t.Fatalf("fit replayed %d expired samples", res.Steps)
	}
	if res.Converged {
		t.Fatalf("fit declared convergence on an expired pool: %+v", res)
	}
	if res.Epochs > 1 {
		t.Fatalf("fit kept iterating %d epochs on an expired pool", res.Epochs)
	}
	if res.FinalError != 0 {
		t.Fatalf("final error %g on a pool with no live samples", res.FinalError)
	}
}

// TestFitConvergesExactlyAtMinEpochs pins the earliest legal convergence
// epoch: with a Tol so loose any improvement ratio passes, convergence
// must be declared at exactly MinEpochs — never before (the epoch+1 >=
// MinEpochs guard) and never after.
func TestFitConvergesExactlyAtMinEpochs(t *testing.T) {
	for _, minEpochs := range []int{2, 3, 5} {
		m := MustNew(rtConfig())
		for i := 0; i < 30; i++ {
			m.Observe(stream.Sample{Time: time.Second, User: i % 5, Service: i % 6, Value: 1 + float64(i%4)})
		}
		res := m.Fit(FitOptions{MaxEpochs: 100, Tol: 1e9, MinEpochs: minEpochs})
		if !res.Converged {
			t.Fatalf("MinEpochs=%d: loose Tol did not converge: %+v", minEpochs, res)
		}
		if res.Epochs != minEpochs {
			t.Fatalf("MinEpochs=%d: converged after %d epochs, want exactly %d", minEpochs, res.Epochs, minEpochs)
		}
	}
}

// TestFitPrevZeroBranch drives the training error to exactly zero (every
// pooled sample's entities removed → no scorable samples) and checks the
// prev == 0 guard declares convergence instead of dividing by zero or
// looping to MaxEpochs.
func TestFitPrevZeroBranch(t *testing.T) {
	m := MustNew(rtConfig())
	for i := 0; i < 20; i++ {
		m.Observe(stream.Sample{Time: time.Second, User: i % 4, Service: i % 5, Value: 1 + float64(i%3)})
	}
	for _, id := range m.UserIDs() {
		m.RemoveUser(id)
	}
	// Replay picks still succeed (samples are live) but update nothing
	// and score nothing: TrainingError is exactly 0 from epoch one.
	res := m.Fit(FitOptions{MaxEpochs: 50, MinEpochs: 2})
	if !res.Converged {
		t.Fatalf("prev==0 path did not converge: %+v", res)
	}
	if res.FinalError != 0 {
		t.Fatalf("final error %g, want exactly 0", res.FinalError)
	}
	if res.Epochs != 2 {
		t.Fatalf("converged after %d epochs, want 2 (first flat zero at MinEpochs)", res.Epochs)
	}
	if res.Steps == 0 {
		t.Fatal("expected replay picks to be consumed even without updates")
	}
}
