package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// synthSamples builds the structured matrix used across the trainer
// tests: value(i,j) = a_i * b_j, a multiplicative structure the
// log-domain model recovers. Roughly 60% of the cells become samples
// (deterministic pattern); the rest are returned as held-out pairs.
func synthSamples(users, services int) (obs []stream.Sample, held [][2]int) {
	value := synthValue
	for i := 0; i < users; i++ {
		for j := 0; j < services; j++ {
			if (i*7+j*3)%10 < 6 {
				obs = append(obs, stream.Sample{Time: time.Second, User: i, Service: j, Value: value(i, j)})
			} else {
				held = append(held, [2]int{i, j})
			}
		}
	}
	return obs, held
}

func synthValue(i, j int) float64 {
	return (0.5 + float64(i)*0.07) * (0.4 + float64(j)*0.05)
}

func TestTrainerWorkerRounding(t *testing.T) {
	m := MustNew(rtConfig())
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {7, 4}, {8, 8},
		{63, 32}, {64, 64}, {100, 64},
	}
	for _, c := range cases {
		tr := NewTrainer(m, TrainerConfig{Workers: c.in})
		if got := tr.Workers(); got != c.want {
			t.Errorf("Workers %d: rounded to %d, want %d", c.in, got, c.want)
		}
		tr.Close()
	}
	// 0 means GOMAXPROCS rounded down; just assert it lands in range.
	tr := NewTrainer(m, TrainerConfig{})
	if w := tr.Workers(); w < 1 || w > MaxTrainWorkers || w&(w-1) != 0 {
		t.Fatalf("default worker count %d not a power of two in [1,%d]", w, MaxTrainWorkers)
	}
	tr.Close()
}

func TestTrainerApplyRegistersAndCounts(t *testing.T) {
	m := MustNew(rtConfig())
	tr := NewTrainer(m, TrainerConfig{Workers: 4})
	defer tr.Close()

	obs, _ := synthSamples(16, 24)
	if n := tr.Apply(obs); n != len(obs) {
		t.Fatalf("Apply returned %d, want %d", n, len(obs))
	}
	if m.NumUsers() != 16 || m.NumServices() != 24 {
		t.Fatalf("entity counts after Apply: %d users, %d services", m.NumUsers(), m.NumServices())
	}
	if m.Updates() != int64(len(obs)) {
		t.Fatalf("Updates() = %d, want %d", m.Updates(), len(obs))
	}
	if tr.PoolLen() != len(obs) {
		t.Fatalf("PoolLen() = %d, want %d", tr.PoolLen(), len(obs))
	}
	// Predictions must be finite and in range for every observed pair.
	for _, s := range obs {
		v, err := m.Predict(s.User, s.Service)
		if err != nil {
			t.Fatalf("predict(%d,%d): %v", s.User, s.Service, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("predict(%d,%d) = %v", s.User, s.Service, v)
		}
	}
	if b := tr.Metrics().Batches.Value(); b == 0 {
		t.Fatal("fan-out counter not incremented")
	}
}

// TestTrainerW1Determinism pins the determinism contract behind
// -train-workers=1: a Workers==1 trainer must reproduce the serial model
// bit for bit (identical snapshots) for the same sample sequence.
func TestTrainerW1Determinism(t *testing.T) {
	obs, _ := synthSamples(12, 18)

	serial := MustNew(rtConfig())
	serial.ObserveAll(obs)
	for i := 0; i < 200; i++ {
		serial.ReplayStep()
	}

	m := MustNew(rtConfig())
	tr := NewTrainer(m, TrainerConfig{Workers: 1})
	defer tr.Close()
	tr.Apply(obs)
	tr.ReplaySteps(200)

	a, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Workers=1 trainer diverged from the serial model (snapshots differ)")
	}
}

// TestTrainerAccuracyParity is the matched-accuracy gate from the PR
// target: the parallel trainer's epoch-end training error (MRE over the
// replay pool) must land within 2% relative of the serial trainer's on
// the synthetic dataset, and held-out accuracy must match too.
func TestTrainerAccuracyParity(t *testing.T) {
	obs, held := synthSamples(24, 32)
	opts := FitOptions{MaxEpochs: 120, Tol: 1e-5, MinEpochs: 5}

	serial := MustNew(rtConfig())
	serial.ObserveAll(obs)
	resSerial := serial.Fit(opts)

	par := MustNew(rtConfig())
	tr := NewTrainer(par, TrainerConfig{Workers: 4})
	defer tr.Close()
	tr.Apply(obs)
	resPar := tr.Fit(opts)

	if resSerial.Steps == 0 || resPar.Steps == 0 {
		t.Fatalf("fit performed no steps: serial %+v parallel %+v", resSerial, resPar)
	}
	relDiff := math.Abs(resSerial.FinalError-resPar.FinalError) / math.Max(resSerial.FinalError, 1e-12)
	if relDiff > 0.02 {
		t.Fatalf("epoch-end training error mismatch: serial %.6f vs parallel %.6f (rel diff %.4f > 0.02)",
			resSerial.FinalError, resPar.FinalError, relDiff)
	}

	meanHeld := func(m *Model) float64 {
		var sum float64
		for _, p := range held {
			got, err := m.Predict(p[0], p[1])
			if err != nil {
				t.Fatalf("predict held-out (%d,%d): %v", p[0], p[1], err)
			}
			truth := synthValue(p[0], p[1])
			sum += math.Abs(got-truth) / truth
		}
		return sum / float64(len(held))
	}
	hs, hp := meanHeld(serial), meanHeld(par)
	if hs > 0.15 || hp > 0.15 {
		t.Fatalf("held-out mean relative error too high: serial %.3f parallel %.3f", hs, hp)
	}
}

// TestModelFitWorkersOption exercises the FitOptions.Workers delegation:
// Model.Fit with Workers > 1 must run the parallel epoch mode end to end
// on a serially observed pool and still converge.
func TestModelFitWorkersOption(t *testing.T) {
	obs, _ := synthSamples(16, 24)
	m := MustNew(rtConfig())
	m.ObserveAll(obs)
	res := m.Fit(FitOptions{MaxEpochs: 150, Tol: 1e-4, Workers: 4})
	if res.Steps == 0 {
		t.Fatal("parallel fit performed no steps")
	}
	if res.FinalError > 0.1 {
		t.Fatalf("parallel fit final error %.4f too high", res.FinalError)
	}
}

func TestTrainerReplayDoesNotResurrect(t *testing.T) {
	m := MustNew(rtConfig())
	tr := NewTrainer(m, TrainerConfig{Workers: 2})
	defer tr.Close()
	obs, _ := synthSamples(8, 8)
	tr.Apply(obs)
	m.RemoveUser(0)
	m.RemoveService(1)
	tr.ReplaySteps(4 * len(obs))
	if m.KnowsUser(0) {
		t.Fatal("replay resurrected a removed user")
	}
	if m.KnowsService(1) {
		t.Fatal("replay resurrected a removed service")
	}
}

func TestTrainerAdvanceToExpires(t *testing.T) {
	cfg := rtConfig()
	cfg.Expiry = 10 * time.Second
	m := MustNew(cfg)
	tr := NewTrainer(m, TrainerConfig{Workers: 2})
	defer tr.Close()
	obs, _ := synthSamples(6, 6)
	tr.Apply(obs)
	if tr.PoolLen() == 0 {
		t.Fatal("pool empty after Apply")
	}
	tr.AdvanceTo(time.Minute)
	if n := tr.ReplaySteps(100); n != 0 {
		t.Fatalf("replay after expiry performed %d picks, want 0", n)
	}
}

// TestTrainerViewTracking verifies parallel updates feed the incremental
// view refresh: entities touched by worker fan-outs must appear in the
// next RefreshView exactly as serial updates would.
func TestTrainerViewTracking(t *testing.T) {
	m := MustNew(rtConfig())
	v0 := m.BuildView() // enables dirty tracking
	tr := NewTrainer(m, TrainerConfig{Workers: 4})
	defer tr.Close()
	obs, _ := synthSamples(10, 14)
	tr.Apply(obs)
	v1 := m.RefreshView(v0)
	if v1.NumUsers() != 10 || v1.NumServices() != 14 {
		t.Fatalf("refreshed view has %d users / %d services, want 10/14", v1.NumUsers(), v1.NumServices())
	}
	for _, s := range obs {
		mv, err1 := m.Predict(s.User, s.Service)
		vv, err2 := v1.Predict(s.User, s.Service)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if mv != vv {
			t.Fatalf("view prediction diverges from model at (%d,%d): %g vs %g", s.User, s.Service, mv, vv)
		}
	}
}

// TestTrainerUnsynchronized exercises Hogwild mode. The float races it
// contains are benign by design but NOT race-detector clean, so the test
// only runs without -race (see race_off_test.go).
func TestTrainerUnsynchronized(t *testing.T) {
	if raceEnabled {
		t.Skip("Hogwild mode is not race-detector clean by design")
	}
	obs, _ := synthSamples(24, 32)
	m := MustNew(rtConfig())
	tr := NewTrainer(m, TrainerConfig{Workers: 4, Unsynchronized: true})
	defer tr.Close()
	if !tr.Unsynchronized() {
		t.Fatal("Unsynchronized() should report true")
	}
	tr.Apply(obs)
	res := tr.Fit(FitOptions{MaxEpochs: 120, Tol: 1e-5, MinEpochs: 5})
	if res.Steps == 0 {
		t.Fatal("hogwild fit performed no steps")
	}
	if res.FinalError > 0.1 {
		t.Fatalf("hogwild final error %.4f too high — racy updates should still converge", res.FinalError)
	}
}

// TestTrainerStress hammers the full coordinator surface — Apply,
// ReplaySteps, parallel Fit epochs, view publishes between fan-outs —
// with the maximum worker count. Its real assertion is the race
// detector: `go test -race` must not flag the synchronized path.
func TestTrainerStress(t *testing.T) {
	m := MustNew(rtConfig())
	view := m.BuildView()
	tr := NewTrainer(m, TrainerConfig{Workers: 8})
	defer tr.Close()

	const rounds = 30
	obs, _ := synthSamples(32, 48)
	for r := 0; r < rounds; r++ {
		lo := (r * 37) % len(obs)
		hi := lo + 101
		if hi > len(obs) {
			hi = len(obs)
		}
		tr.Apply(obs[lo:hi])
		tr.ReplaySteps(64)
		// Publish between fan-outs, exactly as the engine coordinator
		// does, and read through the published view.
		view = m.RefreshView(view)
		for _, s := range obs[lo:hi] {
			if _, err := view.Predict(s.User, s.Service); err != nil {
				t.Fatalf("round %d: view predict: %v", r, err)
			}
		}
	}
	tr.Fit(FitOptions{MaxEpochs: 5, Tol: 1e-9, MinEpochs: 5})
	if m.NumUsers() == 0 || m.NumServices() == 0 {
		t.Fatal("stress left no entities")
	}
}
