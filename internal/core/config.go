// Package core implements Adaptive Matrix Factorization (AMF), the paper's
// contribution: an online QoS prediction model that factorizes the sparse
// user-service QoS matrix and keeps itself current from a stream of
// observations. It extends conventional matrix factorization with
//
//   - data transformation: Box-Cox + [0,1] normalization of QoS values and
//     a sigmoid link on latent inner products (Sec. IV-C.1),
//   - a relative-error loss, matching how QoS predictions are judged for
//     adaptation decisions (Eq. 6-7),
//   - online stochastic gradient descent over individual samples with a
//     replay pool and data expiration (Sec. IV-C.2, Algorithm 1),
//   - adaptive per-user/per-service weights that protect converged
//     entities from noisy newcomers under churn (Sec. IV-C.3, Eq. 10-17).
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/transform"
)

// Config holds AMF hyperparameters. DefaultConfig returns the paper's
// evaluation settings (Sec. V-C).
type Config struct {
	// Rank is the latent dimensionality d. Paper: 10.
	Rank int
	// LearnRate is the SGD step size η. Paper: 0.8.
	LearnRate float64
	// RegUser and RegService are the regularization strengths λu, λs.
	// Paper: both 0.001.
	RegUser    float64
	RegService float64
	// Beta is the exponential-moving-average factor β of the adaptive
	// error trackers (Eq. 13-14). Paper: 0.3.
	Beta float64
	// Alpha is the Box-Cox parameter (Eq. 3). Paper: -0.007 for response
	// time, -0.05 for throughput; 1 disables de-skewing (the AMF(α=1)
	// ablation).
	Alpha float64
	// RMin and RMax bound the QoS value range for normalization (Eq. 4).
	RMin, RMax float64
	// Expiry drops replay samples older than this from the pool
	// (Algorithm 1 lines 12-15). Zero disables expiration. Paper: the
	// 15-minute slice interval.
	Expiry time.Duration
	// Seed makes latent-factor initialization and replay deterministic.
	Seed int64

	// AdaptiveWeights enables the per-entity weights of Eq. 16-17. When
	// false the model degenerates to plain online MF (Eq. 8-9), the
	// ablation benchmarked in BenchmarkAblationWeights.
	AdaptiveWeights bool
	// RelativeLoss selects the (r−g)/r loss of Eq. 6. When false the
	// model minimizes the absolute loss (r−g)², the ablation of
	// BenchmarkAblationLoss and effectively PMF's objective.
	RelativeLoss bool

	// MaxGradNorm clips the common gradient factor (g−r)·g′/r² of each
	// update. The relative-error loss divides by r², which explodes when
	// normalized targets sit near zero (poorly tuned α, or outliers near
	// RMin); clipping bounds each latent step to ≈ LearnRate and keeps
	// SGD stable across the whole α range. Zero means the default of 1,
	// which never binds under a well-tuned Box-Cox α.
	MaxGradNorm float64
}

// DefaultConfig returns the paper's hyperparameters for the given QoS
// value range and Box-Cox alpha.
func DefaultConfig(alpha, rmin, rmax float64) Config {
	return Config{
		Rank:            10,
		LearnRate:       0.8,
		RegUser:         0.001,
		RegService:      0.001,
		Beta:            0.3,
		Alpha:           alpha,
		RMin:            rmin,
		RMax:            rmax,
		Expiry:          15 * time.Minute,
		Seed:            1,
		AdaptiveWeights: true,
		RelativeLoss:    true,
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.Rank <= 0:
		return fmt.Errorf("core: Rank must be positive, got %d", c.Rank)
	case c.LearnRate <= 0:
		return fmt.Errorf("core: LearnRate must be positive, got %g", c.LearnRate)
	case c.RegUser < 0 || c.RegService < 0:
		return fmt.Errorf("core: regularization must be non-negative, got λu=%g λs=%g", c.RegUser, c.RegService)
	case c.Beta <= 0 || c.Beta > 1:
		return fmt.Errorf("core: Beta must be in (0,1], got %g", c.Beta)
	case c.MaxGradNorm < 0:
		return fmt.Errorf("core: MaxGradNorm must be non-negative, got %g", c.MaxGradNorm)
	case c.Expiry < 0:
		return fmt.Errorf("core: Expiry must be non-negative, got %v", c.Expiry)
	}
	if _, err := transform.New(c.Alpha, c.RMin, c.RMax); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 1
	}
	return c
}

// ErrUnknownUser is returned by Predict for a user the model has never
// observed.
var ErrUnknownUser = errors.New("core: unknown user")

// ErrUnknownService is returned by Predict for a service the model has
// never observed.
var ErrUnknownService = errors.New("core: unknown service")
