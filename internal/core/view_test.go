package core

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func viewTestModel(t *testing.T) *Model {
	t.Helper()
	cfg := DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	m := MustNew(cfg)
	for u := 0; u < 10; u++ {
		for s := 0; s < 20; s++ {
			if (u+s)%3 == 0 {
				m.Observe(stream.Sample{Time: time.Duration(u+s) * time.Second, User: u, Service: s, Value: 0.5 + float64((u*s)%7)})
			}
		}
	}
	return m
}

func TestBuildViewMatchesModel(t *testing.T) {
	m := viewTestModel(t)
	v := m.BuildView()
	if v.NumUsers() != m.NumUsers() || v.NumServices() != m.NumServices() {
		t.Fatalf("view sizes %d/%d, model %d/%d", v.NumUsers(), v.NumServices(), m.NumUsers(), m.NumServices())
	}
	if v.Updates() != m.Updates() {
		t.Fatalf("view updates %d, model %d", v.Updates(), m.Updates())
	}
	for u := 0; u < 10; u++ {
		for s := 0; s < 20; s++ {
			mv, merr := m.Predict(u, s)
			vv, verr := v.Predict(u, s)
			if (merr == nil) != (verr == nil) {
				t.Fatalf("(%d,%d): model err %v, view err %v", u, s, merr, verr)
			}
			if merr == nil && mv != vv {
				t.Fatalf("(%d,%d): model %g, view %g", u, s, mv, vv)
			}
		}
	}
	// Confidence agrees too.
	mv, mc, _ := m.PredictWithConfidence(0, 0)
	vv, vc, _ := v.PredictWithConfidence(0, 0)
	if mv != vv || mc != vc {
		t.Fatalf("confidence: model (%g,%g), view (%g,%g)", mv, mc, vv, vc)
	}
}

func TestViewIsImmutableUnderUpdates(t *testing.T) {
	m := viewTestModel(t)
	v := m.BuildView()
	before, err := v.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the model; the already-built view must not move.
	for i := 0; i < 500; i++ {
		m.Observe(stream.Sample{User: 0, Service: 0, Value: 9.5})
	}
	after, err := v.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("published view changed under model updates: %g -> %g", before, after)
	}
}

func TestRefreshViewIncremental(t *testing.T) {
	m := viewTestModel(t)
	v1 := m.BuildView()
	// Touch exactly one (user, service) pair.
	m.Observe(stream.Sample{User: 1, Service: 2, Value: 3.3})
	v2 := m.RefreshView(v1)
	if v2.Version() != v1.Version()+1 {
		t.Fatalf("version %d after %d", v2.Version(), v1.Version())
	}
	// The refreshed view reflects the new state exactly.
	want, _ := m.Predict(1, 2)
	got, _ := v2.Predict(1, 2)
	if want != got {
		t.Fatalf("refreshed view predict %g, model %g", got, want)
	}
	// Untouched shards are shared with the previous view by pointer.
	dirtyShard := shardOf(1)
	for i := range v2.users.shards {
		if i == dirtyShard || v1.users.shards[i] == nil {
			continue
		}
		if !mapsIdentical(v1.users.shards[i], v2.users.shards[i]) {
			t.Fatalf("clean user shard %d was recloned", i)
		}
	}
	if mapsIdentical(v1.users.shards[dirtyShard], v2.users.shards[dirtyShard]) {
		t.Fatalf("dirty user shard %d was shared", dirtyShard)
	}
	// And the old view still serves the old state.
	old, _ := v1.Predict(1, 2)
	if old == got {
		t.Fatalf("previous view mutated by refresh")
	}
}

// mapsIdentical reports whether two maps are the same map object:
// inserting a sentinel into one must be visible through the other.
func mapsIdentical(a, b map[int]viewEntity) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	const sentinel = -1 << 40 // cannot collide with real IDs
	a[sentinel] = viewEntity{}
	_, ok := b[sentinel]
	delete(a, sentinel)
	return ok
}

func TestRefreshViewRemoval(t *testing.T) {
	m := viewTestModel(t)
	v1 := m.BuildView()
	if !v1.KnowsUser(3) {
		t.Fatal("user 3 missing from view")
	}
	m.RemoveUser(3)
	m.RemoveService(6)
	v2 := m.RefreshView(v1)
	if v2.KnowsUser(3) || v2.KnowsService(6) {
		t.Fatal("removed entities still in refreshed view")
	}
	if v2.NumUsers() != m.NumUsers() || v2.NumServices() != m.NumServices() {
		t.Fatalf("counts %d/%d after removal, model %d/%d", v2.NumUsers(), v2.NumServices(), m.NumUsers(), m.NumServices())
	}
	if !v1.KnowsUser(3) {
		t.Fatal("removal leaked into previous view")
	}
}

func TestRefreshViewAfterModelSwapRebuilds(t *testing.T) {
	m1 := viewTestModel(t)
	v1 := m1.BuildView()
	data, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	v2 := m2.RefreshView(v1) // prev belongs to m1: full rebuild expected
	if v2.Version() != v1.Version()+1 {
		t.Fatalf("version not continued across model swap: %d after %d", v2.Version(), v1.Version())
	}
	want, _ := m2.Predict(1, 2)
	got, _ := v2.Predict(1, 2)
	if want != got {
		t.Fatalf("rebuilt view predict %g, model %g", got, want)
	}
}

func TestViewSnapshotRestoresIdentically(t *testing.T) {
	m := viewTestModel(t)
	v := m.BuildView()
	data, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumUsers() != m.NumUsers() || r.NumServices() != m.NumServices() || r.Updates() != m.Updates() {
		t.Fatalf("restored %d/%d/%d, want %d/%d/%d",
			r.NumUsers(), r.NumServices(), r.Updates(), m.NumUsers(), m.NumServices(), m.Updates())
	}
	for u := 0; u < 10; u++ {
		for s := 0; s < 20; s++ {
			mv, merr := m.Predict(u, s)
			rv, rerr := r.Predict(u, s)
			if (merr == nil) != (rerr == nil) || mv != rv {
				t.Fatalf("(%d,%d): restored %g (%v), want %g (%v)", u, s, rv, rerr, mv, merr)
			}
		}
	}
}

func TestViewRankMatchesModel(t *testing.T) {
	m := viewTestModel(t)
	v := m.BuildView()
	candidates := []int{0, 3, 6, 9, 12, 999}
	mr, mu := m.RankServices(4, candidates, true)
	vr, vu := v.RankServices(4, candidates, true)
	if len(mr) != len(vr) || len(mu) != len(vu) {
		t.Fatalf("rank sizes differ: model %d/%d, view %d/%d", len(mr), len(mu), len(vr), len(vu))
	}
	for i := range mr {
		if mr[i] != vr[i] {
			t.Fatalf("rank[%d]: model %+v, view %+v", i, mr[i], vr[i])
		}
	}
	// Unknown user: every candidate is unknown.
	if r, u := v.RankServices(12345, candidates, true); len(r) != 0 || len(u) != len(candidates) {
		t.Fatalf("unknown user rank: %v / %v", r, u)
	}
}

func TestViewFlaggedMatchesModel(t *testing.T) {
	m := viewTestModel(t)
	// Add a raw newcomer whose tracker stays near 1.
	m.Observe(stream.Sample{User: 99, Service: 0, Value: 15})
	v := m.BuildView()
	mf := m.HighErrorUsers(0.5)
	vf := v.HighErrorUsers(0.5)
	if len(mf) != len(vf) {
		t.Fatalf("flagged sizes: model %d, view %d", len(mf), len(vf))
	}
	for i := range mf {
		if mf[i] != vf[i] {
			t.Fatalf("flagged[%d]: model %+v, view %+v", i, mf[i], vf[i])
		}
	}
}

func TestDirtyCount(t *testing.T) {
	m := viewTestModel(t)
	if u, s := m.DirtyCount(); u != 0 || s != 0 {
		t.Fatalf("dirty before tracking: %d/%d", u, s)
	}
	m.BuildView()
	if u, s := m.DirtyCount(); u != 0 || s != 0 {
		t.Fatalf("dirty right after build: %d/%d", u, s)
	}
	m.Observe(stream.Sample{User: 1, Service: 2, Value: 1})
	m.Observe(stream.Sample{User: 1, Service: 3, Value: 1})
	if u, s := m.DirtyCount(); u != 1 || s != 2 {
		t.Fatalf("dirty after 2 observes: %d/%d, want 1/2", u, s)
	}
}
