package core

import (
	"math"
	"testing"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// Float32 arena mode (ISSUE 8): the view-side precision trade is only
// acceptable because it is measured, not assumed — these tests pin (a)
// exact internal consistency of every f32 ranking path against each
// other, and (b) the honest accuracy cost of the rounding against the
// float64 views on the seed dataset.

// f32TestView builds a float32-arena view over topkTestModel's catalog.
func f32TestView(t testing.TB, n int) (*Model, *PredictView) {
	t.Helper()
	m := topkTestModel(t, n)
	m.SetArenaFloat32(true)
	v := m.BuildView()
	if !v.ArenaFloat32() {
		t.Fatal("view did not record f32 arena mode")
	}
	return m, v
}

// TestFloat32ArenaRankingParity is TestTopKAllMatchesExplicitCandidates
// and TestViewBestMatchesTopK run in f32 mode: the candidate path
// (Dot32 per service), the arena scan (DotBatch32), and Best must agree
// element for element — the same bit-identity contract the f64 paths
// rely on, now through the float32 kernels.
func TestFloat32ArenaRankingParity(t *testing.T) {
	const n = 1500
	_, v := f32TestView(t, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for _, lower := range []bool{true, false} {
		for _, k := range []int{1, 10, n} {
			want, _ := v.TopK(0, all, k, lower)
			for _, w := range []int{1, 4} {
				got := v.TopKAll(0, k, lower, w)
				rankedEqual(t, "f32 TopKAll", got, want)
			}
		}
		best, ok := v.Best(0, all, lower)
		if !ok {
			t.Fatal("Best found nothing")
		}
		head, _ := v.TopK(0, all, 1, lower)
		rankedEqual(t, "f32 Best vs TopK head", []Ranked{best}, head)
	}
}

// TestFloat32RefreshKeepsMode drives the incremental republish path in
// f32 mode: after more observes, RefreshView must produce an f32 view
// whose arena scans still agree exactly with its candidate path (the
// rebuildArena f32 path), and flipping the mode must force a full
// rebuild in the new precision.
func TestFloat32RefreshKeepsMode(t *testing.T) {
	m, v1 := f32TestView(t, 300)
	for s := 0; s < 40; s++ {
		m.Observe(stream.Sample{User: 0, Service: s, Value: 3})
	}
	v2 := m.RefreshView(v1)
	if !v2.ArenaFloat32() {
		t.Fatal("refresh dropped f32 mode")
	}
	if v2.Version() != v1.Version()+1 {
		t.Fatalf("version %d after %d", v2.Version(), v1.Version())
	}
	all := make([]int, 300)
	for i := range all {
		all[i] = i
	}
	want, _ := v2.TopK(0, all, 20, true)
	rankedEqual(t, "refreshed f32 TopKAll", v2.TopKAll(0, 20, true, 1), want)

	// Mode flip back to f64: refresh must fall back to a full rebuild.
	m.SetArenaFloat32(false)
	v3 := m.RefreshView(v2)
	if v3.ArenaFloat32() {
		t.Fatal("mode flip did not take")
	}
	if v3.Version() != v2.Version()+1 {
		t.Fatalf("version %d after %d", v3.Version(), v2.Version())
	}
	// The f64 view predicts from unrounded factors; it must agree with
	// the f32 view only within the rounding envelope, and exactly with
	// the model.
	for _, svc := range []int{0, 7, 123, 299} {
		mp, err := m.Predict(0, svc)
		if err != nil {
			t.Fatalf("model predict: %v", err)
		}
		vp, err := v3.Predict(0, svc)
		if err != nil {
			t.Fatalf("view predict: %v", err)
		}
		if vp != mp {
			t.Fatalf("service %d: f64 view %v != model %v", svc, vp, mp)
		}
	}
}

// TestTopKAllBatchMatchesSerial pins the coalesced scan's contract in
// both precisions: TopKAllBatch over a mixed batch — different users,
// k's, directions, duplicates, an unknown user, k <= 0, k > catalog —
// returns, per query, exactly what the serial TopKAll returns.
func TestTopKAllBatchMatchesSerial(t *testing.T) {
	for _, mode := range []struct {
		name string
		f32  bool
	}{{"f64", false}, {"f32", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const n = 1500
			m := topkTestModel(t, n)
			m.SetArenaFloat32(mode.f32)
			v := m.BuildView()
			queries := []RankQuery{
				{User: 0, K: 10, LowerIsBetter: true},
				{User: 1, K: 3, LowerIsBetter: false},
				{User: 0, K: n + 50, LowerIsBetter: false}, // clamps to catalog
				{User: 777, K: 5, LowerIsBetter: true},     // unknown user
				{User: 0, K: 0, LowerIsBetter: true},       // no-op query
				{User: 0, K: 10, LowerIsBetter: true},      // duplicate of query 0
				{User: 1, K: 1, LowerIsBetter: true},
			}
			got := v.TopKAllBatch(queries)
			if len(got) != len(queries) {
				t.Fatalf("got %d results for %d queries", len(got), len(queries))
			}
			for qi, q := range queries {
				want := v.TopKAll(q.User, q.K, q.LowerIsBetter, 1)
				if want == nil {
					if got[qi] != nil {
						t.Fatalf("query %d: got %v, want nil", qi, got[qi])
					}
					continue
				}
				rankedEqual(t, "TopKAllBatch", got[qi], want)
			}
			// Degenerate shapes.
			if out := v.TopKAllBatch(nil); len(out) != 0 {
				t.Fatalf("nil queries: %v", out)
			}
			single := v.TopKAllBatch([]RankQuery{{User: 0, K: 7, LowerIsBetter: true}})
			rankedEqual(t, "single-query batch", single[0], v.TopKAll(0, 7, true, 1))
		})
	}
}

// trainOnSeedDataset observes every (user, service) pair of the seed
// dataset across all slices, returning the generator for ground truth.
func trainOnSeedDataset(t testing.TB) (*Model, *dataset.Generator) {
	t.Helper()
	g := dataset.MustNew(dataset.SmallConfig())
	cfg := DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	m := MustNew(cfg)
	dc := g.Config()
	for slice := 0; slice < dc.Slices; slice++ {
		at := g.SliceTime(slice)
		for u := 0; u < dc.Users; u++ {
			for s := 0; s < dc.Services; s++ {
				m.Observe(stream.Sample{
					Time:    at,
					User:    u,
					Service: s,
					Value:   g.Value(dataset.ResponseTime, u, s, slice),
				})
			}
		}
	}
	return m, g
}

// TestFloat32ArenaPrecision is the honest-precision gate: the same
// trained model published as a float64 view and as a float32 view,
// MRE measured for both against the seed dataset's ground-truth pair
// means, and the float32 penalty asserted within a stated bound.
//
// Measured on the seed dataset (30 users × 120 services × 8 slices,
// dataset.SmallConfig, AVX2 kernels): MRE(f64) = 0.474108, |MRE delta|
// = 4.7e-9, worst per-pair relative deviation = 5.7e-7 — the rounding
// is invisible next to the model error, which is the point of shipping
// f32 arenas as a bandwidth optimization. The asserted bounds leave
// >100× headroom so the test stays honest without being flaky across
// kernel variants (SIMD, noasm, arm64 — each associates sums
// differently).
func TestFloat32ArenaPrecision(t *testing.T) {
	m, g := trainOnSeedDataset(t)
	v64 := m.BuildView()
	m.SetArenaFloat32(true)
	v32 := m.RefreshView(v64) // mode flip forces a full rebuild in f32
	if v64.ArenaFloat32() || !v32.ArenaFloat32() {
		t.Fatal("view precision modes wrong")
	}

	dc := g.Config()
	var sum64, sum32 float64
	var worstRel float64 // worst per-pair relative deviation f32 vs f64
	n := 0
	for u := 0; u < dc.Users; u++ {
		for s := 0; s < dc.Services; s++ {
			truth := g.PairMean(dataset.ResponseTime, u, s)
			if truth <= 0 {
				continue
			}
			p64, err := v64.Predict(u, s)
			if err != nil {
				t.Fatalf("predict64(%d,%d): %v", u, s, err)
			}
			p32, err := v32.Predict(u, s)
			if err != nil {
				t.Fatalf("predict32(%d,%d): %v", u, s, err)
			}
			sum64 += math.Abs(p64-truth) / truth
			sum32 += math.Abs(p32-truth) / truth
			if rel := math.Abs(p32-p64) / math.Max(math.Abs(p64), 1e-12); rel > worstRel {
				worstRel = rel
			}
			n++
		}
	}
	mre64 := sum64 / float64(n)
	mre32 := sum32 / float64(n)
	delta := math.Abs(mre32 - mre64)
	t.Logf("pairs=%d MRE(f64)=%.6f MRE(f32)=%.6f |delta|=%.3g worst per-pair rel deviation=%.3g",
		n, mre64, mre32, delta, worstRel)

	const mreDeltaBound = 1e-4 // measured 4.7e-9; see comment above
	if delta > mreDeltaBound {
		t.Fatalf("f32 arena MRE delta %g exceeds bound %g (f64=%.6f f32=%.6f)", delta, mreDeltaBound, mre64, mre32)
	}
	const pairRelBound = 1e-3 // measured worst 5.7e-7
	if worstRel > pairRelBound {
		t.Fatalf("worst per-pair relative deviation %g exceeds bound %g", worstRel, pairRelBound)
	}
}

// TestFloat32ViewSnapshotRoundTrip: snapshots of an f32 view widen the
// rounded factors back to float64 exactly, so a Restore must reproduce
// the f32 view's predictions to within kernel reassociation (the
// restored model computes in f64 over the same rounded factors) and
// remain trainable.
func TestFloat32ViewSnapshotRoundTrip(t *testing.T) {
	m, v := f32TestView(t, 200)
	data, err := v.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := Restore(data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r.NumUsers() != m.NumUsers() || r.NumServices() != m.NumServices() {
		t.Fatalf("restored %d/%d entities, want %d/%d", r.NumUsers(), r.NumServices(), m.NumUsers(), m.NumServices())
	}
	for _, svc := range []int{0, 13, 99, 199} {
		want, err := v.Predict(0, svc)
		if err != nil {
			t.Fatalf("view predict: %v", err)
		}
		got, err := r.Predict(0, svc)
		if err != nil {
			t.Fatalf("restored predict: %v", err)
		}
		// Same rounded factors, different accumulation precision: the
		// difference is bounded by f32 reassociation at rank 10.
		if rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-12); rel > 1e-5 {
			t.Fatalf("service %d: restored %v vs f32 view %v (rel %g)", svc, got, want, rel)
		}
	}
	r.Observe(stream.Sample{User: 0, Service: 5, Value: 2}) // still trainable
}
