package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func TestConcurrentBasicDelegation(t *testing.T) {
	c := NewConcurrent(MustNew(rtConfig()))
	c.Observe(stream.Sample{Time: time.Second, User: 1, Service: 2, Value: 3})
	if !c.KnowsUser(1) || !c.KnowsService(2) {
		t.Fatal("observe should register entities")
	}
	if c.NumUsers() != 1 || c.NumServices() != 1 {
		t.Fatal("counts")
	}
	if _, err := c.Predict(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(9, 2); !errors.Is(err, ErrUnknownUser) {
		t.Fatal("unknown user should error")
	}
	if e, ok := c.UserError(1); !ok || e <= 0 {
		t.Fatalf("user error = %g, %v", e, ok)
	}
	if e, ok := c.ServiceError(2); !ok || e <= 0 {
		t.Fatalf("service error = %g, %v", e, ok)
	}
	if c.Updates() != 1 {
		t.Fatalf("updates = %d", c.Updates())
	}
	if c.Config().Rank != 10 {
		t.Fatal("config should pass through")
	}
}

func TestConcurrentObserveAllAndReplay(t *testing.T) {
	c := NewConcurrent(MustNew(rtConfig()))
	ss := make([]stream.Sample, 20)
	for i := range ss {
		ss[i] = stream.Sample{Time: time.Duration(i), User: i % 3, Service: i % 4, Value: 1 + float64(i%5)}
	}
	c.ObserveAll(ss)
	if got := c.ReplaySteps(50); got != 50 {
		t.Fatalf("replay steps = %d, want 50", got)
	}
	empty := NewConcurrent(MustNew(rtConfig()))
	if got := empty.ReplaySteps(10); got != 0 {
		t.Fatalf("replay on empty model = %d, want 0", got)
	}
}

func TestConcurrentRemoveAndAdvance(t *testing.T) {
	cfg := rtConfig()
	cfg.Expiry = time.Minute
	c := NewConcurrent(MustNew(cfg))
	c.Observe(stream.Sample{Time: 0, User: 1, Service: 2, Value: 3})
	c.RemoveUser(1)
	c.RemoveService(2)
	if c.KnowsUser(1) || c.KnowsService(2) {
		t.Fatal("removal should delegate")
	}
	c.AdvanceTo(time.Hour)
	if got := c.ReplaySteps(10); got != 0 {
		t.Fatalf("expired pool should yield 0 replay steps, got %d", got)
	}
}

func TestConcurrentSnapshot(t *testing.T) {
	c := NewConcurrent(MustNew(rtConfig()))
	c.Observe(stream.Sample{User: 0, Service: 0, Value: 1})
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(data); err != nil {
		t.Fatal(err)
	}
}

// Hammer the wrapper from many goroutines; run with -race in CI. The test
// asserts no panics, no lost updates, and in-range predictions.
func TestConcurrentParallelAccess(t *testing.T) {
	c := NewConcurrent(MustNew(rtConfig()))
	// Seed so predictions are possible from the start.
	for u := 0; u < 4; u++ {
		for s := 0; s < 4; s++ {
			c.Observe(stream.Sample{Time: time.Second, User: u, Service: s, Value: 1})
		}
	}
	var wg sync.WaitGroup
	const writers, readers, iters = 4, 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Observe(stream.Sample{
					Time:    time.Second + time.Duration(i),
					User:    (w + i) % 4,
					Service: i % 4,
					Value:   0.5 + float64(i%10),
				})
				c.ReplaySteps(2)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, err := c.Predict(i%4, (r+i)%4)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if v < 0 || v > 20 {
					t.Errorf("prediction %g out of range", v)
					return
				}
				c.NumUsers()
				c.UserError(i % 4)
			}
		}(r)
	}
	wg.Wait()
	wantMin := int64(4*4 + writers*iters)
	if got := c.Updates(); got < wantMin {
		t.Fatalf("updates = %d, want >= %d", got, wantMin)
	}
}

func TestConcurrentPredictWithConfidence(t *testing.T) {
	c := NewConcurrent(MustNew(rtConfig()))
	c.Observe(stream.Sample{User: 1, Service: 2, Value: 3})
	v, conf, err := c.PredictWithConfidence(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 20 || conf <= 0 || conf > 1 {
		t.Fatalf("value=%g conf=%g", v, conf)
	}
}
