package core

// This file holds the sharded entity storage behind Model.users and
// Model.services, and the matching sharded dirty sets behind incremental
// view publication.
//
// Why sharded maps instead of two flat map[int]*entity: the parallel
// training path (trainer.go) partitions users across W workers so that
// each worker exclusively owns its users' latent vectors. That ownership
// must extend to *registration* — a worker observing a brand-new user
// inserts into the table concurrently with its peers — and Go maps do not
// tolerate concurrent writers even on disjoint keys. Splitting the table
// into tableShards independent maps, with worker w owning exactly the
// shards {si : si & (W-1) == w}, makes every map write single-writer by
// construction: no locks on the user side, ever.
//
// tableShards is deliberately the same constant as viewShardCount and
// uses the same shardOf hash, so three layers line up on one partition:
//
//	model table shard  ==  view shard  ==  trainer stripe
//
// BuildView groups entities per shard without re-hashing, the trainer's
// per-service stripe lock also guards its shard map (service registration
// and vector updates share one lock), and a worker's user shards are the
// exact shards its ingest queues feed (engine shard si → worker si&(W-1)).
const tableShards = viewShardCount

// entityTable is one side (users or services) of the model's learned
// state: a fixed array of hash shards. The Model itself remains
// single-goroutine-unsafe; concurrent access discipline is imposed by the
// Trainer (worker-exclusive user shards, stripe-locked service shards).
type entityTable struct {
	shards [tableShards]map[int]*entity
}

func newEntityTable() *entityTable {
	t := &entityTable{}
	for i := range t.shards {
		t.shards[i] = make(map[int]*entity)
	}
	return t
}

func (t *entityTable) get(id int) (*entity, bool) {
	e, ok := t.shards[shardOf(id)][id]
	return e, ok
}

func (t *entityTable) put(id int, e *entity) {
	t.shards[shardOf(id)][id] = e
}

func (t *entityTable) remove(id int) {
	delete(t.shards[shardOf(id)], id)
}

// len sums the shard sizes. O(tableShards) — cheap relative to how rarely
// entity counts are read (stats endpoints, view builds).
func (t *entityTable) len() int {
	n := 0
	for i := range t.shards {
		n += len(t.shards[i])
	}
	return n
}

// each visits every entity in unspecified order.
func (t *entityTable) each(f func(id int, e *entity)) {
	for i := range t.shards {
		for id, e := range t.shards[i] {
			f(id, e)
		}
	}
}

// ids returns all entity IDs in unspecified order.
func (t *entityTable) ids() []int {
	out := make([]int, 0, t.len())
	for i := range t.shards {
		for id := range t.shards[i] {
			out = append(out, id)
		}
	}
	return out
}

// dirtySet records entities touched since the last published view,
// sharded exactly like entityTable so that the parallel trainer's workers
// can mark dirt without coordination: a worker only writes the dirty
// shards it owns (user side), or marks under the stripe lock that already
// guards the entity shard (service side). nil maps mean tracking is off.
type dirtySet struct {
	shards [tableShards]map[int]struct{}
}

func newDirtySet() *dirtySet {
	d := &dirtySet{}
	for i := range d.shards {
		d.shards[i] = make(map[int]struct{})
	}
	return d
}

func (d *dirtySet) mark(id int) {
	d.shards[shardOf(id)][id] = struct{}{}
}

func (d *dirtySet) count() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i])
	}
	return n
}

func (d *dirtySet) clear() {
	for i := range d.shards {
		clear(d.shards[i])
	}
}
