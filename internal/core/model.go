package core

import (
	"math"
	"math/rand"
	"time"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stats"
	"github.com/qoslab/amf/internal/stream"
	"github.com/qoslab/amf/internal/transform"
)

// entity is the per-user or per-service state: a latent factor vector and
// the exponential moving average of its relative prediction error, which
// drives the adaptive weights.
type entity struct {
	vec     []float64
	err     *stats.EMA
	updates int
}

// Model is the AMF predictor. It is not safe for concurrent use; wrap it
// in Concurrent for multi-goroutine access (e.g. the prediction service).
type Model struct {
	cfg      Config
	tr       *transform.Transformer
	rng      *rand.Rand
	pool     *stream.Pool
	users    *entityTable
	services *entityTable
	updates  int64

	// dirtyUsers/dirtyServices record entities touched since the last
	// published view so RefreshView can reclone only the affected shards.
	// Sharded like the entity tables (see table.go) so the parallel
	// trainer's workers can mark dirt without coordination. nil until
	// EnableViewTracking (or the first BuildView); see view.go.
	dirtyUsers    *dirtySet
	dirtyServices *dirtySet

	// arenaF32 makes BuildView/RefreshView freeze factor arenas as
	// float32 (see SetArenaFloat32). Training state stays float64.
	arenaF32 bool
}

// New constructs an empty AMF model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	tr, err := transform.New(cfg.Alpha, cfg.RMin, cfg.RMax)
	if err != nil {
		return nil, err
	}
	return &Model{
		cfg:      cfg,
		tr:       tr,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		pool:     stream.NewPool(cfg.Expiry, cfg.Seed+1),
		users:    newEntityTable(),
		services: newEntityTable(),
	}, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

// SetArenaFloat32 selects the precision of the factor arenas frozen
// into published views (`-arena-precision f32`): when on, views store
// each entity's latent vector as float32, halving the bytes the
// full-scan rank path streams per row, and every view-side prediction
// and ranking runs the float32 kernels. Training, the live model, and
// the SGD math all stay float64 — the rounding happens once per
// publish, on read-only data, and its accuracy cost is measured (not
// assumed) by the precision tests. Takes effect at the next
// BuildView/RefreshView; a mode change forces that refresh to be a full
// rebuild.
func (m *Model) SetArenaFloat32(on bool) { m.arenaF32 = on }

// ArenaFloat32 reports the arena precision mode set by SetArenaFloat32.
func (m *Model) ArenaFloat32() bool { return m.arenaF32 }

// newEntity randomly initializes a latent vector (Algorithm 1 line 6) and
// seeds the error tracker at 1 (line 7): a brand-new entity is maximally
// untrusted, so the adaptive weights route most of each update to it.
func (m *Model) newEntity() *entity { return newEntityWith(m.rng, &m.cfg) }

// newEntityWith is newEntity against an explicit random source, so the
// parallel trainer's workers can register entities with their own
// deterministic per-worker generators instead of racing on m.rng.
func newEntityWith(rng *rand.Rand, cfg *Config) *entity {
	v := make([]float64, cfg.Rank)
	scale := 1 / math.Sqrt(float64(cfg.Rank))
	for k := range v {
		v[k] = rng.Float64() * scale
	}
	return &entity{vec: v, err: stats.NewEMAInit(cfg.Beta, 1)}
}

func (m *Model) user(id int) *entity {
	e, ok := m.users.get(id)
	if !ok {
		e = m.newEntity()
		m.users.put(id, e)
	}
	return e
}

func (m *Model) service(id int) *entity {
	e, ok := m.services.get(id)
	if !ok {
		e = m.newEntity()
		m.services.put(id, e)
	}
	return e
}

// Observe ingests a newly observed QoS sample: it registers any new user
// or service, stores the sample in the replay pool, and performs one
// online SGD update (Algorithm 1 lines 3-9).
func (m *Model) Observe(s stream.Sample) {
	u := m.user(s.User)
	v := m.service(s.Service)
	m.pool.Add(s)
	m.update(u, v, s.Value)
	m.markDirty(s.User, s.Service)
}

// ObserveAll ingests samples in order.
func (m *Model) ObserveAll(ss []stream.Sample) {
	for _, s := range ss {
		m.Observe(s)
	}
}

// ReplayStep performs one online update on a randomly picked existing
// sample (Algorithm 1 lines 11-15). It reports false when no live sample
// remains, i.e. the model should wait for new data.
func (m *Model) ReplayStep() bool {
	s, ok := m.pool.Pick()
	if !ok {
		return false
	}
	// A replayed sample must not resurrect a departed user or service;
	// only Observe (new data) registers entities.
	u, okU := m.users.get(s.User)
	v, okV := m.services.get(s.Service)
	if okU && okV {
		m.update(u, v, s.Value)
		m.markDirty(s.User, s.Service)
	}
	return true
}

// AdvanceTo moves the model clock forward, expiring replay samples older
// than the configured expiry.
func (m *Model) AdvanceTo(t time.Duration) { m.pool.AdvanceTo(t) }

// Now returns the model clock (latest sample or advance time).
func (m *Model) Now() time.Duration { return m.pool.Now() }

// PoolLen returns the number of retained (possibly stale) replay samples.
func (m *Model) PoolLen() int { return m.pool.Len() }

// CompactPool eagerly evicts expired and superseded replay samples.
func (m *Model) CompactPool() { m.pool.Compact() }

// update is OnlineUpdate(tij, ui, sj, Rij) from Algorithm 1:
// normalize, compute weights from current errors, measure the relative
// error, fold it into both error trackers, and take simultaneous weighted
// gradient steps on the two factor vectors (Eq. 16-17).
func (m *Model) update(u, v *entity, value float64) {
	m.updateEntities(u, v, value)
	m.updates++
}

// updateEntities is update without the model-level counter bump: the pure
// per-sample numeric work (transform, adaptive weights, error trackers,
// gradient steps). It reads only immutable model state (cfg, tr) and
// writes only the two entities, so the parallel trainer can run it from
// worker goroutines — the caller must hold exclusive access to u (worker
// partition ownership) and v (stripe lock), and accumulates the update
// count separately.
func (m *Model) updateEntities(u, v *entity, value float64) {
	cfg := &m.cfg
	r := m.tr.Forward(value)

	x := matrix.Dot(u.vec, v.vec)
	g := transform.Sigmoid(x)
	gp := transform.SigmoidPrime(x)

	// Adaptive weights (Eq. 12); without them the model degenerates to
	// the unweighted updates of Eq. 8-9.
	wu, wv := 1.0, 1.0
	if cfg.AdaptiveWeights {
		eu, ev := u.err.Value(), v.err.Value()
		if sum := eu + ev; sum > 0 {
			wu, wv = eu/sum, ev/sum
		} else {
			wu, wv = 0.5, 0.5
		}
	}

	// Per-sample error (Eq. 15) and error-tracker updates (Eq. 13-14).
	var eij float64
	if cfg.RelativeLoss {
		eij = math.Abs(r-g) / r
	} else {
		eij = math.Abs(r - g)
	}
	u.err.UpdateWeighted(wu, eij)
	v.err.UpdateWeighted(wv, eij)

	// Common gradient factor of Eq. 16-17: (g−r)·g′/r² for the relative
	// loss, (g−r)·g′ for the absolute ablation.
	grad := (g - r) * gp
	if cfg.RelativeLoss {
		grad /= r * r
	}
	if cfg.MaxGradNorm > 0 {
		if grad > cfg.MaxGradNorm {
			grad = cfg.MaxGradNorm
		} else if grad < -cfg.MaxGradNorm {
			grad = -cfg.MaxGradNorm
		}
	}

	// Simultaneous update: Sj's step uses the pre-step Ui (Algorithm 1
	// line 24 updates "simultaneously").
	etaU := cfg.LearnRate * wu
	etaV := cfg.LearnRate * wv
	for k := range u.vec {
		uk, vk := u.vec[k], v.vec[k]
		u.vec[k] = uk - etaU*(grad*vk+cfg.RegUser*uk)
		v.vec[k] = vk - etaV*(grad*uk+cfg.RegService*vk)
	}
	u.updates++
	v.updates++
}

// Predict estimates the QoS value between a user and a service the model
// has seen before (Iij may be 0; that is the point). The latent inner
// product is squashed by the sigmoid link and mapped back through the
// inverse data transformation.
func (m *Model) Predict(user, service int) (float64, error) {
	u, ok := m.users.get(user)
	if !ok {
		return 0, ErrUnknownUser
	}
	v, ok := m.services.get(service)
	if !ok {
		return 0, ErrUnknownService
	}
	g := transform.Sigmoid(matrix.Dot(u.vec, v.vec))
	return m.tr.Backward(g), nil
}

// PredictWithConfidence returns Predict's estimate together with a
// confidence score in (0, 1]: the complement of the combined tracked
// relative errors of the user and the service,
//
//	confidence = 1 / (1 + e_ui + e_sj)
//
// A converged pair (both trackers near 0) approaches confidence 1; a
// fresh entity (tracker seeded at 1, Algorithm 1 line 7) drags confidence
// toward 1/2 or below. This reuses the adaptive-weight error state, so it
// costs nothing extra to maintain; adaptation policies can use it to
// require a minimum confidence before acting on a prediction.
func (m *Model) PredictWithConfidence(user, service int) (value, confidence float64, err error) {
	u, ok := m.users.get(user)
	if !ok {
		return 0, 0, ErrUnknownUser
	}
	v, ok := m.services.get(service)
	if !ok {
		return 0, 0, ErrUnknownService
	}
	g := transform.Sigmoid(matrix.Dot(u.vec, v.vec))
	confidence = 1 / (1 + u.err.Value() + v.err.Value())
	return m.tr.Backward(g), confidence, nil
}

// PredictNormalized returns the raw sigmoid output g(Ui·Sj) in [0,1],
// the model's estimate of the normalized QoS target.
func (m *Model) PredictNormalized(user, service int) (float64, error) {
	u, ok := m.users.get(user)
	if !ok {
		return 0, ErrUnknownUser
	}
	v, ok := m.services.get(service)
	if !ok {
		return 0, ErrUnknownService
	}
	return transform.Sigmoid(matrix.Dot(u.vec, v.vec)), nil
}

// Transformer exposes the model's data transformation, shared with
// evaluation code that needs to normalize ground-truth values.
func (m *Model) Transformer() *transform.Transformer { return m.tr }

// KnowsUser reports whether the user has been observed.
func (m *Model) KnowsUser(id int) bool { _, ok := m.users.get(id); return ok }

// KnowsService reports whether the service has been observed.
func (m *Model) KnowsService(id int) bool { _, ok := m.services.get(id); return ok }

// NumUsers returns the number of registered users.
func (m *Model) NumUsers() int { return m.users.len() }

// NumServices returns the number of registered services.
func (m *Model) NumServices() int { return m.services.len() }

// Updates returns the total number of SGD updates performed.
func (m *Model) Updates() int64 { return m.updates }

// UserError returns the user's tracked average relative error e_ui,
// or (0, false) if the user is unknown.
func (m *Model) UserError(id int) (float64, bool) {
	if e, ok := m.users.get(id); ok {
		return e.err.Value(), true
	}
	return 0, false
}

// ServiceError returns the service's tracked average relative error e_sj,
// or (0, false) if the service is unknown.
func (m *Model) ServiceError(id int) (float64, bool) {
	if e, ok := m.services.get(id); ok {
		return e.err.Value(), true
	}
	return 0, false
}

// UserIDs returns the registered user IDs in unspecified order.
func (m *Model) UserIDs() []int { return m.users.ids() }

// ServiceIDs returns the registered service IDs in unspecified order.
func (m *Model) ServiceIDs() []int { return m.services.ids() }

// RemoveUser forgets a user entirely (framework Sec. III: users may leave
// the environment). Replay samples involving the user die lazily because
// prediction state is gone; they are also superseded in the pool over time.
func (m *Model) RemoveUser(id int) {
	m.users.remove(id)
	if m.dirtyUsers != nil {
		m.dirtyUsers.mark(id)
	}
}

// RemoveService forgets a service entirely.
func (m *Model) RemoveService(id int) {
	m.services.remove(id)
	if m.dirtyServices != nil {
		m.dirtyServices.mark(id)
	}
}

// SetLearnRate changes the SGD step size η for subsequent updates. It
// enables learning-rate annealing schedules: a large η converges fast
// from cold, a smaller one tightens the fixed point once near it (the
// variance of SGD's stationary distribution scales with η).
func (m *Model) SetLearnRate(eta float64) {
	if eta > 0 {
		m.cfg.LearnRate = eta
	}
}
