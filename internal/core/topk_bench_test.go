package core

import (
	"sort"
	"testing"

	"github.com/qoslab/amf/internal/transform"
)

// Benchmarks for the candidate-ranking fast path (ISSUE 3). The "legacy"
// series reproduces the pre-change serving path — per-candidate map
// lookup, naive (non-unrolled) dot product, Sigmoid+Backward transform on
// EVERY candidate, full O(n log n) sort.Slice, then truncate to k — so
// before/after numbers come from one binary on one machine. The "topk"
// series is the shipped path: unrolled dot, bounded heap selection, the
// transform paid only for the k survivors, pooled scratch (0 allocs/op
// after warmup).
//
//	go test -run=NONE -bench=BenchmarkTopK -benchmem ./internal/core/

func benchView(b *testing.B, nServices int) (*PredictView, []int) {
	b.Helper()
	m := topkTestModel(b, nServices)
	candidates := make([]int, nServices)
	for i := range candidates {
		candidates[i] = i
	}
	return m.BuildView(), candidates
}

// legacyDot is the straight-line dot product the pre-change path used.
func legacyDot(a, bb []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * bb[i]
	}
	return s
}

// legacyRank is the pre-change ranking path, verbatim in structure:
// transform every candidate, sort everything, keep k.
func legacyRank(v *PredictView, user int, candidates []int, k int, lowerIsBetter bool, dst []Ranked) []Ranked {
	u, ok := v.users.get(user)
	if !ok {
		return dst[:0]
	}
	ranked := dst[:0]
	for _, c := range candidates {
		s, ok := v.services.get(c)
		if !ok {
			continue
		}
		ranked = append(ranked, Ranked{
			Service: c,
			Value:   v.tr.Backward(transform.Sigmoid(legacyDot(u.vec, s.vec))),
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if lowerIsBetter {
			return ranked[i].Value < ranked[j].Value
		}
		return ranked[i].Value > ranked[j].Value
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked
}

func BenchmarkTopK(b *testing.B) {
	const k = 10
	for _, n := range []int{1000, 10000, 100000} {
		v, candidates := benchView(b, n)
		name := sizeLabel(n)

		b.Run("legacy_rank_sort/"+name, func(b *testing.B) {
			dst := make([]Ranked, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = legacyRank(v, 0, candidates, k, true, dst)
			}
		})

		b.Run("heap/"+name, func(b *testing.B) {
			dst := make([]Ranked, 0, k)
			dst, _ = v.AppendTopK(dst[:0], 0, candidates, k, true) // warm pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _ = v.AppendTopK(dst[:0], 0, candidates, k, true)
			}
		})

		b.Run("parallel/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.TopKParallel(0, candidates, k, true, 4)
			}
		})

		b.Run("full_scan_arena/"+name, func(b *testing.B) {
			v.TopKAll(0, k, true, 1) // warm pool (vals buffer)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.TopKAll(0, k, true, 1)
			}
		})
	}
}

// BenchmarkPredictBatchView measures the batched point-prediction path
// against per-call Predict on the same view.
func BenchmarkPredictBatchView(b *testing.B) {
	v, services := benchView(b, 10000)
	dst := make([]float64, len(services))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = v.PredictBatch(0, services, dst)
		}
	})
	b.Run("per_call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range services {
				dst[0], _ = v.Predict(0, s)
			}
		}
	})
}

func sizeLabel(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoaBench(n/1000) + "k"
	default:
		return itoaBench(n)
	}
}

func itoaBench(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
