package core

import (
	"sort"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/transform"
)

// Benchmarks for the candidate-ranking fast path (ISSUE 3, reshaped by
// ISSUE 8 into paired-interleaved form). Every arm of a comparison runs
// inside the SAME timing loop, per-arm latencies are collected and the
// p50s reported as metrics — so single-core CI frequency drift between
// two separately-run benchmarks can't fake (or hide) a speedup. The
// headline ns/op of each benchmark is the sum of all its arms and is
// not meaningful on its own; read the *-p50-ns/op and *-speedup-x
// metrics instead (cmd/benchjson archives them under "extra").
//
// The "legacy" arm reproduces the pre-change serving path — per-
// candidate map lookup, naive (non-unrolled) dot product, Sigmoid+
// Backward transform on EVERY candidate, full O(n log n) sort.Slice,
// then truncate to k. The "heap" arm is the shipped candidate path
// (AppendTopK), "scan" is the full-catalog arena path (TopKAll), and
// "parallel" is TopKParallel with 4 workers.
//
//	go test -run=NONE -bench=BenchmarkTopK -benchmem ./internal/core/

func benchView(b *testing.B, nServices int) (*PredictView, []int) {
	b.Helper()
	m := topkTestModel(b, nServices)
	candidates := make([]int, nServices)
	for i := range candidates {
		candidates[i] = i
	}
	return m.BuildView(), candidates
}

// legacyDot is the straight-line dot product the pre-change path used.
func legacyDot(a, bb []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * bb[i]
	}
	return s
}

// legacyRank is the pre-change ranking path, verbatim in structure:
// transform every candidate, sort everything, keep k.
func legacyRank(v *PredictView, user int, candidates []int, k int, lowerIsBetter bool, dst []Ranked) []Ranked {
	u, ok := v.users.get(user)
	if !ok {
		return dst[:0]
	}
	ranked := dst[:0]
	for _, c := range candidates {
		s, ok := v.services.get(c)
		if !ok {
			continue
		}
		ranked = append(ranked, Ranked{
			Service: c,
			Value:   v.tr.Backward(transform.Sigmoid(legacyDot(u.vec, s.vec))),
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if lowerIsBetter {
			return ranked[i].Value < ranked[j].Value
		}
		return ranked[i].Value > ranked[j].Value
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked
}

// p50Dur returns the median of a sample of per-iteration durations.
func p50Dur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func BenchmarkTopK(b *testing.B) {
	const k = 10
	for _, n := range []int{1000, 10000, 100000} {
		v, candidates := benchView(b, n)
		name := sizeLabel(n)

		b.Run(name, func(b *testing.B) {
			legacyDst := make([]Ranked, 0, n)
			heapDst := make([]Ranked, 0, k)
			heapDst, _ = v.AppendTopK(heapDst[:0], 0, candidates, k, true) // warm pool
			v.TopKAll(0, k, true, 1)                                      // warm pool
			legacyNs := make([]time.Duration, 0, b.N)
			heapNs := make([]time.Duration, 0, b.N)
			scanNs := make([]time.Duration, 0, b.N)
			parNs := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				legacyDst = legacyRank(v, 0, candidates, k, true, legacyDst)
				t1 := time.Now()
				heapDst, _ = v.AppendTopK(heapDst[:0], 0, candidates, k, true)
				t2 := time.Now()
				v.TopKAll(0, k, true, 1)
				t3 := time.Now()
				v.TopKParallel(0, candidates, k, true, 4)
				t4 := time.Now()
				legacyNs = append(legacyNs, t1.Sub(t0))
				heapNs = append(heapNs, t2.Sub(t1))
				scanNs = append(scanNs, t3.Sub(t2))
				parNs = append(parNs, t4.Sub(t3))
			}
			b.StopTimer()
			legacyP50 := p50Dur(legacyNs)
			heapP50 := p50Dur(heapNs)
			scanP50 := p50Dur(scanNs)
			parP50 := p50Dur(parNs)
			b.ReportMetric(float64(legacyP50.Nanoseconds()), "legacy-p50-ns/op")
			b.ReportMetric(float64(heapP50.Nanoseconds()), "heap-p50-ns/op")
			b.ReportMetric(float64(scanP50.Nanoseconds()), "scan-p50-ns/op")
			b.ReportMetric(float64(parP50.Nanoseconds()), "parallel-p50-ns/op")
			if heapP50 > 0 {
				b.ReportMetric(float64(legacyP50)/float64(heapP50), "heap-speedup-x")
			}
			if scanP50 > 0 {
				b.ReportMetric(float64(legacyP50)/float64(scanP50), "scan-speedup-x")
			}
		})
	}
}

// BenchmarkTopKAllBatch is the coalescing acceptance benchmark: Q
// concurrent full-catalog rankings served by one TopKAllBatch pass
// versus the same Q queries as independent serial TopKAll scans, paired
// in one timing loop. The win is DRAM economics — the batch streams
// each arena block from memory once for all Q queries — so it grows
// with Q and with catalog size.
func BenchmarkTopKAllBatch(b *testing.B) {
	const n = 100000
	const k = 10
	v, _ := benchView(b, n)
	for _, nq := range []int{4, 8} {
		queries := make([]RankQuery, nq)
		for i := range queries {
			// topkTestModel trains users 0 and 1; the DRAM economics of
			// the batch don't depend on query-vector diversity.
			queries[i] = RankQuery{User: i % 2, K: k, LowerIsBetter: i%3 == 0}
		}
		b.Run("q"+itoaBench(nq), func(b *testing.B) {
			v.TopKAllBatch(queries) // warm pool
			serialNs := make([]time.Duration, 0, b.N)
			batchNs := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				for _, q := range queries {
					v.TopKAll(q.User, q.K, q.LowerIsBetter, 1)
				}
				t1 := time.Now()
				v.TopKAllBatch(queries)
				t2 := time.Now()
				serialNs = append(serialNs, t1.Sub(t0))
				batchNs = append(batchNs, t2.Sub(t1))
			}
			b.StopTimer()
			serialP50 := p50Dur(serialNs)
			batchP50 := p50Dur(batchNs)
			b.ReportMetric(float64(serialP50.Nanoseconds()), "serial-p50-ns/op")
			b.ReportMetric(float64(batchP50.Nanoseconds()), "batch-p50-ns/op")
			if batchP50 > 0 {
				b.ReportMetric(float64(serialP50)/float64(batchP50), "coalesce-speedup-x")
			}
		})
	}
}

// BenchmarkPredictBatchView measures the batched point-prediction path
// against per-call Predict on the same view, paired in one loop.
func BenchmarkPredictBatchView(b *testing.B) {
	v, services := benchView(b, 10000)
	dst := make([]float64, len(services))
	batchNs := make([]time.Duration, 0, 1024)
	perCallNs := make([]time.Duration, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		_ = v.PredictBatch(0, services, dst)
		t1 := time.Now()
		for _, s := range services {
			dst[0], _ = v.Predict(0, s)
		}
		t2 := time.Now()
		batchNs = append(batchNs, t1.Sub(t0))
		perCallNs = append(perCallNs, t2.Sub(t1))
	}
	b.StopTimer()
	batchP50 := p50Dur(batchNs)
	perCallP50 := p50Dur(perCallNs)
	b.ReportMetric(float64(batchP50.Nanoseconds()), "batch-p50-ns/op")
	b.ReportMetric(float64(perCallP50.Nanoseconds()), "per-call-p50-ns/op")
	if batchP50 > 0 {
		b.ReportMetric(float64(perCallP50)/float64(batchP50), "batch-speedup-x")
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoaBench(n/1000) + "k"
	default:
		return itoaBench(n)
	}
}

func itoaBench(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
