package core

import "sort"

// shardArena is the frozen SoA (structure-of-arrays) image of one view
// shard: every entity's latent factor vector packed into a single
// contiguous row-major block, with parallel id and error slices. It is
// built at publish time and immutable afterwards — the shard map's
// viewEntity.vec/vec32 fields alias rows of the block, so map-keyed
// reads (Predict) and arena scans (TopK, DotBatch) see the same
// storage.
//
// The arena is what makes candidate ranking a streaming problem instead
// of a pointer chase: ranking n candidates touches n×rank consecutive
// floats per shard rather than n heap-allocated vectors scattered across
// the GC heap. Arenas are shared RCU-style across view refreshes exactly
// like the shard maps — a refresh rebuilds only the arenas of dirty
// shards and shares the rest with the previous view by pointer.
//
// Exactly one of vecs/vecs32 is non-nil, per the view's arena precision
// (Model.SetArenaFloat32): float64 is the default; float32 halves the
// bytes per row the rank scan streams, at a one-time rounding of the
// published factors.
type shardArena struct {
	rank   int
	ids    []int     // entity IDs, ascending (deterministic layout)
	vecs   []float64 // len(ids)*rank; row i is the factor vector of ids[i]
	vecs32 []float32 // float32 twin; set instead of vecs in f32 views
	errs   []float64 // frozen error trackers, parallel to ids
}

// row returns the factor vector of arena row i as a full-capacity-capped
// subslice of the contiguous block (float64 arenas only).
func (a *shardArena) row(i int) []float64 {
	lo := i * a.rank
	hi := lo + a.rank
	return a.vecs[lo:hi:hi]
}

// row32 is row for float32 arenas.
func (a *shardArena) row32(i int) []float32 {
	lo := i * a.rank
	hi := lo + a.rank
	return a.vecs32[lo:hi:hi]
}

// newShardArena allocates the block in the requested precision.
func newShardArena(ids []int, rank int, f32 bool) *shardArena {
	a := &shardArena{
		rank: rank,
		ids:  ids,
		errs: make([]float64, len(ids)),
	}
	if f32 {
		a.vecs32 = make([]float32, len(ids)*rank)
	} else {
		a.vecs = make([]float64, len(ids)*rank)
	}
	return a
}

// freezeRow writes the model's float64 factors into arena row i (rounding
// in f32 mode) and returns the viewEntity aliasing that row.
func (a *shardArena) freezeRow(i int, vec []float64, errVal float64, updates int) viewEntity {
	if a.vecs32 != nil {
		row := a.row32(i)
		for j, x := range vec {
			row[j] = float32(x)
		}
		return viewEntity{vec32: row, err: errVal, updates: updates}
	}
	row := a.row(i)
	copy(row, vec)
	return viewEntity{vec: row, err: errVal, updates: updates}
}

// freezeShardFromModel builds one shard's map + arena from live model
// entities. ids may be in any order; it is sorted in place.
func freezeShardFromModel(src map[int]*entity, ids []int, rank int, f32 bool) (map[int]viewEntity, *shardArena) {
	sort.Ints(ids)
	a := newShardArena(ids, rank, f32)
	sh := make(map[int]viewEntity, len(ids))
	for i, id := range ids {
		e := src[id]
		a.errs[i] = e.err.Value()
		sh[id] = a.freezeRow(i, e.vec, a.errs[i], e.updates)
	}
	return sh, a
}

// rebuildArena repacks shard si's map entries into a fresh arena and
// re-points every viewEntity row at the new contiguous block. Called by
// refreshTable after shard-map surgery: cloned entries still alias the
// previous view's arena and freshly frozen entries own private copies;
// after rebuild all rows live in one block again. The previous arena is
// untouched (older views keep reading it). The table's precision mode
// is uniform — refreshTable full-rebuilds on a mode flip — so entries
// here carry vectors in the same precision the new arena uses.
func rebuildArena(t *viewTable, si, rank int, f32 bool) {
	sh := t.shards[si]
	if len(sh) == 0 {
		t.arenas[si] = nil
		return
	}
	ids := make([]int, 0, len(sh))
	for id := range sh {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	a := newShardArena(ids, rank, f32)
	for i, id := range ids {
		e := sh[id]
		a.errs[i] = e.err
		if f32 {
			row := a.row32(i)
			copy(row, e.vec32)
			sh[id] = viewEntity{vec32: row, err: e.err, updates: e.updates}
		} else {
			row := a.row(i)
			copy(row, e.vec)
			sh[id] = viewEntity{vec: row, err: e.err, updates: e.updates}
		}
	}
	t.arenas[si] = a
}
