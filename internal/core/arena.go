package core

import "sort"

// shardArena is the frozen SoA (structure-of-arrays) image of one view
// shard: every entity's latent factor vector packed into a single
// contiguous row-major []float64, with parallel id and error slices. It
// is built at publish time and immutable afterwards — the shard map's
// viewEntity.vec fields alias rows of vecs, so map-keyed reads (Predict)
// and arena scans (TopK, DotBatch) see the same storage.
//
// The arena is what makes candidate ranking a streaming problem instead
// of a pointer chase: ranking n candidates touches n×rank consecutive
// floats per shard rather than n heap-allocated vectors scattered across
// the GC heap. Arenas are shared RCU-style across view refreshes exactly
// like the shard maps — a refresh rebuilds only the arenas of dirty
// shards and shares the rest with the previous view by pointer.
type shardArena struct {
	rank int
	ids  []int     // entity IDs, ascending (deterministic layout)
	vecs []float64 // len(ids)*rank; row i is the factor vector of ids[i]
	errs []float64 // frozen error trackers, parallel to ids
}

// row returns the factor vector of arena row i as a full-capacity-capped
// subslice of the contiguous block.
func (a *shardArena) row(i int) []float64 {
	lo := i * a.rank
	hi := lo + a.rank
	return a.vecs[lo:hi:hi]
}

// freezeShardFromModel builds one shard's map + arena from live model
// entities. ids may be in any order; it is sorted in place.
func freezeShardFromModel(src map[int]*entity, ids []int, rank int) (map[int]viewEntity, *shardArena) {
	sort.Ints(ids)
	a := &shardArena{
		rank: rank,
		ids:  ids,
		vecs: make([]float64, len(ids)*rank),
		errs: make([]float64, len(ids)),
	}
	sh := make(map[int]viewEntity, len(ids))
	for i, id := range ids {
		e := src[id]
		row := a.row(i)
		copy(row, e.vec)
		a.errs[i] = e.err.Value()
		sh[id] = viewEntity{vec: row, err: a.errs[i], updates: e.updates}
	}
	return sh, a
}

// rebuildArena repacks shard si's map entries into a fresh arena and
// re-points every viewEntity.vec at the new contiguous rows. Called by
// refreshTable after shard-map surgery: cloned entries still alias the
// previous view's arena and freshly frozen entries own private copies;
// after rebuild all rows live in one block again. The previous arena is
// untouched (older views keep reading it).
func rebuildArena(t *viewTable, si, rank int) {
	sh := t.shards[si]
	if len(sh) == 0 {
		t.arenas[si] = nil
		return
	}
	ids := make([]int, 0, len(sh))
	for id := range sh {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	a := &shardArena{
		rank: rank,
		ids:  ids,
		vecs: make([]float64, len(ids)*rank),
		errs: make([]float64, len(ids)),
	}
	for i, id := range ids {
		e := sh[id]
		row := a.row(i)
		copy(row, e.vec)
		a.errs[i] = e.err
		sh[id] = viewEntity{vec: row, err: e.err, updates: e.updates}
	}
	t.arenas[si] = a
}
