package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// rtConfig returns the paper's RT hyperparameters against the RT range.
func rtConfig() Config { return DefaultConfig(-0.007, 0, 20) }

func TestConfigValidate(t *testing.T) {
	if err := rtConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	breakers := map[string]func(*Config){
		"rank":    func(c *Config) { c.Rank = 0 },
		"eta":     func(c *Config) { c.LearnRate = 0 },
		"reg":     func(c *Config) { c.RegUser = -1 },
		"beta lo": func(c *Config) { c.Beta = 0 },
		"beta hi": func(c *Config) { c.Beta = 1.5 },
		"range":   func(c *Config) { c.RMax = c.RMin },
		"maxgrad": func(c *Config) { c.MaxGradNorm = -1 },
		"expiry":  func(c *Config) { c.Expiry = -time.Second },
	}
	for name, breakIt := range breakers {
		c := rtConfig()
		breakIt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New should refuse invalid config", name)
		}
	}
}

func TestNewModelEmpty(t *testing.T) {
	m := MustNew(rtConfig())
	if m.NumUsers() != 0 || m.NumServices() != 0 || m.Updates() != 0 {
		t.Fatal("new model should be empty")
	}
	if _, err := m.Predict(0, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("predict on empty model: %v", err)
	}
}

func TestObserveRegistersEntities(t *testing.T) {
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{Time: time.Second, User: 3, Service: 7, Value: 1.2})
	if !m.KnowsUser(3) || !m.KnowsService(7) {
		t.Fatal("observe should register user and service")
	}
	if m.NumUsers() != 1 || m.NumServices() != 1 {
		t.Fatal("counts wrong")
	}
	if m.Updates() != 1 {
		t.Fatalf("updates = %d, want 1", m.Updates())
	}
	if _, err := m.Predict(3, 7); err != nil {
		t.Fatalf("predict after observe: %v", err)
	}
	if _, err := m.Predict(3, 99); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
}

func TestNewEntityErrorSeededAtOne(t *testing.T) {
	// Algorithm 1 line 7: e_ui ← 1 for a new user. After the very first
	// update the EMA moves off 1 but stays within (0, 1].
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{User: 0, Service: 0, Value: 1.0})
	eu, ok := m.UserError(0)
	if !ok {
		t.Fatal("user error should exist")
	}
	if eu <= 0 || eu > 1 {
		t.Fatalf("user error = %g after one update, want in (0,1]", eu)
	}
	if _, ok := m.UserError(99); ok {
		t.Fatal("unknown user should have no error")
	}
	if _, ok := m.ServiceError(99); ok {
		t.Fatal("unknown service should have no error")
	}
}

func TestPredictionWithinRange(t *testing.T) {
	m := MustNew(rtConfig())
	for i := 0; i < 10; i++ {
		m.Observe(stream.Sample{User: i % 3, Service: i % 4, Value: float64(i%5) + 0.5})
	}
	for u := 0; u < 3; u++ {
		for s := 0; s < 4; s++ {
			v, err := m.Predict(u, s)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 20 || math.IsNaN(v) {
				t.Fatalf("prediction %g outside QoS range", v)
			}
		}
	}
}

// Training on a single repeated sample must drive the prediction to the
// observed value: SGD on one point converges.
func TestConvergesOnSinglePair(t *testing.T) {
	cfg := rtConfig()
	// No regularization: the pure SGD fixed point is then exactly the
	// observed value (with λ>0 the shrinkage bias is amplified by the
	// log-like inverse transform).
	cfg.RegUser, cfg.RegService = 0, 0
	m := MustNew(cfg)
	target := 2.5
	m.Observe(stream.Sample{Time: time.Second, User: 0, Service: 0, Value: target})
	for i := 0; i < 500; i++ {
		if !m.ReplayStep() {
			t.Fatal("replay pool should stay live")
		}
	}
	got, err := m.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-target) / target; rel > 0.05 {
		t.Fatalf("prediction %g, want ≈ %g (rel err %.3f)", got, target, rel)
	}
}

// The model must recover a structured (rank-consistent) matrix well enough
// to predict held-out entries: the core collaborative-filtering property.
func TestRecoverStructuredMatrix(t *testing.T) {
	cfg := rtConfig()
	cfg.Rank = 4
	m := MustNew(cfg)

	// Ground truth: value(i,j) = a_i * b_j, a multiplicative structure
	// that a rank-1 log-domain model captures.
	users, services := 12, 20
	a := make([]float64, users)
	b := make([]float64, services)
	for i := range a {
		a[i] = 0.5 + float64(i)*0.2
	}
	for j := range b {
		b[j] = 0.4 + float64(j)*0.15
	}
	value := func(i, j int) float64 { return a[i] * b[j] }

	// Observe ~60% of cells; hold out the rest.
	var held [][2]int
	for i := 0; i < users; i++ {
		for j := 0; j < services; j++ {
			if (i*7+j*3)%10 < 6 {
				m.Observe(stream.Sample{Time: time.Second, User: i, Service: j, Value: value(i, j)})
			} else {
				held = append(held, [2]int{i, j})
			}
		}
	}
	res := m.Fit(FitOptions{MaxEpochs: 300, Tol: 1e-4})
	if res.Steps == 0 {
		t.Fatal("fit performed no steps")
	}

	var relErrs []float64
	for _, p := range held {
		got, err := m.Predict(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		truth := value(p[0], p[1])
		relErrs = append(relErrs, math.Abs(got-truth)/truth)
	}
	// Median relative error on held-out entries should be small.
	var sum float64
	for _, e := range relErrs {
		sum += e
	}
	mean := sum / float64(len(relErrs))
	if mean > 0.15 {
		t.Fatalf("mean held-out relative error %.3f too high", mean)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	build := func() *Model {
		m := MustNew(rtConfig())
		for i := 0; i < 50; i++ {
			m.Observe(stream.Sample{Time: time.Duration(i), User: i % 5, Service: i % 7, Value: float64(i%9) + 0.3})
		}
		m.Fit(FitOptions{MaxEpochs: 5, Tol: 1e-9, MinEpochs: 5})
		return m
	}
	m1, m2 := build(), build()
	for u := 0; u < 5; u++ {
		for s := 0; s < 7; s++ {
			v1, err1 := m1.Predict(u, s)
			v2, err2 := m2.Predict(u, s)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if v1 != v2 {
				t.Fatalf("same seed, different predictions at (%d,%d): %g vs %g", u, s, v1, v2)
			}
		}
	}
}

func TestErrorTrackerDecreasesWithTraining(t *testing.T) {
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{Time: time.Second, User: 0, Service: 0, Value: 3})
	before, _ := m.UserError(0)
	for i := 0; i < 300; i++ {
		m.ReplayStep()
	}
	after, _ := m.UserError(0)
	if after >= before {
		t.Fatalf("user error should fall with training: %g -> %g", before, after)
	}
}

func TestExpiryStopsReplay(t *testing.T) {
	cfg := rtConfig()
	cfg.Expiry = 15 * time.Minute
	m := MustNew(cfg)
	m.Observe(stream.Sample{Time: 0, User: 0, Service: 0, Value: 1})
	m.AdvanceTo(16 * time.Minute)
	if m.ReplayStep() {
		t.Fatal("expired sample must not be replayed (Algorithm 1 line 15)")
	}
	if m.Now() != 16*time.Minute {
		t.Fatalf("clock = %v", m.Now())
	}
}

func TestRemoveUserAndService(t *testing.T) {
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{Time: time.Second, User: 1, Service: 2, Value: 1})
	m.RemoveUser(1)
	if m.KnowsUser(1) {
		t.Fatal("user should be gone")
	}
	if _, err := m.Predict(1, 2); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("predict after removal: %v", err)
	}
	// Replay must not resurrect the removed user.
	for i := 0; i < 20; i++ {
		m.ReplayStep()
	}
	if m.KnowsUser(1) {
		t.Fatal("replay resurrected a removed user")
	}
	m.RemoveService(2)
	if m.KnowsService(2) {
		t.Fatal("service should be gone")
	}
}

func TestUserAndServiceIDs(t *testing.T) {
	m := MustNew(rtConfig())
	for _, s := range []stream.Sample{
		{User: 5, Service: 1, Value: 1},
		{User: 3, Service: 2, Value: 1},
	} {
		m.Observe(s)
	}
	uids := m.UserIDs()
	sids := m.ServiceIDs()
	if len(uids) != 2 || len(sids) != 2 {
		t.Fatalf("ids = %v / %v", uids, sids)
	}
	seen := map[int]bool{}
	for _, id := range uids {
		seen[id] = true
	}
	if !seen[5] || !seen[3] {
		t.Fatalf("user ids = %v", uids)
	}
}

func TestPredictNormalizedInUnitInterval(t *testing.T) {
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{User: 0, Service: 0, Value: 5})
	g, err := m.PredictNormalized(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 || g >= 1 {
		t.Fatalf("normalized prediction %g outside (0,1)", g)
	}
	if _, err := m.PredictNormalized(9, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatal("unknown user should error")
	}
	if _, err := m.PredictNormalized(0, 9); !errors.Is(err, ErrUnknownService) {
		t.Fatal("unknown service should error")
	}
}

func TestGradientClippingGuardsOutliers(t *testing.T) {
	// Feed a pathological mix of extreme values; factors must stay finite.
	cfg := rtConfig()
	m := MustNew(cfg)
	for i := 0; i < 200; i++ {
		v := 0.000001
		if i%2 == 0 {
			v = 20
		}
		m.Observe(stream.Sample{Time: time.Duration(i), User: 0, Service: i % 3, Value: v})
	}
	got, err := m.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("prediction diverged: %g", got)
	}
}

func TestFitEmptyPool(t *testing.T) {
	m := MustNew(rtConfig())
	res := m.Fit(FitOptions{})
	if res.Epochs != 0 || res.Steps != 0 || res.Converged {
		t.Fatalf("fit on empty pool: %+v", res)
	}
}

func TestFitConverges(t *testing.T) {
	m := MustNew(rtConfig())
	for i := 0; i < 30; i++ {
		m.Observe(stream.Sample{Time: time.Second, User: i % 5, Service: i % 6, Value: 1 + float64(i%4)})
	}
	res := m.Fit(FitOptions{MaxEpochs: 500, Tol: 1e-3})
	if !res.Converged {
		t.Fatalf("fit did not converge: %+v", res)
	}
	if res.FinalError <= 0 {
		t.Fatalf("final error = %g, want positive", res.FinalError)
	}
	// Converged model should fit training data much better than chance.
	if res.FinalError > 0.5 {
		t.Fatalf("final training error %.3f too high", res.FinalError)
	}
}

func TestTrainingErrorEmptyPool(t *testing.T) {
	m := MustNew(rtConfig())
	if got := m.TrainingError(); got != 0 {
		t.Fatalf("empty-pool training error = %g", got)
	}
}

func TestCompactPool(t *testing.T) {
	cfg := rtConfig()
	cfg.Expiry = time.Minute
	m := MustNew(cfg)
	for i := 0; i < 10; i++ {
		m.Observe(stream.Sample{Time: time.Duration(i) * time.Second, User: i, Service: 0, Value: 1})
	}
	m.AdvanceTo(10 * time.Minute)
	m.CompactPool()
	if m.PoolLen() != 0 {
		t.Fatalf("pool should be empty after expiry+compact, len=%d", m.PoolLen())
	}
}

func TestPredictWithConfidence(t *testing.T) {
	m := MustNew(rtConfig())
	m.Observe(stream.Sample{Time: time.Second, User: 0, Service: 0, Value: 2})
	_, confFresh, err := m.PredictWithConfidence(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if confFresh <= 0 || confFresh > 1 {
		t.Fatalf("confidence %g outside (0,1]", confFresh)
	}
	// Training the pair should raise the confidence.
	for i := 0; i < 300; i++ {
		m.ReplayStep()
	}
	_, confTrained, err := m.PredictWithConfidence(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if confTrained <= confFresh {
		t.Fatalf("confidence should rise with training: %g -> %g", confFresh, confTrained)
	}
	if _, _, err := m.PredictWithConfidence(9, 0); !errors.Is(err, ErrUnknownUser) {
		t.Fatal("unknown user")
	}
	if _, _, err := m.PredictWithConfidence(0, 9); !errors.Is(err, ErrUnknownService) {
		t.Fatal("unknown service")
	}
	// Value must agree with Predict.
	v1, _ := m.Predict(0, 0)
	v2, _, _ := m.PredictWithConfidence(0, 0)
	if v1 != v2 {
		t.Fatalf("PredictWithConfidence value %g != Predict %g", v2, v1)
	}
}

func TestSetLearnRate(t *testing.T) {
	m := MustNew(rtConfig())
	m.SetLearnRate(0.3)
	if m.Config().LearnRate != 0.3 {
		t.Fatalf("learn rate = %g, want 0.3", m.Config().LearnRate)
	}
	m.SetLearnRate(0) // non-positive rates are ignored
	if m.Config().LearnRate != 0.3 {
		t.Fatal("non-positive rate must be ignored")
	}
	m.SetLearnRate(-1)
	if m.Config().LearnRate != 0.3 {
		t.Fatal("negative rate must be ignored")
	}
}
