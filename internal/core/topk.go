package core

import (
	"math"
	"sync"

	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/transform"
)

// nan marks "no prediction" entries in PredictBatch output.
var nan = math.NaN()

// This file is the vectorized candidate-ranking fast path (ISSUE 3): the
// paper's runtime-adaptation query "rank these n candidate services for
// user u, best k first" served from a PredictView's frozen factor arenas
// in O(n + k log k) with zero steady-state allocations.
//
// Ordering is defined on the raw latent inner product Ui·Sj (the "key"),
// not the final transformed value: Sigmoid and Transformer.Backward are
// both monotone non-decreasing, so ranking by key ranks by predicted
// value — and the key is strictly finer (Backward's range clamps can
// collapse distinct keys to equal values). Ties on the key break by
// ascending service ID, making every ranking deterministic regardless of
// candidate order. Model.RankServices uses the same key ordering, so the
// locked and lock-free paths agree element for element. Only the
// surviving k results pay the Sigmoid+Backward transform.

// scored is one candidate during selection: service ID and raw inner
// product key.
type scored struct {
	service int
	key     float64
}

// betterScored reports whether a ranks strictly ahead of b: smaller key
// first when lowerIsBetter (response time), larger key first otherwise
// (throughput), ties broken by ascending service ID.
func betterScored(a, b scored, lowerIsBetter bool) bool {
	if a.key != b.key {
		if lowerIsBetter {
			return a.key < b.key
		}
		return a.key > b.key
	}
	return a.service < b.service
}

// rankScratch is the pooled per-ranking working set: the bounded top-k
// heap and a values buffer for arena-scan batches. Pooled via pointer so
// the steady-state rank path performs zero allocations after warmup.
type rankScratch struct {
	heap   []scored
	vals   []float64
	vals32 []float32
	// qs/dst are the packed query and score buffers of the multi-query
	// batch scan (topk_batch.go); idle otherwise.
	qs    []float64
	dst   []float64
	qs32  []float32
	dst32 []float32
}

var rankScratchPool = sync.Pool{New: func() any { return new(rankScratch) }}

// heapPush inserts c into the bounded worst-at-root heap h (cap k): h's
// root is the worst element kept so far, so a push on a full heap
// replaces the root only when c beats it. Returns the updated heap.
func heapPush(h []scored, c scored, k int, lowerIsBetter bool) []scored {
	if len(h) < k {
		h = append(h, c)
		// Sift up: a parent must be worse than (or equal to) its children.
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !betterScored(h[p], h[i], lowerIsBetter) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if !betterScored(c, h[0], lowerIsBetter) {
		return h // not better than the worst kept — discard
	}
	h[0] = c
	heapSiftDown(h, 0, lowerIsBetter)
	return h
}

// heapSiftDown restores the worst-at-root property from index i.
func heapSiftDown(h []scored, i int, lowerIsBetter bool) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		w := l // index of the worst child
		if r := l + 1; r < len(h) && betterScored(h[l], h[r], lowerIsBetter) {
			w = r
		}
		if !betterScored(h[i], h[w], lowerIsBetter) {
			return // parent already worse than both children
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

// heapDrain empties h into out[0:len(h)] best-first (heap-sort pop order
// is worst-first, so positions fill back to front). h is consumed; out
// may alias h's backing array — each out[i] is written only after the
// live heap has shrunk past index i.
func heapDrain(h []scored, out []scored, lowerIsBetter bool) {
	for i := len(h) - 1; i >= 0; i-- {
		root := h[0]
		last := len(h) - 1 // == i
		h[0] = h[last]
		h = h[:last]
		heapSiftDown(h, 0, lowerIsBetter)
		out[i] = root
	}
}

// finish converts best-first scored entries into Ranked values by
// applying the monotone Sigmoid+Backward transform — paid only for the
// k survivors, never for the full candidate set.
func finishRanked(dst []Ranked, sc []scored, tr *transform.Transformer) []Ranked {
	for _, s := range sc {
		dst = append(dst, Ranked{Service: s.service, Value: tr.Backward(transform.Sigmoid(s.key))})
	}
	return dst
}

// AppendTopK appends the user's top k candidates (best first) to dst and
// returns the extended slice plus the number of candidates it could not
// score (unknown services, or all of them when the user is unknown). It
// is the allocation-free core of TopK: with dst capacity >= k and a
// warmed scratch pool the steady-state cost is one map lookup and one
// unrolled dot per candidate plus O(log k) heap work per admitted
// candidate — no allocations.
func (v *PredictView) AppendTopK(dst []Ranked, user int, candidates []int, k int, lowerIsBetter bool) ([]Ranked, int) {
	u, ok := v.users.get(user)
	if !ok {
		return dst, len(candidates)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	if k <= 0 {
		unknown := 0
		for _, c := range candidates {
			if _, ok := v.services.get(c); !ok {
				unknown++
			}
		}
		return dst, unknown
	}
	sc := rankScratchPool.Get().(*rankScratch)
	h := sc.heap[:0]
	unknown := 0
	for _, c := range candidates {
		s, ok := v.services.get(c)
		if !ok {
			unknown++
			continue
		}
		h = heapPush(h, scored{service: c, key: veDot(u, s)}, k, lowerIsBetter)
	}
	dst = drainInto(dst, h, lowerIsBetter, v.tr)
	sc.heap = h[:0]
	rankScratchPool.Put(sc)
	return dst, unknown
}

// drainInto sorts heap h best-first in place and appends the transformed
// results to dst.
func drainInto(dst []Ranked, h []scored, lowerIsBetter bool, tr *transform.Transformer) []Ranked {
	if len(h) == 0 {
		return dst
	}
	// Drain the heap into its own backing array (safe: see heapDrain).
	heapDrain(h, h, lowerIsBetter)
	return finishRanked(dst, h, tr)
}

// TopK returns the user's best k candidates in rank order plus the list
// of candidates without a prediction (unknown service — or every
// candidate, when the user is unknown). It is RankServices for callers
// that only need the head of the ranking: O(n log k) selection instead of
// an O(n log n) full sort, with the value transform paid only for the k
// survivors.
func (v *PredictView) TopK(user int, candidates []int, k int, lowerIsBetter bool) (ranked []Ranked, unknown []int) {
	if _, ok := v.users.get(user); !ok {
		return nil, append(unknown, candidates...)
	}
	ranked, nUnknown := v.AppendTopK(nil, user, candidates, k, lowerIsBetter)
	if nUnknown > 0 {
		unknown = make([]int, 0, nUnknown)
		for _, c := range candidates {
			if _, ok := v.services.get(c); !ok {
				unknown = append(unknown, c)
			}
		}
	}
	return ranked, unknown
}

// RankServices is Model.RankServices against the frozen view: every
// candidate ranked (k = n), unknowns listed separately. Because every
// prediction reads the same immutable view, a ranking is internally
// consistent — no mid-ranking model update can reorder it. Ties on the
// latent score break by ascending service ID (see the file comment), so
// rankings are deterministic and agree with the Model path.
func (v *PredictView) RankServices(user int, candidates []int, lowerIsBetter bool) (ranked []Ranked, unknown []int) {
	return v.TopK(user, candidates, len(candidates), lowerIsBetter)
}

// Best returns the top-ranked candidate in a single O(n) scan — no sort,
// no heap, no allocation — or ok=false when none is predictable.
func (v *PredictView) Best(user int, candidates []int, lowerIsBetter bool) (Ranked, bool) {
	u, ok := v.users.get(user)
	if !ok {
		return Ranked{}, false
	}
	best := scored{}
	found := false
	for _, c := range candidates {
		s, ok := v.services.get(c)
		if !ok {
			continue
		}
		cand := scored{service: c, key: veDot(u, s)}
		if !found || betterScored(cand, best, lowerIsBetter) {
			best, found = cand, true
		}
	}
	if !found {
		return Ranked{}, false
	}
	return Ranked{Service: best.service, Value: v.tr.Backward(transform.Sigmoid(best.key))}, true
}

// PredictBatch fills dst[i] with the predicted QoS value of (user,
// services[i]) against this single consistent view. dst must have
// len(services); entries for unknown services are set to NaN (use
// math.IsNaN to filter). It returns ErrUnknownUser — with dst fully
// NaN-filled — when the user is unknown. The batch shares one user-vector
// load and allocates nothing.
func (v *PredictView) PredictBatch(user int, services []int, dst []float64) error {
	if len(dst) != len(services) {
		panic("core: PredictBatch dst length mismatch")
	}
	u, ok := v.users.get(user)
	if !ok {
		for i := range dst {
			dst[i] = nan
		}
		return ErrUnknownUser
	}
	for i, id := range services {
		s, ok := v.services.get(id)
		if !ok {
			dst[i] = nan
			continue
		}
		dst[i] = v.tr.Backward(transform.Sigmoid(veDot(u, s)))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Parallel arena scans.

// TopKParallel is TopK with the candidate scan fanned out across up to
// `workers` goroutines, each selecting a local top-k over a contiguous
// chunk of the candidate list, followed by a final k-way merge. Use it
// for large candidate sets (the HTTP rank endpoint switches over at a
// configurable threshold); for small n the goroutine fan-out costs more
// than it saves and TopK should be called directly. workers <= 1 (or a
// small candidate set) degrades to the serial TopK.
func (v *PredictView) TopKParallel(user int, candidates []int, k int, lowerIsBetter bool, workers int) (ranked []Ranked, unknown []int) {
	if workers > len(candidates)/minParallelChunk {
		workers = len(candidates) / minParallelChunk
	}
	if workers <= 1 {
		return v.TopK(user, candidates, k, lowerIsBetter)
	}
	u, ok := v.users.get(user)
	if !ok {
		return nil, append(unknown, candidates...)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	if k <= 0 {
		_, n := v.AppendTopK(nil, user, candidates, 0, lowerIsBetter)
		if n > 0 {
			unknown = v.collectUnknown(candidates, n)
		}
		return nil, unknown
	}

	type partial struct {
		top     []scored // best-first local selection
		unknown []int    // in candidate order within the chunk
	}
	parts := make([]partial, workers)
	chunk := (len(candidates) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sc := rankScratchPool.Get().(*rankScratch)
			h := sc.heap[:0]
			var unk []int
			for _, c := range candidates[lo:hi] {
				s, ok := v.services.get(c)
				if !ok {
					unk = append(unk, c)
					continue
				}
				h = heapPush(h, scored{service: c, key: veDot(u, s)}, k, lowerIsBetter)
			}
			top := make([]scored, len(h))
			heapDrain(h, top, lowerIsBetter)
			parts[w] = partial{top: top, unknown: unk}
			sc.heap = h[:0]
			rankScratchPool.Put(sc)
		}(w, lo, hi)
	}
	wg.Wait()

	// k-way merge of the workers' best-first lists: repeatedly take the
	// best head. k and workers are both small, so the O(k·workers)
	// selection beats a heap's bookkeeping.
	heads := make([]int, workers)
	merged := make([]scored, 0, k)
	for len(merged) < k {
		bestW := -1
		for w := 0; w < workers; w++ {
			if heads[w] >= len(parts[w].top) {
				continue
			}
			if bestW < 0 || betterScored(parts[w].top[heads[w]], parts[bestW].top[heads[bestW]], lowerIsBetter) {
				bestW = w
			}
		}
		if bestW < 0 {
			break
		}
		merged = append(merged, parts[bestW].top[heads[bestW]])
		heads[bestW]++
	}
	ranked = finishRanked(make([]Ranked, 0, len(merged)), merged, v.tr)
	for w := range parts {
		unknown = append(unknown, parts[w].unknown...)
	}
	return ranked, unknown
}

// minParallelChunk is the minimum number of candidates per worker that
// justifies a goroutine: below this the spawn+merge overhead dominates
// the dot products it parallelizes.
const minParallelChunk = 256

// collectUnknown re-walks candidates collecting the ones absent from the
// view, preallocated to the known count n.
func (v *PredictView) collectUnknown(candidates []int, n int) []int {
	unknown := make([]int, 0, n)
	for _, c := range candidates {
		if _, ok := v.services.get(c); !ok {
			unknown = append(unknown, c)
		}
	}
	return unknown
}

// TopKAll ranks every service in the view for the user and returns the
// best k — the "pick me the best replica out of everything we know"
// query. It never touches the shard maps: each shard's SoA arena is
// scanned with the GEMV-style DotBatch kernel (one contiguous stream of
// nServices×rank floats), and only the k survivors are transformed.
// workers > 1 fans the shard scans across that many goroutines with a
// final merge; workers <= 1 scans serially. Returns nil when the user is
// unknown or k <= 0.
func (v *PredictView) TopKAll(user int, k int, lowerIsBetter bool, workers int) []Ranked {
	u, ok := v.users.get(user)
	if !ok || k <= 0 {
		return nil
	}
	if k > v.services.count {
		k = v.services.count
	}
	if k == 0 {
		return nil
	}
	if workers > viewShardCount {
		workers = viewShardCount
	}
	if workers <= 1 || v.services.count < 2*minParallelChunk {
		sc := rankScratchPool.Get().(*rankScratch)
		h := sc.heap[:0]
		for si := range v.services.arenas {
			h = scanArenaTopK(v.services.arenas[si], u, h, sc, k, lowerIsBetter)
		}
		out := drainInto(make([]Ranked, 0, len(h)), h, lowerIsBetter, v.tr)
		sc.heap = h[:0]
		rankScratchPool.Put(sc)
		return out
	}

	tops := make([][]scored, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := rankScratchPool.Get().(*rankScratch)
			h := sc.heap[:0]
			for si := w; si < viewShardCount; si += workers {
				h = scanArenaTopK(v.services.arenas[si], u, h, sc, k, lowerIsBetter)
			}
			top := make([]scored, len(h))
			heapDrain(h, top, lowerIsBetter)
			tops[w] = top
			sc.heap = h[:0]
			rankScratchPool.Put(sc)
		}(w)
	}
	wg.Wait()
	heads := make([]int, workers)
	merged := make([]scored, 0, k)
	for len(merged) < k {
		bestW := -1
		for w := 0; w < workers; w++ {
			if heads[w] >= len(tops[w]) {
				continue
			}
			if bestW < 0 || betterScored(tops[w][heads[w]], tops[bestW][heads[bestW]], lowerIsBetter) {
				bestW = w
			}
		}
		if bestW < 0 {
			break
		}
		merged = append(merged, tops[bestW][heads[bestW]])
		heads[bestW]++
	}
	return finishRanked(make([]Ranked, 0, len(merged)), merged, v.tr)
}

// scanArenaTopK streams one shard arena through the batch kernel of the
// view's precision and pushes every row into the bounded heap. The
// scratch's vals buffers are grown in place; the (possibly grown) heap
// is returned for pooling. Keys from the float32 kernel widen exactly
// to float64, so heap ordering logic is precision-independent — and
// because a single-row DotBatch is bit-identical to Dot (kernels.go),
// the arena path agrees exactly with the candidate path in both modes.
func scanArenaTopK(a *shardArena, u viewEntity, h []scored, sc *rankScratch, k int, lowerIsBetter bool) []scored {
	if a == nil || len(a.ids) == 0 {
		return h
	}
	n := len(a.ids)
	if a.vecs32 != nil {
		if cap(sc.vals32) < n {
			sc.vals32 = make([]float32, n)
		}
		vals := sc.vals32[:n]
		matrix.DotBatch32(vals, a.vecs32, u.vec32)
		for i, key := range vals {
			h = heapPush(h, scored{service: a.ids[i], key: float64(key)}, k, lowerIsBetter)
		}
		return h
	}
	if cap(sc.vals) < n {
		sc.vals = make([]float64, n)
	}
	vals := sc.vals[:n]
	matrix.DotBatch(vals, a.vecs, u.vec)
	for i, key := range vals {
		h = heapPush(h, scored{service: a.ids[i], key: key}, k, lowerIsBetter)
	}
	return h
}
