package core

import "github.com/qoslab/amf/internal/matrix"

// RankQuery is one full-catalog ranking request inside a coalesced
// batch (TopKAllBatch): rank every service in the view for User, keep
// the best K, ordered per LowerIsBetter. The rt/tp metrics share one
// key space (the raw latent product), so queries with opposite
// directions coexist in one batch — only their heaps differ.
type RankQuery struct {
	User          int
	K             int
	LowerIsBetter bool
}

// batchScanRows is the arena block height of the multi-query scan:
// 1024 rows × rank 10 is ~80 KiB of float64 factors (~40 KiB at f32),
// small enough to stay cache-resident while every query's products
// stream over it. That residency is the entire point of coalescing —
// arena bytes come from DRAM once per batch instead of once per
// request. (BenchmarkMulBatch in internal/matrix measures exactly this
// blocked-vs-independent traversal.)
const batchScanRows = 1024

// TopKAllBatch executes several full-catalog rankings in one blocked
// pass over the service arenas — the GEMM-shaped kernel behind
// request-coalesced /rank (ISSUE 8). out[i] is bit-identical to what
// TopKAll(q.User, q.K, q.LowerIsBetter, 1) returns for queries[i] (nil
// for unknown users or K <= 0): every row's key comes from the same
// batch kernel — whose per-row results are invariant to block splits
// (the bit-identity contract in matrix/kernels.go) — and rows feed each
// query's bounded heap in the same shard-then-row order as the serial
// scan.
func (v *PredictView) TopKAllBatch(queries []RankQuery) [][]Ranked {
	out := make([][]Ranked, len(queries))
	rank := v.cfg.Rank
	type liveQuery struct {
		qi    int // index into queries/out
		k     int
		lower bool
		h     []scored
		sc    *rankScratch
	}
	live := make([]liveQuery, 0, len(queries))
	var packed []viewEntity
	for qi, q := range queries {
		u, ok := v.users.get(q.User)
		if !ok || q.K <= 0 {
			continue
		}
		k := q.K
		if k > v.services.count {
			k = v.services.count
		}
		if k == 0 {
			continue
		}
		sc := rankScratchPool.Get().(*rankScratch)
		live = append(live, liveQuery{qi: qi, k: k, lower: q.LowerIsBetter, h: sc.heap[:0], sc: sc})
		packed = append(packed, u)
	}
	if len(live) == 0 {
		return out
	}
	nq := len(live)

	// Pack the query vectors contiguously and size the per-block score
	// matrix, in the view's precision. The batch scratch holds both so
	// a warmed pool serves steady-state batches with zero allocations.
	batch := rankScratchPool.Get().(*rankScratch)
	f32 := v.f32
	if f32 {
		if cap(batch.qs32) < nq*rank {
			batch.qs32 = make([]float32, nq*rank)
		}
		if cap(batch.dst32) < nq*batchScanRows {
			batch.dst32 = make([]float32, nq*batchScanRows)
		}
		for li, u := range packed {
			copy(batch.qs32[li*rank:(li+1)*rank], u.vec32)
		}
	} else {
		if cap(batch.qs) < nq*rank {
			batch.qs = make([]float64, nq*rank)
		}
		if cap(batch.dst) < nq*batchScanRows {
			batch.dst = make([]float64, nq*batchScanRows)
		}
		for li, u := range packed {
			copy(batch.qs[li*rank:(li+1)*rank], u.vec)
		}
	}

	for si := range v.services.arenas {
		a := v.services.arenas[si]
		if a == nil || len(a.ids) == 0 {
			continue
		}
		for lo := 0; lo < len(a.ids); lo += batchScanRows {
			hi := lo + batchScanRows
			if hi > len(a.ids) {
				hi = len(a.ids)
			}
			n := hi - lo
			if f32 {
				dst := batch.dst32[:cap(batch.dst32)][:nq*n]
				matrix.MulBatch32(dst, a.vecs32[lo*rank:hi*rank], batch.qs32[:nq*rank], rank)
				for li := range live {
					lq := &live[li]
					for i, key := range dst[li*n : (li+1)*n] {
						lq.h = heapPush(lq.h, scored{service: a.ids[lo+i], key: float64(key)}, lq.k, lq.lower)
					}
				}
			} else {
				dst := batch.dst[:cap(batch.dst)][:nq*n]
				matrix.MulBatch(dst, a.vecs[lo*rank:hi*rank], batch.qs[:nq*rank], rank)
				for li := range live {
					lq := &live[li]
					for i, key := range dst[li*n : (li+1)*n] {
						lq.h = heapPush(lq.h, scored{service: a.ids[lo+i], key: key}, lq.k, lq.lower)
					}
				}
			}
		}
	}
	rankScratchPool.Put(batch)

	for li := range live {
		lq := &live[li]
		out[lq.qi] = drainInto(make([]Ranked, 0, len(lq.h)), lq.h, lq.lower, v.tr)
		lq.sc.heap = lq.h[:0]
		rankScratchPool.Put(lq.sc)
	}
	return out
}
