package qosdb

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func sample(t time.Duration, u, s int, v float64) stream.Sample {
	return stream.Sample{Time: t, User: u, Service: s, Value: v}
}

func TestMemoryStoreBasics(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append(sample(1, 0, 0, 1.5)); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(sample(2, 0, 0, 2.5)); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(sample(3, 1, 0, 0.5)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("len = %d", db.Len())
	}
	latest, ok := db.Latest(0, 0)
	if !ok || latest.Value != 2.5 {
		t.Fatalf("latest = %+v, %v", latest, ok)
	}
	if _, ok := db.Latest(9, 9); ok {
		t.Fatal("unknown pair should have no latest")
	}
}

func TestHistoryAndWindow(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Append(sample(time.Duration(i)*time.Second, i%2, i%3, float64(i)))
	}
	h := db.History(0, 0, -1)
	for _, s := range h {
		if s.User != 0 || s.Service != 0 {
			t.Fatalf("history leaked other pair: %+v", s)
		}
	}
	uh := db.UserHistory(1, -1)
	if len(uh) != 5 {
		t.Fatalf("user history = %d, want 5", len(uh))
	}
	w := db.Window(7 * time.Second)
	if len(w) != 3 {
		t.Fatalf("window = %d, want 3", len(w))
	}
	for _, s := range w {
		if s.Time < 7*time.Second {
			t.Fatalf("window returned old sample %+v", s)
		}
	}
}

func TestHistorySinceFilter(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	db.Append(sample(1*time.Second, 0, 0, 1))
	db.Append(sample(5*time.Second, 0, 0, 2))
	h := db.History(0, 0, 3*time.Second)
	if len(h) != 1 || h[0].Value != 2 {
		t.Fatalf("filtered history = %+v", h)
	}
}

func TestLatestIgnoresOutOfOrderOlderSample(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	db.Append(sample(10, 0, 0, 5))
	db.Append(sample(2, 0, 0, 9)) // late-arriving old measurement
	latest, _ := db.Latest(0, 0)
	if latest.Value != 5 {
		t.Fatalf("latest = %+v, want the newer sample", latest)
	}
}

func TestWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Append(sample(time.Duration(i), i, i+1, float64(i)+0.25)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	if replayed.Len() != 5 {
		t.Fatalf("replayed %d samples, want 5", replayed.Len())
	}
	latest, ok := replayed.Latest(3, 4)
	if !ok || latest.Value != 3.25 {
		t.Fatalf("replayed latest = %+v, %v", latest, ok)
	}
	// Appends after replay must extend, not truncate.
	if err := replayed.Append(sample(99, 9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := replayed.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 6 {
		t.Fatalf("after reopen+append: %d samples, want 6", again.Len())
	}
}

func TestWALRejectsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(path, []byte("1 2 3 4\nnot a line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt WAL should fail to open")
	}
	cases := []string{
		"x 1 2 3", "1 x 2 3", "1 2 x 3", "1 2 3 x", "1 2 3",
	}
	for _, line := range cases {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine(%q) should fail", line)
		}
	}
}

func TestWALSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blank.log")
	if err := os.WriteFile(path, []byte("\n1 0 0 1.5\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 1 {
		t.Fatalf("len = %d, want 1", db.Len())
	}
}

func TestCompactMemoryOnly(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Append(sample(time.Duration(i)*time.Minute, 0, i, float64(i)))
	}
	if err := db.Compact(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Fatalf("compacted len = %d, want 5", db.Len())
	}
	if _, ok := db.Latest(0, 0); ok {
		t.Fatal("expired pair should be gone after compact")
	}
	if _, ok := db.Latest(0, 9); !ok {
		t.Fatal("recent pair should survive compact")
	}
}

func TestCompactRewritesWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		db.Append(sample(time.Duration(i)*time.Minute, 0, i, float64(i)))
	}
	if err := db.Compact(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Post-compact appends must land in the rewritten WAL.
	db.Append(sample(20*time.Minute, 1, 1, 1))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	if replayed.Len() != 3 { // samples at 8, 9, 20 minutes
		t.Fatalf("replayed %d samples after compact, want 3", replayed.Len())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Append(sample(time.Duration(i), w, i%5, float64(i)))
				db.Latest(w, i%5)
				db.Window(0)
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Fatalf("len = %d, want 800", db.Len())
	}
}

func TestCloseIdempotentForMemoryStore(t *testing.T) {
	db, _ := Open("")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
