package qosdb

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func quiet() Options {
	return Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// TestLegacyConversion: a pre-segment text WAL file is converted to a
// segment directory on first open, preserving every sample, and stays a
// directory afterwards.
func TestLegacyConversion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qos.wal")
	text := "1000 0 1 1.5\n2000 0 1 2.5\n3000 2 3 0.25\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenWithOptions(path, quiet())
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	if db.Len() != 3 {
		t.Fatalf("converted %d samples, want 3", db.Len())
	}
	latest, ok := db.Latest(0, 1)
	if !ok || latest.Value != 2.5 {
		t.Fatalf("latest after conversion: %+v, %v", latest, ok)
	}
	// Post-conversion appends are durable in the new format.
	if err := db.Append(sample(4000, 5, 6, 7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("path should now be a segment directory: %v %v", fi, err)
	}
	again, err := OpenWithOptions(path, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 4 {
		t.Fatalf("reopened %d samples, want 4", again.Len())
	}
}

// TestLegacyTornTailSemantics pins the exact torn-tail contract:
// unparseable tail without newline -> dropped; parseable tail without
// newline -> kept; unparseable line WITH newline -> error.
func TestLegacyTornTailSemantics(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		want    int  // samples kept (when ok)
		wantErr bool // open must fail
	}{
		{"torn-garbage", "1000 0 1 1.5\n2000 0 1", 1, false},
		{"torn-parseable", "1000 0 1 1.5\n2000 0 1 2.5", 2, false},
		{"complete-garbage", "1000 0 1 1.5\nnot a line\n", 0, true},
		{"mid-file-garbage", "garbage\n1000 0 1 1.5\n", 0, true},
		{"only-torn", "12", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w")
			if err := os.WriteFile(path, []byte(tc.text), 0o644); err != nil {
				t.Fatal(err)
			}
			db, err := OpenWithOptions(path, quiet())
			if tc.wantErr {
				if err == nil {
					db.Close()
					t.Fatal("open should have failed")
				}
				return
			}
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer db.Close()
			if db.Len() != tc.want {
				t.Fatalf("kept %d samples, want %d", db.Len(), tc.want)
			}
		})
	}
}

// TestLegacyInterruptedConversion: a crash after the text file was
// removed but before the migrate directory was renamed leaves only
// path+".migrate"; the next open completes the rename and loses nothing.
func TestLegacyInterruptedConversion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qos.wal")
	// Build a converted store at the migrate path, as step 2 would.
	db, err := OpenWithOptions(legacyMigrateDir(path), quiet())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Append(sample(time.Duration(i), i, i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// No file at path: simulates the crash window between steps 3 and 4.
	recovered, err := OpenWithOptions(path, quiet())
	if err != nil {
		t.Fatalf("interrupted conversion not completed: %v", err)
	}
	defer recovered.Close()
	if recovered.Len() != 4 {
		t.Fatalf("recovered %d samples, want 4", recovered.Len())
	}
	if _, err := os.Stat(legacyMigrateDir(path)); !os.IsNotExist(err) {
		t.Fatalf("migrate leftovers survived: %v", err)
	}
}

// TestLegacyStaleMigrateDiscarded: if the text file still exists, any
// migrate directory is from an incomplete conversion and must be redone
// from the (authoritative) file.
func TestLegacyStaleMigrateDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "qos.wal")
	if err := os.WriteFile(path, []byte("1000 0 1 1.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stale, wrong-content migrate dir.
	stale, err := OpenWithOptions(legacyMigrateDir(path), quiet())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		stale.Append(sample(time.Duration(i), 9, 9, 9))
	}
	stale.Close()

	db, err := OpenWithOptions(path, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 1 {
		t.Fatalf("stale migrate dir won over the file: %d samples, want 1", db.Len())
	}
}
