package qosdb

import (
	"strings"
	"testing"
)

// FuzzParseLine asserts the WAL line parser never panics and that every
// accepted line re-serializes to something it accepts again with the same
// meaning.
func FuzzParseLine(f *testing.F) {
	f.Add("123 4 5 6.7")
	f.Add("0 0 0 0")
	f.Add("-5 1 2 3e10")
	f.Add("")
	f.Add("1 2 3")
	f.Add("a b c d")

	f.Fuzz(func(t *testing.T, line string) {
		s, err := parseLine(line)
		if err != nil {
			return
		}
		again, err := parseLine(strings.TrimSpace(formatLine(s)))
		if err != nil {
			t.Fatalf("re-parse of formatted line failed: %v", err)
		}
		if again != s {
			t.Fatalf("round-trip changed sample: %+v vs %+v", s, again)
		}
	})
}
