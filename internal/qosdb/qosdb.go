// Package qosdb implements the QoS database of the paper's prediction
// service (Fig. 3): an append-only store of QoS observations with a
// per-pair latest index, time-window queries, and an optional plain-text
// write-ahead log so a restarted service can replay its history into a
// fresh model.
package qosdb

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Store is a concurrency-safe observation database. The zero value is not
// usable; construct with Open.
type Store struct {
	mu     sync.RWMutex
	log    []stream.Sample
	latest map[[2]int]int // (user, service) -> index of newest sample
	byUser map[int][]int  // user -> indices in arrival order

	path string
	wal  *os.File
	bw   *bufio.Writer
}

// Open creates a store. With a non-empty path, existing WAL contents are
// replayed into memory and subsequent appends are logged to the file.
// An empty path yields a memory-only store.
func Open(path string) (*Store, error) {
	s := &Store{
		latest: make(map[[2]int]int),
		byUser: make(map[int][]int),
		path:   path,
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qosdb: open wal: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sample, err := parseLine(text)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("qosdb: wal line %d: %w", line, err)
		}
		s.appendLocked(sample)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("qosdb: replay wal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("qosdb: seek wal: %w", err)
	}
	s.wal = f
	s.bw = bufio.NewWriter(f)
	return s, nil
}

// parseLine decodes "timeNs user service value".
func parseLine(text string) (stream.Sample, error) {
	fields := strings.Fields(text)
	if len(fields) != 4 {
		return stream.Sample{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad time: %w", err)
	}
	user, err := strconv.Atoi(fields[1])
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad user: %w", err)
	}
	service, err := strconv.Atoi(fields[2])
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad service: %w", err)
	}
	value, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad value: %w", err)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return stream.Sample{}, fmt.Errorf("non-finite value %q", fields[3])
	}
	return stream.Sample{Time: time.Duration(ns), User: user, Service: service, Value: value}, nil
}

func formatLine(s stream.Sample) string {
	return fmt.Sprintf("%d %d %d %s\n",
		int64(s.Time), s.User, s.Service, strconv.FormatFloat(s.Value, 'g', -1, 64))
}

// Append stores one observation and, if a WAL is attached, logs it.
func (s *Store) Append(sample stream.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		if _, err := s.bw.WriteString(formatLine(sample)); err != nil {
			return fmt.Errorf("qosdb: append wal: %w", err)
		}
	}
	s.appendLocked(sample)
	return nil
}

func (s *Store) appendLocked(sample stream.Sample) {
	idx := len(s.log)
	s.log = append(s.log, sample)
	key := [2]int{sample.User, sample.Service}
	if prev, ok := s.latest[key]; !ok || sample.Time >= s.log[prev].Time {
		s.latest[key] = idx
	}
	s.byUser[sample.User] = append(s.byUser[sample.User], idx)
}

// Flush forces buffered WAL writes to the OS.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("qosdb: flush wal: %w", err)
	}
	return nil
}

// Close flushes and closes the WAL (no-op for memory-only stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		s.wal.Close()
		return err
	}
	err := s.wal.Close()
	s.wal = nil
	s.bw = nil
	if err != nil {
		return fmt.Errorf("qosdb: close wal: %w", err)
	}
	return nil
}

// Len returns the number of stored observations.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Latest returns the newest observation of a (user, service) pair.
func (s *Store) Latest(user, service int) (stream.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.latest[[2]int{user, service}]
	if !ok {
		return stream.Sample{}, false
	}
	return s.log[idx], true
}

// History returns all observations of a pair in arrival order, optionally
// restricted to samples at or after since (pass a negative duration for
// everything).
func (s *Store) History(user, service int, since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, idx := range s.byUser[user] {
		sample := s.log[idx]
		if sample.Service == service && sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// UserHistory returns all observations by a user in arrival order, at or
// after since.
func (s *Store) UserHistory(user int, since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, idx := range s.byUser[user] {
		if sample := s.log[idx]; sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// Window returns every stored observation at or after since, in arrival
// order. This is the replay feed a freshly restarted model consumes.
func (s *Store) Window(since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, sample := range s.log {
		if sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// Compact rewrites the store (and its WAL, if any) keeping only samples
// at or after since — the durable analogue of the model's data expiration.
func (s *Store) Compact(since time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := make([]stream.Sample, 0, len(s.log))
	for _, sample := range s.log {
		if sample.Time >= since {
			kept = append(kept, sample)
		}
	}
	s.log = s.log[:0]
	s.latest = make(map[[2]int]int, len(kept))
	s.byUser = make(map[int][]int)
	for _, sample := range kept {
		s.appendLocked(sample)
	}
	if s.wal == nil {
		return nil
	}
	// Rewrite the WAL atomically: write a temp file, then rename over.
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("qosdb: compact: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, sample := range s.log {
		if _, err := bw.WriteString(formatLine(sample)); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("qosdb: compact write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("qosdb: compact flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qosdb: compact close: %w", err)
	}
	if err := s.flushLocked(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.wal.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qosdb: compact swap: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("qosdb: compact rename: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qosdb: compact reopen: %w", err)
	}
	s.wal = nf
	s.bw = bufio.NewWriter(nf)
	return nil
}
