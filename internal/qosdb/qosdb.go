// Package qosdb implements the QoS database of the paper's prediction
// service (Fig. 3): an append-only store of QoS observations with a
// per-pair latest index, time-window queries, and optional durability so
// a restarted service can replay its history into a fresh model.
//
// Durability rides the shared internal/store segment writer: the path
// given to Open is a directory holding CRC-protected binary WAL segments
// (wal-*.seg) plus compaction checkpoints (checkpoint-*.ckpt). Compact
// no longer rewrites a text file in place — it writes the kept samples
// as a checkpoint, rotates the log, and truncates the covered segments,
// each step atomic and idempotent, so a crash at any point leaves a
// recoverable store.
//
// Earlier releases logged plain text lines ("timeNs user service value")
// to a single file. Open keeps a one-release read-compat shim: a regular
// file at the path is recognized as a legacy text WAL and converted to a
// segment directory on first open (a torn trailing line — a crash
// mid-append — is truncated with a warning; corruption anywhere else is
// still an error). The shim is the only remaining consumer of the text
// format.
package qosdb

import (
	"bytes"
	"fmt"
	"log/slog"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/qoslab/amf/internal/store"
	"github.com/qoslab/amf/internal/stream"
)

// Options tunes a durable store. The zero value gets defaults.
type Options struct {
	// Sync is the WAL fsync policy (default store.SyncInterval: appends
	// are flushed and fsynced on a background tick).
	Sync store.SyncPolicy
	// SegmentBytes is the WAL rotation threshold (default
	// store.DefaultSegmentBytes).
	SegmentBytes int64
	// Metrics is an optional shared sink for WAL/checkpoint metrics.
	Metrics *store.Metrics
	// Logger receives conversion and torn-tail warnings (default
	// slog.Default()).
	Logger *slog.Logger
}

// Store is a concurrency-safe observation database. The zero value is not
// usable; construct with Open or OpenWithOptions.
type Store struct {
	mu     sync.RWMutex
	log    []stream.Sample
	latest map[[2]int]int // (user, service) -> index of newest sample
	byUser map[int][]int  // user -> indices in arrival order

	dir  string
	wal  *store.WAL
	logg *slog.Logger
}

// Open creates a store with default options. With a non-empty path,
// durable contents (newest checkpoint + WAL tail, or a legacy text WAL)
// are replayed into memory and subsequent appends are journaled. An
// empty path yields a memory-only store.
func Open(path string) (*Store, error) {
	return OpenWithOptions(path, Options{})
}

// OpenWithOptions is Open with explicit durability tuning.
func OpenWithOptions(path string, opts Options) (*Store, error) {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Store{
		latest: make(map[[2]int]int),
		byUser: make(map[int][]int),
		dir:    path,
		logg:   opts.Logger,
	}
	if path == "" {
		return s, nil
	}
	if err := convertLegacyWAL(path, opts); err != nil {
		return nil, err
	}
	w, err := store.OpenWAL(path, store.WALOptions{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		Metrics:      opts.Metrics,
		Logger:       opts.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("qosdb: open wal: %w", err)
	}
	// Newest checkpoint first (the compacted prefix of history), then the
	// WAL tail past it.
	base, data, ok, err := store.LoadNewestCheckpoint(path, opts.Logger)
	if err != nil {
		w.Close()
		return nil, fmt.Errorf("qosdb: load checkpoint: %w", err)
	}
	if ok {
		ss, err := store.DecodeSamples(data)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("qosdb: decode checkpoint: %w", err)
		}
		for _, sample := range ss {
			s.appendLocked(sample)
		}
	}
	if err := w.Replay(base, func(e store.Entry) error {
		if e.Kind != store.EntrySamples {
			return fmt.Errorf("qosdb: unexpected wal entry kind %d", e.Kind)
		}
		for _, sample := range e.Samples {
			s.appendLocked(sample)
		}
		return nil
	}); err != nil {
		w.Close()
		return nil, fmt.Errorf("qosdb: replay wal: %w", err)
	}
	s.wal = w
	return s, nil
}

// WALMetrics returns the metric sink of the underlying segment log, or
// nil for a memory-only store.
func (s *Store) WALMetrics() *store.Metrics {
	if s.wal == nil {
		return nil
	}
	return s.wal.Metrics()
}

// ---------------------------------------------------------------------------
// Legacy text-WAL shim (one release of read compatibility).

// legacyMigrateDir is where a conversion builds the segment directory
// before atomically renaming it into place.
func legacyMigrateDir(path string) string { return path + ".migrate" }

// convertLegacyWAL upgrades a pre-segment text WAL file at path into a
// segment directory at the same path. The dance is crash-safe:
//
//  1. parse the text file (strict, except a torn trailing line without a
//     newline, which is truncated with a warning — the old writer could
//     be killed mid-append),
//  2. build a complete, synced segment directory at path+".migrate",
//  3. remove the text file,
//  4. rename the migrate directory to path.
//
// A crash between 3 and 4 leaves only the migrate directory; the next
// open finds no file at path and finishes the rename. A crash earlier
// leaves the text file untouched; the stale migrate directory is
// discarded and the conversion redone.
func convertLegacyWAL(path string, opts Options) error {
	mig := legacyMigrateDir(path)
	fi, err := os.Stat(path)
	switch {
	case os.IsNotExist(err):
		// Finish an interrupted conversion (file already removed).
		if mfi, merr := os.Stat(mig); merr == nil && mfi.IsDir() {
			opts.Logger.Warn("qosdb: completing interrupted legacy wal conversion", "path", path)
			return os.Rename(mig, path)
		}
		return nil
	case err != nil:
		return fmt.Errorf("qosdb: stat %s: %w", path, err)
	case fi.IsDir():
		return nil // already converted
	}

	// A regular file: the legacy text WAL. Any migrate leftovers are from
	// a conversion that did not reach step 3 — incomplete, redo from the
	// file, which is still authoritative.
	if err := os.RemoveAll(mig); err != nil {
		return fmt.Errorf("qosdb: clear stale migration: %w", err)
	}
	samples, torn, err := readLegacyWAL(path)
	if err != nil {
		return err
	}
	if torn != "" {
		opts.Logger.Warn("qosdb: dropping torn trailing wal line",
			"path", path, "bytes", len(torn))
	}
	w, err := store.OpenWAL(mig, store.WALOptions{
		SegmentBytes: opts.SegmentBytes,
		Sync:         store.SyncOff,
		Logger:       opts.Logger,
	})
	if err != nil {
		return fmt.Errorf("qosdb: convert legacy wal: %w", err)
	}
	if len(samples) > 0 {
		if _, err := w.AppendSamples(samples); err != nil {
			w.Close()
			return fmt.Errorf("qosdb: convert legacy wal: %w", err)
		}
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return fmt.Errorf("qosdb: convert legacy wal: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("qosdb: convert legacy wal: %w", err)
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("qosdb: remove legacy wal: %w", err)
	}
	if err := os.Rename(mig, path); err != nil {
		return fmt.Errorf("qosdb: install converted wal: %w", err)
	}
	opts.Logger.Info("qosdb: converted legacy text wal to segments",
		"path", path, "samples", len(samples))
	return nil
}

// readLegacyWAL parses a text WAL. Interior corruption is fatal; a torn
// final line (missing its newline — the shape a crash mid-append leaves)
// is returned for the caller to warn about, unless it happens to parse
// as a complete record, in which case it is kept.
func readLegacyWAL(path string) (samples []stream.Sample, torn string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("qosdb: read legacy wal: %w", err)
	}
	line := 0
	for len(data) > 0 {
		line++
		var text []byte
		nl := bytes.IndexByte(data, '\n')
		complete := nl >= 0
		if complete {
			text, data = data[:nl], data[nl+1:]
		} else {
			text, data = data, nil
		}
		trimmed := strings.TrimSpace(string(text))
		if trimmed == "" {
			continue
		}
		sample, perr := parseLine(trimmed)
		if perr != nil {
			if !complete {
				return samples, trimmed, nil // torn tail: truncate, keep the rest
			}
			return nil, "", fmt.Errorf("qosdb: wal line %d: %w", line, perr)
		}
		samples = append(samples, sample)
	}
	return samples, "", nil
}

// parseLine decodes a legacy "timeNs user service value" line. Retained
// only for the conversion shim.
func parseLine(text string) (stream.Sample, error) {
	fields := strings.Fields(text)
	if len(fields) != 4 {
		return stream.Sample{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad time: %w", err)
	}
	user, err := strconv.Atoi(fields[1])
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad user: %w", err)
	}
	service, err := strconv.Atoi(fields[2])
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad service: %w", err)
	}
	value, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return stream.Sample{}, fmt.Errorf("bad value: %w", err)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return stream.Sample{}, fmt.Errorf("non-finite value %q", fields[3])
	}
	return stream.Sample{Time: time.Duration(ns), User: user, Service: service, Value: value}, nil
}

// formatLine encodes the legacy text format (shim/testing only).
func formatLine(s stream.Sample) string {
	return fmt.Sprintf("%d %d %d %s\n",
		int64(s.Time), s.User, s.Service, strconv.FormatFloat(s.Value, 'g', -1, 64))
}

// ---------------------------------------------------------------------------
// Writes.

// Append stores one observation and, if durable, journals it before it
// becomes queryable.
func (s *Store) Append(sample stream.Sample) error {
	return s.AppendAll([]stream.Sample{sample})
}

// AppendAll stores a batch, journaled as one WAL record — the bulk path
// for the observe endpoint (one CRC, one fsync under SyncAlways, instead
// of per-sample records).
func (s *Store) AppendAll(samples []stream.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if _, err := s.wal.AppendSamples(samples); err != nil {
			return fmt.Errorf("qosdb: append wal: %w", err)
		}
	}
	for _, sample := range samples {
		s.appendLocked(sample)
	}
	return nil
}

func (s *Store) appendLocked(sample stream.Sample) {
	idx := len(s.log)
	s.log = append(s.log, sample)
	key := [2]int{sample.User, sample.Service}
	if prev, ok := s.latest[key]; !ok || sample.Time >= s.log[prev].Time {
		s.latest[key] = idx
	}
	s.byUser[sample.User] = append(s.byUser[sample.User], idx)
}

// Flush forces journaled appends to stable storage (fsync).
func (s *Store) Flush() error {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return nil
	}
	if err := w.Sync(); err != nil {
		return fmt.Errorf("qosdb: flush wal: %w", err)
	}
	return nil
}

// Close flushes and closes the WAL (no-op for memory-only stores).
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	if err != nil {
		return fmt.Errorf("qosdb: close wal: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reads.

// Len returns the number of stored observations.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Latest returns the newest observation of a (user, service) pair.
func (s *Store) Latest(user, service int) (stream.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.latest[[2]int{user, service}]
	if !ok {
		return stream.Sample{}, false
	}
	return s.log[idx], true
}

// History returns all observations of a pair in arrival order, optionally
// restricted to samples at or after since (pass a negative duration for
// everything).
func (s *Store) History(user, service int, since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, idx := range s.byUser[user] {
		sample := s.log[idx]
		if sample.Service == service && sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// UserHistory returns all observations by a user in arrival order, at or
// after since.
func (s *Store) UserHistory(user int, since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, idx := range s.byUser[user] {
		if sample := s.log[idx]; sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// Window returns every stored observation at or after since, in arrival
// order. This is the replay feed a freshly restarted model consumes.
func (s *Store) Window(since time.Duration) []stream.Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []stream.Sample
	for _, sample := range s.log {
		if sample.Time >= since {
			out = append(out, sample)
		}
	}
	return out
}

// Compact drops samples older than since — the durable analogue of the
// model's data expiration. For a durable store the kept samples are
// written as a checkpoint covering the WAL's current sequence number,
// the log rotates, and covered segments are removed; every step is
// atomic and idempotent, so a crash mid-compaction never loses acked
// data (at worst the old segments survive until the next compaction).
func (s *Store) Compact(since time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := make([]stream.Sample, 0, len(s.log))
	for _, sample := range s.log {
		if sample.Time >= since {
			kept = append(kept, sample)
		}
	}
	s.log = s.log[:0]
	s.latest = make(map[[2]int]int, len(kept))
	s.byUser = make(map[int][]int)
	for _, sample := range kept {
		s.appendLocked(sample)
	}
	if s.wal == nil {
		return nil
	}
	// Everything journaled so far is summarized by the kept set: persist
	// it as a checkpoint at the current sequence, then retire the covered
	// segments.
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("qosdb: compact: %w", err)
	}
	seq := s.wal.LastSeq()
	if seq == 0 {
		return nil // nothing ever journaled; nothing to summarize
	}
	if err := store.WriteCheckpoint(s.dir, seq, store.EncodeSamples(kept)); err != nil {
		return fmt.Errorf("qosdb: compact checkpoint: %w", err)
	}
	if err := store.PruneCheckpoints(s.dir, store.DefaultRetain); err != nil {
		return fmt.Errorf("qosdb: compact prune: %w", err)
	}
	if err := s.wal.Rotate(); err != nil {
		return fmt.Errorf("qosdb: compact rotate: %w", err)
	}
	if err := s.wal.TruncateThrough(seq); err != nil {
		return fmt.Errorf("qosdb: compact truncate: %w", err)
	}
	return nil
}
