package qosdb_test

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/qosdb"
	"github.com/qoslab/amf/internal/stream"
)

// The QoS database of the paper's framework (Fig. 3): observations are
// appended as they arrive; the latest value per pair, per-pair history,
// and time windows are queryable; old data can be compacted away, the
// durable analogue of the model's 15-minute expiration.
func ExampleStore() {
	db, err := qosdb.Open("") // memory-only; pass a path for a WAL
	if err != nil {
		fmt.Println(err)
		return
	}
	defer db.Close()

	db.Append(stream.Sample{Time: 1 * time.Minute, User: 0, Service: 3, Value: 1.4})
	db.Append(stream.Sample{Time: 16 * time.Minute, User: 0, Service: 3, Value: 0.9})
	db.Append(stream.Sample{Time: 17 * time.Minute, User: 1, Service: 3, Value: 2.2})

	latest, _ := db.Latest(0, 3)
	fmt.Printf("latest(0,3) = %.1f\n", latest.Value)
	fmt.Printf("history(0,3) has %d samples\n", len(db.History(0, 3, -1)))

	// Expire everything older than 15 minutes.
	db.Compact(15 * time.Minute)
	fmt.Printf("after compact: %d samples\n", db.Len())
	// Output:
	// latest(0,3) = 0.9
	// history(0,3) has 2 samples
	// after compact: 2 samples
}
