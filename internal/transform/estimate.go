package transform

import (
	"errors"
	"math"
)

// ErrNoData is returned by EstimateAlpha when given no positive samples.
var ErrNoData = errors.New("transform: no positive samples to estimate alpha from")

// LogLikelihood returns the Box-Cox profile log-likelihood of alpha on the
// positive samples xs (Box & Cox 1964):
//
//	ℓ(α) = −n/2 · log σ²(α) + (α−1) Σ log xᵢ
//
// where σ²(α) is the variance of the transformed samples. Larger is better.
// Non-positive samples are clamped to Eps, consistent with Transformer.
func LogLikelihood(xs []float64, alpha float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.Inf(-1)
	}
	var sumLog float64
	transformed := make([]float64, n)
	for i, x := range xs {
		if x < Eps {
			x = Eps
		}
		sumLog += math.Log(x)
		transformed[i] = BoxCox(x, alpha)
	}
	var mean float64
	for _, y := range transformed {
		mean += y
	}
	mean /= float64(n)
	var variance float64
	for _, y := range transformed {
		d := y - mean
		variance += d * d
	}
	variance /= float64(n)
	if variance <= 0 {
		return math.Inf(-1)
	}
	return -float64(n)/2*math.Log(variance) + (alpha-1)*sumLog
}

// EstimateAlpha finds the Box-Cox alpha maximizing the profile
// log-likelihood over [lo, hi] via golden-section search. The paper hand
// tunes α (−0.007 for RT, −0.05 for TP); this estimator recovers values of
// the same sign and magnitude automatically from data and is used by the
// dataset tooling and tests.
func EstimateAlpha(xs []float64, lo, hi float64) (float64, error) {
	clean := xs[:0:0]
	for _, x := range xs {
		if x > 0 {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return 0, ErrNoData
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	const phi = 0.618033988749895
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc := LogLikelihood(clean, c)
	fd := LogLikelihood(clean, d)
	for i := 0; i < 100 && b-a > 1e-6; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = LogLikelihood(clean, c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = LogLikelihood(clean, d)
		}
	}
	return (a + b) / 2, nil
}
