package transform

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestEstimateAlphaNoData(t *testing.T) {
	if _, err := EstimateAlpha(nil, -2, 2); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
	if _, err := EstimateAlpha([]float64{-1, 0}, -2, 2); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData for non-positive samples, got %v", err)
	}
}

func TestEstimateAlphaRecoversLogNormal(t *testing.T) {
	// If X = exp(Z) with Z normal, the likelihood-optimal Box-Cox alpha
	// is ~0 (the log transform). The estimator should land near 0.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	alpha, err := EstimateAlpha(xs, -2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha) > 0.1 {
		t.Fatalf("lognormal data should give alpha ≈ 0, got %g", alpha)
	}
}

func TestEstimateAlphaNormalDataPrefersNearOne(t *testing.T) {
	// Already-normal positive data should prefer alpha near 1 over the
	// strongly de-skewing alphas.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64() // positive, symmetric
	}
	alpha, err := EstimateAlpha(xs, -2, 3)
	if err != nil {
		t.Fatal(err)
	}
	llAtAlpha := LogLikelihood(xs, alpha)
	llAtZero := LogLikelihood(xs, 0)
	if llAtAlpha < llAtZero {
		t.Fatalf("estimated alpha %g has lower likelihood than 0", alpha)
	}
}

func TestEstimateAlphaFlippedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64())
	}
	a1, err1 := EstimateAlpha(xs, -2, 2)
	a2, err2 := EstimateAlpha(xs, 2, -2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(a1-a2) > 1e-6 {
		t.Fatalf("flipped bounds gave different results: %g vs %g", a1, a2)
	}
}

func TestLogLikelihoodEdgeCases(t *testing.T) {
	if !math.IsInf(LogLikelihood(nil, 0.5), -1) {
		t.Fatal("empty input should give -Inf")
	}
	if !math.IsInf(LogLikelihood([]float64{3, 3, 3}, 0.5), -1) {
		t.Fatal("zero-variance input should give -Inf")
	}
}

func TestLogLikelihoodMaximumIsInterior(t *testing.T) {
	// The estimator's returned alpha should score at least as well as
	// nearby grid points (it found a local maximum of the profile).
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 0.8)
	}
	alpha, err := EstimateAlpha(xs, -2, 2)
	if err != nil {
		t.Fatal(err)
	}
	best := LogLikelihood(xs, alpha)
	for _, d := range []float64{-0.2, -0.1, 0.1, 0.2} {
		if LogLikelihood(xs, alpha+d) > best+1e-6 {
			t.Fatalf("alpha %g is not a local maximum (alpha%+g is better)", alpha, d)
		}
	}
}
