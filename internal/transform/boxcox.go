// Package transform implements AMF's data transformation pipeline
// (paper Sec. IV-C.1): the Box-Cox power transform that de-skews QoS
// values, the linear normalization into [0,1], the sigmoid link that maps
// latent inner products into [0,1], and their inverses for turning model
// outputs back into QoS predictions.
package transform

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the smallest value fed into the Box-Cox transform and the
// smallest normalized target used in relative-error divisions. The paper
// sets Rmin = 0 for response time, but x^α is singular at 0 for α < 0 and
// the relative-error loss divides by the normalized value, so both are
// clamped away from zero. This guard is design decision #5 in DESIGN.md.
const Eps = 1e-6

// BoxCox applies the one-parameter Box-Cox transform (paper Eq. 3):
//
//	boxcox(x) = (x^α − 1)/α   if α ≠ 0
//	boxcox(x) = log(x)        if α = 0
//
// x must be positive; callers clamp to [Eps, ∞) first (see Transformer).
func BoxCox(x, alpha float64) float64 {
	if alpha == 0 {
		return math.Log(x)
	}
	return (math.Pow(x, alpha) - 1) / alpha
}

// BoxCoxInverse inverts BoxCox. For α ≠ 0 the inverse is
// (α·y + 1)^(1/α); arguments that would take the base negative are clamped
// to Eps so the inverse stays within the transform's valid domain.
func BoxCoxInverse(y, alpha float64) float64 {
	if alpha == 0 {
		return math.Exp(y)
	}
	base := alpha*y + 1
	if base < Eps {
		base = Eps
	}
	return math.Pow(base, 1/alpha)
}

// ErrBadRange is returned when a Transformer is configured with
// Rmax <= Rmin.
var ErrBadRange = errors.New("transform: Rmax must exceed Rmin")

// Transformer performs the full forward pipeline
//
//	R  →  clamp to [max(Rmin,Eps), Rmax]  →  Box-Cox(α)  →  linear [0,1]
//
// and the corresponding backward pipeline used to decode predictions.
// The zero value is unusable; construct with New.
type Transformer struct {
	Alpha      float64
	RMin, RMax float64

	lo, hi float64 // Box-Cox images of the clamped range endpoints
}

// New creates a Transformer for QoS values in [rmin, rmax] with Box-Cox
// parameter alpha. rmin is clamped up to Eps (the paper uses Rmin = 0 for
// response time; see Eps). α = 1 degenerates to plain linear normalization,
// which is exactly the paper's AMF(α=1) ablation.
func New(alpha, rmin, rmax float64) (*Transformer, error) {
	if rmin < Eps {
		rmin = Eps
	}
	if rmax <= rmin {
		return nil, fmt.Errorf("%w: [%g, %g]", ErrBadRange, rmin, rmax)
	}
	t := &Transformer{Alpha: alpha, RMin: rmin, RMax: rmax}
	t.lo = BoxCox(rmin, alpha)
	t.hi = BoxCox(rmax, alpha)
	return t, nil
}

// MustNew is New that panics on error, for tests and literals.
func MustNew(alpha, rmin, rmax float64) *Transformer {
	t, err := New(alpha, rmin, rmax)
	if err != nil {
		panic(err)
	}
	return t
}

// Clamp restricts a raw QoS value to the transformer's domain.
func (t *Transformer) Clamp(x float64) float64 {
	if x < t.RMin {
		return t.RMin
	}
	if x > t.RMax {
		return t.RMax
	}
	return x
}

// Forward maps a raw QoS value to a normalized target r in [Eps, 1]
// (paper Eq. 3-4). Values outside [RMin, RMax] are clamped first. The lower
// clamp at Eps keeps the relative-error division r̂/r well defined.
func (t *Transformer) Forward(x float64) float64 {
	y := BoxCox(t.Clamp(x), t.Alpha)
	r := (y - t.lo) / (t.hi - t.lo)
	if r < Eps {
		r = Eps
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Backward maps a normalized model output in [0, 1] back to a QoS value,
// inverting Eq. 4 then Eq. 3.
func (t *Transformer) Backward(r float64) float64 {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	y := t.lo + r*(t.hi-t.lo)
	x := BoxCoxInverse(y, t.Alpha)
	return t.Clamp(x)
}

// ForwardAll applies Forward element-wise, returning a new slice.
func (t *Transformer) ForwardAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = t.Forward(x)
	}
	return out
}

// Sigmoid is the logistic link g(x) = 1/(1+e^{-x}) mapping latent inner
// products into [0, 1] (paper Sec. IV-C.1).
func Sigmoid(x float64) float64 {
	// Split by sign for numerical stability at large |x|.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidPrime is g'(x) = e^x/(e^x+1)^2 = g(x)(1−g(x)), the derivative
// used in the SGD updates (paper Eq. 8-9).
func SigmoidPrime(x float64) float64 {
	g := Sigmoid(x)
	return g * (1 - g)
}

// Logit inverts Sigmoid: logit(p) = log(p/(1−p)), with p clamped into
// (Eps, 1−Eps) to stay finite.
func Logit(p float64) float64 {
	if p < Eps {
		p = Eps
	}
	if p > 1-Eps {
		p = 1 - Eps
	}
	return math.Log(p / (1 - p))
}
