package transform_test

import (
	"fmt"

	"github.com/qoslab/amf/internal/transform"
)

// The data-transformation pipeline of the paper's Sec. IV-C.1: Box-Cox
// de-skews a QoS value and linear normalization maps it to [0, 1]; the
// backward pass inverts both.
func ExampleTransformer() {
	tr := transform.MustNew(-0.007, 0, 20) // the paper's response-time setting

	rt := 1.33 // seconds (the dataset's mean response time)
	r := tr.Forward(rt)
	back := tr.Backward(r)

	fmt.Printf("normalized target in (0,1): %v\n", r > 0 && r < 1)
	fmt.Printf("inverse recovers the value: %.2f\n", back)
	// Output:
	// normalized target in (0,1): true
	// inverse recovers the value: 1.33
}

// Box-Cox with alpha=0 is the log transform, and the transform is
// monotone (rank-preserving), which is what lets AMF train on transformed
// targets without changing which candidate is best.
func ExampleBoxCox() {
	fmt.Printf("boxcox(e, 0) = %.0f\n", transform.BoxCox(2.718281828459045, 0))
	fmt.Printf("order preserved: %v\n",
		transform.BoxCox(1, -0.5) < transform.BoxCox(2, -0.5))
	// Output:
	// boxcox(e, 0) = 1
	// order preserved: true
}
