package transform

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxCoxZeroAlphaIsLog(t *testing.T) {
	for _, x := range []float64{0.1, 1, 2.5, 100} {
		if got, want := BoxCox(x, 0), math.Log(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("boxcox(%g, 0) = %g, want log = %g", x, got, want)
		}
	}
}

func TestBoxCoxAlphaOneIsShiftedIdentity(t *testing.T) {
	// (x^1 - 1)/1 = x - 1: with α=1 the transform is affine, which the
	// paper notes reduces the pipeline to linear normalization.
	for _, x := range []float64{0.5, 1, 7} {
		if got := BoxCox(x, 1); math.Abs(got-(x-1)) > 1e-12 {
			t.Fatalf("boxcox(%g, 1) = %g, want %g", x, got, x-1)
		}
	}
}

func TestBoxCoxContinuityAtAlphaZero(t *testing.T) {
	// The power branch must approach the log branch as α → 0.
	for _, x := range []float64{0.2, 1.7, 42} {
		lim := BoxCox(x, 1e-9)
		if math.Abs(lim-math.Log(x)) > 1e-6 {
			t.Fatalf("boxcox(%g, 1e-9) = %g, want ≈ log = %g", x, lim, math.Log(x))
		}
	}
}

func TestBoxCoxInverseRoundTrip(t *testing.T) {
	for _, alpha := range []float64{-0.5, -0.05, -0.007, 0, 0.3, 1, 2} {
		for _, x := range []float64{0.001, 0.5, 1, 3, 19.9} {
			y := BoxCox(x, alpha)
			back := BoxCoxInverse(y, alpha)
			if math.Abs(back-x) > 1e-8*(1+x) {
				t.Fatalf("alpha=%g x=%g: roundtrip gave %g", alpha, x, back)
			}
		}
	}
}

func TestBoxCoxInverseClampsInvalidBase(t *testing.T) {
	// For α=1, y = −5 would need base −4 < 0; the inverse clamps.
	got := BoxCoxInverse(-5, 1)
	if got <= 0 || math.IsNaN(got) {
		t.Fatalf("clamped inverse should stay positive, got %g", got)
	}
}

func TestBoxCoxMonotoneProperty(t *testing.T) {
	// Rank preservation is the property the paper relies on (Sec. IV-C.1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := rng.Float64()*3 - 1.5
		a := rng.Float64()*20 + Eps
		b := rng.Float64()*20 + Eps
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		return BoxCox(a, alpha) <= BoxCox(b, alpha)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTransformerValidation(t *testing.T) {
	if _, err := New(1, 5, 5); !errors.Is(err, ErrBadRange) {
		t.Fatalf("expected ErrBadRange, got %v", err)
	}
	if _, err := New(1, 10, 2); !errors.Is(err, ErrBadRange) {
		t.Fatalf("expected ErrBadRange for flipped range, got %v", err)
	}
	tr, err := New(-0.007, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RMin != Eps {
		t.Fatalf("rmin should clamp to Eps, got %g", tr.RMin)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from MustNew on bad range")
		}
	}()
	MustNew(1, 5, 1)
}

func TestForwardRangeEndpoints(t *testing.T) {
	// Paper params: α=−0.007, RT ∈ [0, 20].
	tr := MustNew(-0.007, 0, 20)
	if got := tr.Forward(20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Forward(RMax) = %g, want 1", got)
	}
	lo := tr.Forward(0)
	if lo < Eps || lo > 2*Eps {
		t.Fatalf("Forward(RMin) = %g, want ≈ Eps", lo)
	}
}

func TestForwardClampsOutOfRange(t *testing.T) {
	tr := MustNew(-0.05, 0, 7000)
	if got := tr.Forward(1e9); got != 1 {
		t.Fatalf("Forward beyond RMax = %g, want 1", got)
	}
	if got := tr.Forward(-3); got > 2*Eps {
		t.Fatalf("Forward below RMin = %g, want ≈ Eps", got)
	}
}

func TestForwardBackwardRoundTrip(t *testing.T) {
	for _, alpha := range []float64{-0.05, -0.007, 0, 1} {
		tr := MustNew(alpha, 0, 20)
		for _, x := range []float64{0.01, 0.5, 1.33, 5, 19} {
			r := tr.Forward(x)
			if r < 0 || r > 1 {
				t.Fatalf("alpha=%g: Forward(%g) = %g outside [0,1]", alpha, x, r)
			}
			back := tr.Backward(r)
			if math.Abs(back-x) > 1e-6*(1+x) {
				t.Fatalf("alpha=%g x=%g: roundtrip gave %g", alpha, x, back)
			}
		}
	}
}

func TestBackwardClampsInput(t *testing.T) {
	tr := MustNew(1, 0, 10)
	if got := tr.Backward(-0.5); got < tr.RMin || got > tr.RMax {
		t.Fatalf("Backward(-0.5) = %g outside range", got)
	}
	if got := tr.Backward(1.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Backward(1.5) = %g, want 10", got)
	}
}

func TestForwardMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := rng.Float64()*2 - 1
		tr := MustNew(alpha, 0, 20)
		a := rng.Float64() * 20
		b := rng.Float64() * 20
		if a > b {
			a, b = b, a
		}
		return tr.Forward(a) <= tr.Forward(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardAll(t *testing.T) {
	tr := MustNew(1, 0, 10)
	out := tr.ForwardAll([]float64{0, 5, 10})
	if len(out) != 3 || out[2] != 1 {
		t.Fatalf("ForwardAll = %v", out)
	}
}

func TestAlphaOneIsLinearNormalization(t *testing.T) {
	// AMF(α=1) ablation: the forward map must be exactly linear in x
	// (up to the Eps clamps).
	tr := MustNew(1, 0, 10)
	x1, x2, x3 := 2.0, 4.0, 6.0
	d1 := tr.Forward(x2) - tr.Forward(x1)
	d2 := tr.Forward(x3) - tr.Forward(x2)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("α=1 forward is not linear: Δ1=%g Δ2=%g", d1, d2)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %g, want 0.5", got)
	}
	if got := Sigmoid(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sigmoid(100) = %g, want ≈1", got)
	}
	if got := Sigmoid(-100); got > 1e-12 {
		t.Fatalf("sigmoid(-100) = %g, want ≈0", got)
	}
	// Symmetry: g(-x) = 1 - g(x).
	for _, x := range []float64{0.5, 2, 10} {
		if math.Abs(Sigmoid(-x)-(1-Sigmoid(x))) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %g", x)
		}
	}
}

func TestSigmoidPrime(t *testing.T) {
	if got := SigmoidPrime(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("g'(0) = %g, want 0.25", got)
	}
	// Numerical derivative check.
	for _, x := range []float64{-2, -0.3, 0.7, 3} {
		h := 1e-6
		num := (Sigmoid(x+h) - Sigmoid(x-h)) / (2 * h)
		if math.Abs(SigmoidPrime(x)-num) > 1e-6 {
			t.Fatalf("g'(%g) = %g, numeric %g", x, SigmoidPrime(x), num)
		}
	}
}

func TestLogitInvertsSigmoid(t *testing.T) {
	for _, x := range []float64{-4, -1, 0, 0.5, 3} {
		if got := Logit(Sigmoid(x)); math.Abs(got-x) > 1e-6 {
			t.Fatalf("logit(sigmoid(%g)) = %g", x, got)
		}
	}
	if math.IsInf(Logit(0), 0) || math.IsInf(Logit(1), 0) {
		t.Fatal("Logit must clamp away from infinities")
	}
}
