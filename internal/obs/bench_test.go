package obs

import (
	"testing"
	"time"
)

// The package's contract is that a hot-path record costs a few atomic
// adds. These benchmarks put numbers on that (see bench_small_output.txt);
// the end-to-end <5% predict-path overhead proof lives in
// internal/server's BenchmarkPredictPath.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(1e-9, 60, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(1e-9, 60, 8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-6)
			i++
		}
	})
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewHistogram(1e-9, 60, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkAccuracyRecord(b *testing.B) {
	tr := NewAccuracyTracker(0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(10.5, 10)
	}
}

func BenchmarkQuantile(b *testing.B) {
	h := NewHistogram(1e-9, 60, 8)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i%997) * 1e-6)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
