package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestAccuracyTrackerKnownErrors(t *testing.T) {
	tr := NewAccuracyTracker(0.3)
	// Feed relative errors drawn log-uniformly so the quantiles are
	// computable in closed form against the sorted draw.
	rng := rand.New(rand.NewSource(3))
	rels := make([]float64, 50000)
	for i := range rels {
		rel := math.Exp(rng.Float64()*6 - 6) // rel err in [e^-6, 1]
		rels[i] = rel
		// observed 10, predicted 10·(1±rel)
		sign := 1.0
		if i%2 == 0 {
			sign = -1
		}
		tr.Record(10*(1+sign*rel), 10)
	}
	if tr.Samples() != int64(len(rels)) {
		t.Fatalf("samples = %d, want %d", tr.Samples(), len(rels))
	}
	sort.Float64s(rels)
	for _, c := range []struct {
		q    float64
		got  float64
		name string
	}{
		{0.5, tr.MRE(), "MRE"},
		{0.9, tr.NPRE(), "NPRE"},
	} {
		want := rels[int(c.q*float64(len(rels)-1))]
		if relDiff(c.got, want) > 0.10 {
			t.Errorf("%s = %g, want ≈ %g", c.name, c.got, want)
		}
	}
	if ema := tr.EMA(); ema <= 0 || ema > 1 {
		t.Errorf("EMA = %g out of expected range", ema)
	}
}

func TestAccuracyTrackerEMAConverges(t *testing.T) {
	tr := NewAccuracyTracker(0.3)
	tr.Record(15, 10) // rel err 0.5: first sample is adopted directly
	if got := tr.EMA(); got != 0.5 {
		t.Fatalf("first EMA = %g, want 0.5", got)
	}
	for i := 0; i < 200; i++ {
		tr.Record(10.1, 10) // rel err 0.01
	}
	if got := tr.EMA(); relDiff(got, 0.01) > 0.05 {
		t.Fatalf("EMA did not converge to 0.01: %g", got)
	}
}

func TestAccuracyTrackerSkipsUnscorable(t *testing.T) {
	tr := NewAccuracyTracker(0)
	tr.Record(1, 0)            // non-positive ground truth
	tr.Record(1, -3)           // negative ground truth
	tr.Record(math.NaN(), 1)   // no usable prediction
	tr.RecordMiss()            // explicitly unscored
	if tr.Samples() != 0 {
		t.Fatalf("unscorable pairs were scored: %d", tr.Samples())
	}
	if tr.Misses() != 4 {
		t.Fatalf("misses = %d, want 4", tr.Misses())
	}
	if tr.EMA() != 0 || tr.MRE() != 0 {
		t.Fatalf("empty tracker should report zeros: ema=%g mre=%g", tr.EMA(), tr.MRE())
	}
}

func TestAccuracyTrackerRegister(t *testing.T) {
	r := NewRegistry()
	tr := NewAccuracyTracker(0)
	tr.Register(r, "amf_accuracy")
	tr.Record(12, 10)
	tr.RecordMiss()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	tm, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	for name, want := range map[string]float64{
		"amf_accuracy_samples_total":  1,
		"amf_accuracy_unscored_total": 1,
	} {
		if v, ok := tm.Value(name, nil); !ok || v != want {
			t.Errorf("%s = %g (ok=%v), want %g", name, v, ok, want)
		}
	}
	if v, ok := tm.Value("amf_accuracy_ema_relative_error", nil); !ok || relDiff(v, 0.2) > 1e-9 {
		t.Errorf("ema gauge = %g (ok=%v), want 0.2", v, ok)
	}
	if _, ok := tm.Families["amf_accuracy_relative_error"]; !ok {
		t.Error("relative-error histogram not exposed")
	}
}

func TestAccuracyTrackerBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta > 1 did not panic")
		}
	}()
	NewAccuracyTracker(1.5)
}
