package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentRecordAndScrape hammers every hot-path primitive from many
// goroutines while scrapers render and quantile-estimate concurrently.
// Run under -race (CI does): the whole point of the package is that
// recording is lock-free and scraping never stops writers.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("stress_ops_total", "h")
	g := r.NewGauge("stress_inflight", "h")
	h := r.NewHistogram("stress_latency_seconds", "h", 1e-9, 60, 8)
	hv := r.NewHistogramVec("stress_route_seconds", "h", "route", 1e-9, 60, 8)
	cv := r.NewCounterVec("stress_status_total", "h", "code")
	tr := NewAccuracyTracker(0.3)
	tr.Register(r, "stress_accuracy")

	routes := []*Histogram{hv.With("a"), hv.With("b"), hv.With("c")}
	codes := []*Counter{cv.With("2xx"), cv.With("4xx")}

	const writers, scrapers, perWriter = 8, 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := float64(seed*perWriter+i%977+1) * 1e-6
				c.Inc()
				g.Add(1)
				h.Observe(v)
				h.ObserveN(v, 3)
				routes[i%len(routes)].Observe(v)
				codes[i%len(codes)].Inc()
				tr.Record(10+v, 10)
				g.Add(-1)
			}
		}(w)
	}
	scrapeErr := make(chan error, scrapers)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					scrapeErr <- err
					return
				}
				_ = h.Quantile(0.99)
				_ = tr.MRE()
			}
		}()
	}
	wg.Wait()
	close(scrapeErr)
	for err := range scrapeErr {
		t.Fatal(err)
	}
	if got, want := c.Value(), int64(writers*perWriter); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := h.Count(), int64(writers*perWriter*4); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge did not return to zero: %d", g.Value())
	}
	if tr.Samples() != int64(writers*perWriter) {
		t.Fatalf("accuracy samples = %d", tr.Samples())
	}
}
