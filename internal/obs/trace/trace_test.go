package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	id := NewID()
	parent := nextSpanID()
	v := HeaderValue(id, parent)
	if len(v) != 49 {
		t.Fatalf("header length = %d, want 49 (%q)", len(v), v)
	}
	got, gotParent, ok := ParseHeader(v)
	if !ok {
		t.Fatalf("ParseHeader(%q) not ok", v)
	}
	if got != id || gotParent != parent {
		t.Fatalf("round trip: got (%v,%v), want (%v,%v)", got, gotParent, id, parent)
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"short",
		// right length, wrong separator position
		"00000000000000000000000000000001x0000000000000001",
		// zero trace ID
		"00000000000000000000000000000000-0000000000000001",
		// non-hex digits
		"zz000000000000000000000000000001-0000000000000001",
		"00000000000000000000000000000001-zz00000000000001",
		// too long
		HeaderValue(NewID(), 1) + "0",
	}
	for _, v := range bad {
		if _, _, ok := ParseHeader(v); ok {
			t.Errorf("ParseHeader(%q) = ok, want reject", v)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id.IsZero() {
			t.Fatal("minted zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id] = true
	}
}

func TestNilSpanMethodsNoop(t *testing.T) {
	var sp *Span
	sp.Annotate("k", time.Millisecond)
	sp.SetError()
	sp.Finish(time.Millisecond) // must not panic
	r := NewRecorder(Config{})
	if child := r.StartChild(nil, "x"); child != nil {
		t.Fatalf("StartChild(nil) = %#v, want nil", child)
	}
}

func TestRecorderRetainsSlowAndErrored(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4, RetainedCapacity: 8, SlowThreshold: 100 * time.Millisecond})

	slow := r.StartRoot("slow")
	slow.Annotate("queue_wait", 40*time.Millisecond)
	slow.Finish(150 * time.Millisecond)

	failed := r.StartRoot("failed")
	failed.SetError()
	failed.Finish(time.Millisecond)

	// Churn the recent ring far past its capacity with fast spans.
	for i := 0; i < 16; i++ {
		r.StartRoot("fast").Finish(time.Millisecond)
	}

	traces := r.Snapshot()
	found := map[string]bool{}
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			found[sp.Name] = true
		}
	}
	if !found["slow"] {
		t.Error("slow span evicted; want retained")
	}
	if !found["failed"] {
		t.Error("failed span evicted; want retained")
	}
}

func TestSnapshotDedupsAndGroups(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8, SlowThreshold: time.Millisecond})
	root := r.StartRoot("root")
	child := r.StartChild(root, "child")
	child.Finish(5 * time.Millisecond) // slow → lands in both rings
	root.Finish(10 * time.Millisecond)

	traces := r.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1 (%v)", len(traces), traces)
	}
	tr := traces[0]
	if tr.Trace != root.Trace.String() {
		t.Fatalf("trace id %q, want %q", tr.Trace, root.Trace)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2 (dedup across rings failed?): %+v", len(tr.Spans), tr.Spans)
	}
	var gotChild spanJSON
	for _, sp := range tr.Spans {
		if sp.Name == "child" {
			gotChild = sp
		}
	}
	if gotChild.Parent != root.ID.String() {
		t.Fatalf("child parent %q, want %q", gotChild.Parent, root.ID)
	}
}

func TestServeHTTPFiltersByTrace(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.StartRoot("a")
	a.Annotate("journal", 2*time.Millisecond)
	a.Finish(3 * time.Millisecond)
	b := r.StartRoot("b")
	b.Finish(time.Millisecond)

	req := httptest.NewRequest("GET", "/debug/traces?trace="+a.Trace.String(), nil)
	w := httptest.NewRecorder()
	r.ServeHTTP(w, req)

	var resp tracesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(resp.Traces) != 1 || resp.Traces[0].Trace != a.Trace.String() {
		t.Fatalf("filter failed: %+v", resp.Traces)
	}
	ann := resp.Traces[0].Spans[0].Annotations
	if ann["journal"] != 2 {
		t.Fatalf("annotation journal = %v ms, want 2", ann["journal"])
	}
	if resp.Started != 2 || resp.Finished != 2 {
		t.Fatalf("counters started=%d finished=%d, want 2/2", resp.Started, resp.Finished)
	}
}
