package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config tunes a Recorder. The zero value gets defaults.
type Config struct {
	// Capacity bounds the ring of recently completed spans (default 512).
	Capacity int
	// RetainedCapacity bounds the second ring that keeps slow and failed
	// spans after the recent ring has churned past them — tail-based
	// retention: the interesting traces survive, the bulk does not
	// (default 256).
	RetainedCapacity int
	// SlowThreshold is the duration at or above which a finished span is
	// copied into the retained ring (default 250ms).
	SlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.RetainedCapacity <= 0 {
		c.RetainedCapacity = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	return c
}

// ring is a fixed-capacity overwrite-oldest span buffer.
type ring struct {
	buf  []*Span
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]*Span, n)} }

func (r *ring) push(sp *Span) {
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// all returns the ring's spans oldest-first.
func (r *ring) all() []*Span {
	if !r.full {
		return r.buf[:r.next]
	}
	out := make([]*Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Recorder collects completed spans into two bounded rings: every
// finished span enters the recent ring, and slow or failed spans are
// additionally retained in a second ring so they outlive the recent
// ring's churn. It is an http.Handler serving the rings as JSON —
// mount it at GET /debug/traces.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	recent   *ring
	retained *ring
	started  uint64
	finished uint64
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		recent:   newRing(cfg.Capacity),
		retained: newRing(cfg.RetainedCapacity),
	}
}

// SlowThreshold returns the retention threshold (for log-line gating).
func (r *Recorder) SlowThreshold() time.Duration { return r.cfg.SlowThreshold }

// Start creates a span inside an existing trace — the adoption path
// (parent is the caller's span ID from the propagation header, 0 for a
// root) — and starts its clock.
func (r *Recorder) Start(id ID, parent SpanID, name string) *Span {
	r.mu.Lock()
	r.started++
	r.mu.Unlock()
	return &Span{
		Trace: id, ID: nextSpanID(), Parent: parent,
		Name: name, Start: time.Now(), rec: r,
	}
}

// StartRoot mints a fresh trace ID and starts its root span — the
// gateway's entry point.
func (r *Recorder) StartRoot(name string) *Span {
	return r.Start(NewID(), 0, name)
}

// StartChild starts a child span of sp in the same trace. A nil parent
// yields a nil span (recorded nowhere, methods no-op), so callers on
// maybe-traced paths need no guard.
func (r *Recorder) StartChild(sp *Span, name string) *Span {
	if sp == nil {
		return nil
	}
	return r.Start(sp.Trace, sp.ID, name)
}

// record files a finished span (called by Span.Finish).
func (r *Recorder) record(sp *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished++
	r.recent.push(sp)
	if sp.Err || sp.Duration >= r.cfg.SlowThreshold {
		r.retained.push(sp)
	}
}

// spanJSON is the wire form of one span in /debug/traces.
type spanJSON struct {
	Span        string             `json:"span"`
	Parent      string             `json:"parent,omitempty"`
	Name        string             `json:"name"`
	Start       time.Time          `json:"start"`
	DurationMS  float64            `json:"duration_ms"`
	Err         bool               `json:"err,omitempty"`
	Annotations map[string]float64 `json:"annotations_ms,omitempty"`
}

// traceJSON groups one trace's local spans.
type traceJSON struct {
	Trace string     `json:"trace"`
	Spans []spanJSON `json:"spans"`
}

// tracesResponse is the GET /debug/traces body.
type tracesResponse struct {
	Traces   []traceJSON `json:"traces"`
	Started  uint64      `json:"spans_started"`
	Finished uint64      `json:"spans_finished"`
}

// Snapshot returns the recorder's current contents grouped by trace,
// newest trace first. Spans present in both rings appear once.
func (r *Recorder) Snapshot() []traceJSON { return r.snapshot() }

func (r *Recorder) snapshot() []traceJSON {
	r.mu.Lock()
	spans := r.recent.all()
	spans = append(spans, r.retained.all()...)
	r.mu.Unlock()

	seen := make(map[*Span]bool, len(spans))
	byTrace := make(map[ID][]*Span)
	order := make([]ID, 0, 16) // trace IDs by first (oldest) appearance
	for _, sp := range spans {
		if seen[sp] {
			continue
		}
		seen[sp] = true
		if _, ok := byTrace[sp.Trace]; !ok {
			order = append(order, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	out := make([]traceJSON, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- { // newest first
		id := order[i]
		group := byTrace[id]
		sort.Slice(group, func(a, b int) bool { return group[a].Start.Before(group[b].Start) })
		tj := traceJSON{Trace: id.String(), Spans: make([]spanJSON, 0, len(group))}
		for _, sp := range group {
			sj := spanJSON{
				Span: sp.ID.String(), Name: sp.Name, Start: sp.Start,
				DurationMS: float64(sp.Duration) / 1e6, Err: sp.Err,
			}
			if sp.Parent != 0 {
				sj.Parent = sp.Parent.String()
			}
			if len(sp.Notes) > 0 {
				sj.Annotations = make(map[string]float64, len(sp.Notes))
				for _, a := range sp.Notes {
					sj.Annotations[a.Key] = float64(a.D) / 1e6
				}
			}
			tj.Spans = append(tj.Spans, sj)
		}
		out = append(out, tj)
	}
	return out
}

// ServeHTTP renders the recorder as JSON. Mounted outside the latency
// middleware (like pprof): a debug scrape should not pollute the
// request histograms it exists to explain.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	traces := r.snapshot()
	if id := req.URL.Query().Get("trace"); id != "" {
		filtered := traces[:0]
		for _, tj := range traces {
			if tj.Trace == id {
				filtered = append(filtered, tj)
			}
		}
		traces = filtered
	}
	r.mu.Lock()
	resp := tracesResponse{Traces: traces, Started: r.started, Finished: r.finished}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
