// Package trace is the distributed-tracing half of the observability
// layer: zero-dependency spans that follow one request across the
// gateway, a shard leader, the serving engine, and the WAL.
//
// The design mirrors internal/obs rather than OpenTelemetry: no wire
// protocol beyond one HTTP header, no exporter, no background pipeline.
// A process that participates in a trace holds a Recorder (a bounded
// ring of completed spans with tail-based retention for the slow and
// failed ones) and serves it as JSON from GET /debug/traces. Correlation
// across processes is purely by ID: the gateway mints a 128-bit trace ID,
// stamps it on every proxied request as
//
//	X-Amf-Trace: <32 hex trace id>-<16 hex parent span id>
//
// and each hop that adopts the header records its own spans under the
// same trace ID. An operator (or test) joins the hops by asking each
// process's /debug/traces for that ID — there is deliberately no
// central collector to deploy or depend on.
//
// Span recording is kept off the hot path's budget the same way the
// metrics are: a request that carries no trace header costs one header
// map index and nothing else; a traced request pays two small
// allocations and one mutex push at completion.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Header is the trace-propagation header, spelled in canonical MIME form
// so direct header-map indexing (the fast path in the server middleware)
// works without a canonicalization pass.
const Header = "X-Amf-Trace"

// ID is a 128-bit trace identifier, rendered as 32 lowercase hex digits.
type ID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is unset. Zero IDs are never minted.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

func (id ID) String() string {
	var buf [32]byte
	hex16(buf[:16], id.Hi)
	hex16(buf[16:], id.Lo)
	return string(buf[:])
}

// SpanID is a 64-bit span identifier, rendered as 16 hex digits.
type SpanID uint64

func (s SpanID) String() string {
	var buf [16]byte
	hex16(buf[:], uint64(s))
	return string(buf[:])
}

const hexDigits = "0123456789abcdef"

func hex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// idState seeds the process's ID generators: the trace-ID high half is
// process-random (uniqueness across processes), the low half and span
// IDs count up from random starting points (uniqueness within one).
var (
	idHi   uint64
	idLo   atomic.Uint64
	spanID atomic.Uint64
)

func init() {
	var seed [24]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// time-derived fallback only weakens cross-process uniqueness.
		binary.LittleEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
	}
	idHi = binary.LittleEndian.Uint64(seed[:8]) | 1 // never zero
	idLo.Store(binary.LittleEndian.Uint64(seed[8:16]) | 1)
	spanID.Store(binary.LittleEndian.Uint64(seed[16:]) | 1)
}

// NewID mints a trace ID: process-random high half, counting low half.
func NewID() ID { return ID{Hi: idHi, Lo: idLo.Add(1)} }

func nextSpanID() SpanID { return SpanID(spanID.Add(1)) }

// HeaderValue renders the propagation header for a trace and the
// caller's span (the callee's parent).
func HeaderValue(id ID, parent SpanID) string {
	var buf [49]byte
	hex16(buf[:16], id.Hi)
	hex16(buf[16:32], id.Lo)
	buf[32] = '-'
	hex16(buf[33:], uint64(parent))
	return string(buf[:])
}

// ParseHeader parses a propagation header. Malformed values report
// ok=false — the receiver then treats the request as untraced rather
// than failing it.
func ParseHeader(v string) (id ID, parent SpanID, ok bool) {
	if len(v) != 49 || v[32] != '-' {
		return ID{}, 0, false
	}
	hi, err := strconv.ParseUint(v[:16], 16, 64)
	if err != nil {
		return ID{}, 0, false
	}
	lo, err := strconv.ParseUint(v[16:32], 16, 64)
	if err != nil {
		return ID{}, 0, false
	}
	p, err := strconv.ParseUint(v[33:], 16, 64)
	if err != nil {
		return ID{}, 0, false
	}
	id = ID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return ID{}, 0, false
	}
	return id, SpanID(p), true
}

// Annotation is one named sub-timing inside a span (queue wait, journal
// append, model apply, ...).
type Annotation struct {
	Key string
	D   time.Duration
}

// Span is one timed operation inside a trace. Spans are created through
// a Recorder, annotated and finished by exactly one goroutine, and
// immutable after Finish (which hands them to the recorder's rings).
// All methods are nil-receiver safe so call sites on the untraced path
// need no guards.
type Span struct {
	Trace    ID
	ID       SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Err      bool
	Notes    []Annotation

	rec *Recorder
}

// Annotate attaches a named duration to the span.
func (sp *Span) Annotate(key string, d time.Duration) {
	if sp == nil {
		return
	}
	sp.Notes = append(sp.Notes, Annotation{Key: key, D: d})
}

// SetError marks the span failed; failed spans ride the retained ring
// regardless of duration.
func (sp *Span) SetError() {
	if sp == nil {
		return
	}
	sp.Err = true
}

// Finish completes the span with the given duration (measured by the
// caller, which usually already timed the request) and records it.
func (sp *Span) Finish(d time.Duration) {
	if sp == nil {
		return
	}
	sp.Duration = d
	sp.rec.record(sp)
}

// FinishNow completes the span with the time elapsed since Start, for
// callers that did not time the operation themselves.
func (sp *Span) FinishNow() {
	if sp == nil {
		return
	}
	sp.Finish(time.Since(sp.Start))
}

// ctxKey keys the span in a context.
type ctxKey struct{}

// NewContext returns a context carrying the span.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// GoString aids test failure messages.
func (sp *Span) GoString() string {
	if sp == nil {
		return "trace.Span(nil)"
	}
	return fmt.Sprintf("trace.Span{%s %s name=%q parent=%s dur=%s err=%v}",
		sp.Trace, sp.ID, sp.Name, sp.Parent, sp.Duration, sp.Err)
}
