package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramBoundsMonotonic(t *testing.T) {
	h := NewHistogram(1e-9, 60, 8)
	prev := math.Inf(-1)
	for i := 0; i < h.NumBuckets(); i++ {
		b := h.UpperBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %g not above previous %g", i, b, prev)
		}
		prev = b
	}
	if top := h.UpperBound(h.NumBuckets() - 1); top < 60 {
		t.Fatalf("top bound %g does not cover max 60", top)
	}
}

func TestHistogramIndexBrackets(t *testing.T) {
	h := NewHistogram(1e-9, 60, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64()*math.Log(6e10)) * 1e-9 // log-uniform over range
		idx := h.index(v)
		if idx < 0 {
			if v < h.UpperBound(h.NumBuckets()-1) {
				t.Fatalf("value %g overflowed below top bound", v)
			}
			continue
		}
		if v >= h.UpperBound(idx) {
			t.Fatalf("value %g above its bucket bound %g (bucket %d)", v, h.UpperBound(idx), idx)
		}
		if idx > 0 && v < h.lowerBound(idx) {
			t.Fatalf("value %g below its bucket lower bound %g (bucket %d)", v, h.lowerBound(idx), idx)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram(1e-9, 60, 8)
	for _, v := range []float64{0, -1, math.SmallestNonzeroFloat64, 1e-12} {
		if got := h.index(v); got != 0 {
			t.Errorf("index(%g) = %d, want 0 (clamp)", v, got)
		}
	}
	for _, v := range []float64{1e6, math.Inf(1), math.NaN()} {
		if got := h.index(v); got != -1 {
			t.Errorf("index(%g) = %d, want -1 (overflow)", v, got)
		}
	}
	h.Observe(math.Inf(1))
	if h.Count() != 1 {
		t.Fatalf("overflow observation not counted")
	}
}

// quantileCase checks estimated quantiles against the empirical quantiles
// of the same draw within the histogram's bucketing resolution.
func quantileCase(t *testing.T, name string, draw func(*rand.Rand) float64, tol float64) {
	t.Helper()
	h := NewHistogram(1e-9, 1e6, 16)
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = draw(rng)
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := vals[int(q*float64(n-1))]
		got := h.Quantile(q)
		if relDiff(got, want) > tol {
			t.Errorf("%s: q%g = %g, want ≈ %g (rel diff %.3f > %.3f)",
				name, q, got, want, relDiff(got, want), tol)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// 16 sub-buckets per octave → ≤ 1/16 relative bucket width; allow a
	// little extra for interpolation and sampling noise.
	const tol = 0.10
	quantileCase(t, "uniform", func(r *rand.Rand) float64 { return r.Float64() }, tol)
	quantileCase(t, "exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 0.01 }, tol)
	quantileCase(t, "lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*2 - 5) }, tol)
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1e-9, 60, 8)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestHistogramObserveN(t *testing.T) {
	a := NewHistogram(1e-3, 1e3, 8)
	b := NewHistogram(1e-3, 1e3, 8)
	for i := 0; i < 100; i++ {
		v := 0.5 + float64(i)*0.01
		a.Observe(v)
		b.ObserveN(v, 1)
	}
	b.ObserveN(2.5, 7)
	for i := 0; i < 7; i++ {
		a.Observe(2.5)
	}
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	if relDiff(a.Sum(), b.Sum()) > 1e-12 {
		t.Fatalf("sums differ: %g vs %g", a.Sum(), b.Sum())
	}
	if qa, qb := a.Quantile(0.5), b.Quantile(0.5); qa != qb {
		t.Fatalf("medians differ: %g vs %g", qa, qb)
	}
	b.ObserveN(1, 0)
	b.ObserveN(1, -3)
	if a.Count() != b.Count() {
		t.Fatalf("ObserveN with n<=0 changed the count")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(1e-9, 60, 8)
	h.ObserveDuration(10 * time.Millisecond)
	q := h.Quantile(0.5)
	if q < 0.005 || q > 0.02 {
		t.Fatalf("10ms landed at %gs", q)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 8) },
		func() { NewHistogram(1, 1, 8) },
		func() { NewHistogram(1e-9, 60, 3) },
		func() { NewHistogram(1e-9, 60, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram config did not panic")
				}
			}()
			fn()
		}()
	}
}
