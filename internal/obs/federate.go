package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// This file is the federation side of the exposition format: merging
// several parsed /metrics pages (one per cluster replica) into a single
// valid page, with per-page origin labels distinguishing the series.
// The gateway uses it for GET /api/v1/cluster/metrics.

// FederatedPage is one already-parsed exposition page plus the labels
// that identify its origin — e.g. {"group","shard-0"},{"replica",url}.
// The labels are appended to every re-exported sample in order; a label
// key that already exists on a sample is overridden by the page's value
// (origin wins — the whole point of federation is saying where a series
// came from).
type FederatedPage struct {
	Labels  [][2]string
	Metrics *TextMetrics
}

// WriteFederated merges pages into one exposition page parseable by the
// same strict ParseMetrics that produced the inputs. Each family's
// HELP/TYPE header is emitted once (first-seen help wins; families
// appear in first-seen order across pages), followed by every page's
// samples for it with that page's labels appended. Pages disagreeing on
// a family's TYPE are a configuration error and fail the whole write —
// silently merging a counter into a gauge would corrupt both.
func WriteFederated(w io.Writer, pages []FederatedPage) error {
	type fam struct {
		help, typ string
		// samples in page order, each already rendered to one line
		lines []string
	}
	fams := make(map[string]*fam)
	var order []string
	for _, page := range pages {
		if page.Metrics == nil {
			continue
		}
		for _, name := range page.Metrics.Order {
			src := page.Metrics.Families[name]
			f, ok := fams[name]
			if !ok {
				f = &fam{help: src.Help, typ: src.Type}
				fams[name] = f
				order = append(order, name)
			} else if f.typ != src.Type {
				return fmt.Errorf("obs: federated family %s: TYPE %s vs %s across pages",
					name, f.typ, src.Type)
			}
			for _, s := range src.Samples {
				f.lines = append(f.lines, renderFederatedSample(s, page.Labels))
			}
		}
	}
	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// renderFederatedSample re-renders one parsed sample with the page's
// origin labels appended: original labels in sorted key order (the
// parse dropped file order), then the page labels, originals shadowed
// by a page label of the same key elided.
func renderFederatedSample(s Sample, pageLabels [][2]string) string {
	shadowed := func(k string) bool {
		for _, pl := range pageLabels {
			if pl[0] == k {
				return true
			}
		}
		return false
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if !shadowed(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := s.Name
	if len(keys) > 0 || len(pageLabels) > 0 {
		out += "{"
		for i, k := range keys {
			if i > 0 {
				out += ","
			}
			out += renderLabel(k, s.Labels[k])
		}
		for i, pl := range pageLabels {
			if i > 0 || len(keys) > 0 {
				out += ","
			}
			out += renderLabel(pl[0], pl[1])
		}
		out += "}"
	}
	return out + " " + formatFloat(s.Value)
}
