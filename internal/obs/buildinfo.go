package obs

import "runtime"

// Build identification, stamped by the Makefile:
//
//	-ldflags "-X github.com/qoslab/amf/internal/obs.buildVersion=... \
//	          -X github.com/qoslab/amf/internal/obs.buildCommit=..."
//
// Unstamped builds (plain `go build`, `go test`) report "dev"/"unknown".
var (
	buildVersion = "dev"
	buildCommit  = "unknown"
)

// BuildVersion returns the stamped version string.
func BuildVersion() string { return buildVersion }

// BuildCommit returns the stamped VCS commit.
func BuildCommit() string { return buildCommit }

// RegisterBuildInfo adds the amf_build_info const gauge (value 1; the
// payload is the labels) to a registry. Every binary's registry gets
// one — amfserver's covers the embedded qosdb too, since the QoS
// database has no process of its own.
func RegisterBuildInfo(r *Registry) {
	r.ConstGauge("amf_build_info",
		"Build identification; constant 1, labeled with version, commit, and Go toolchain.",
		1, "version", buildVersion, "commit", buildCommit, "go_version", runtime.Version())
}
