package obs

import (
	"math"
	"strings"
	"testing"
)

// buildTestRegistry assembles one of every metric kind.
func buildTestRegistry() (*Registry, func()) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests handled.")
	g := r.NewGauge("test_inflight", "Requests currently in flight.")
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("test_applied_total", "Applied updates.", func() int64 { return 99 })
	h := r.NewHistogram("test_latency_seconds", "Request latency.", 1e-9, 60, 8)
	hv := r.NewHistogramVec("test_route_latency_seconds", "Per-route latency.", "route", 1e-9, 60, 8)
	cv := r.NewCounterVec("test_status_total", "Responses by status class.", "code")
	traffic := func() {
		c.Add(3)
		g.Set(2)
		h.Observe(0.004)
		h.Observe(0.1)
		hv.With("GET /api/v1/predict").Observe(0.002)
		hv.With(`weird"route\n`).Observe(0.5)
		cv.With("2xx").Add(7)
		cv.With("5xx").Inc()
	}
	return r, traffic
}

func TestRegistryExpositionParsesAndValidates(t *testing.T) {
	r, traffic := buildTestRegistry()
	traffic()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	tm, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, b.String())
	}
	if v, ok := tm.Value("test_requests_total", nil); !ok || v != 3 {
		t.Errorf("test_requests_total = %g, %v", v, ok)
	}
	if v, ok := tm.Value("test_status_total", map[string]string{"code": "2xx"}); !ok || v != 7 {
		t.Errorf("test_status_total{code=2xx} = %g, %v", v, ok)
	}
	if v, ok := tm.Value("test_uptime_seconds", nil); !ok || v != 12.5 {
		t.Errorf("test_uptime_seconds = %g, %v", v, ok)
	}
	// The escaped label round-trips through exposition and parser.
	f := tm.Families["test_route_latency_seconds"]
	found := false
	for _, s := range f.Samples {
		if s.Labels["route"] == "weird\"route\\n" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip:\n%s", b.String())
	}
	// Quantile reconstruction from the scrape.
	q, err := tm.HistogramQuantile("test_route_latency_seconds",
		map[string]string{"route": "GET /api/v1/predict"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.001 || q > 0.004 {
		t.Errorf("scraped median %g not near 0.002", q)
	}
}

func TestRegistryEmptyHistogramStillValid(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("test_empty_seconds", "Never observed.", 1e-9, 60, 8)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `test_empty_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram missing +Inf bucket:\n%s", out)
	}
	tm, err := ParseMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryNamingEnforcement(t *testing.T) {
	cases := []func(*Registry){
		func(r *Registry) { r.NewCounter("bad_counter", "h") },            // counter without _total
		func(r *Registry) { r.NewGauge("bad_gauge_total", "h") },          // gauge with _total
		func(r *Registry) { r.NewCounter("1bad_total", "h") },             // invalid name
		func(r *Registry) { r.NewCounter("dup_total", "h"); r.NewCounter("dup_total", "h") }, // duplicate
		func(r *Registry) { r.NewGauge("no_help", "") },                   // missing help
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(NewRegistry())
		}()
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("counter decrement did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestVecReturnsSameChild(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_x_total", "h", "k")
	if cv.With("a") != cv.With("a") {
		t.Fatal("CounterVec.With not stable")
	}
	hv := r.NewHistogramVec("test_y_seconds", "h", "k", 1e-9, 60, 8)
	if hv.With("a") != hv.With("a") {
		t.Fatal("HistogramVec.With not stable")
	}
}

func TestHistogramExpositionCountMatchesInf(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_z_seconds", "h", 1e-9, 60, 8)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%7) * 0.001)
	}
	h.Observe(math.Inf(1)) // overflow must appear only in +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	tm, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if v, _ := tm.Value("test_z_seconds_count", nil); v != 1001 {
		t.Fatalf("_count = %g, want 1001", v)
	}
}
