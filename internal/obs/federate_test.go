package obs

import (
	"bytes"
	"strings"
	"testing"
)

func scrapeRegistry(t *testing.T, r *Registry) *TextMetrics {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	tm, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tm
}

func TestWriteFederatedRoundTrips(t *testing.T) {
	mk := func(reqs int64, lat float64) *Registry {
		r := NewRegistry()
		r.NewCounter("amf_requests_total", "Requests.").Add(reqs)
		h := NewHistogram(1e-6, 60, 8)
		h.Observe(lat)
		r.RegisterHistogram("amf_latency_seconds", "Latency.", h)
		vec := r.NewCounterVec("amf_responses_total", "Responses by code.", "code")
		vec.With("2xx").Add(reqs)
		return r
	}
	pages := []FederatedPage{
		{Labels: [][2]string{{"group", "shard-0"}, {"replica", "http://a:1"}}, Metrics: scrapeRegistry(t, mk(3, 0.01))},
		{Labels: [][2]string{{"group", "shard-0"}, {"replica", "http://b:2"}}, Metrics: scrapeRegistry(t, mk(5, 0.02))},
		{Labels: [][2]string{{"group", "shard-1"}, {"replica", "http://c:3"}}, Metrics: scrapeRegistry(t, mk(7, 0.04))},
	}

	var out bytes.Buffer
	if err := WriteFederated(&out, pages); err != nil {
		t.Fatalf("federate: %v", err)
	}
	merged, err := ParseMetrics(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("reparse federated page: %v\n%s", err, out.String())
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("validate federated page: %v\n%s", err, out.String())
	}

	for _, tc := range []struct {
		replica string
		want    float64
	}{{"http://a:1", 3}, {"http://b:2", 5}, {"http://c:3", 7}} {
		v, ok := merged.Value("amf_requests_total",
			map[string]string{"group": groupOf(tc.replica), "replica": tc.replica})
		if !ok || v != tc.want {
			t.Errorf("amf_requests_total{replica=%q} = %v,%v; want %v", tc.replica, v, ok, tc.want)
		}
	}

	// Label-carrying series keep their own labels plus the page's.
	if v, ok := merged.Value("amf_responses_total",
		map[string]string{"code": "2xx", "group": "shard-1", "replica": "http://c:3"}); !ok || v != 7 {
		t.Errorf("amf_responses_total{code,group,replica} = %v,%v; want 7", v, ok)
	}

	// One HELP/TYPE per family: strict reparse above already proves it,
	// but pin the count so a regression reads clearly.
	if n := strings.Count(out.String(), "# HELP amf_requests_total"); n != 1 {
		t.Errorf("HELP amf_requests_total emitted %d times, want 1", n)
	}
}

func groupOf(replica string) string {
	if replica == "http://c:3" {
		return "shard-1"
	}
	return "shard-0"
}

func TestWriteFederatedTypeConflict(t *testing.T) {
	parse := func(text string) *TextMetrics {
		tm, err := ParseMetrics(strings.NewReader(text))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return tm
	}
	// A gauge spelled *_total cannot come out of a Registry (addFamily
	// panics), but a federated gateway scrapes whatever a replica serves.
	asCounter := parse("# HELP amf_things_total Things.\n# TYPE amf_things_total counter\namf_things_total 1\n")
	asGauge := parse("# HELP amf_things_total Things.\n# TYPE amf_things_total gauge\namf_things_total 1\n")
	pages := []FederatedPage{
		{Labels: [][2]string{{"replica", "a"}}, Metrics: asCounter},
		{Labels: [][2]string{{"replica", "b"}}, Metrics: asGauge},
	}
	if err := WriteFederated(&bytes.Buffer{}, pages); err == nil {
		t.Fatal("type conflict not detected")
	}
}

func TestWriteFederatedShadowsOriginLabels(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("amf_shadow_total", "Shadow test.", "replica")
	vec.With("self").Inc()
	pages := []FederatedPage{
		{Labels: [][2]string{{"replica", "http://real:1"}}, Metrics: scrapeRegistry(t, r)},
	}
	var out bytes.Buffer
	if err := WriteFederated(&out, pages); err != nil {
		t.Fatalf("federate: %v", err)
	}
	merged, err := ParseMetrics(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out.String())
	}
	if v, ok := merged.Value("amf_shadow_total", map[string]string{"replica": "http://real:1"}); !ok || v != 1 {
		t.Errorf("shadowed label: got %v,%v; want 1 under the page's replica label", v, ok)
	}
}
