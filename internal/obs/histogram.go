package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed histogram for positive values
// (latencies in seconds, relative errors, queue depths...). It is distinct
// from internal/stats.Histogram, the fixed-width single-threaded histogram
// the evaluation harness uses to reproduce the paper's figures: this one
// is built for the serving hot path.
//
// Buckets are base-2 octaves split into sub power-of-two sub-buckets, so
// relative bucket resolution is 1/sub (sub=8 → ≤12.5% quantile error from
// bucketing alone). Observe computes the bucket index from the IEEE-754
// bit pattern of the value — exponent bits select the octave, the top
// mantissa bits select the sub-bucket — which costs a few integer ops and
// no floating-point math, then performs two atomic adds plus one atomic
// float accumulate for the sum. There is no lock anywhere; readers
// (Quantile, exposition) scan the same atomic cells while writers record.
//
// Values below the range are clamped into the first bucket; values at or
// above the top bound (and NaN/±Inf) land in the overflow bucket, which is
// exposed only through the +Inf series — mirroring how the paper's Fig. 7
// "cuts off" response times beyond 10s while still accounting for them.
type Histogram struct {
	min, max float64
	minExp   int // octave (base-2 exponent) of the first bucket
	maxExp   int // octave of the last bucket
	sub      int // sub-buckets per octave, power of two
	subShift uint
	subMask  uint64

	buckets  []atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sum      atomicFloat
}

// NewHistogram creates a histogram covering [min, max) with sub
// sub-buckets per base-2 octave. min must be positive, max > min, and sub
// a power of two in [1, 256]. The actual covered range is widened to whole
// octaves: [2^⌊log2 min⌋, 2^(⌊log2 max⌋+1)).
func NewHistogram(min, max float64, sub int) *Histogram {
	if !(min > 0) || !(max > min) {
		panic(fmt.Sprintf("obs: histogram needs 0 < min < max, got [%g, %g)", min, max))
	}
	if sub < 1 || sub > 256 || sub&(sub-1) != 0 {
		panic(fmt.Sprintf("obs: sub-buckets must be a power of two in [1,256], got %d", sub))
	}
	h := &Histogram{
		min:    min,
		max:    max,
		minExp: math.Ilogb(min),
		maxExp: math.Ilogb(max),
		sub:    sub,
	}
	subBits := uint(0)
	for 1<<subBits < sub {
		subBits++
	}
	h.subShift = 52 - subBits
	h.subMask = uint64(sub - 1)
	h.buckets = make([]atomic.Int64, (h.maxExp-h.minExp+1)*sub)
	return h
}

// index maps a value to its bucket, or -1 for overflow (too large, NaN,
// ±Inf). Values at or below the range floor map to bucket 0.
func (h *Histogram) index(v float64) int {
	bits := math.Float64bits(v)
	if bits>>63 != 0 { // negative (or -0): clamp to the first bucket
		return 0
	}
	exp := int(bits>>52&0x7ff) - 1023
	switch {
	case exp < h.minExp: // includes +0 and subnormals (exp ≈ -1023)
		return 0
	case exp > h.maxExp: // includes +Inf and NaN (exp = 1024)
		return -1
	}
	sub := int(bits >> h.subShift & h.subMask)
	return (exp-h.minExp)*h.sub + sub
}

// UpperBound returns the upper bound of bucket i (exported for tests and
// exposition): 2^octave · (1 + (s+1)/sub).
func (h *Histogram) UpperBound(i int) float64 {
	oct := h.minExp + i/h.sub
	frac := float64(i%h.sub+1) / float64(h.sub)
	return math.Ldexp(1+frac, oct)
}

// lowerBound returns the lower bound of bucket i.
func (h *Histogram) lowerBound(i int) float64 {
	if i == 0 {
		return math.Ldexp(1, h.minExp)
	}
	return h.UpperBound(i - 1)
}

// NumBuckets returns the number of finite buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if i := h.index(v); i >= 0 {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records a value n times with one pass — the engine uses it to
// attribute a drained batch's mean per-update latency to every update in
// the batch without paying two clock reads per model update.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	if i := h.index(v); i >= 0 {
		h.buckets[i].Add(n)
	} else {
		h.overflow.Add(n)
	}
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationN records one measured duration with weight n — the
// sampled-timing form: when only every n-th event is measured, the
// sample stands in for n events so bucket counts and the sum still
// approximate the true totals.
func (h *Histogram) ObserveDurationN(d time.Duration, n int64) { h.ObserveN(d.Seconds(), n) }

// Count returns the total number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values. Because the sum and the buckets
// are separate atomics, Sum may lag Count by in-flight observations; both
// are individually consistent.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot reads the buckets once, returning cumulative counts per finite
// bucket and the grand total (including overflow). The total is derived
// from the same bucket reads, so cumulative[last] + overflow == total
// always holds — exposition built from one snapshot is internally
// consistent even while writers are recording.
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.buckets))
	run := int64(0)
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cum[i] = run
	}
	return cum, run + h.overflow.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// inside the containing bucket. It returns 0 for an empty histogram and
// the top bucket bound when the quantile falls into the overflow region.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	cum, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	prev := int64(0)
	for i, c := range cum {
		if float64(c) >= rank && c > prev {
			lo, hi := h.lowerBound(i), h.UpperBound(i)
			inBucket := float64(c - prev)
			frac := (rank - float64(prev)) / inBucket
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		prev = c
	}
	return h.UpperBound(len(h.buckets) - 1) // overflow region
}
