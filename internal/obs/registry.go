package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric family type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled time series inside a family. Exactly one of the
// value sources is set.
type series struct {
	labels  string // pre-rendered `k="v",k2="v2"` (no braces), "" for none
	counter *Counter
	gauge   *Gauge
	intFn   func() int64
	floatFn func() float64
	hist    *Histogram
}

// family is a named metric family: HELP + TYPE + its series.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	series []*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration (New*, *Func) takes a lock and panics on
// naming-convention violations — it happens once at setup. The recording
// paths returned (Counter, Gauge, Histogram) are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) addFamily(name, help string, kind Kind) *family {
	checkName(name)
	if help == "" {
		panic(fmt.Sprintf("obs: metric %s registered without help text", name))
	}
	// Enforce the Prometheus naming conventions the satellite task calls
	// for: counters end in _total, nothing else does.
	if kind == KindCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %s must end in _total", name))
	}
	if kind != KindCounter && strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: non-counter %s must not end in _total", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %s", name))
	}
	f := &family{name: name, help: help, kind: kind}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) add(s *series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series = append(f.series, s)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.addFamily(name, help, KindCounter).add(&series{counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.addFamily(name, help, KindGauge).add(&series{gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.addFamily(name, help, KindGauge).add(&series{floatFn: fn})
}

// ConstGauge registers a gauge with a fixed value and a fixed multi-label
// set, given as key/value pairs — the amf_build_info idiom, where the
// payload is the labels and the value is a constant 1. Panics on an odd
// kv count or an invalid label key, like all registration-time errors.
func (r *Registry) ConstGauge(name, help string, value float64, kv ...string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: ConstGauge %s: odd key/value count", name))
	}
	var labels strings.Builder
	for i := 0; i < len(kv); i += 2 {
		checkName(kv[i])
		if i > 0 {
			labels.WriteString(",")
		}
		labels.WriteString(renderLabel(kv[i], kv[i+1]))
	}
	v := value
	r.addFamily(name, help, KindGauge).add(&series{labels: labels.String(), floatFn: func() float64 { return v }})
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external monotonic source (e.g. the engine's accounting atomics).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.addFamily(name, help, KindCounter).add(&series{intFn: fn})
}

// NewHistogram registers and returns a log-bucketed histogram (see
// Histogram) under the given family name.
func (r *Registry) NewHistogram(name, help string, min, max float64, sub int) *Histogram {
	h := NewHistogram(min, max, sub)
	r.addFamily(name, help, KindHistogram).add(&series{hist: h})
	return h
}

// RegisterHistogram exposes an externally created histogram (e.g. the
// serving engine's) under the given family name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.addFamily(name, help, KindHistogram).add(&series{hist: h})
}

// ---------------------------------------------------------------------------
// Labeled vectors. One label key per vector keeps rendering and the strict
// parser simple while covering our needs (per-route, per-status-class).

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	f     *family
	label string

	mu       sync.Mutex
	children map[string]*Counter
}

// NewCounterVec registers a counter family whose series are distinguished
// by the given label key.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	checkName(label)
	return &CounterVec{f: r.addFamily(name, help, KindCounter), label: label, children: make(map[string]*Counter)}
}

// With returns the counter for one label value, creating it on first use.
// Resolve children once at setup; With takes a lock.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
		v.f.add(&series{labels: renderLabel(v.label, value), counter: c})
	}
	return c
}

// CounterFuncVec is a counter family partitioned by one label whose
// series values are read at scrape time from external monotonic sources
// (e.g. the engine's per-reason drop accounting).
type CounterFuncVec struct {
	f     *family
	label string
}

// NewCounterFuncVec registers a scrape-time counter family distinguished
// by the given label key. Add series with With.
func (r *Registry) NewCounterFuncVec(name, help, label string) *CounterFuncVec {
	checkName(label)
	return &CounterFuncVec{f: r.addFamily(name, help, KindCounter), label: label}
}

// With adds one labeled series backed by fn. Call once per label value at
// setup — duplicate values would render duplicate series.
func (v *CounterFuncVec) With(value string, fn func() int64) {
	v.f.add(&series{labels: renderLabel(v.label, value), intFn: fn})
}

// GaugeFuncVec is a gauge family partitioned by one label whose series
// values are computed at scrape time (e.g. the control plane's live
// tunable values, one series per tunable name).
type GaugeFuncVec struct {
	f     *family
	label string
}

// NewGaugeFuncVec registers a scrape-time gauge family distinguished by
// the given label key. Add series with With.
func (r *Registry) NewGaugeFuncVec(name, help, label string) *GaugeFuncVec {
	checkName(label)
	return &GaugeFuncVec{f: r.addFamily(name, help, KindGauge), label: label}
}

// With adds one labeled series backed by fn. Call once per label value at
// setup — duplicate values would render duplicate series.
func (v *GaugeFuncVec) With(value string, fn func() float64) {
	v.f.add(&series{labels: renderLabel(v.label, value), floatFn: fn})
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	f        *family
	label    string
	min, max float64
	sub      int

	mu       sync.Mutex
	children map[string]*Histogram
}

// NewHistogramVec registers a histogram family whose series are
// distinguished by the given label key; each child covers [min, max) with
// sub sub-buckets per octave.
func (r *Registry) NewHistogramVec(name, help, label string, min, max float64, sub int) *HistogramVec {
	checkName(label)
	return &HistogramVec{
		f: r.addFamily(name, help, KindHistogram), label: label,
		min: min, max: max, sub: sub,
		children: make(map[string]*Histogram),
	}
}

// With returns the histogram for one label value, creating it on first
// use. Resolve children once at setup; With takes a lock.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = NewHistogram(v.min, v.max, v.sub)
		v.children[value] = h
		v.f.add(&series{labels: renderLabel(v.label, value), hist: h})
	}
	return h
}

// ---------------------------------------------------------------------------
// Exposition.

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func renderLabel(k, v string) string {
	return k + `="` + escapeLabelValue(v) + `"`
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every family in the text exposition format:
// `# HELP`/`# TYPE` headers, then one line per series (histograms expand
// into cumulative `_bucket{le=...}` series plus `_sum` and `_count`).
// Families appear in registration order, series in creation order; both
// are stable across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	ss := make([]*series, len(f.series))
	copy(ss, f.series)
	f.mu.Unlock()
	for _, s := range ss {
		s.write(w, f.name)
	}
}

func (s *series) write(w *bufio.Writer, name string) {
	switch {
	case s.hist != nil:
		s.writeHistogram(w, name)
	case s.counter != nil:
		writeSample(w, name, s.labels, strconv.FormatInt(s.counter.Value(), 10))
	case s.gauge != nil:
		writeSample(w, name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	case s.intFn != nil:
		writeSample(w, name, s.labels, strconv.FormatInt(s.intFn(), 10))
	case s.floatFn != nil:
		writeSample(w, name, s.labels, formatFloat(s.floatFn()))
	}
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteString("{")
		w.WriteString(labels)
		w.WriteString("}")
	}
	w.WriteString(" ")
	w.WriteString(value)
	w.WriteString("\n")
}

// writeHistogram emits the cumulative bucket series. Empty buckets are
// elided to keep scrapes compact — except that the bucket immediately
// below each emitted one is always included, so a consumer interpolating
// quantiles from the scrape sees tight lower bounds. The `le="+Inf"`
// bucket, `_sum`, and `_count` are always present, and cumulative counts
// derive from a single snapshot, so `+Inf` == `_count` holds exactly.
func (s *series) writeHistogram(w *bufio.Writer, name string) {
	h := s.hist
	cum, total := h.snapshot()
	bucketLabels := func(le string) string {
		if s.labels == "" {
			return `le="` + le + `"`
		}
		return s.labels + `,le="` + le + `"`
	}
	last := -2 // index of the last emitted bucket
	prev := int64(0)
	for i, c := range cum {
		if c == prev { // empty bucket
			prev = c
			continue
		}
		if i-1 > last && i > 0 {
			writeSample(w, name+"_bucket", bucketLabels(formatFloat(h.UpperBound(i-1))), strconv.FormatInt(cum[i-1], 10))
		}
		writeSample(w, name+"_bucket", bucketLabels(formatFloat(h.UpperBound(i))), strconv.FormatInt(c, 10))
		last = i
		prev = c
	}
	writeSample(w, name+"_bucket", bucketLabels("+Inf"), strconv.FormatInt(total, 10))
	writeSample(w, name+"_sum", s.labels, formatFloat(h.Sum()))
	writeSample(w, name+"_count", s.labels, strconv.FormatInt(total, 10))
}

// Families returns the registered family names in sorted order — used by
// tests asserting catalog completeness.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	sort.Strings(out)
	return out
}
