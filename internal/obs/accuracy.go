package obs

import (
	"math"
	"sync/atomic"
)

// AccuracyTracker measures the live accuracy of the serving model, online:
// every incoming QoS observation is compared against the model's *prior*
// prediction for the same (user, service) pair — the prediction the model
// would have served a heartbeat earlier — and the relative error
// |R̂−R|/R is folded into
//
//   - an EMA with factor beta, the same exponential machinery the paper's
//     adaptive weights use per entity (Eq. 13-14), here aggregated over
//     all traffic, and
//   - a log-bucketed Histogram of relative errors, from which the
//     paper's §V metrics are read as quantiles: MRE is the median
//     relative error, NPRE the 90th percentile.
//
// This makes "how accurate is the model right now" a first-class runtime
// gauge rather than an offline evaluation artifact. All methods are safe
// for concurrent use and lock-free.
type AccuracyTracker struct {
	beta    float64
	ema     atomic.Uint64 // float bits; NaN until the first sample
	relErr  *Histogram
	samples atomic.Int64
	misses  atomic.Int64
}

// NewAccuracyTracker creates a tracker with EMA factor beta in (0, 1]
// (the paper uses β = 0.3 for its per-entity trackers; 0 selects that
// default). Relative errors are histogrammed over [1e-6, 1e4) with 16
// sub-buckets per octave (≈6% quantile resolution).
func NewAccuracyTracker(beta float64) *AccuracyTracker {
	if beta == 0 {
		beta = 0.3
	}
	if beta < 0 || beta > 1 {
		panic("obs: accuracy EMA beta out of (0,1]")
	}
	t := &AccuracyTracker{beta: beta, relErr: NewHistogram(1e-6, 1e4, 16)}
	t.ema.Store(math.Float64bits(math.NaN()))
	return t
}

// Record folds one (prior prediction, observed value) pair in. Pairs with
// a non-positive observed value are skipped for the relative metrics,
// matching eval.Compute.
func (t *AccuracyTracker) Record(predicted, observed float64) {
	if !(observed > 0) || math.IsNaN(predicted) {
		t.misses.Add(1)
		return
	}
	rel := math.Abs(predicted-observed) / observed
	t.relErr.Observe(rel)
	t.samples.Add(1)
	for {
		old := t.ema.Load()
		ov := math.Float64frombits(old)
		nv := rel
		if !math.IsNaN(ov) {
			nv = t.beta*rel + (1-t.beta)*ov
		}
		if t.ema.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// RecordMiss counts an observation for which no prior prediction existed
// (first sighting of a user or service).
func (t *AccuracyTracker) RecordMiss() { t.misses.Add(1) }

// EMA returns the exponential moving average of the relative error
// (0 before any sample).
func (t *AccuracyTracker) EMA() float64 {
	v := math.Float64frombits(t.ema.Load())
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// MRE returns the live median relative error (paper Eq. 18).
func (t *AccuracyTracker) MRE() float64 { return t.relErr.Quantile(0.5) }

// NPRE returns the live 90th-percentile relative error (paper Eq. 19).
func (t *AccuracyTracker) NPRE() float64 { return t.relErr.Quantile(0.9) }

// Quantile returns an arbitrary quantile of the relative-error
// distribution.
func (t *AccuracyTracker) Quantile(q float64) float64 { return t.relErr.Quantile(q) }

// Samples returns the number of scored observations.
func (t *AccuracyTracker) Samples() int64 { return t.samples.Load() }

// Misses returns the number of observations that could not be scored
// (no prior prediction, or non-positive ground truth).
func (t *AccuracyTracker) Misses() int64 { return t.misses.Load() }

// Register exposes the tracker's metrics on a registry under the given
// prefix (e.g. "amf_accuracy"):
//
//	<prefix>_mre                 live median relative error
//	<prefix>_npre                live 90th-percentile relative error
//	<prefix>_ema_relative_error  EMA of the relative error
//	<prefix>_relative_error      full error distribution (histogram)
//	<prefix>_samples_total       scored observations
//	<prefix>_unscored_total      observations without a prior prediction
func (t *AccuracyTracker) Register(r *Registry, prefix string) {
	r.GaugeFunc(prefix+"_mre", "Live median relative error of served predictions (paper Eq. 18).", t.MRE)
	r.GaugeFunc(prefix+"_npre", "Live 90th-percentile relative error of served predictions (paper Eq. 19).", t.NPRE)
	r.GaugeFunc(prefix+"_ema_relative_error", "Exponential moving average of the relative prediction error.", t.EMA)
	r.RegisterHistogram(prefix+"_relative_error", "Distribution of relative prediction errors |pred-obs|/obs.", t.relErr)
	r.CounterFunc(prefix+"_samples_total", "Observations scored against a prior prediction.", t.Samples)
	r.CounterFunc(prefix+"_unscored_total", "Observations that could not be scored (no prior prediction).", t.Misses)
}
