package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consuming side of the exposition format: a strict
// parser for the Prometheus text format plus quantile reconstruction from
// scraped buckets. The test suite uses it to validate the server's full
// /metrics output against the grammar (every sample HELP/TYPE'd, bucket
// monotonicity, le="+Inf" present, _count == +Inf); examples use it to
// print latency/accuracy dashboards from a scrape.

// Sample is one exposition line: a metric name, its labels, and a value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: HELP, TYPE, and its samples in file order.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// TextMetrics is a parsed exposition page.
type TextMetrics struct {
	Families map[string]*Family
	Order    []string // family names in first-appearance order
}

// baseName strips histogram sample suffixes to the family name.
func baseName(name, typ string) string {
	if typ == "histogram" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				return strings.TrimSuffix(name, suf)
			}
		}
	}
	return name
}

// ParseMetrics parses a Prometheus text-format page strictly: every
// sample must belong to a family announced by both a # HELP and a # TYPE
// line beforehand, names must match the metric grammar, and values must
// parse as floats. Unknown comment lines are ignored per the spec.
func ParseMetrics(r io.Reader) (*TextMetrics, error) {
	tm := &TextMetrics{Families: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	helpSeen := make(map[string]string)
	typeSeen := make(map[string]string)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // other comments are legal and ignored
			}
			name := fields[2]
			if !nameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			rest := ""
			if len(fields) == 4 {
				rest = fields[3]
			}
			switch fields[1] {
			case "HELP":
				if _, dup := helpSeen[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helpSeen[name] = rest
			case "TYPE":
				if _, dup := typeSeen[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: invalid TYPE %q for %s", lineNo, rest, name)
				}
				typeSeen[name] = rest
				if _, ok := helpSeen[name]; !ok {
					return nil, fmt.Errorf("line %d: TYPE for %s precedes its HELP", lineNo, name)
				}
				fam := &Family{Name: name, Help: helpSeen[name], Type: rest}
				tm.Families[name] = fam
				tm.Order = append(tm.Order, name)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		// Attribute the sample to its family; histogram suffixes resolve
		// against a histogram-typed family.
		famName := s.Name
		if f, ok := tm.Families[famName]; ok && f.Type != "histogram" {
			f.Samples = append(f.Samples, s)
			continue
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(famName, suf) {
				if f, ok := tm.Families[strings.TrimSuffix(famName, suf)]; ok && f.Type == "histogram" {
					famName = strings.TrimSuffix(famName, suf)
					break
				}
			}
		}
		f, ok := tm.Families[famName]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tm, nil
}

// parseSampleLine parses `name{label="value",...} value`.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp field would appear after the value; we don't emit them
	// and treat extra fields as an error in strict mode.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := strings.Index(s[i:], "=")
		if j < 0 {
			return 0, nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := s[i : i+j]
		if !nameRE.MatchString(key) {
			return 0, nil, fmt.Errorf("invalid label name %q", key)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// Validate checks the semantic constraints on top of the grammar:
//
//   - every family has non-empty help and a concrete type;
//   - counter families end in _total and their values are finite and
//     non-negative;
//   - histogram families expose, per label set: an le="+Inf" bucket,
//     cumulative bucket values that are non-decreasing in le order, a
//     _sum, and a _count equal to the +Inf bucket.
func (tm *TextMetrics) Validate() error {
	for _, name := range tm.Order {
		f := tm.Families[name]
		if f.Help == "" {
			return fmt.Errorf("%s: empty HELP", name)
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				return fmt.Errorf("%s: counter does not end in _total", name)
			}
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || s.Value < 0 {
					return fmt.Errorf("%s: counter value %g", name, s.Value)
				}
			}
		case "histogram":
			if err := f.validateHistogram(); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelSig renders labels minus `le` as a stable grouping key.
func labelSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(labels[k])
		b.WriteString(";")
	}
	return b.String()
}

type histSeries struct {
	uppers   []float64
	cums     []float64
	sum      *float64
	count    *float64
	infCount float64
	hasInf   bool
}

func (f *Family) groupHistogram() (map[string]*histSeries, error) {
	groups := map[string]*histSeries{}
	get := func(labels map[string]string) *histSeries {
		sig := labelSig(labels)
		g, ok := groups[sig]
		if !ok {
			g = &histSeries{}
			groups[sig] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return nil, fmt.Errorf("%s: bucket without le label", f.Name)
			}
			upper, err := parseValue(le)
			if err != nil {
				return nil, fmt.Errorf("%s: bad le %q: %w", f.Name, le, err)
			}
			g := get(s.Labels)
			if math.IsInf(upper, 1) {
				g.hasInf = true
				g.infCount = s.Value
			} else {
				g.uppers = append(g.uppers, upper)
				g.cums = append(g.cums, s.Value)
			}
		case f.Name + "_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		default:
			return nil, fmt.Errorf("%s: unexpected sample %s in histogram family", f.Name, s.Name)
		}
	}
	return groups, nil
}

func (f *Family) validateHistogram() error {
	groups, err := f.groupHistogram()
	if err != nil {
		return err
	}
	if len(groups) == 0 {
		return fmt.Errorf("%s: histogram family with no series", f.Name)
	}
	for sig, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, sig)
		}
		if g.sum == nil {
			return fmt.Errorf("%s{%s}: missing _sum", f.Name, sig)
		}
		if g.count == nil {
			return fmt.Errorf("%s{%s}: missing _count", f.Name, sig)
		}
		if *g.count != g.infCount {
			return fmt.Errorf("%s{%s}: _count %g != +Inf bucket %g", f.Name, sig, *g.count, g.infCount)
		}
		if !sort.Float64sAreSorted(g.uppers) {
			return fmt.Errorf("%s{%s}: bucket bounds not ascending", f.Name, sig)
		}
		prev := 0.0
		for i, c := range g.cums {
			if c < prev {
				return fmt.Errorf("%s{%s}: bucket counts not monotonic at le=%g", f.Name, sig, g.uppers[i])
			}
			prev = c
		}
		if g.infCount < prev {
			return fmt.Errorf("%s{%s}: +Inf bucket %g below last finite bucket %g", f.Name, sig, g.infCount, prev)
		}
	}
	return nil
}

// Value returns the value of the sample matching name and labels exactly
// (nil labels matches a sample with no labels).
func (tm *TextMetrics) Value(name string, labels map[string]string) (float64, bool) {
	for _, f := range tm.Families {
		for _, s := range f.Samples {
			if s.Name != name || len(s.Labels) != len(labels) {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// HistogramQuantile reconstructs the q-quantile of a scraped histogram
// family for the series matching the given non-le labels, interpolating
// linearly within buckets (like PromQL's histogram_quantile).
func (tm *TextMetrics) HistogramQuantile(family string, labels map[string]string, q float64) (float64, error) {
	f, ok := tm.Families[family]
	if !ok || f.Type != "histogram" {
		return 0, fmt.Errorf("no histogram family %s", family)
	}
	groups, err := f.groupHistogram()
	if err != nil {
		return 0, err
	}
	g, ok := groups[labelSig(labels)]
	if !ok {
		return 0, fmt.Errorf("%s: no series with labels %v", family, labels)
	}
	return bucketQuantile(q, g), nil
}

func bucketQuantile(q float64, g *histSeries) float64 {
	total := g.infCount
	if total == 0 {
		return 0
	}
	rank := q * total
	prev := 0.0
	lower := 0.0
	for i, c := range g.cums {
		if c >= rank && c > prev {
			frac := (rank - prev) / (c - prev)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(g.uppers[i]-lower)
		}
		prev = c
		lower = g.uppers[i]
	}
	if len(g.uppers) > 0 {
		return g.uppers[len(g.uppers)-1]
	}
	return 0
}
