package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func parseAndValidate(s string) error {
	tm, err := ParseMetrics(strings.NewReader(s))
	if err != nil {
		return err
	}
	return tm.Validate()
}

func TestParserAcceptsWellFormedPage(t *testing.T) {
	page := `# HELP amf_x_total Things.
# TYPE amf_x_total counter
amf_x_total 4
# HELP amf_lat_seconds Latency.
# TYPE amf_lat_seconds histogram
amf_lat_seconds_bucket{le="0.001"} 2
amf_lat_seconds_bucket{le="0.01"} 5
amf_lat_seconds_bucket{le="+Inf"} 6
amf_lat_seconds_sum 0.042
amf_lat_seconds_count 6
`
	if err := parseAndValidate(page); err != nil {
		t.Fatal(err)
	}
}

func TestParserRejectsMalformedPages(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "amf_orphan_total 1\n",
		"TYPE before HELP": "# TYPE amf_x_total counter\n# HELP amf_x_total h\namf_x_total 1\n",
		"bad TYPE": "# HELP amf_x_total h\n# TYPE amf_x_total zigzag\namf_x_total 1\n",
		"bad value": "# HELP amf_x_total h\n# TYPE amf_x_total counter\namf_x_total banana\n",
		"unterminated labels": "# HELP amf_x_total h\n# TYPE amf_x_total counter\namf_x_total{a=\"b\" 1\n",
		"duplicate label": "# HELP amf_x_total h\n# TYPE amf_x_total counter\namf_x_total{a=\"1\",a=\"2\"} 1\n",
		"counter not _total": "# HELP amf_x h\n# TYPE amf_x counter\namf_x 1\n",
		"negative counter": "# HELP amf_x_total h\n# TYPE amf_x_total counter\namf_x_total -1\n",
		"histogram missing +Inf": "# HELP amf_l_seconds h\n# TYPE amf_l_seconds histogram\namf_l_seconds_bucket{le=\"1\"} 1\namf_l_seconds_sum 1\namf_l_seconds_count 1\n",
		"histogram count mismatch": "# HELP amf_l_seconds h\n# TYPE amf_l_seconds histogram\namf_l_seconds_bucket{le=\"+Inf\"} 3\namf_l_seconds_sum 1\namf_l_seconds_count 2\n",
		"histogram non-monotonic": "# HELP amf_l_seconds h\n# TYPE amf_l_seconds histogram\namf_l_seconds_bucket{le=\"1\"} 5\namf_l_seconds_bucket{le=\"2\"} 3\namf_l_seconds_bucket{le=\"+Inf\"} 5\namf_l_seconds_sum 1\namf_l_seconds_count 5\n",
		"histogram missing sum": "# HELP amf_l_seconds h\n# TYPE amf_l_seconds histogram\namf_l_seconds_bucket{le=\"+Inf\"} 0\namf_l_seconds_count 0\n",
	}
	for name, page := range cases {
		if err := parseAndValidate(page); err == nil {
			t.Errorf("%s: accepted invalid page", name)
		}
	}
}

func TestParserIgnoresOtherComments(t *testing.T) {
	page := "# just a comment\n# EOF\n# HELP amf_x_total h\n# TYPE amf_x_total counter\namf_x_total 1\n"
	if err := parseAndValidate(page); err != nil {
		t.Fatal(err)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" {
		t.Fatalf("msg = %v", rec["msg"])
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("suppressed")
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn level: %q", buf.String())
	}
	lg.Warn("visible")
	if !strings.Contains(buf.String(), "visible") {
		t.Fatalf("warn not logged: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}
