// Package obs is the zero-dependency observability layer of the serving
// stack: lock-free metric primitives, a Prometheus text-format registry,
// an online accuracy tracker, and structured-logging helpers.
//
// The design constraint is the same one that shaped internal/engine: the
// prediction hot path is lock-free (one atomic view load plus a dot
// product), and instrumentation must not give that back. Every hot-path
// record in this package is a handful of atomic adds:
//
//   - Counter / Gauge are single atomic.Int64 cells.
//   - Histogram is a log-bucketed (base-2 octaves × power-of-two
//     sub-buckets) array of atomic.Int64 cells. Observe computes the
//     bucket index with pure integer ops on the IEEE-754 bit pattern —
//     no math.Log, no branching search — then does two atomic adds and
//     one atomic float accumulate. Quantile estimation and Prometheus
//     exposition read the same cells without stopping writers.
//   - AccuracyTracker folds each (prediction, observation) pair into an
//     EMA and a relative-error Histogram, yielding live MRE (median
//     relative error) and NPRE (90th-percentile relative error) — the
//     paper's §V metrics as first-class runtime gauges.
//
// The Registry renders everything in proper Prometheus text exposition
// (`# HELP`/`# TYPE`, `_total` counters, `_seconds` units, histogram
// `_bucket`/`_sum`/`_count` series) and enforces naming conventions at
// registration time. ParseMetrics is the matching strict parser, used by
// the test suite to validate /metrics output and by examples to compute
// quantiles from a scrape.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sync/atomic"
)

// nameRE is the Prometheus metric/label naming grammar.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func checkName(name string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; register it (or create it through a Registry) to expose it.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decrement")
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 cell updated with CAS on its bit pattern, used
// for histogram sums and EMA state.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add accumulates v with a CAS loop (wait-free in the uncontended case).
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}
