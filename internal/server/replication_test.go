package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/store"
)

// leaderServer is durableServer plus an HTTP listener, since replication
// runs over a real connection (long-polls, chunked streams).
func leaderServer(t *testing.T, dir string, sync store.SyncPolicy) (*Server, *store.Manager, *httptest.Server) {
	t.Helper()
	svc, mgr, _ := durableServer(t, dir, sync)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, mgr, ts
}

func startFollower(t *testing.T, cfg FollowerConfig) *Server {
	t.Helper()
	mcfg := core.DefaultConfig(-0.007, 0, 20)
	mcfg.Expiry = 0
	f := New(core.MustNew(mcfg), WithLogger(quietLogger()))
	if cfg.WaitMS == 0 {
		cfg.WaitMS = 100
	}
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = 20 * time.Millisecond
	}
	if _, err := f.StartFollower(cfg); err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func predictOn(t *testing.T, s *Server, user, service string) (float64, bool) {
	t.Helper()
	w := doReq(t, s, http.MethodGet, "/api/v1/predict?user="+user+"&service="+service, nil)
	if w.Code != http.StatusOK {
		return 0, false
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode predict: %v", err)
	}
	return resp.Value, true
}

func TestFollowerTailsLeader(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)

	f := startFollower(t, FollowerConfig{Leader: ts.URL})

	// Bootstrap carries the pre-existing observations (they were
	// journaled before the snapshot was cut, or ride the first tail poll).
	waitFor(t, 5*time.Second, "bootstrap state", func() bool {
		_, ok := predictOn(t, f, "u0", "s0")
		return ok
	})

	// New writes on the leader show up on the follower via WAL shipping.
	w := doReq(t, leader, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "tail-user", Service: "tail-svc", Value: 1.25},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("leader observe: %d %s", w.Code, w.Body.String())
	}
	waitFor(t, 5*time.Second, "tailed observation", func() bool {
		_, ok := predictOn(t, f, "tail-user", "tail-svc")
		return ok
	})

	// Factors that traveled in the snapshot are bitwise identical on
	// both sides (tail-user is only asserted present above: entities
	// created after the bootstrap draw their random initial vectors from
	// each model's own RNG position, so their factors converge with
	// training rather than matching exactly).
	lv, _ := predictOn(t, leader, "u0", "s0")
	fv, _ := predictOn(t, f, "u0", "s0")
	if lv != fv {
		t.Errorf("leader predicts %g for (u0,s0), follower predicts %g", lv, fv)
	}

	// Deletions replicate too.
	w = doReq(t, leader, http.MethodDelete, "/api/v1/users?name=tail-user", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("leader delete: %d", w.Code)
	}
	waitFor(t, 5*time.Second, "replicated removal", func() bool {
		_, ok := predictOn(t, f, "tail-user", "tail-svc")
		return !ok
	})
}

func TestFollowerRejectsWrites(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	f := startFollower(t, FollowerConfig{Leader: ts.URL})

	w := doReq(t, f, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "x", Service: "y", Value: 1},
	}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("follower observe: %d, want 503", w.Code)
	}
	if got := w.Header().Get("X-Amf-Leader"); got != ts.URL {
		t.Errorf("X-Amf-Leader = %q, want %q", got, ts.URL)
	}
	for _, req := range []struct{ method, path string }{
		{http.MethodDelete, "/api/v1/users?name=u0"},
		{http.MethodDelete, "/api/v1/services?name=s0"},
		{http.MethodPost, "/api/v1/checkpoint"},
		{http.MethodPost, "/api/v1/snapshot"},
	} {
		if w := doReq(t, f, req.method, req.path, nil); w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s on follower: %d, want 503", req.method, req.path, w.Code)
		}
	}
	if err := f.Ingest("x", "y", 1, 0); err == nil {
		t.Error("TCP ingest accepted on a follower")
	}

	// Reads keep working.
	waitFor(t, 5*time.Second, "read path", func() bool {
		_, ok := predictOn(t, f, "u0", "s0")
		return ok
	})
}

func TestClusterStatus(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	f := startFollower(t, FollowerConfig{Leader: ts.URL})

	w := doReq(t, leader, http.MethodGet, "/api/v1/cluster/status", nil)
	var ls ClusterStatusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ls); err != nil {
		t.Fatal(err)
	}
	if ls.Role != "leader" || !ls.Durable || ls.WALSeq == 0 {
		t.Errorf("leader status = %+v", ls)
	}

	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		w := doReq(t, f, http.MethodGet, "/api/v1/cluster/status", nil)
		var fs ClusterStatusResponse
		if err := json.Unmarshal(w.Body.Bytes(), &fs); err != nil {
			t.Fatal(err)
		}
		return fs.Role == "follower" && fs.Leader == ts.URL && fs.AppliedSeq >= ls.WALSeq
	})
}

func TestReplicateWALEndpointValidation(t *testing.T) {
	nondurable := testServer(t)
	if w := doReq(t, nondurable, http.MethodGet, "/api/v1/replicate/wal?from=0", nil); w.Code != http.StatusNotImplemented {
		t.Errorf("non-durable replicate: %d, want 501", w.Code)
	}

	leader, _, _ := durableServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	for _, q := range []string{"", "from=x", "from=0&wait_ms=-1", "from=0&max_bytes=z"} {
		if w := doReq(t, leader, http.MethodGet, "/api/v1/replicate/wal?"+q, nil); w.Code != http.StatusBadRequest {
			t.Errorf("replicate?%s: %d, want 400", q, w.Code)
		}
	}

	// A valid fetch ships decodable records and advertises the tail.
	w := doReq(t, leader, http.MethodGet, "/api/v1/replicate/wal?from=0&wait_ms=0", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("replicate: %d", w.Code)
	}
	tail := w.Header().Get("X-Amf-Wal-Seq")
	if tail == "" || tail == "0" {
		t.Fatalf("X-Amf-Wal-Seq = %q", tail)
	}
	rr := store.NewRecordReader(bytes.NewReader(w.Body.Bytes()))
	n := 0
	for {
		if _, err := rr.Next(); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no records decoded from replication response")
	}
	if got := fmt.Sprint(n); got != tail {
		t.Errorf("decoded %d records, header says tail %s", n, tail)
	}
}

// TestApplyStreamGap: a stream whose first record is beyond our applied
// position means the leader truncated past us — the tailer must signal
// re-bootstrap, never skip.
func TestApplyStreamGap(t *testing.T) {
	leader, _, _ := durableServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader) // journals records 1..N

	var buf bytes.Buffer
	if _, err := leader.durable.WAL().StreamSince(2, &buf, 0); err != nil {
		t.Fatal(err)
	}
	rp := &Replicator{s: testServer(t)}
	if _, err := rp.applyStream(0, &buf); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("applyStream with gap: %v, want gap error", err)
	}
}

// TestPromoteSharedStorage is the in-process promotion protocol test:
// follower tails a durable leader, the leader dies, and promotion with
// the leader's data directory recovers every acked record — the
// SIGKILL-under-load variant lives in the cluster failover suite.
func TestPromoteSharedStorage(t *testing.T) {
	dir := t.TempDir()
	leader, mgr, ts := leaderServer(t, dir, store.SyncAlways)
	observeSome(t, leader)

	f := startFollower(t, FollowerConfig{
		Leader:       ts.URL,
		LeaderData:   dir,
		StoreOptions: store.Options{Sync: store.SyncOff, CheckpointInterval: time.Hour, Logger: quietLogger()},
	})
	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		_, ok := predictOn(t, f, "u3", "s4")
		return ok
	})

	// One more acked write, then the leader dies without any checkpoint.
	w := doReq(t, leader, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "last-ack", Service: "s0", Value: 2.5},
	}})
	if w.Code != http.StatusOK {
		t.Fatal("final observe failed")
	}
	wantSeq := leader.durable.WAL().LastSeq()
	ts.Close()
	leader.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	w = doReq(t, f, http.MethodPost, "/api/v1/promote", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", w.Code, w.Body.String())
	}
	if f.Durable() == nil {
		t.Fatal("promoted server has no durable store")
	}
	t.Cleanup(func() { f.Durable().Close() })
	if got := f.Durable().WAL().LastSeq(); got != wantSeq {
		t.Errorf("promoted WAL seq %d, want %d (same lineage)", got, wantSeq)
	}

	// Acked-on-leader ⇒ durable ⇒ present after promotion.
	if _, ok := predictOn(t, f, "last-ack", "s0"); !ok {
		t.Error("acked sample lost across promotion")
	}
	// The promoted leader accepts writes again and serves leader status.
	w = doReq(t, f, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "post-promote", Service: "s1", Value: 0.75},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("post-promote observe: %d %s", w.Code, w.Body.String())
	}
	var st ClusterStatusResponse
	_ = json.Unmarshal(doReq(t, f, http.MethodGet, "/api/v1/cluster/status", nil).Body.Bytes(), &st)
	if st.Role != "leader" || !st.Durable || st.WALSeq <= wantSeq {
		t.Errorf("promoted status = %+v", st)
	}

	// Second promote is a conflict.
	if w := doReq(t, f, http.MethodPost, "/api/v1/promote", nil); w.Code != http.StatusConflict {
		t.Errorf("double promote: %d, want 409", w.Code)
	}
}

// TestPromoteWithoutLeaderData: promotion still flips the role (serving
// the tailed state best-effort) when no shared directory was configured.
func TestPromoteWithoutLeaderData(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	f := startFollower(t, FollowerConfig{Leader: ts.URL})
	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		_, ok := predictOn(t, f, "u0", "s0")
		return ok
	})
	if w := doReq(t, f, http.MethodPost, "/api/v1/promote", nil); w.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", w.Code, w.Body.String())
	}
	if f.Durable() != nil {
		t.Error("promotion without leader data attached a durable store")
	}
	w := doReq(t, f, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "nx", Service: "ny", Value: 1},
	}})
	if w.Code != http.StatusOK {
		t.Errorf("post-promote observe: %d", w.Code)
	}
}

// TestPromoteFailureResumesFollower: a promotion that cannot open the
// leader's data directory must leave the replica REPLICATING — not
// parked as a stopped, write-rejecting follower that looks healthy and
// can never serve a later promotion.
func TestPromoteFailureResumesFollower(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)

	// LeaderData pointing at a regular file: store.Open fails on it.
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, FollowerConfig{
		Leader:       ts.URL,
		LeaderData:   bad,
		StoreOptions: store.Options{Logger: quietLogger()},
	})
	waitFor(t, 5*time.Second, "follower caught up", func() bool {
		_, ok := predictOn(t, f, "u0", "s0")
		return ok
	})

	if w := doReq(t, f, http.MethodPost, "/api/v1/promote", nil); w.Code != http.StatusConflict {
		t.Fatalf("promote with bad leader data: %d, want 409", w.Code)
	}
	if !f.follower.Load() {
		t.Fatal("failed promotion left the server claiming leadership")
	}

	// The tailer restarted: a fresh leader write still replicates.
	w := doReq(t, leader, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "after-fail", Service: "s0", Value: 1.5},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("leader observe: %d", w.Code)
	}
	waitFor(t, 5*time.Second, "replication after failed promotion", func() bool {
		_, ok := predictOn(t, f, "after-fail", "s0")
		return ok
	})

	// A second promotion attempt still fails cleanly (and still resumes).
	if w := doReq(t, f, http.MethodPost, "/api/v1/promote", nil); w.Code != http.StatusConflict {
		t.Fatalf("second promote: %d, want 409", w.Code)
	}
	w = doReq(t, leader, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "after-fail-2", Service: "s0", Value: 1.5},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("leader observe: %d", w.Code)
	}
	waitFor(t, 5*time.Second, "replication after second failed promotion", func() bool {
		_, ok := predictOn(t, f, "after-fail-2", "s0")
		return ok
	})
}

// TestDemoteFencesLeader: demotion flips a durable leader to a
// write-rejecting follower pointing at the winner, and fences its store
// so nothing more lands on the diverged WAL lineage.
func TestDemoteFencesLeader(t *testing.T) {
	leader, mgr, _ := durableServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)

	w := doReq(t, leader, http.MethodPost, "/api/v1/demote", map[string]string{"leader": "http://winner:1"})
	if w.Code != http.StatusOK {
		t.Fatalf("demote: %d %s", w.Code, w.Body.String())
	}
	w = doReq(t, leader, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "x", Service: "y", Value: 1},
	}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe after demote: %d, want 503", w.Code)
	}
	if got := w.Header().Get("X-Amf-Leader"); got != "http://winner:1" {
		t.Errorf("X-Amf-Leader = %q, want the demotion's winner", got)
	}
	if !mgr.Fenced() {
		t.Fatal("demotion did not fence the durable store")
	}
	if _, err := mgr.WAL().Append([]byte("p")); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("append after demote: %v, want ErrFenced", err)
	}
	var st ClusterStatusResponse
	_ = json.Unmarshal(doReq(t, leader, http.MethodGet, "/api/v1/cluster/status", nil).Body.Bytes(), &st)
	if st.Role != "follower" || !st.Fenced {
		t.Errorf("status after demote = %+v, want follower+fenced", st)
	}
	// Idempotent.
	if w := doReq(t, leader, http.MethodPost, "/api/v1/demote", nil); w.Code != http.StatusOK {
		t.Errorf("second demote: %d", w.Code)
	}
	// A demoted ex-leader can NEVER be promoted in place: promotion would
	// re-claim the shared directory over the legitimate owner's head (and
	// a gateway retrying failover would grab the lock in a loop). Only a
	// restart as -role follower rejoins.
	w = doReq(t, leader, http.MethodPost, "/api/v1/promote", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("promote after demote: %d, want 409", w.Code)
	}
	if !strings.Contains(w.Body.String(), "fenced") {
		t.Errorf("promote-after-demote error should name the fence: %s", w.Body.String())
	}
}

func TestSetLeaderEndpoint(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	f := startFollower(t, FollowerConfig{Leader: ts.URL})

	w := doReq(t, f, http.MethodPost, "/api/v1/cluster/leader", map[string]string{"leader": "http://new-leader:9"})
	if w.Code != http.StatusOK {
		t.Fatalf("set leader: %d %s", w.Code, w.Body.String())
	}
	if got := f.repl.Leader(); got != "http://new-leader:9" {
		t.Errorf("leader = %q", got)
	}
	// Not a follower → conflict; missing body → 400.
	if w := doReq(t, leader, http.MethodPost, "/api/v1/cluster/leader", map[string]string{"leader": "x"}); w.Code != http.StatusConflict {
		t.Errorf("set leader on leader: %d, want 409", w.Code)
	}
	if w := doReq(t, f, http.MethodPost, "/api/v1/cluster/leader", map[string]string{}); w.Code != http.StatusBadRequest {
		t.Errorf("set leader without addr: %d, want 400", w.Code)
	}
}

func TestStartFollowerRefusals(t *testing.T) {
	// Durable server cannot become a follower.
	leader, _, _ := durableServer(t, t.TempDir(), store.SyncOff)
	if _, err := leader.StartFollower(FollowerConfig{Leader: "http://x"}); err == nil {
		t.Error("durable server accepted follower mode")
	}
	// A non-durable leader has no WAL position to anchor replication.
	plain := httptest.NewServer(testServer(t).Handler())
	defer plain.Close()
	mcfg := core.DefaultConfig(-0.007, 0, 20)
	mcfg.Expiry = 0
	f := New(core.MustNew(mcfg), WithLogger(quietLogger()))
	if _, err := f.StartFollower(FollowerConfig{Leader: plain.URL}); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Errorf("bootstrap from non-durable leader: %v, want durable error", err)
	}
}

// TestDrainReplication: Close flips the flag long-polls watch, so an
// idle replication stream ends within a tick and the drain returns.
func TestDrainReplication(t *testing.T) {
	leader, _, ts := leaderServer(t, t.TempDir(), store.SyncOff)
	observeSome(t, leader)
	seq := leader.durable.WAL().LastSeq()

	// Park a long-poll at the WAL tail (nothing past seq ⇒ it waits).
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/replicate/wal?from=%d&wait_ms=30000", ts.URL, seq))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, 2*time.Second, "stream in flight", func() bool { return leader.replActive.Load() == 1 })

	leader.Close()
	if !leader.DrainReplication(2 * time.Second) {
		t.Fatal("drain timed out; long-poll did not observe shutdown")
	}
	if err := <-errc; err != nil {
		t.Fatalf("parked poll errored: %v", err)
	}
}
