package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/obs/trace"
	"github.com/qoslab/amf/internal/stream"
)

// This file wires the observability layer (internal/obs) through the HTTP
// service: the metric registry behind /metrics, the per-route middleware,
// the live accuracy hook on the observe paths, and optional pprof.

// counters holds the service's operational counters, registered on the
// obs registry at construction.
type counters struct {
	observations     *obs.Counter // accepted QoS observations
	predictions      *obs.Counter // single predictions served
	batchPredictions *obs.Counter // batch prediction entries served
	notFound         *obs.Counter // 404 responses (unknown users/services)
	badRequests      *obs.Counter // 400-level rejections
	churnRemovals    *obs.Counter // users/services deregistered
	rankRequests     *obs.Counter // candidate rankings served
	rankCandidates   *obs.Counter // candidates scanned across all rankings
	rankCoalesced    *obs.Counter // full-scan rankings served through coalesced batches
}

// buildMetrics constructs the registry and every metric family the server
// exports. Called once from NewWithEngine, before routes are registered.
func (s *Server) buildMetrics() {
	r := obs.NewRegistry()
	s.reg = r

	// Service counters.
	s.metrics = counters{
		observations:     r.NewCounter("amf_observations_total", "QoS observations accepted (HTTP observe + TCP ingest)."),
		predictions:      r.NewCounter("amf_predictions_total", "Single predictions served."),
		batchPredictions: r.NewCounter("amf_batch_predictions_total", "Batch prediction entries served."),
		notFound:         r.NewCounter("amf_not_found_total", "404 responses (unknown users/services)."),
		badRequests:      r.NewCounter("amf_bad_requests_total", "400-level request rejections."),
		churnRemovals:    r.NewCounter("amf_churn_removals_total", "Users/services deregistered (churn departures)."),
		rankRequests:     r.NewCounter("amf_rank_requests_total", "Candidate rankings served."),
		rankCandidates:   r.NewCounter("amf_rank_candidates_total", "Candidates scanned across all ranking requests."),
		rankCoalesced:    r.NewCounter("amf_rank_coalesced_total", "Full-scan rankings served through a coalesced multi-query batch."),
	}

	// Ranking fast path: latency by execution mode (serial, parallel,
	// full_scan, full_scan_parallel, full_scan_coalesced). Unsampled —
	// rankings are orders of magnitude rarer than predicts and each one
	// is worth timing. The mode children are materialized up front so
	// /metrics always exposes the full family (and so the exposition
	// validates before the first ranking arrives).
	s.rankLatency = r.NewHistogramVec("amf_rank_latency_seconds",
		"Candidate-ranking latency by execution mode.", "mode", 1e-6, 60, 8)
	for _, mode := range []string{"serial", "parallel", "full_scan", "full_scan_parallel", "full_scan_coalesced"} {
		s.rankLatency.With(mode)
	}

	// Coalesced-batch size distribution: how many full-scan requests each
	// flush actually served together (1 = a request whose window expired
	// alone). Buckets cover 1..RankCoalesceMax-scale sizes.
	s.rankCoalesceSize = obs.NewHistogram(1, 1024, 4)
	r.RegisterHistogram("amf_rank_coalesce_batch_size",
		"Full-scan rank requests served per coalesced flush.", s.rankCoalesceSize)

	// Build identification (ldflags-stamped; covers the embedded qosdb,
	// which has no process of its own).
	obs.RegisterBuildInfo(r)

	// Model gauges.
	r.GaugeFunc("amf_model_users", "Users currently registered.", func() float64 { return float64(s.users.Len()) })
	r.GaugeFunc("amf_model_services", "Services currently registered.", func() float64 { return float64(s.services.Len()) })
	r.CounterFunc("amf_model_updates_total", "SGD updates applied to the model.", s.eng.Updates)
	r.GaugeFunc("amf_uptime_seconds", "Seconds since the server started.",
		func() float64 { return s.now().Sub(s.base).Seconds() })
	r.GaugeFunc("amf_qosdb_observations", "Observations retained in the QoS database (0 without -wal).",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Len())
		})

	// Serving-engine health: queue pressure, shed load, publish cadence,
	// and the latency histograms the engine maintains internally.
	eng := s.eng
	r.CounterFunc("amf_engine_enqueued_total", "Samples accepted into the ingest queue.",
		func() int64 { return eng.Stats().Enqueued })
	droppedVec := r.NewCounterFuncVec("amf_engine_dropped_total",
		"Samples shed under overload, by reason: oldest = queued sample evicted to admit a fresher one, new = incoming sample shed after the eviction spin gave up.", "reason")
	droppedVec.With("new", func() int64 { return eng.Stats().DroppedNew })
	droppedVec.With("oldest", func() int64 { return eng.Stats().DroppedOldest })
	r.CounterFunc("amf_engine_applied_total", "Samples applied to the model (ingest + sync batches).",
		func() int64 { return eng.Stats().Applied })
	r.CounterFunc("amf_engine_replayed_total", "Replay updates performed by or through the engine.",
		func() int64 { return eng.Stats().Replayed })
	r.CounterFunc("amf_engine_published_total", "Read views published (RCU pointer swings).",
		func() int64 { return eng.Stats().Published })
	r.GaugeFunc("amf_engine_queue_len", "Samples currently queued across all ingest shards.",
		func() float64 { return float64(eng.Stats().QueueLen) })
	r.GaugeFunc("amf_engine_queue_cap", "Total ingest queue capacity across all shards.",
		func() float64 { return float64(eng.Stats().QueueCap) })
	r.GaugeFunc("amf_engine_view_version", "Version of the currently published read view.",
		func() float64 { return float64(eng.Stats().Version) })
	r.GaugeFunc("amf_engine_view_staleness_seconds",
		"Age of the published view while model updates are pending (0 when current).",
		func() float64 { return eng.Staleness().Seconds() })
	em := eng.Metrics()
	r.RegisterHistogram("amf_engine_queue_wait_seconds",
		"Time samples spent in the ingest queue before the writer drained them.", em.QueueWait)
	r.RegisterHistogram("amf_engine_apply_seconds",
		"Per-update model apply latency (batch mean attributed to each update).", em.Apply)
	r.RegisterHistogram("amf_engine_publish_seconds",
		"View refresh+publish latency (dirty-shard reclone plus pointer swing).", em.Publish)

	// Parallel training path (amf_train_*). The worker-count gauge is
	// always exported (1 = serial writer) so dashboards can key on it;
	// the trainer's own series exist only when -train-workers > 1.
	r.GaugeFunc("amf_train_workers", "Parallel SGD training workers (1 = serial writer).",
		func() float64 { return float64(eng.TrainWorkers()) })
	if tm := eng.TrainMetrics(); tm != nil {
		r.RegisterHistogram("amf_train_apply_seconds",
			"Per-worker wall time applying one fan-out's slice of a training batch.", tm.Apply)
		r.CounterFunc("amf_train_stripe_contention_total",
			"Service-stripe lock acquisitions that found the stripe held by another worker.",
			tm.StripeContention.Value)
		r.CounterFunc("amf_train_batches_total",
			"Training fan-outs coordinated across the worker pool.",
			tm.Batches.Value)
	}

	// SLO admission (see admission.go). Families are registered even
	// while the gate is disabled — they read zero — so the metrics
	// surface does not depend on flags. amf_admission_shed_total is the
	// unified shed accounting: the per-class series fold the server
	// gate's refusals together with the engine's queue-level losses, so
	// drop-oldest churn under pressure is visible as sheddable-class
	// loss next to gate sheds instead of hiding in amf_engine_dropped_total.
	admReqVec := r.NewCounterVec("amf_admission_requests_total",
		"Requests evaluated by the SLO admission gate, by class (0 while admission is disabled).", "class")
	for _, c := range control.Classes() {
		s.admReq[c] = admReqVec.With(c.String())
	}
	shedVec := r.NewCounterFuncVec("amf_admission_shed_total",
		"Work refused under overload, by SLO class: gate refusals plus engine queue sheds; the sheddable series also folds in the engine's drop-oldest/drop-new losses (the async ingest queue is sheddable-class work).", "class")
	shedVec.With(control.Critical.String(), func() int64 {
		return s.admShed[control.Critical].Load() // 0 by construction: critical is never shed
	})
	shedVec.With(control.Standard.String(), func() int64 {
		return s.admShed[control.Standard].Load() + eng.Stats().ShedStandard
	})
	shedVec.With(control.Sheddable.String(), func() int64 {
		st := eng.Stats()
		return s.admShed[control.Sheddable].Load() + st.ShedSheddable + st.Dropped
	})
	reasonVec := r.NewCounterVec("amf_admission_shed_reasons_total",
		"Gate refusals by reason: slo_budget (predicted wait over budget) or queue_watermark (ingest occupancy over the class watermark).", "reason")
	s.admReasons = map[string]*obs.Counter{
		shedReasonBudget:    reasonVec.With(shedReasonBudget),
		shedReasonWatermark: reasonVec.With(shedReasonWatermark),
	}
	s.admWaitEst = obs.NewHistogram(1e-6, 600, 8)
	r.RegisterHistogram("amf_admission_wait_estimate_seconds",
		"Predicted wait computed by the admission gate for non-critical requests.", s.admWaitEst)
	r.GaugeFunc("amf_admission_enabled", "1 while the SLO admission gate is active.",
		func() float64 {
			if s.gate.Load() != nil {
				return 1
			}
			return 0
		})

	// HTTP middleware metrics.
	s.httpHist = r.NewHistogramVec("amf_http_request_duration_seconds",
		"HTTP request latency by route (1-in-8 sampled, weight-8 attribution).", "route", 1e-6, 60, 8)
	s.inflight = r.NewGauge("amf_http_requests_in_flight", "HTTP requests currently being served.")
	statusVec := r.NewCounterVec("amf_http_responses_total", "HTTP responses by status class.", "code")
	for class := 1; class <= 5; class++ {
		s.statusClass[class] = statusVec.With(strconv.Itoa(class) + "xx")
	}

	// Live accuracy: the paper's §V metrics as runtime gauges.
	s.acc = obs.NewAccuracyTracker(s.eng.View().Config().Beta)
	s.acc.Register(r, "amf_accuracy")
}

// Registry exposes the metric registry for embedders that want to add
// their own families or scrape without HTTP.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Accuracy exposes the live accuracy tracker (MRE/NPRE/EMA of the
// relative prediction error).
func (s *Server) Accuracy() *obs.AccuracyTracker { return s.acc }

// scoreSample compares one incoming observation against the model's prior
// prediction (one lock-free view read) and folds the relative error into
// the live accuracy tracker.
func (s *Server) scoreSample(sample stream.Sample) {
	if !s.instrument {
		return
	}
	if v, err := s.eng.View().Predict(sample.User, sample.Service); err == nil {
		s.acc.Record(v, sample.Value)
	} else {
		s.acc.RecordMiss()
	}
}

// scoreSamples scores a batch against one consistent view.
func (s *Server) scoreSamples(samples []stream.Sample) {
	if !s.instrument {
		return
	}
	view := s.eng.View()
	for _, sample := range samples {
		if v, err := view.Predict(sample.User, sample.Service); err == nil {
			s.acc.Record(v, sample.Value)
		} else {
			s.acc.RecordMiss()
		}
	}
}

// requestIDHeader is spelled in canonical MIME form so Header.Get and
// direct map assignment skip the per-call canonicalization alloc that
// "X-Request-ID" would pay. Clients may send either spelling.
const requestIDHeader = "X-Request-Id"

// latencySampleMask selects which requests are timed: request n (a
// per-route counter) is sampled when n&mask == 1, i.e. the first
// request on each route and every 8th thereafter. On virtualized hosts
// without a vDSO clock fast path, the two clock reads a latency
// measurement needs cost more than the rest of the middleware combined;
// 1-in-8 sampling with weight-8 attribution keeps the histograms
// statistically faithful while amortizing the clock cost to ~1/8 per
// request. Debug-level request logging forces every request onto the
// timed path (tracing wants exact per-request durations).
const latencySampleMask = 7

// handle registers a route through the observability middleware: per-route
// latency histogram, in-flight gauge, request IDs, and slow-request
// logging. The amortized fast-path cost is a few atomic adds —
// BenchmarkPredictPath holds it within 5% of the lock-free predict path.
// The deliberate fast-path choices that keep it there:
//
//   - no ResponseWriter wrapper: status classes are tallied by
//     writeJSON/countStatus where the status is known, so the handler
//     keeps the concrete writer and the middleware allocates nothing;
//   - sampled latency timing (see latencySampleMask): untimed requests
//     skip both clock reads; timed ones record with the sample weight
//     so bucket counts still approximate true request totals.
//     Slow-request detection rides the timed subset — a persistent
//     slowness regime is still caught within a handful of requests;
//   - debug request logs are gated on a cached Enabled check (no slog
//     argument boxing when disabled);
//   - request-ID handling rides the timed subset, where it has a
//     consumer: a client-sent ID is echoed and logged on timed
//     requests (the first and every 8th per route — deterministic for
//     single-shot probes), one is generated up front when request
//     logging is enabled (which forces every request onto the timed
//     path), and slow requests get one after the fact for the warning;
//   - trace adoption costs the untraced path one header-map index. A
//     request carrying a valid X-Amf-Trace header (stamped by the
//     gateway) opens a span under the gateway's trace ID, adopts that
//     ID as its request ID (so gateway and shard log lines correlate),
//     and rides the timed path for an exact duration — but does NOT
//     perturb the latency histograms: the 1-in-8 sampling counter
//     still decides which requests are recorded, traced or not.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	if !s.instrument {
		s.mux.HandleFunc(pattern, h)
		return
	}
	hist := s.httpHist.With(pattern)
	tick := new(atomic.Uint64) // per-route sampling counter
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		// net/http stores parsed request headers under canonical keys,
		// so direct map indexes replace Header.Get's canonicalization.
		var sp *trace.Span
		if vals := r.Header[trace.Header]; len(vals) > 0 {
			if id, parent, ok := trace.ParseHeader(vals[0]); ok {
				sp = s.traces.Start(id, parent, pattern)
				r = r.WithContext(trace.NewContext(r.Context(), sp))
			}
		}
		sampled := tick.Add(1)&latencySampleMask == 1
		timed := sampled || s.logDebug || sp != nil
		var rid string
		var start time.Time
		if timed {
			start = time.Now()
			if sp != nil {
				// Adopt the gateway's trace ID as the request ID: one
				// identifier names the request at every hop.
				rid = sp.Trace.String()
			} else if vals := r.Header[requestIDHeader]; len(vals) > 0 {
				rid = vals[0]
			}
			if rid == "" && s.logDebug {
				rid = s.nextRequestID()
			}
			if rid != "" {
				w.Header()[requestIDHeader] = []string{rid}
			}
		}
		s.inflight.Add(1)
		h(w, r)
		s.inflight.Add(-1)
		if !timed {
			return
		}
		d := time.Since(start)
		if sampled || s.logDebug {
			hist.ObserveDurationN(d, latencySampleMask+1)
		}
		sp.Finish(d)
		switch {
		case d >= s.slowThreshold:
			if rid == "" {
				rid = s.nextRequestID()
			}
			if sp != nil {
				s.log.Warn("slow request", "route", pattern,
					"request_id", rid, "duration", d,
					"trace", "/debug/traces?trace="+sp.Trace.String())
			} else {
				s.log.Warn("slow request",
					"route", pattern, "request_id", rid, "duration", d)
			}
		case s.logDebug:
			s.log.Debug("request",
				"route", pattern, "request_id", rid, "duration", d)
		}
	})
}

// nextRequestID mints a short unique request id: a monotonic counter
// rendered in base36 ("r1", "r2", … "rzz", …).
func (s *Server) nextRequestID() string {
	var buf [14]byte
	buf[0] = 'r'
	return string(strconv.AppendUint(buf[:1], s.reqSeq.Add(1), 36))
}

// EnablePprof mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ on the service mux (outside the middleware: profile
// downloads run for seconds by design and would pollute the latency
// histograms). Call before serving; amfserver wires it to -pprof.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.log.Info("pprof enabled", "path", "/debug/pprof/")
}
