package server

import (
	"net/http"
	"strconv"
)

// FlaggedEntity is one user or service the model currently predicts
// poorly (tracked relative error at or above the requested threshold).
type FlaggedEntity struct {
	Name  string  `json:"name"`
	Error float64 `json:"error"`
}

// FlaggedResponse is the body of GET /api/v1/flagged.
type FlaggedResponse struct {
	Threshold float64         `json:"threshold"`
	Users     []FlaggedEntity `json:"users"`
	Services  []FlaggedEntity `json:"services"`
}

func (s *Server) flaggedRoutes() {
	s.handle("GET /api/v1/flagged", s.handleFlagged)
}

// handleFlagged reports entities with high tracked error — the operator's
// view of who the model is currently unsure about (fresh joiners, QoS
// regime shifts). threshold defaults to 0.5.
func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	threshold := 0.5
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			s.countError(w, http.StatusBadRequest, "bad threshold %q", raw)
			return
		}
		threshold = v
	}
	resp := FlaggedResponse{
		Threshold: threshold,
		Users:     []FlaggedEntity{},
		Services:  []FlaggedEntity{},
	}
	view := s.eng.View() // one consistent snapshot for both lists
	for _, f := range view.HighErrorUsers(threshold) {
		if info, ok := s.users.Get(f.ID); ok {
			resp.Users = append(resp.Users, FlaggedEntity{Name: info.Name, Error: f.Error})
		}
	}
	for _, f := range view.HighErrorServices(threshold) {
		if info, ok := s.services.Get(f.ID); ok {
			resp.Services = append(resp.Services, FlaggedEntity{Name: info.Name, Error: f.Error})
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
