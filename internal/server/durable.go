package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"

	"github.com/qoslab/amf/internal/store"
	"github.com/qoslab/amf/internal/stream"
)

// This file wires the durable-state layer (internal/store) through the
// service: crash recovery on startup, ack-after-journal on the observe
// path, background checkpoints, the /metrics families, and the manual
// checkpoint endpoint.

// replayChunk bounds how many replayed samples are batched into one
// synchronous engine apply during recovery. Chunking keeps memory flat
// on long WAL tails while amortizing the engine's publish-per-ObserveAll
// over thousands of samples.
const replayChunk = 8192

// AttachDurable wires a store.Manager into the server. It must be called
// once, before serving traffic, and performs the full recovery protocol
// in order:
//
//  1. Recover: restore the newest valid checkpoint via LoadState, then
//     replay the WAL tail — registrations rebuild the name⇄ID
//     directories, sample batches re-train the model through the normal
//     observe path, removals purge churned entities.
//  2. Attach the WAL as the engine's journal. Attachment happens after
//     replay on purpose: replayed samples are already in the log and
//     must not be re-journaled.
//  3. Register the amf_wal_* / amf_checkpoint_* / amf_recovery_*
//     metric families.
//  4. Start the background checkpointer. Each checkpoint captures the
//     engine's covered sequence number AND the model view from one
//     critical section (CheckpointView: publish + journal LastSeq under
//     the writer lock), then serializes that immutable view — so the
//     blob reflects exactly the records its sequence number claims.
//
// The returned stats describe what recovery found. On error the server
// is left not journaling; the caller should treat the data directory as
// unusable rather than serve with silent non-durability.
func (s *Server) AttachDurable(m *store.Manager) (store.RecoveryStats, error) {
	if s.durable != nil {
		return store.RecoveryStats{}, errors.New("server: durable store already attached")
	}
	apply, flush := s.walApplier()
	rs, err := m.Recover(s.LoadState, apply)
	if err != nil {
		return rs, err
	}
	flush()

	s.durable = m
	s.eng.SetJournal(m.WAL())
	// If another process claims the data directory out from under us (a
	// failover promoted a replica while we were partitioned, see store
	// fencing), step down instead of acking writes onto a dead lineage.
	m.SetOnFence(func() { s.Demote("") })
	s.registerDurableMetrics(m)
	m.Start(s.captureState)
	s.log.Info("durable state attached",
		"dir", m.Dir(),
		"checkpoint", rs.HaveCheckpoint, "checkpoint_seq", rs.CheckpointSeq,
		"replayed_entries", rs.Entries, "replayed_samples", rs.Samples,
		"replayed_registrations", rs.Registrations, "replayed_removals", rs.Removals)
	return rs, nil
}

// walApplier returns a pair of functions that feed WAL entries through
// the normal serving pipeline: registrations rebuild the name⇄ID
// directories, sample batches re-train the model (chunked, so memory
// stays flat on long tails while amortizing the engine's
// publish-per-ObserveAll), removals purge churned entities. It is the
// shared apply path under crash recovery (AttachDurable) and follower
// replication (Replicator.tail) — both are "replay someone's log into
// this server", they just differ in where the records come from.
// Callers must invoke flush after the final entry; apply itself flushes
// before removals so samples for a purged ID train first.
func (s *Server) walApplier() (apply func(store.Entry) error, flush func()) {
	var buf []stream.Sample
	flush = func() {
		if len(buf) > 0 {
			s.eng.ObserveAll(buf)
			buf = buf[:0]
		}
	}
	apply = func(e store.Entry) error {
		switch e.Kind {
		case store.EntrySamples:
			buf = append(buf, e.Samples...)
			if len(buf) >= replayChunk {
				flush()
			}
		case store.EntryRegisterUser:
			return s.users.RegisterID(e.Name, e.ID)
		case store.EntryRegisterService:
			return s.services.RegisterID(e.Name, e.ID)
		case store.EntryRemoveUser:
			flush() // samples for this ID must train before the purge
			if name, ok := s.users.NameOf(e.ID); ok {
				s.users.Deregister(name)
			}
			s.eng.RemoveUser(e.ID)
		case store.EntryRemoveService:
			flush()
			if name, ok := s.services.NameOf(e.ID); ok {
				s.services.Deregister(name)
			}
			s.eng.RemoveService(e.ID)
		default:
			return fmt.Errorf("server: unknown wal entry kind %d", e.Kind)
		}
		return nil
	}
	return apply, flush
}

// Durable returns the attached store manager, or nil.
func (s *Server) Durable() *store.Manager { return s.durable }

// captureState is the checkpointer's capture hook. The covered sequence
// number and the model view are taken from ONE engine critical section
// (CheckpointView): the returned view is immutable, so sample batches
// and removals journaled while we serialize below can never leak into
// the blob — if they could, recovery would replay those records into a
// model that already contains them (double-training). The registry
// directories are listed after the view capture, so a registration
// journaled with seq > checkpoint-seq may appear in the blob AND be
// replayed; RegisterID is idempotent for exactly that record kind, so
// the race is harmless — and it is the only one left.
func (s *Server) captureState() (uint64, []byte, error) {
	seq, view := s.eng.CheckpointView()
	var buf bytes.Buffer
	if err := s.encodeStateView(&buf, view); err != nil {
		return 0, nil, err
	}
	return seq, buf.Bytes(), nil
}

// journalRegistration appends a name⇄ID registration to the WAL before
// the samples that reference the new ID are journaled. Failures are
// logged and counted in the store's error metric but do not fail the
// request — same availability-over-durability stance as the engine's
// journal (and once the WAL has poisoned itself, the batch append right
// after this will surface the failure too).
func (s *Server) journalRegistration(appendFn func(int, string) (uint64, error), id int, name string) {
	if s.durable == nil {
		return
	}
	if _, err := appendFn(id, name); err != nil {
		s.log.Warn("journal registration failed", "name", name, "id", id, "err", err)
	}
}

// registerDurableMetrics exposes the durable-state layer on /metrics.
func (s *Server) registerDurableMetrics(m *store.Manager) {
	r := s.reg
	met := m.Metrics()
	r.RegisterHistogram("amf_wal_fsync_seconds",
		"WAL fsync latency.", met.Fsync)
	r.CounterFunc("amf_wal_appends_total", "Records appended to the WAL.",
		met.Appends.Load)
	r.CounterFunc("amf_wal_bytes_total", "Bytes appended to the WAL (record headers included).",
		met.Bytes.Load)
	r.CounterFunc("amf_wal_errors_total", "Failed WAL operations (append, flush, fsync).",
		met.Errors.Load)
	r.CounterFunc("amf_wal_torn_truncations_total",
		"Torn WAL tails truncated at open (each one is a crash the log recovered from).",
		met.TornTruncations.Load)
	r.GaugeFunc("amf_wal_segments", "Live WAL segment files.",
		func() float64 { return float64(met.Segments.Load()) })
	r.CounterFunc("amf_wal_group_commit_syncs_total",
		"Group-commit fsyncs (each covers one batch of concurrent appends; fsync=group only).",
		met.GroupCommits.Load)
	r.RegisterHistogram("amf_wal_group_commit_records",
		"Records covered per group-commit fsync — the batching factor concurrent writers achieved.",
		met.GroupBatch)
	r.RegisterHistogram("amf_checkpoint_seconds",
		"End-to-end checkpoint latency (capture + atomic write + WAL truncation).", met.Checkpoint)
	r.CounterFunc("amf_checkpoints_total", "Checkpoints successfully written.",
		met.Checkpoints.Load)
	r.GaugeFunc("amf_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint (the WAL-replay exposure window).",
		met.CheckpointAge)
	r.CounterFunc("amf_recovery_replayed_total",
		"Observations replayed from the WAL tail during crash recovery.",
		met.RecoveryReplayed.Load)
	r.CounterFunc("amf_journal_errors_total",
		"Engine journal appends that failed (the model kept learning).",
		func() int64 { return s.eng.Stats().JournalErrors })
}

// durableRoutes registers the checkpoint trigger; called from routes().
func (s *Server) durableRoutes() {
	s.handle("POST /api/v1/checkpoint", s.handleCheckpoint)
}

// handleCheckpoint forces a checkpoint now — the operational lever for
// "about to deploy, bound my replay window to zero".
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if s.durable == nil {
		s.countError(w, http.StatusNotImplemented, "no durable store attached")
		return
	}
	if err := s.durable.Checkpoint(); err != nil {
		s.countError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	m := s.durable.Metrics()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":      "checkpointed",
		"checkpoints": m.Checkpoints.Load(),
		"wal_seq":     s.durable.WAL().LastSeq(),
	})
}
