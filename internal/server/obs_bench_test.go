package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/qoslab/amf/internal/core"
)

// nopRW is a reusable ResponseWriter so the benchmark measures the
// serving path, not recorder allocation.
type nopRW struct{ h http.Header }

func (w *nopRW) Header() http.Header         { return w.h }
func (w *nopRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopRW) WriteHeader(int)             {}

func benchServer(b *testing.B, opts ...Option) *Server {
	b.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	// A discard logger keeps benchmark output clean while preserving the
	// real cost profile (debug records are disabled either way).
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := New(core.MustNew(cfg), append([]Option{WithLogger(quiet)}, opts...)...)
	var obs []Observation
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			obs = append(obs, Observation{
				User:    fmt.Sprintf("u%d", u),
				Service: fmt.Sprintf("s%d", v),
				Value:   0.5 + float64((u+v)%5),
			})
		}
	}
	buf, err := json.Marshal(ObserveRequest{Observations: obs})
	if err != nil {
		b.Fatal(err)
	}
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/observe", bytes.NewReader(buf))
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("seed observe failed: %d", w.Code)
	}
	return s
}

// BenchmarkPredictPath proves the acceptance criterion that the
// observability middleware keeps the instrumented lock-free predict path
// within 5% of the uninstrumented one (results in bench_small_output.txt).
func BenchmarkPredictPath(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []Option
	}{
		{"uninstrumented", []Option{WithoutInstrumentation()}},
		{"instrumented", nil},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchServer(b, bc.opts...)
			defer s.Close()
			h := s.Handler()
			req := httptest.NewRequest(http.MethodGet, "/api/v1/predict?user=u3&service=s7", nil)
			w := &nopRW{h: make(http.Header)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, req)
			}
		})
		b.Run(bc.name+"-parallel", func(b *testing.B) {
			s := benchServer(b, bc.opts...)
			defer s.Close()
			h := s.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				req := httptest.NewRequest(http.MethodGet, "/api/v1/predict?user=u3&service=s7", nil)
				w := &nopRW{h: make(http.Header)}
				for pb.Next() {
					h.ServeHTTP(w, req)
				}
			})
		})
	}
}

// BenchmarkMetricsScrape measures a full /metrics render.
func BenchmarkMetricsScrape(b *testing.B) {
	s := benchServer(b)
	defer s.Close()
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := &nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// TestInstrumentedPathUnderRace hammers predict, observe, and /metrics
// concurrently with instrumentation on — run under -race in CI.
func TestInstrumentedPathUnderRace(t *testing.T) {
	s := testServer(t)
	defer s.Close()
	observeSome(t, s)
	h := s.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				req := httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/api/v1/predict?user=u%d&service=s%d", i%4, i%5), nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Ingest(fmt.Sprintf("u%d", i%4), fmt.Sprintf("s%d", i%5), 1.5, 0)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Wait()
	if s.inflight.Value() != 0 {
		t.Fatalf("in-flight gauge leaked: %d", s.inflight.Value())
	}
}
