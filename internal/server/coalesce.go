package server

import (
	"sync"
	"time"

	"github.com/qoslab/amf/internal/core"
)

// Request-coalesced full-catalog ranking (ISSUE 8). Under adaptation
// storms — a dependency degrades and every affected client re-ranks at
// once — the server receives bursts of POST /api/v1/rank full-scan
// requests within microseconds of each other. Served independently,
// each one streams the entire service arena from DRAM; coalesced, the
// requests that arrive within a small window are batched into ONE
// multi-query pass (core.PredictView.TopKAllBatch) that reads every
// arena block once for all of them.
//
// The mechanics: the first request to arrive arms a window timer and
// waits; requests arriving inside the window pile onto the pending
// batch; the batch flushes when the timer fires or when it reaches the
// max size, whichever comes first (a max-size flush runs on the
// triggering request's goroutine, the timer flush on the timer's). All
// requests in a flush are served from ONE view load, so each gets
// exactly the []Ranked the serial TopKAll would have produced against
// that same view — coalescing changes latency shape, never results.
//
// Coalescing is off by default (window 0): a lone request would only
// pay the window in added latency. It is a throughput-for-latency trade
// to switch on (-rank-coalesce-window) when full-scan ranking traffic
// is bursty enough that DRAM bandwidth, not request latency, is the
// binding constraint.

// rankJob is one waiting full-scan ranking request.
type rankJob struct {
	uid   int
	k     int
	lower bool
	done  chan rankResult
}

// rankResult is what a flush hands back to each waiting request: its
// ranking, the view the whole batch was served from (the handler
// reports this view's version/catalog size, not one it loaded itself),
// and the flush's batch size for instrumentation.
type rankResult struct {
	ranked []core.Ranked
	view   *core.PredictView
	batch  int
}

// rankCoalescer batches concurrent full-scan rankings. It holds no
// configuration: window and max arrive with each submit (read from the
// server's RankCoalesceWindow/RankCoalesceMax fields per request, like
// every other server tunable), so tests and embedders can adjust them
// after construction.
type rankCoalescer struct {
	view func() *core.PredictView // engine view loader

	mu      sync.Mutex
	pending []rankJob
	timer   *time.Timer
}

func newRankCoalescer(view func() *core.PredictView) *rankCoalescer {
	return &rankCoalescer{view: view}
}

// submit enqueues one full-scan ranking and blocks until its batch is
// flushed. The first job of a window arms the timer; the job that fills
// the batch to max flushes immediately on its own goroutine.
func (c *rankCoalescer) submit(uid, k int, lower bool, window time.Duration, max int) rankResult {
	if max <= 1 {
		// Degenerate batch size: serve directly, no window to win from.
		v := c.view()
		return rankResult{ranked: v.TopKAll(uid, k, lower, 1), view: v, batch: 1}
	}
	job := rankJob{uid: uid, k: k, lower: lower, done: make(chan rankResult, 1)}
	c.mu.Lock()
	c.pending = append(c.pending, job)
	if len(c.pending) == 1 {
		c.timer = time.AfterFunc(window, c.flushTimer)
	}
	if len(c.pending) >= max {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.run(batch)
	} else {
		c.mu.Unlock()
	}
	return <-job.done
}

// flushTimer is the window-expiry path. If a max-size flush already
// drained the batch, pending is empty and this is a no-op. If the timer
// had already fired when a max-size flush tried to Stop it, this can
// also pick up jobs from the NEXT window and serve them early — benign:
// they simply wait less than their full window.
func (c *rankCoalescer) flushTimer() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	c.run(batch)
}

// takeLocked claims the pending batch and disarms the window timer.
func (c *rankCoalescer) takeLocked() []rankJob {
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// run serves one flushed batch from a single view load.
func (c *rankCoalescer) run(batch []rankJob) {
	if len(batch) == 0 {
		return
	}
	view := c.view()
	queries := make([]core.RankQuery, len(batch))
	for i, j := range batch {
		queries[i] = core.RankQuery{User: j.uid, K: j.k, LowerIsBetter: j.lower}
	}
	outs := view.TopKAllBatch(queries)
	for i, j := range batch {
		j.done <- rankResult{ranked: outs[i], view: view, batch: len(batch)}
	}
}
